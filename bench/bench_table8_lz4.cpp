// Table VIII: lossless compression (LZ4) as a DBA replacement.
//
// Runs the real from-scratch LZ4 codec on per-model parameter corpora:
// measures the compression ratio AND the single-thread throughput on this
// machine, scales to the paper's multithreaded CPU-LZ4 setup, and computes
// the normalized training time. Paper: ratios 5/0/0/36 % and normalized
// times 4.51/1.95/3.03/2.04 vs TECO-Reduction — i.e. at least ~2x slower.
#include <chrono>
#include <cstdio>

#include "compress/lz4.hpp"
#include "compress/param_corpus.hpp"
#include "compress/quant_model.hpp"
#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/runtime.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  const char* zoo_names[] = {"GPT2", "Albert-xxlarge-v1", "Bert-large-cased",
                             "T5-large"};
  const double paper_ratio[] = {0.05, 0.0, 0.0, 0.36};
  const double paper_norm[] = {4.51, 1.95, 3.03, 2.04};

  core::TextTable t("Table VIII: LZ4 on parameter streams (measured with "
                    "the real codec)");
  t.set_header({"Model", "Compression saving (paper)",
                "Codec MB/s (1 thread, this host)",
                "Normalized training time (paper)"});

  const auto specs = compress::table8_corpora();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto corpus = compress::make_param_corpus(specs[i], 8u << 20);
    const auto t0 = std::chrono::steady_clock::now();
    const auto packed = compress::lz4_compress(corpus);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double mbps = corpus.size() / secs / 1e6;
    const double saving =
        1.0 - static_cast<double>(packed.size()) / corpus.size();

    // Paper uses multithreaded lz4mt on a 2-socket (28-core) Xeon 6120:
    // model ~16x effective scaling over our single-thread measurement.
    compress::Lz4PathConfig lz4;
    lz4.ratio = 1.0 - saving;
    lz4.compress_bw = mbps * 1e6 * 16.0;
    const auto m = dl::model_by_name(zoo_names[i]);
    const double lz4_time = compress::lz4_step_time(m, 4, cal, lz4);
    const double teco_time = offload::simulate_step(
        offload::RuntimeKind::kTecoReduction, m, 4, cal).total();

    t.add_row({zoo_names[i],
               core::TextTable::pct(saving) + " (" +
                   core::TextTable::pct(paper_ratio[i], 0) + ")",
               core::TextTable::fmt(mbps, 0),
               core::TextTable::fmt(lz4_time / teco_time) + " (" +
                   core::TextTable::fmt(paper_norm[i]) + ")"});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nConclusion reproduced: FP32 parameters barely compress and "
            "the compression pass costs >= ~2x training time -> LZ4 cannot "
            "replace DBA.");
  return 0;
}
