// Table IV: TECO-Reduction speedup over ZeRO-Offload, plus the paper's
// headline aggregates (time -33.7% avg, comm overhead -93.7% avg).
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  core::TextTable t("Table IV: TECO-Reduction over ZeRO-Offload");
  t.set_header({"Model", "b=4 (paper)", "b=8 (paper)", "b=16 (paper)"});
  struct PaperRow {
    const char* name;
    const char* cells[3];
  };
  const PaperRow paper[] = {
      {"GPT2", {"1.82x", "1.52x", "1.32x"}},
      {"Albert-xxlarge-v1", {"1.25x", "1.23x", "1.08x"}},
      {"Bert-large-cased", {"1.6x", "1.62x", "1.41x"}},
      {"T5-large", {"1.73x", "1.58x", "N/A"}},
  };
  for (const auto& pr : paper) {
    const auto m = dl::model_by_name(pr.name);
    std::vector<std::string> row = {m.name};
    const std::uint32_t batches[] = {4, 8, 16};
    for (int i = 0; i < 3; ++i) {
      const auto c = offload::speedup_vs_baseline(
          offload::RuntimeKind::kTecoReduction, m, batches[i], cal);
      row.push_back((c.valid ? core::TextTable::fmt(c.speedup) + "x"
                             : std::string("N/A")) +
                    " (" + pr.cells[i] + ")");
    }
    t.add_row(std::move(row));
  }
  std::fputs(t.to_string().c_str(), stdout);

  const auto h = offload::headline_summary(dl::table3_models(), {4, 8, 16},
                                           cal);
  std::printf("\nHeadline over %zu grid cells:\n"
              "  training-time reduction: avg %.1f%% (paper 33.7%%), "
              "max %.1f%% (paper up to 55.4%%)\n"
              "  comm-overhead reduction: avg %.1f%% (paper 93.7%%), "
              "max %.1f%% (paper up to 100%%)\n",
              h.cells, 100 * h.avg_time_reduction, 100 * h.max_time_reduction,
              100 * h.avg_comm_reduction, 100 * h.max_comm_reduction);

  obs::BenchReport report("table4_speedup_reduction");
  report.set_config("models", "table3");
  report.set_config("cells", static_cast<double>(h.cells));
  report.set_headline("avg_time_reduction_pct", 100 * h.avg_time_reduction);
  report.set_headline("max_time_reduction_pct", 100 * h.max_time_reduction);
  report.set_headline("avg_comm_reduction_pct", 100 * h.avg_comm_reduction);
  report.set_headline("max_comm_reduction_pct", 100 * h.max_comm_reduction);
  report.write();
  return 0;
}
