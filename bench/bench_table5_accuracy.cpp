// Table V: final model quality, original vs TECO-Reduction (DBA active
// after act_aft_steps = 500 with dirty_bytes = 2), on real FP32 training.
//
// Paper: GPT-2 perplexity 21.05 -> 21.54; Bert accuracy 93.13 -> 91.99;
// the deltas are small and convergence is unchanged. Our proxies report
// the same metric *kinds* (perplexity-style exp(loss) for generative
// tasks, accuracy for discriminative) on synthetic tasks; the claim under
// test is that DBA leaves the metric within a small delta of exact
// training.
#include <cstdio>
#include <cstdlib>

#include "core/report.hpp"
#include "dl/dba_training.hpp"
#include "dl/gnn.hpp"

int main() {
  using namespace teco;
  const bool smoke = std::getenv("TECO_SMOKE") != nullptr;

  struct Row {
    const char* paper_model;
    const char* metric;
    dl::Task task;
    std::uint64_t seed;
    bool transformer;  ///< Attention-based proxy for transformer models.
  };
  const Row rows[] = {
      {"GPT-2 (transformer proxy)", "Perplexity*",
       dl::make_regression_task(21), 1, true},
      {"Albert-xxlarge-v1 (transformer proxy)", "Accuracy",
       dl::make_classification_task(22), 2, true},
      {"Bert-large-cased (transformer proxy)", "Accuracy",
       dl::make_classification_task(23), 3, true},
      {"T5-large (transformer proxy)", "Perplexity*",
       dl::make_regression_task(24), 4, true},
  };

  core::TextTable t("Table V: final model quality, original vs "
                    "TECO-Reduction (real FP32 training, DBA after step 500)");
  t.set_header({"Model", "Metric", "Original", "TECO-Reduction", "Delta"});
  for (const auto& r : rows) {
    dl::TrainRunConfig cfg;
    if (r.transformer) {
      cfg.transformer = dl::default_transformer_for(r.task, 42 + r.seed);
    } else {
      cfg.model = dl::default_model_for(r.task, 42 + r.seed);
    }
    cfg.steps = smoke ? 200 : 1500;
    cfg.batch_size = 32;
    cfg.record_every = 0;
    // The paper fine-tunes PRE-TRAINED models, whose weight norms are
    // already stable when DBA activates. Our proxies train from scratch,
    // so the equivalent regime is weight-decay-stabilized norms with
    // activation after the loss plateaus (step 1000 of 1500 here plays the
    // role of the paper's step 500 of 9870).
    cfg.adam.weight_decay = 1e-2f;
    const auto orig = dl::run_training(r.task, cfg);
    auto dba_cfg = cfg;
    dba_cfg.dba_enabled = true;
    dba_cfg.act_aft_steps = smoke ? 130 : 1000;
    const auto dba = dl::run_training(r.task, dba_cfg);
    t.add_row({r.paper_model, r.metric,
               core::TextTable::fmt(orig.final_metric, 4),
               core::TextTable::fmt(dba.final_metric, 4),
               core::TextTable::fmt(dba.final_metric - orig.final_metric,
                                    4)});
  }
  // GCNII: real full-graph training on the Wisconsin-scale synthetic
  // graph; the paper reports no TECO-Reduction number (no DBA for GCNII).
  const float gcnii_acc =
      dl::train_gcnii_accuracy(dl::GraphConfig{}, dl::GcniiConfig{},
                               smoke ? 30 : 200, 5e-3f);
  t.add_row({"GCNII", "Accuracy",
             core::TextTable::fmt(gcnii_acc, 4) + " (paper: 0.549)",
             "N/A (no DBA)", "-"});
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\n* exp(eval loss), a perplexity-style metric for the "
            "regression proxies.\nConclusion reproduced: DBA changes the "
            "final metric only marginally.");
  return 0;
}
