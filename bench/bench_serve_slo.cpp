// Multi-tenant LLM inference serving: SLO attainment vs offered load
// (teco::serve).
//
// The ROADMAP's "millions of users" workload made concrete: an open-loop
// Poisson arrival process drives continuous-batching inference over the
// simulated CXL domain, with every session's KV-cache paging between HBM
// and CXL DRAM on the same link the write-through coherence stream rides.
// The sweep crosses offered load (requests/second) x HBM KV budget x tier
// policy and reports p50/p99/p999 time-to-first-token, inter-token
// latency, SLO attainment and goodput per cell.
//
// The headline: with the KV working set over budget, the offload design
// the paper argues for — a write-through mirror in CXL DRAM (evictions
// become free clean-copy drops, DBA-style update pushes keep the far copy
// current) plus lookahead paging (min_stall / knapsack) — holds SLO
// attainment where the baseline collapses. The naive_swap strawman models
// the conventional design: no mirror, so every eviction is a dirty
// write-back stalled on the critical path, and every fetch is an exposed
// demand miss. Same wire, same arrival trace.
//
// Flags / environment:
//   TECO_SMOKE=1    shrink the sweep for CI smoke runs.
//   TECO_BENCH_DIR  where BENCH_serve_slo.json lands (default: cwd).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/bench_report.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve.hpp"
#include "tier/placement_planner.hpp"

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct Sweep {
  std::vector<double> rates_rps;
  std::vector<std::uint64_t> hbm_budgets;
  std::vector<teco::tier::Policy> policies;
  std::size_t n_requests = 0;
};

Sweep make_sweep(bool smoke) {
  using teco::tier::Policy;
  if (smoke) {
    return {{56.0}, {512 * kMiB}, {Policy::kNaiveSwap, Policy::kMinStall},
            60};
  }
  // 24 rps: light load, everything fits. 56 rps: the knee — the KV working
  // set crosses the small budget and the baseline's swap stalls compound
  // into queueing collapse while planned paging still keeps up. 96 rps:
  // deep overload, where the planned policies degrade gracefully (higher
  // goodput, lower tails) instead of falling off the same cliff.
  return {{24.0, 56.0, 96.0},
          {512 * kMiB, 4096 * kMiB},
          {Policy::kNaiveSwap, Policy::kMinStall, Policy::kKnapsack},
          400};
}

std::string fmt_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", seconds * 1e3);
  return buf;
}

std::string fmt_pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", frac * 100.0);
  return buf;
}

}  // namespace

int main() {
  using namespace teco;
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const Sweep sweep = make_sweep(smoke);

  core::TextTable t(
      "LLM serving SLO sweep (GPT-2 proxy, Poisson arrivals, TTFT SLO "
      "250 ms, continuous batching, KV offload over CXL)");
  t.set_header({"rate", "HBM KV", "policy", "adm/off", "TTFT p50", "p99",
                "p999", "TPOT p50", "p99", "SLO", "goodput", "paged",
                "stall"});

  // Headline trackers: at the smallest budget, find the rate where planned
  // paging gains the most SLO over the strawman (the knee of the load
  // curve — below it everything fits, far above it everything is
  // overloaded).
  double naive_slo = -1.0;
  double best_planned_slo = -1.0;
  double headline_gain = 0.0;
  double headline_rate = 0.0;
  for (const double rate : sweep.rates_rps) {
    double cell_naive = -1.0;
    double cell_planned = -1.0;
    for (const std::uint64_t hbm : sweep.hbm_budgets) {
      for (const tier::Policy pol : sweep.policies) {
        serve::ServeConfig cfg;
        cfg.arrival = serve::ArrivalKind::kPoisson;
        cfg.rate_rps = rate;
        cfg.n_requests = sweep.n_requests;
        cfg.seed = 20;  // Same arrival trace for every cell at this rate.
        cfg.max_sessions = 48;
        cfg.max_batch = 16;
        cfg.hbm_kv_bytes = hbm;
        cfg.policy = pol;
        // The strawman is the conventional stack: no write-through mirror,
        // so evictions are synchronous dirty write-backs. The planned
        // policies get the paper's offload design (mirror + lookahead).
        cfg.kv_writethrough = pol != tier::Policy::kNaiveSwap;
        serve::ServeScheduler sched(cfg);
        const serve::ServeReport r = sched.run();

        if (hbm == sweep.hbm_budgets.front()) {
          if (pol == tier::Policy::kNaiveSwap) {
            cell_naive = r.slo_attainment();
          } else if (r.slo_attainment() > cell_planned) {
            cell_planned = r.slo_attainment();
          }
        }

        char goodput[32];
        std::snprintf(goodput, sizeof goodput, "%.1f/s", r.goodput_rps());
        t.add_row({std::to_string(static_cast<int>(rate)) + "/s",
                   std::to_string(hbm / kMiB) + " MiB",
                   std::string(tier::to_string(pol)),
                   std::to_string(r.admitted) + "/" +
                       std::to_string(r.offered),
                   fmt_ms(r.ttft.p50), fmt_ms(r.ttft.p99),
                   fmt_ms(r.ttft.p999), fmt_ms(r.tpot.p50),
                   fmt_ms(r.tpot.p99), fmt_pct(r.slo_attainment()),
                   goodput,
                   core::TextTable::mib(
                       static_cast<double>(r.kv_pagein_bytes)),
                   fmt_ms(r.kv_stall)});
      }
    }
    if (cell_naive >= 0.0 && cell_planned >= 0.0 &&
        cell_planned - cell_naive >= headline_gain) {
      headline_gain = cell_planned - cell_naive;
      headline_rate = rate;
      naive_slo = cell_naive;
      best_planned_slo = cell_planned;
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  if (naive_slo >= 0.0 && best_planned_slo >= 0.0) {
    std::printf(
        "-> Knee of the load curve (%d rps, %llu MiB KV budget): planned "
        "paging attains %.1f%% SLO vs %.1f%% for naive demand swapping "
        "(+%.1f pts).\n\n",
        static_cast<int>(headline_rate),
        static_cast<unsigned long long>(sweep.hbm_budgets.front() / kMiB),
        best_planned_slo * 100.0, naive_slo * 100.0, headline_gain * 100.0);
  }

  // Detailed run for the canonical report: min_stall under pressure, with
  // the full registry dumped so serve.* sits next to the cxl.*/coherence.*
  // counters of the same wire (the acceptance criterion's shared-channel
  // evidence).
  serve::ServeConfig cfg;
  cfg.rate_rps = headline_rate > 0.0 ? headline_rate : sweep.rates_rps.back();
  cfg.n_requests = sweep.n_requests;
  cfg.seed = 20;
  cfg.max_sessions = 48;
  cfg.max_batch = 16;
  cfg.hbm_kv_bytes = sweep.hbm_budgets.front();
  cfg.policy = tier::Policy::kMinStall;
  obs::MetricsRegistry reg;
  serve::ServeScheduler sched(cfg, &reg);
  const serve::ServeReport r = sched.run();

  const bool shared_wire = reg.value("serve.kv.pagein_bytes") > 0.0 &&
                           reg.value("cxl.down.bytes") > 0.0 &&
                           reg.value("cxl.up.bytes") > 0.0 &&
                           reg.value("serve.tokens") > 0.0;
  std::printf("Shared-wire check (serve.* and cxl.* nonzero in one run): "
              "%s\n",
              shared_wire ? "ok" : "FAILED");

  obs::BenchReport report("serve_slo");
  report.set_config("model", "gpt2");
  report.set_config("arrival", "poisson");
  report.set_config("rate_rps", cfg.rate_rps);
  report.set_config("n_requests", static_cast<double>(cfg.n_requests));
  report.set_config("hbm_kv_mib",
                    static_cast<double>(cfg.hbm_kv_bytes) / kMiB);
  report.set_config("policy", std::string(tier::to_string(cfg.policy)));
  report.set_config("max_batch", static_cast<double>(cfg.max_batch));
  report.set_config("slo_ttft_ms", cfg.slo_ttft * 1e3);
  report.set_headline("slo_attainment_pct", r.slo_attainment() * 100.0);
  report.set_headline("slo_gain_vs_naive_pts", headline_gain * 100.0);
  report.set_headline("ttft_p50_ms", r.ttft.p50 * 1e3);
  report.set_headline("ttft_p99_ms", r.ttft.p99 * 1e3);
  report.set_headline("ttft_p999_ms", r.ttft.p999 * 1e3);
  report.set_headline("tpot_p50_ms", r.tpot.p50 * 1e3);
  report.set_headline("tpot_p99_ms", r.tpot.p99 * 1e3);
  report.set_headline("goodput_rps", r.goodput_rps());
  report.set_headline("kv_pagein_mib",
                      static_cast<double>(r.kv_pagein_bytes) / kMiB);
  report.attach_registry(&reg);
  const std::string written = report.write();
  if (!written.empty()) {
    std::printf("Bench report written to %s\n", written.c_str());
  }
  return shared_wire ? 0 : 1;
}
