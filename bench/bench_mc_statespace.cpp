// Exhaustive model-checking sweep over the coherent domain (teco::mc).
//
// Runs the explicit-state checker on every small configuration the CI
// mc-exhaustive job guards: both protocols, mixed parameter/gradient
// regions, and FT mode with poison/crash/scrub actions. Prints one row per
// sweep and emits BENCH_mc_statespace.json with the state-space sizes and
// total wall time as headlines — growth in the reachable space is a
// protocol change and should be as visible in the perf trajectory as a
// latency regression would be.
//
// Exit status is the acceptance gate: 1 unless every sweep is exhaustive
// (not truncated) and free of invariant violations.
//
//   TECO_BENCH_DIR  where BENCH_mc_statespace.json lands (default: cwd).
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "mc/fabric_driver.hpp"
#include "mc/model_checker.hpp"
#include "obs/bench_report.hpp"

namespace {

struct SweepSpec {
  const char* name;
  teco::mc::McConfig cfg;
};

std::vector<SweepSpec> sweeps() {
  using teco::coherence::Protocol;
  std::vector<SweepSpec> out;
  {
    teco::mc::McConfig c;
    c.driver.param_lines = 2;
    out.push_back({"update_2p", c});
  }
  {
    teco::mc::McConfig c;
    c.driver.param_lines = 1;
    c.driver.grad_lines = 1;
    out.push_back({"update_1p1g", c});
  }
  {
    teco::mc::McConfig c;
    c.driver.protocol = Protocol::kInvalidation;
    c.driver.param_lines = 2;
    out.push_back({"invalidation_2p", c});
  }
  {
    teco::mc::McConfig c;
    c.driver.ft = true;
    c.driver.param_lines = 2;
    out.push_back({"ft_update_2p", c});
  }
  {
    teco::mc::McConfig c;
    c.driver.ft = true;
    c.driver.param_lines = 1;
    c.driver.grad_lines = 1;
    out.push_back({"ft_update_1p1g", c});
  }
  return out;
}

}  // namespace

int main() {
  using namespace teco;

  core::TextTable t(
      "Exhaustive model checking (2 agents x 2 lines x 2 values)");
  t.set_header({"sweep", "states", "edges", "deduped", "depth", "wall",
                "verdict"});

  obs::BenchReport report("mc_statespace");
  report.set_config("param_lines", 2.0);
  report.set_config("value_bits", 2.0);
  report.set_config("symmetry", "on");

  bool all_ok = true;
  std::size_t total_states = 0;
  std::size_t total_edges = 0;
  double total_wall = 0.0;
  for (const SweepSpec& s : sweeps()) {
    const mc::McResult r = mc::ModelChecker(s.cfg).run();
    const bool ok = r.ok() && !r.truncated;
    all_ok = all_ok && ok;
    total_states += r.states;
    total_edges += r.edges;
    total_wall += r.wall_seconds;
    t.add_row({s.name, std::to_string(r.states), std::to_string(r.edges),
               std::to_string(r.deduped), std::to_string(r.max_depth),
               core::TextTable::ms(r.wall_seconds),
               ok ? "exhaustive, ok" : "FAIL"});
    if (!ok) {
      std::fprintf(stderr, "FAIL %s: %s\n", s.name, r.summary().c_str());
      for (const auto* list : {&r.violations, &r.divergences, &r.deadlocks,
                               &r.livelocks, &r.stuck}) {
        for (const mc::Counterexample& c : *list) {
          std::fprintf(stderr, "%s\n",
                       mc::format_counterexample(c, s.cfg).c_str());
        }
      }
    }
    report.set_headline(std::string(s.name) + "_states",
                        static_cast<double>(r.states));
  }
  // The pooled-fabric all-reduce slice (mc/fabric_driver.hpp): the same
  // exhaustive gate over the 2-node x 1-pool-line fabric domain.
  {
    const mc::FabricMcResult fr = mc::fabric_model_check(mc::FabricMcConfig{});
    const bool ok = fr.ok() && !fr.truncated;
    all_ok = all_ok && ok;
    total_states += fr.states;
    total_edges += fr.edges;
    t.add_row({"fabric_2n1l", std::to_string(fr.states),
               std::to_string(fr.edges), std::to_string(fr.deduped),
               std::to_string(fr.max_depth), core::TextTable::ms(0.0),
               ok ? "exhaustive, ok" : "FAIL"});
    if (!ok) std::fprintf(stderr, "FAIL fabric_2n1l: %s\n",
                          fr.summary().c_str());
    report.set_headline("fabric_2n1l_states",
                        static_cast<double>(fr.states));
  }
  std::fputs(t.to_string().c_str(), stdout);

  report.set_headline("total_states", static_cast<double>(total_states));
  report.set_headline("total_edges", static_cast<double>(total_edges));
  report.set_headline("total_wall_s", total_wall);
  const std::string written = report.write();
  if (!written.empty()) {
    std::printf("Bench report written to %s\n", written.c_str());
  }

  if (!all_ok) return 1;
  std::printf(
      "-> %zu states / %zu edges across %zu sweeps, all exhaustive with "
      "zero invariant violations (%.2f s).\n",
      total_states, total_edges, sweeps().size() + 1, total_wall);
  return 0;
}
