// Table VI: impact of model size on TECO effectiveness (GPT-2 family,
// 122M -> 356M -> 778M -> 11B), batch 4.
//
// Paper: 1.55/1.54/1.67/1.29x (TECO-CXL) and 1.82/1.64/1.79/1.41x
// (TECO-Reduction); the 11B model gains least because compute is already
// 63.4% of its step.
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  core::TextTable t("Table VI: model-size sensitivity (batch 4)");
  t.set_header({"Model", "ZeRO-Offload", "TECO-CXL", "TECO-Reduction",
                "compute share (baseline)"});
  for (const auto& m : dl::table6_models()) {
    const auto cxl = offload::speedup_vs_baseline(
        offload::RuntimeKind::kTecoCxl, m, 4, cal);
    const auto red = offload::speedup_vs_baseline(
        offload::RuntimeKind::kTecoReduction, m, 4, cal);
    const auto& b = cxl.baseline;
    const double compute_share =
        (b.forward_backward + b.grad_optimizer + b.param_optimizer) /
        b.total();
    t.add_row({m.name, "1x", core::TextTable::fmt(cxl.speedup) + "x",
               core::TextTable::fmt(red.speedup) + "x",
               core::TextTable::pct(compute_share)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nPaper check: GPT2-11B's compute share is ~63.4%, which caps "
            "its speedup below the smaller models'.");
  return 0;
}
