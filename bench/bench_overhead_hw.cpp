// Section VIII-D: Aggregator/Disaggregator overhead analysis.
//
// (1) The synthesized latency/power constants (Vivado, FPGA->ASIC scaled).
// (2) The Ramulator-style DRAM study: the Disaggregator's read-modify-write
//     raises simulated DRAM cycles by 2.48x (sequential) and 1.9x
//     (shuffled) in the paper; our bank/row model reproduces the ordering
//     and magnitudes.
// (3) The bandwidth-gap argument: GDDR5 (~900 GB/s) vs PCIe 3.0 (16 GB/s)
//     means the extra reads never become the bottleneck.
#include <cstdio>

#include "core/report.hpp"
#include "dba/aggregator.hpp"
#include "mem/dram.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace teco;

  std::puts("Section VIII-D: hardware overhead of the DBA engines");
  std::printf("  Aggregator:    latency %.2f ns, power %.4f W (ASIC-scaled)\n",
              dba::kAggregatorLatency * 1e9, dba::kAggregatorPowerW);
  std::printf("  Disaggregator: latency %.3f ns, power %.3f W (ASIC-scaled)\n",
              dba::kDisaggregatorLatency * 1e9, dba::kDisaggregatorPowerW);
  std::printf("  End-to-end model charges %.1f ns per line (pipelined).\n\n",
              dba::kModeledDbaLatency * 1e9);

  auto run = [](bool extra_read, bool shuffled) {
    mem::Dram dram;
    sim::Rng rng(9);
    constexpr std::uint64_t kLines = 1 << 16;
    for (std::uint64_t i = 0; i < kLines; ++i) {
      const mem::Addr a = shuffled
                              ? rng.next_below(kLines) * 64 * 1021
                              : i * 64;
      if (extra_read) dram.access(a, false);  // Disaggregator merge read.
      dram.access(a, true);                   // Line update write.
    }
    return dram.stats();
  };

  core::TextTable t("DRAM-cycle amplification from the merge read "
                    "(Ramulator-style bank/row model)");
  t.set_header({"Access pattern", "write-only cycles", "read+write cycles",
                "amplification", "paper"});
  const auto seq_base = run(false, false);
  const auto seq_rmw = run(true, false);
  const auto shuf_base = run(false, true);
  const auto shuf_rmw = run(true, true);
  t.add_row({"sequential", std::to_string(seq_base.cycles),
             std::to_string(seq_rmw.cycles),
             core::TextTable::fmt(
                 static_cast<double>(seq_rmw.cycles) / seq_base.cycles) + "x",
             "2.48x"});
  t.add_row({"shuffled", std::to_string(shuf_base.cycles),
             std::to_string(shuf_rmw.cycles),
             core::TextTable::fmt(
                 static_cast<double>(shuf_rmw.cycles) / shuf_base.cycles) +
                 "x",
             "1.9x"});
  std::fputs(t.to_string().c_str(), stdout);

  std::puts("\nBandwidth-gap check: the merge traffic runs against GDDR5 "
            "(~900 GB/s across 8 controllers) while the line stream is "
            "bounded by PCIe 3.0 (16 GB/s) -> amplified DRAM cycles stay "
            "far from the bottleneck (56x headroom).");
  return 0;
}
