// Section IV-A2 motivation: invalidation-based CXL (on-demand transfer)
// vs. the update-protocol extension.
//
// Paper: on-demand data transfer increases training time by 56.6% on
// average, up to 99.7% for T5-large (737M parameters).
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/runtime.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  core::TextTable t(
      "Invalidation-MESI vs update-protocol CXL: training-time increase of "
      "on-demand transfers, per model and batch size");
  t.set_header({"Model", "b=4", "b=8", "b=16"});
  double sum = 0.0, worst = 0.0;
  int n = 0;
  for (const auto& m : dl::table3_models()) {
    std::vector<std::string> row = {m.name};
    for (const std::uint32_t b : {4u, 8u, 16u}) {
      if (m.full_graph_only && b != 4u) {
        row.emplace_back("-");
        continue;
      }
      const auto upd =
          offload::simulate_step(offload::RuntimeKind::kTecoCxl, m, b, cal);
      const auto inv = offload::simulate_step(
          offload::RuntimeKind::kCxlInvalidation, m, b, cal);
      const double inc = inv.total() / upd.total() - 1.0;
      sum += inc;
      worst = inc > worst ? inc : worst;
      ++n;
      row.push_back("+" + core::TextTable::pct(inc));
    }
    t.add_row(std::move(row));
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nAverage increase over the grid: +%.1f%% (paper: +56.6%%); "
              "worst: +%.1f%% (paper: up to +99.7%%, T5-large).\n",
              100 * sum / n, 100 * worst);
  return 0;
}
