// Section VIII-C: communication volume and the DBA contribution.
//
// Paper: DBA cuts the parameter volume by 50%; gradients are unchanged but
// their transfer is hidden by CXL; DBA's volume cut alone contributes
// 0.8%-7.3% of end-to-end time; a datacenter cost estimate follows.
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  obs::BenchReport report("volume_dba");
  report.set_config("batch", 4.0);
  report.set_config("dirty_bytes", 2.0);
  double worst_cut = 1.0;
  double best_gain = 0.0;
  core::TextTable t("Section VIII-C: per-step communication volume (batch 4)");
  t.set_header({"Model", "Baseline params", "TECO-Red params", "Param cut",
                "Grads (both)", "DBA-only end-to-end gain"});
  for (const auto& m : dl::table3_models()) {
    const auto r = offload::volume_report(
        offload::RuntimeKind::kTecoReduction, m, 4, cal);
    const auto cxl =
        offload::simulate_step(offload::RuntimeKind::kTecoCxl, m, 4, cal);
    const auto red = offload::simulate_step(
        offload::RuntimeKind::kTecoReduction, m, 4, cal);
    const auto base =
        offload::simulate_step(offload::RuntimeKind::kZeroOffload, m, 4, cal);
    // The paper reports DBA's contribution relative to the original time.
    const double dba_gain = (cxl.total() - red.total()) / base.total();
    if (r.param_volume_reduction < worst_cut) {
      worst_cut = r.param_volume_reduction;
    }
    if (dba_gain > best_gain) best_gain = dba_gain;
    t.add_row({m.name,
               core::TextTable::mib(static_cast<double>(r.base_to_device)),
               core::TextTable::mib(static_cast<double>(r.treat_to_device)),
               core::TextTable::pct(r.param_volume_reduction),
               core::TextTable::mib(static_cast<double>(r.treat_to_cpu)),
               core::TextTable::pct(dba_gain)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nParameter volume cut is 50% exactly (dirty_bytes=2 of 4); "
            "gradient volume unchanged (DBA not applicable) but its "
            "transfer time is hidden by the update protocol.");

  // The paper's cost estimate: a 256-A100 fleet at p4de.24xlarge pricing;
  // 7% of training time saved translates into fleet-hours freed.
  const double hourly_per_gpu = 40.96 / 8.0;  // p4de.24xlarge: 8 GPUs.
  const double gpus = 256;
  const double yearly_fleet = gpus * 24 * 365 * hourly_per_gpu;
  const double saving_frac = 0.07;
  std::printf("\nDatacenter estimate: 7%% training-time saving on a "
              "256-GPU fleet ~= $%.0fK/year of fleet cost (paper: ~$900K; "
              "the figure is sensitive to utilization assumptions).\n",
              yearly_fleet * saving_frac / 1000.0);

  report.set_headline("min_param_volume_cut_pct", worst_cut * 100.0);
  report.set_headline("max_dba_end_to_end_gain_pct", best_gain * 100.0);
  report.write();
  return 0;
}
