// Extension study: TECO under multi-accelerator data parallelism.
//
// The paper motivates TECO with the large-cluster regime where the global
// batch is convergence-capped, so adding GPUs shrinks the per-GPU batch
// and communication dominates (Section II-A, the argument against DPU).
// This bench quantifies that: fixed global batch, growing device count.
// TECO_SMOKE=1 trims the sweep to one model and two device counts.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/multi_device.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  std::vector<dl::ModelConfig> models = {dl::bert_large_cased()};
  if (!smoke) models.push_back(dl::t5_large());
  const std::vector<std::uint32_t> device_counts =
      smoke ? std::vector<std::uint32_t>{1, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8};

  for (const auto& model : models) {
    core::TextTable t("Strong scaling at fixed global batch 32: " +
                      model.name);
    t.set_header({"devices", "per-dev batch", "ZeRO-Offload step",
                  "TECO-Red step", "speedup", "baseline comm share"});
    const auto pts = offload::scaling_sweep(model, 32, device_counts, cal);
    for (const auto& p : pts) {
      t.add_row({std::to_string(p.devices),
                 std::to_string(32 / p.devices) +
                     (p.fits ? "" : " (OOM on 32GB)"),
                 core::TextTable::ms(p.baseline),
                 core::TextTable::ms(p.teco),
                 core::TextTable::fmt(p.speedup) + "x",
                 core::TextTable::pct(p.baseline_comm_fraction)});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("");
  }
  std::puts("As devices grow at fixed global batch, per-device compute "
            "shrinks while each device still moves the full parameter/"
            "gradient volume -> the baseline's communication share rises "
            "and TECO's advantage widens. This is the regime the paper "
            "cites to argue DPU cannot save ZeRO-Offload.\n");

  // Topology sensitivity: private x16 slots vs one shared upstream port.
  core::TextTable t2("Topology: 4 devices, Bert-large, global batch 32");
  t2.set_header({"Topology", "ZeRO-Offload step", "TECO-Red step",
                 "speedup"});
  for (const bool shared : {false, true}) {
    offload::MultiDeviceConfig mdc;
    mdc.devices = 4;
    mdc.global_batch = 32;
    mdc.shared_upstream = shared;
    const auto base = offload::simulate_multi_device_step(
        offload::RuntimeKind::kZeroOffload, dl::bert_large_cased(), mdc,
        cal);
    const auto teco = offload::simulate_multi_device_step(
        offload::RuntimeKind::kTecoReduction, dl::bert_large_cased(), mdc,
        cal);
    t2.add_row({shared ? "shared x16 upstream (CXL switch)"
                       : "private x16 per device",
                core::TextTable::ms(base.step_total),
                core::TextTable::ms(teco.step_total),
                core::TextTable::fmt(base.step_total / teco.step_total) +
                    "x"});
  }
  std::fputs(t2.to_string().c_str(), stdout);
  std::puts("Link contention behind a shared switch amplifies the "
            "communication bottleneck -> TECO's relative win grows again.\n");

  // The per-link gradient exchange in isolation (offload::per_link_reduce).
  // bench_fabric_allreduce charges exactly these numbers as its no-pool
  // per_link baseline arm, so the two benches quote the same closed form.
  core::TextTable t3("Per-link gradient exchange, Bert-large, shared "
                     "upstream (bench_fabric_allreduce baseline arm)");
  t3.set_header({"devices", "ship", "CPU reduce", "broadcast", "total"});
  const std::uint64_t grad_bytes = dl::bert_large_cased().gradient_bytes();
  for (const std::uint32_t d : device_counts) {
    const auto p = offload::per_link_reduce(d, grad_bytes, cal, true);
    t3.add_row({std::to_string(d), core::TextTable::ms(p.ship),
                core::TextTable::ms(p.reduce),
                core::TextTable::ms(p.broadcast),
                core::TextTable::ms(p.total())});
  }
  std::fputs(t3.to_string().c_str(), stdout);
  return 0;
}
