// Fig. 11: training-time speedup of TECO-CXL over ZeRO-Offload for the
// Table III models at batch sizes 4/8/16 (GCNII: full-graph only; T5-large
// batch 16 OOMs under the baseline).
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();

  core::TextTable t("Fig. 11: TECO-CXL speedup over ZeRO-Offload");
  t.set_header({"Model", "b=4", "b=8", "b=16"});
  for (const auto& m : dl::table3_models()) {
    std::vector<std::string> row = {m.name};
    if (m.full_graph_only) {
      const auto c = offload::speedup_vs_baseline(
          offload::RuntimeKind::kTecoCxl, m, 1, cal);
      row.push_back(core::TextTable::fmt(c.speedup) + "x (full graph)");
      row.push_back("-");
      row.push_back("-");
    } else {
      for (const std::uint32_t b : {4u, 8u, 16u}) {
        const auto c = offload::speedup_vs_baseline(
            offload::RuntimeKind::kTecoCxl, m, b, cal);
        row.push_back(c.valid ? core::TextTable::fmt(c.speedup) + "x"
                              : "N/A (OOM)");
      }
    }
    t.add_row(std::move(row));
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nShape checks: every cell > 1x; Albert-xxlarge-v1 lowest "
            "(compute-dominated, 4x attention heads); speedup decays with "
            "batch size.");
  return 0;
}
