// Substrate micro-benchmarks (google-benchmark): link serialization, DBA
// pack/merge, coherence operations, LZ4 codec, cache and event-queue costs.
// These quantify the cost of the simulation substrate itself, not the
// modeled hardware.
#include <benchmark/benchmark.h>

#include <vector>

#include "compress/lz4.hpp"
#include "coherence/giant_cache.hpp"
#include "coherence/home_agent.hpp"
#include "cxl/channel.hpp"
#include "cxl/flit.hpp"
#include "cxl/link.hpp"
#include "obs/metrics.hpp"
#include "dba/aggregator.hpp"
#include "dba/disaggregator.hpp"
#include "dl/attention.hpp"
#include "dl/fp16.hpp"
#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"
#include "obs/causal.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using namespace teco;

void BM_ChannelSubmit(benchmark::State& state) {
  cxl::Channel ch("bench", 15.1e9, sim::ns(400));
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData, 0, 64);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.submit(t, pkt));
    t += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSubmit);

void BM_ChannelSubmitStream(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData, 0, 64);
  for (auto _ : state) {
    cxl::Channel ch("bench", 15.1e9, sim::ns(400));
    benchmark::DoNotOptimize(ch.submit_stream(0.0, pkt, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelSubmitStream)->Arg(1 << 10)->Arg(1 << 20);

// The obs overhead acceptance pair: identical link sends with and without
// a metrics registry attached. The delta between the two is the full cost
// of telemetry on the hottest simulator path (flit math + seven Counter
// adds); it must stay under 5 %. Build with -DTECO_OBS=OFF to measure the
// compiled-out floor.
void BM_LinkSendBare(benchmark::State& state) {
  cxl::Link link;
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData, 0, 64);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        link.send(cxl::Direction::kCpuToDevice, t, pkt));
    t += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkSendBare);

void BM_LinkSendMetrics(benchmark::State& state) {
  cxl::Link link;
  obs::MetricsRegistry reg;
  link.set_metrics(&reg);
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData, 0, 64);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        link.send(cxl::Direction::kCpuToDevice, t, pkt));
    t += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkSendMetrics);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_AggregatorPack(benchmark::State& state) {
  sim::Rng rng(1);
  mem::BackingStore::Line line;
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.next_below(256));
  dba::Aggregator agg(dba::DbaRegister(true, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.pack(line));
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_AggregatorPack);

void BM_DisaggregatorMerge(benchmark::State& state) {
  sim::Rng rng(2);
  mem::BackingStore::Line old_line, new_line;
  for (auto& b : old_line) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : new_line) b = static_cast<std::uint8_t>(rng.next_below(256));
  dba::Aggregator agg(dba::DbaRegister(true, 2));
  dba::Disaggregator dis(dba::DbaRegister(true, 2));
  const auto payload = agg.pack(new_line);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dis.merge(old_line, payload));
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DisaggregatorMerge);

void BM_HomeAgentUpdatePush(benchmark::State& state) {
  cxl::Link link;
  coherence::GiantCache gc(1ull << 26);
  gc.map_region("p", 0, 1ull << 24, coherence::MesiState::kExclusive, true);
  mem::Cache cpu(mem::llc_config());
  coherence::HomeAgent agent(link, gc, cpu, {});
  std::uint64_t line = 0;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.cpu_write_line(t, (line % (1 << 18)) * 64));
    ++line;
    t += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HomeAgentUpdatePush);

void BM_CacheLookup(benchmark::State& state) {
  mem::Cache c(mem::llc_config());
  for (int i = 0; i < 4096; ++i) c.insert(i * 64, 1, false);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup((i % 4096) * 64));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_EventQueueSchedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<double>(i % 37), [] {});
    }
    q.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSchedule);

// The causal-provenance overhead acceptance pair: BM_EventQueueSchedule is
// the bare baseline (null sink — one pointer test per schedule); this arm
// attaches a CausalGraph so every schedule appends one DAG node. The delta
// must stay under 5 %. Build with -DTECO_OBS=OFF to measure the
// compiled-out floor (the sink hook and Entry::node vanish entirely).
void BM_EventQueueScheduleCausal(benchmark::State& state) {
  obs::causal::CausalGraph g;
  for (auto _ : state) {
    sim::EventQueue q;
    q.set_causal_sink(&g);
    sim::TagScope tag(q, obs::causal::tag(obs::causal::Category::kCompute));
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<double>(i % 37), [] {});
    }
    q.run();
    g.clear();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleCausal);

void BM_Lz4Compress(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<std::uint8_t> src(1 << 20);
  std::size_t i = 0;
  while (i < src.size()) {
    if (rng.next_bool(0.3)) {
      const std::size_t run = 16 + rng.next_below(128);
      for (std::size_t k = 0; k < run && i < src.size(); ++k) src[i++] = 0;
    } else {
      src[i++] = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::lz4_compress(src));
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_Lz4Compress);

void BM_Lz4Decompress(benchmark::State& state) {
  sim::Rng rng(4);
  std::vector<std::uint8_t> src(1 << 20);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(rng.next_below(8));
  }
  const auto packed = compress::lz4_compress(src);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::lz4_decompress(packed, src.size()));
  }
  state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_Lz4Decompress);

void BM_FlitPacking(benchmark::State& state) {
  const cxl::FlitCodec codec;
  std::uint64_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.wire_bytes_for_burst(n % 100'000 + 1, 64));
    ++n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlitPacking);

void BM_Fp16RoundArray(benchmark::State& state) {
  sim::Rng rng(5);
  std::vector<float> v(1 << 16);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    dl::fp16_round_array(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(state.iterations() * v.size() * 4);
}
BENCHMARK(BM_Fp16RoundArray);

void BM_AdamSweepHierarchy(benchmark::State& state) {
  // Cache-hierarchy cost of validating the one-writeback-per-line premise.
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::simulate_adam_sweep(1 << 16));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_AdamSweepHierarchy);

void BM_TransformerStep(benchmark::State& state) {
  dl::TransformerConfig cfg;
  cfg.seq_len = 2;
  cfg.d_model = 8;
  cfg.d_ff = 64;
  cfg.out_dim = 10;
  cfg.output = dl::OutputKind::kClassification;
  dl::TinyTransformer net(cfg);
  sim::Rng rng(6);
  const dl::Tensor x = dl::Tensor::randn(32, 16, rng, 1.0f);
  dl::Tensor y(32, 1);
  for (int i = 0; i < 32; ++i) y.at(i, 0) = static_cast<float>(i % 10);
  for (auto _ : state) {
    net.forward(x);
    benchmark::DoNotOptimize(net.backward(y));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_TransformerStep);

}  // namespace

BENCHMARK_MAIN();
