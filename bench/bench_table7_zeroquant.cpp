// Table VII: training time of ZeRO-Quant (lossy compression with a
// full-precision teacher) vs TECO-Reduction on Bert-base-uncased /
// GLUE-MNLI. Paper: 5.8 h vs 2.03 h (2.86x).
#include <cstdio>

#include "compress/quant_model.hpp"
#include "core/report.hpp"

int main() {
  using namespace teco;
  const auto row = compress::table7_training_hours();

  core::TextTable t("Table VII: training time, GLUE-MNLI, Bert-base-uncased");
  t.set_header({"System", "Time (hours)", "Paper (hours)"});
  t.add_row({"Zero-Quant", core::TextTable::fmt(row.zeroquant_hours), "5.8"});
  t.add_row({"TECO-Reduction", core::TextTable::fmt(row.teco_hours), "2.03"});
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nRatio: %.2fx (paper: 2.86x). The quantized model trains "
              "with a full-precision teacher + layerwise distillation, so "
              "its 75%% traffic compression cannot pay for the extra "
              "compute.\n", row.ratio);
  return 0;
}
