// Fig. 12: training-step time breakdown for T5-large — forward+backward,
// gradient transfer exposed, gradient optimizer (clip), parameter optimizer
// (Adam), parameter transfer exposed — for ZeRO-Offload, TECO-CXL and
// TECO-Reduction across batch sizes.
//
// Paper observations: gradient transfer fully hidden at batch >= 8 and
// >= 69% hidden below; TECO-CXL cuts exposed parameter transfer by ~76% at
// batch 4 and DBA hides it completely.
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "offload/runtime.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const auto model = dl::t5_large();

  for (const std::uint32_t batch : {1u, 2u, 4u, 8u}) {
    core::TextTable t("Fig. 12: time breakdown, T5-large, batch " +
                      std::to_string(batch));
    t.set_header({"Runtime", "fwd+bwd", "grad xfer", "grad opt", "param opt",
                  "param xfer", "total"});
    for (const auto kind :
         {offload::RuntimeKind::kZeroOffload, offload::RuntimeKind::kTecoCxl,
          offload::RuntimeKind::kTecoReduction}) {
      const auto s = offload::simulate_step(kind, model, batch, cal);
      t.add_row({std::string(offload::to_string(kind)),
                 core::TextTable::ms(s.forward_backward),
                 core::TextTable::ms(s.grad_transfer_exposed),
                 core::TextTable::ms(s.grad_optimizer),
                 core::TextTable::ms(s.param_optimizer),
                 core::TextTable::ms(s.param_transfer_exposed),
                 core::TextTable::ms(s.total())});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("");
  }

  obs::MetricsRegistry reg;
  offload::StepOptions sopts;
  sopts.metrics = &reg;
  const auto base4 =
      offload::simulate_step(offload::RuntimeKind::kZeroOffload, model, 4,
                             cal, sopts);
  const auto cxl4 = offload::simulate_step(offload::RuntimeKind::kTecoCxl,
                                           model, 4, cal, sopts);
  const auto red4 = offload::simulate_step(
      offload::RuntimeKind::kTecoReduction, model, 4, cal, sopts);
  const double cxl_cut =
      100 * (1 - cxl4.param_transfer_exposed / base4.param_transfer_exposed);
  const double red_cut =
      100 * (1 - red4.param_transfer_exposed / base4.param_transfer_exposed);
  std::printf("Param-transfer exposure cut by TECO-CXL at batch 4: %.0f%% "
              "(paper: 76%%); by TECO-Reduction: %.0f%% (paper: completely "
              "hidden).\n",
              cxl_cut, red_cut);

  obs::BenchReport report("fig12_breakdown");
  report.set_config("model", model.name);
  report.set_config("batch", 4.0);
  report.set_headline("param_xfer_cut_cxl_pct", cxl_cut);
  report.set_headline("param_xfer_cut_reduction_pct", red_cut);
  report.set_headline("step_total_zero_ms", base4.total() * 1e3);
  report.set_headline("step_total_reduction_ms", red4.total() * 1e3);
  report.attach_registry(&reg);
  report.write();
  return 0;
}
