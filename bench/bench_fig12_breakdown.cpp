// Fig. 12: training-step time breakdown for T5-large — forward+backward,
// gradient transfer exposed, gradient optimizer (clip), parameter optimizer
// (Adam), parameter transfer exposed — for ZeRO-Offload, TECO-CXL and
// TECO-Reduction across batch sizes.
//
// Paper observations: gradient transfer fully hidden at batch >= 8 and
// >= 69% hidden below; TECO-CXL cuts exposed parameter transfer by ~76% at
// batch 4 and DBA hides it completely.
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "offload/runtime.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const auto model = dl::t5_large();

  for (const std::uint32_t batch : {1u, 2u, 4u, 8u}) {
    core::TextTable t("Fig. 12: time breakdown, T5-large, batch " +
                      std::to_string(batch));
    t.set_header({"Runtime", "fwd+bwd", "grad xfer", "grad opt", "param opt",
                  "param xfer", "total"});
    for (const auto kind :
         {offload::RuntimeKind::kZeroOffload, offload::RuntimeKind::kTecoCxl,
          offload::RuntimeKind::kTecoReduction}) {
      const auto s = offload::simulate_step(kind, model, batch, cal);
      t.add_row({std::string(offload::to_string(kind)),
                 core::TextTable::ms(s.forward_backward),
                 core::TextTable::ms(s.grad_transfer_exposed),
                 core::TextTable::ms(s.grad_optimizer),
                 core::TextTable::ms(s.param_optimizer),
                 core::TextTable::ms(s.param_transfer_exposed),
                 core::TextTable::ms(s.total())});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("");
  }

  const auto base4 =
      offload::simulate_step(offload::RuntimeKind::kZeroOffload, model, 4,
                             cal);
  const auto cxl4 =
      offload::simulate_step(offload::RuntimeKind::kTecoCxl, model, 4, cal);
  const auto red4 = offload::simulate_step(
      offload::RuntimeKind::kTecoReduction, model, 4, cal);
  std::printf("Param-transfer exposure cut by TECO-CXL at batch 4: %.0f%% "
              "(paper: 76%%); by TECO-Reduction: %.0f%% (paper: completely "
              "hidden).\n",
              100 * (1 - cxl4.param_transfer_exposed /
                             base4.param_transfer_exposed),
              100 * (1 - red4.param_transfer_exposed /
                             base4.param_transfer_exposed));
  return 0;
}
