// Methodology validation: writeback-trace replay through the full protocol
// stack (HomeAgent + Link, line by line) vs the analytic timeline.
//
// The paper's evaluation replays gem5/Accel-Sim memory traces through a
// CXL emulator; this bench does the same at reduced scale and shows that
// the protocol stack and the closed-form timeline agree, that DBA halves
// only the parameter direction, and that the invalidation fallback both
// exposes transfers and resurrects the snoop filter.
// TECO_SMOKE=1 replays 10k lines instead of 100k for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/report.hpp"
#include "offload/calibration.hpp"
#include "offload/trace_replay.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const std::uint64_t lines = smoke ? 10'000 : 100'000;

  offload::ReplayStepConfig cfg;
  cfg.param_lines = lines;  // 6.4 MB of parameters at full scale.
  cfg.grad_lines = lines;
  cfg.forward = sim::ms(8);
  cfg.backward = sim::ms(16);
  cfg.grad_clip = sim::ms(2);
  cfg.adam = sim::ms(7);

  core::TextTable t("Trace replay through HomeAgent + Link (" +
                    std::to_string(lines / 1000) +
                    "k lines per tensor, shuffled writeback order)");
  t.set_header({"Configuration", "grad exposed", "param exposed",
                "step total", "to device", "to CPU", "snoop peak"});
  auto row = [&](const char* name, const offload::ReplayResult& r) {
    t.add_row({name, core::TextTable::ms(r.grad_exposed, 3),
               core::TextTable::ms(r.param_exposed, 3),
               core::TextTable::ms(r.step_total, 2),
               core::TextTable::mib(static_cast<double>(r.bytes_to_device)),
               core::TextTable::mib(static_cast<double>(r.bytes_to_cpu)),
               std::to_string(r.snoop_filter_peak)});
  };

  cfg.shuffle = true;
  row("update protocol", offload::replay_training_step(cfg, cal));

  auto dba_cfg = cfg;
  dba_cfg.dba = dba::DbaRegister(true, 2);
  row("update + DBA(2)", offload::replay_training_step(dba_cfg, cal));

  auto inv_cfg = cfg;
  inv_cfg.protocol = coherence::Protocol::kInvalidation;
  row("invalidation MESI", offload::replay_training_step(inv_cfg, cal));

  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nChecks: update mode never touches the snoop filter (the "
            "Section IV-A2 claim); DBA halves only the CPU->device "
            "direction; invalidation pays demand fetches in both "
            "directions and needs the directory again.");
  return 0;
}
