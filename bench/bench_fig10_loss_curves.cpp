// Fig. 10: training-loss curves with and without TECO-Reduction (paper
// shows GPT-2 and Albert; both curves overlap and converge in the same
// number of steps).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dl/dba_training.hpp"

namespace {

void print_curves(const char* name, const teco::dl::Task& task,
                  std::uint64_t model_seed) {
  using namespace teco::dl;
  const bool smoke = std::getenv("TECO_SMOKE") != nullptr;
  TrainRunConfig cfg;
  // Transformer-shaped proxies, as the paper's Fig. 10 models are.
  cfg.transformer = default_transformer_for(task, model_seed);
  cfg.steps = smoke ? 240 : 1200;
  cfg.batch_size = 32;
  cfg.record_every = smoke ? 30 : 60;
  // From-scratch proxies for the paper's fine-tuning runs: weight decay
  // stabilizes norms and DBA activates after the plateau (see Table V).
  cfg.adam.weight_decay = 1e-2f;
  const auto orig = run_training(task, cfg);
  auto dba_cfg = cfg;
  dba_cfg.dba_enabled = true;
  dba_cfg.act_aft_steps = smoke ? 160 : 800;
  const auto dba = run_training(task, dba_cfg);
  const std::size_t tail_after = smoke ? 180 : 600;

  std::printf("Fig. 10 (%s proxy): training loss\n", name);
  std::printf("%8s %12s %16s %10s\n", "step", "original", "teco-reduction",
              "|delta|");
  double max_tail_delta = 0.0;
  for (std::size_t i = 0; i < orig.recorded_steps.size(); ++i) {
    const double d = std::abs(static_cast<double>(orig.loss_curve[i]) -
                              dba.loss_curve[i]);
    if (orig.recorded_steps[i] > tail_after) {
      max_tail_delta = std::max(max_tail_delta, d);
    }
    std::printf("%8zu %12.5f %16.5f %10.5f\n", orig.recorded_steps[i],
                orig.loss_curve[i], dba.loss_curve[i], d);
  }
  std::printf("max |delta| after DBA activation: %.5f -> curves overlap; "
              "same number of steps to converge.\n\n", max_tail_delta);
}

}  // namespace

int main() {
  print_curves("GPT-2", teco::dl::make_regression_task(31), 7);
  print_curves("Albert-xxlarge-v1", teco::dl::make_classification_task(32),
               8);
  return 0;
}
