// Section VII: TECO generality — LAMMPS-style 3-D Lennard-Jones melt.
//
// Two parts: (1) a REAL LJ melt (our MD engine) verifying the workload has
// the required characteristics — iterative structure and low-byte position
// updates; (2) the offload timeline: paper reports 27% communication share,
// 21.5% improvement from TECO (78% CXL / 22% DBA) and 17% volume reduction.
// TECO_SMOKE=1 shrinks the MD box (4^3 cells) and the run to 10 steps.
#include <cstdio>
#include <cstdlib>

#include "core/report.hpp"
#include "dl/byte_stats.hpp"
#include "md/lj_system.hpp"
#include "md/offload_md.hpp"
#include "offload/calibration.hpp"

int main() {
  using namespace teco;
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';

  // Part 1: real physics, small box.
  md::LjConfig cfg;
  cfg.fcc_cells = smoke ? 4 : 6;  // 256 / 864 atoms.
  const int warm_steps = smoke ? 10 : 50;
  md::LjSystem sys(cfg);
  const double e0 = sys.total_energy();
  sys.run(warm_steps);
  const auto pos_prev = sys.positions_f32();
  const auto force_prev = sys.forces_f32();
  sys.step();
  const auto ps = dl::compare_arrays(pos_prev, sys.positions_f32());
  const auto fs = dl::compare_arrays(force_prev, sys.forces_f32());
  std::printf("LJ melt (%zu atoms, rho=0.8442, T*=1.44): energy drift over "
              "%d steps = %.3e (relative)\n",
              sys.n(), warm_steps + 1,
              std::abs(sys.total_energy() - e0) / std::abs(e0));
  std::printf("Per-step byte changes: positions %.1f%% low-2-bytes / "
              "forces %.1f%% -> DBA applies to positions only.\n\n",
              100 * ps.frac_low2_covered(), 100 * fs.frac_low2_covered());

  // Part 2: offload timeline at production scale.
  const auto r = md::md_generality_report(md::MdWorkload{},
                                          offload::default_calibration());
  core::TextTable t("Section VII: LJ-melt offload timeline (4M atoms)");
  t.set_header({"Mode", "force", "force xfer", "integrate", "pos xfer",
                "total", "comm share"});
  auto row = [&](const char* name, const md::MdStepBreakdown& b) {
    t.add_row({name, core::TextTable::ms(b.force_compute),
               core::TextTable::ms(b.force_xfer_exposed),
               core::TextTable::ms(b.integrate),
               core::TextTable::ms(b.pos_xfer_exposed),
               core::TextTable::ms(b.total()),
               core::TextTable::pct(b.comm_fraction())});
  };
  row("explicit copy", r.baseline);
  row("TECO-CXL", r.cxl);
  row("TECO-Reduction", r.reduction);
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\nImprovement: %.1f%% (paper: 21.5%%); volume reduction by "
              "DBA: %.1f%% (paper: 17%%); contribution split CXL %.0f%% / "
              "DBA %.0f%% (paper: 78%% / 22%%).\n",
              100 * r.improvement, 100 * r.volume_reduction,
              100 * r.cxl_contribution, 100 * r.dba_contribution);
  std::printf("Baseline communication share: %.1f%% (paper: 27%%).\n",
              100 * r.baseline.comm_fraction());
  return 0;
}
