// Critical-path attribution: where does a training step's time actually go
// (obs::causal), and how does the answer move when DBA is ablated?
//
// One tiered GPT-2 step is simulated twice on the shared-link timeline with
// the causal DAG wired: once with dirty-byte aggregation on (dirty_bytes=2,
// the paper's trained-step payload) and once ablated (dirty_bytes=4 — full
// 64-B lines on the parameter stream). critical_path() over [0, step_total]
// partitions the step into compute / link-occupancy / fence-drain /
// migration-stall segments with a hard conservation check: the category
// sums must reconcile with the step end-to-end exactly.
//
// The headline: with DBA on, the exposed parameter writeback is trimmed
// away and the residual critical path is link/migration-bound
// (demand_fetch + evict_stall + cxl occupancy); ablating DBA balloons the
// optimizer-side CXLFENCE drain, and the attribution shifts fence-bound —
// the same conclusion as Fig. 12, but derived from the causal DAG rather
// than from phase bookkeeping.
//
// Flags / environment:
//   --json <path>   export the DBA-on step's critical path as Chrome
//                   trace_event JSON: per-category lanes + flow arrows
//                   chaining the path hops (chrome://tracing, perfetto).
//   TECO_SMOKE=1    shrink the sequence length for CI smoke runs.
//   TECO_BENCH_DIR  where BENCH_critical_path.json lands (default: cwd).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/trace_export.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "obs/causal.hpp"
#include "offload/activation_timeline.hpp"

namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

using teco::obs::causal::Attribution;
using teco::obs::causal::Category;

/// Share of the step the path attributes to link traffic: occupancy waits
/// plus the migration stalls that are blocked on that same wire.
double link_share(const Attribution& a) {
  const double t = a.total();
  if (t <= 0.0) return 0.0;
  return (a.of(Category::kCxlUp) + a.of(Category::kCxlDown) +
          a.of(Category::kSwitchQueue) + a.of(Category::kDemandFetch) +
          a.of(Category::kEvictStall)) /
         t;
}

double fence_share(const Attribution& a) {
  const double t = a.total();
  return t > 0.0 ? a.of(Category::kFenceDrain) / t : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teco;
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  const auto& cal = offload::default_calibration();
  auto model = dl::gpt2();
  // Long-sequence + 16 GiB budget leaves the working set well past HBM, so
  // the min_stall plan keeps the link busy with migrations — that is what
  // puts demand_fetch/evict_stall on the DBA-on critical path.
  model.seq_len = smoke ? 4096 : 8192;
  const std::uint32_t batch = 8;

  struct Arm {
    const char* name;
    std::uint8_t dirty_bytes;
    Attribution attr;
    sim::Time step_total = 0.0;
  };
  std::vector<Arm> arms = {{"dba_on", 2, {}, 0.0}, {"dba_ablated", 4, {}, 0.0}};

  obs::causal::CausalGraph graph;
  core::ChromeTraceComposer composer;
  for (Arm& arm : arms) {
    graph.clear();
    offload::ActivationTimelineOptions opts;
    opts.policy = tier::Policy::kMinStall;
    opts.hbm_bytes = 16 * kGiB;
    opts.giant_cache_bytes = 4 * kGiB;
    opts.dirty_bytes = arm.dirty_bytes;
    opts.causal = &graph;
    const auto r = offload::simulate_activation_step(model, batch, cal, opts);
    arm.attr = r.attribution;
    arm.step_total = r.step_total;
    if (!arm.attr.conserved()) {
      std::fprintf(stderr, "ERROR: %s attribution failed conservation\n",
                   arm.name);
      return 1;
    }
    std::fputs(arm.attr.why_slow(std::string("step/") + arm.name).c_str(),
               stdout);
    std::puts("");
    if (std::strcmp(arm.name, "dba_on") == 0 && !json_path.empty()) {
      composer.add_critical_path(arm.attr, "teco.critpath dba_on", /*pid=*/3);
    }
  }

  core::TextTable t("Critical-path attribution, DBA on vs ablated (GPT-2 "
                    "proxy, seq " +
                    std::to_string(model.seq_len) + ", batch " +
                    std::to_string(batch) + ", HBM 16 GiB, min_stall)");
  t.set_header({"arm", "step", "compute", "link-bound", "fence_drain",
                "link share", "fence share"});
  for (const Arm& arm : arms) {
    const Attribution& a = arm.attr;
    const double link = a.of(Category::kCxlUp) + a.of(Category::kCxlDown) +
                        a.of(Category::kSwitchQueue) +
                        a.of(Category::kDemandFetch) +
                        a.of(Category::kEvictStall);
    t.add_row({arm.name, core::TextTable::ms(arm.step_total),
               core::TextTable::ms(a.of(Category::kCompute)),
               core::TextTable::ms(link),
               core::TextTable::ms(a.of(Category::kFenceDrain)),
               core::TextTable::pct(link_share(a)),
               core::TextTable::pct(fence_share(a))});
  }
  std::fputs(t.to_string().c_str(), stdout);

  const double shift = fence_share(arms[1].attr) - fence_share(arms[0].attr);
  if (shift > 0.0) {
    std::printf(
        "-> Ablating DBA shifts the critical path fence-ward: fence_drain "
        "share %.1f%% -> %.1f%% (+%.1f pts) while the link-bound share "
        "drops %.1f%% -> %.1f%%.\n\n",
        fence_share(arms[0].attr) * 100.0, fence_share(arms[1].attr) * 100.0,
        shift * 100.0, link_share(arms[0].attr) * 100.0,
        link_share(arms[1].attr) * 100.0);
  } else {
    std::puts("-> WARNING: DBA ablation did not increase the fence_drain "
              "share.\n");
  }

  obs::BenchReport report("critical_path");
  report.set_config("model", "gpt2");
  report.set_config("batch", static_cast<double>(batch));
  report.set_config("seq_len", static_cast<double>(model.seq_len));
  report.set_config("hbm_gib", 16.0);
  report.set_config("policy", "min_stall");
  report.set_headline("dba_on_link_share_pct",
                      link_share(arms[0].attr) * 100.0);
  report.set_headline("dba_on_fence_share_pct",
                      fence_share(arms[0].attr) * 100.0);
  report.set_headline("dba_ablated_link_share_pct",
                      link_share(arms[1].attr) * 100.0);
  report.set_headline("dba_ablated_fence_share_pct",
                      fence_share(arms[1].attr) * 100.0);
  report.set_headline("fence_share_shift_pts", shift * 100.0);
  report.set_headline("dba_on_step_ms", arms[0].step_total * 1e3);
  report.set_headline("dba_ablated_step_ms", arms[1].step_total * 1e3);
  const std::string written = report.write();
  if (!written.empty()) {
    std::printf("Bench report written to %s\n", written.c_str());
  }

  if (!json_path.empty()) {
    if (composer.write(json_path)) {
      std::printf("Chrome trace written to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return shift > 0.0 ? 0 : 1;
}
