// Fig. 13: impact of the DBA activation step (act_aft_steps) on model
// quality and speedup. GPT-2, trained to convergence with a fixed step
// budget; the paper sweeps the activation step and finds step 500 balances
// accuracy (21.21 vs 21.05 baseline perplexity) against speedup.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/report.hpp"
#include "dl/dba_training.hpp"
#include "dl/model_zoo.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const bool smoke = std::getenv("TECO_SMOKE") != nullptr;
  const auto& cal = offload::default_calibration();
  const auto task = dl::make_regression_task(41);
  // Paper's GPT-2 schedule length (scaled down under TECO_SMOKE).
  const std::size_t kSteps = smoke ? 240 : 1775;

  dl::TrainRunConfig base_cfg;
  base_cfg.model = dl::default_model_for(task, 5);
  base_cfg.steps = kSteps;
  base_cfg.batch_size = 16;
  base_cfg.record_every = 0;
  const auto exact = dl::run_training(task, base_cfg);

  const auto gpt2 = dl::gpt2();
  const double zero_offload_time = offload::schedule_training_time(
      offload::RuntimeKind::kZeroOffload, gpt2, 4, kSteps, 0, cal);

  core::TextTable t("Fig. 13: DBA activation-step sweep (GPT-2 proxy, " +
                    std::to_string(kSteps) + " steps)");
  t.set_header({"act_aft_steps", "metric (exp eval loss)",
                "metric delta vs no-DBA", "speedup vs ZeRO-Offload"});
  const std::vector<std::size_t> acts =
      smoke ? std::vector<std::size_t>{0, 60, 120, 180}
            : std::vector<std::size_t>{0, 100, 250, 500, 1000, 1500};
  for (const std::size_t act : acts) {
    auto cfg = base_cfg;
    cfg.dba_enabled = true;
    cfg.act_aft_steps = act;
    const auto res = dl::run_training(task, cfg);
    const double time = offload::schedule_training_time(
        offload::RuntimeKind::kTecoReduction, gpt2, 4, kSteps, act, cal);
    t.add_row({std::to_string(act),
               core::TextTable::fmt(res.final_metric, 4),
               core::TextTable::fmt(res.final_metric - exact.final_metric, 4),
               core::TextTable::fmt(zero_offload_time / time) + "x"});
  }
  t.add_row({"no DBA (TECO-CXL)", core::TextTable::fmt(exact.final_metric, 4),
             "0",
             core::TextTable::fmt(
                 zero_offload_time /
                 offload::schedule_training_time(
                     offload::RuntimeKind::kTecoCxl, gpt2, 4, kSteps, 0,
                     cal)) + "x"});
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nShape: earlier activation -> more speedup but larger metric "
            "drift; the default act_aft_steps=500 balances both (paper "
            "picks the 500th step).");
  return 0;
}
