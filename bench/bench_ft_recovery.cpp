// Fault-tolerance recovery overhead: checkpoint interval vs MTBF.
//
// Two views of the same tradeoff:
//   1. Analytic (Young's approximation, offload::expected_ft_overhead) for
//      a real model's checkpoint image written to the persistent CXL
//      device — the table a deployment would size its interval from.
//   2. Executable: the teco::ft trainer runs with MTBF-sampled device
//      crashes, and the measured overhead (checkpoint exposure + lost work
//      + restore) is printed next to the step-model prediction, which it
//      must track.
// A final run shows one crash-and-recover timeline as a Gantt chart.
//
// TECO_SMOKE=1 shrinks the sweeps for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "ft/trainer.hpp"
#include "obs/bench_report.hpp"
#include "offload/runtime.hpp"
#include "offload/step_model.hpp"

int main() {
  using namespace teco;
  const bool smoke = std::getenv("TECO_SMOKE") != nullptr;
  const auto& cal = offload::default_calibration();

  {
    const auto model = dl::bert_large_cased();
    const auto step =
        offload::simulate_step(offload::RuntimeKind::kTecoReduction, model, 4,
                               cal);
    const auto costs = offload::checkpoint_costs(model, cal);

    core::TextTable t(
        "FT overhead, analytic (Bert-large, full snapshot to pmem-CXL)");
    t.set_header({"ckpt interval", "ckpt/step", "MTBF 1h", "MTBF 6h",
                  "MTBF 24h"});
    const std::vector<std::size_t> intervals =
        smoke ? std::vector<std::size_t>{10, 100}
              : std::vector<std::size_t>{10, 25, 50, 100, 250, 1000};
    for (const std::size_t iv : intervals) {
      std::vector<std::string> row{std::to_string(iv)};
      const auto first = offload::expected_ft_overhead(
          step.total(), iv, costs.full_write, costs.restore, 3600.0);
      row.push_back(core::TextTable::ms(first.ckpt_per_step, 3));
      for (const double mtbf : {3600.0, 6 * 3600.0, 24 * 3600.0}) {
        const auto o = offload::expected_ft_overhead(
            step.total(), iv, costs.full_write, costs.restore, mtbf);
        row.push_back(core::TextTable::pct(o.overhead_fraction, 2));
      }
      t.add_row(row);
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Short intervals pay checkpoint exposure every step; long "
              "ones pay half an interval of lost work per failure.\n");
  }

  {
    ft::FtTrainConfig base;
    base.steps = smoke ? 24 : 96;
    base.n_params = 4096;
    base.session.act_aft_steps = 4;
    base.step_compute = sim::us(50.0);
    base.cpu_opt_time = sim::us(5.0);
    base.session.check = check::CheckLevel::kCount;  // Bench posture.

    ft::FtTrainConfig clean_cfg = base;
    clean_cfg.session.ft_mode = core::FtMode::kOff;
    const auto clean = ft::run_ft_training(clean_cfg);
    const sim::Time step_time =
        clean.wall_time / static_cast<double>(clean.steps_completed);

    core::TextTable t("FT overhead, executable (synthetic trainer, "
                      "MTBF-sampled crashes)");
    t.set_header({"mode", "interval", "ckpts", "crashes", "ckpt exposed/step",
                  "lost work", "restore", "measured ovh", "model ovh"});
    const std::vector<std::size_t> intervals =
        smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{4, 8,
                                                                       16, 32};
    for (const auto mode :
         {core::FtMode::kFull, core::FtMode::kIncremental}) {
      for (const std::size_t iv : intervals) {
        ft::FtTrainConfig cfg = base;
        cfg.session.ft_mode = mode;
        cfg.session.ft_checkpoint_interval = iv;
        cfg.faults.seed = 23;
        cfg.faults.mtbf = clean.wall_time / 2.0;
        cfg.faults.mtbf_horizon = clean.wall_time;
        const auto r = ft::run_ft_training(cfg);

        const double steps = static_cast<double>(r.steps_completed);
        const double measured =
            (r.wall_time - clean.wall_time) / clean.wall_time;
        // The model's view of the same run: per-step checkpoint exposure
        // and the realized failure rate over this horizon.
        const double ckpt_step = r.checkpoint.exposed_time / steps;
        const double mtbf_realized =
            r.recovery.recoveries > 0
                ? r.wall_time / static_cast<double>(r.recovery.recoveries)
                : 0.0;
        const auto model_o = offload::expected_ft_overhead(
            step_time, iv, ckpt_step * static_cast<double>(iv),
            r.recovery.recoveries > 0
                ? r.recovery.restore_time /
                      static_cast<double>(r.recovery.recoveries)
                : 0.0,
            mtbf_realized);
        t.add_row({std::string(core::to_string(mode)), std::to_string(iv),
                   std::to_string(r.checkpoint.checkpoints),
                   std::to_string(r.recovery.recoveries),
                   core::TextTable::ms(ckpt_step, 4),
                   core::TextTable::ms(r.recovery.lost_work, 3),
                   core::TextTable::ms(r.recovery.restore_time, 3),
                   core::TextTable::pct(measured, 1),
                   core::TextTable::pct(model_o.overhead_fraction, 1)});
      }
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Incremental checkpoints hide media writes behind compute; "
              "measured overhead tracks the step-model accounting (the gap "
              "is discretization: crashes land on step boundaries).\n");
  }

  {
    ft::FtTrainConfig cfg;
    cfg.steps = 24;
    cfg.n_params = 2048;
    cfg.session.ft_mode = core::FtMode::kIncremental;
    cfg.session.ft_checkpoint_interval = 6;
    cfg.session.act_aft_steps = 4;
    cfg.step_compute = sim::us(50.0);
    cfg.cpu_opt_time = sim::us(5.0);
    cfg.faults.crash_steps = {14};
    const auto r = ft::run_ft_training(cfg);
    std::puts("Crash at step 14, restore from the step-11 checkpoint, "
              "replay 12-14:");
    std::fputs(r.gantt.c_str(), stdout);
    std::printf("\nrecoveries=%llu replayed=%llu lost=%.3fms restore=%.3fms "
                "ckpt lines=%llu (skipped clean: %llu)\n",
                static_cast<unsigned long long>(r.recovery.recoveries),
                static_cast<unsigned long long>(r.recovery.steps_replayed),
                r.recovery.lost_work * 1e3, r.recovery.restore_time * 1e3,
                static_cast<unsigned long long>(r.checkpoint.lines_written),
                static_cast<unsigned long long>(
                    r.checkpoint.lines_skipped_clean));

    obs::BenchReport report("ft_recovery");
    report.set_config("mode", "incremental");
    report.set_config("interval", 6.0);
    report.set_config("steps", static_cast<double>(cfg.steps));
    report.set_headline("restore_ms", r.recovery.restore_time * 1e3);
    report.set_headline("lost_work_ms", r.recovery.lost_work * 1e3);
    report.set_headline("ckpt_lines_written",
                        static_cast<double>(r.checkpoint.lines_written));
    report.set_headline(
        "ckpt_lines_skipped_clean",
        static_cast<double>(r.checkpoint.lines_skipped_clean));
    report.write();
  }
  return 0;
}
