// Tiered activation offloading: stall vs HBM budget (teco::tier).
//
// Long-sequence fine-tuning of the GPT-2 proxy blows past HBM: the saved
// activations grow with batch x seq_len while the card does not. This bench
// sweeps model x sequence length x HBM budget and compares the placement
// policies end to end on the shared-link timeline:
//
//   all_hbm     — no tiering; OOM whenever the corrected memory check says
//                 the working set exceeds the budget.
//   naive_swap  — synchronous write-through + demand fetch (the strawman).
//   min_stall   — greedy stall-per-byte-freed eviction with lookahead
//                 prefetch.
//   knapsack    — 10Cache-style byte-seconds value-density scoring.
//
// The headline: where all_hbm is OOM, the planned policies finish the step
// with well over 25 % less stall than naive synchronous swapping.
//
// Flags / environment:
//   --json <path>   also export the min_stall step as ONE unified Chrome
//                   trace_event JSON (chrome://tracing, ui.perfetto.dev):
//                   Gantt lanes + obs spans + tier occupancy counter tracks.
//   TECO_SMOKE=1    shrink the sweep for CI smoke runs.
//   TECO_BENCH_DIR  where BENCH_tier_activation.json lands (default: cwd).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/tier_checker.hpp"
#include "core/gantt.hpp"
#include "core/report.hpp"
#include "core/trace_export.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "offload/activation_timeline.hpp"

namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

struct Sweep {
  std::vector<std::uint32_t> seq_lens;
  std::vector<std::uint64_t> hbm_budgets;
  std::uint32_t batch = 8;
};

Sweep make_sweep(bool smoke) {
  if (smoke) return {{4096}, {16 * kGiB}, 8};
  return {{1024, 2048, 4096, 8192}, {8 * kGiB, 16 * kGiB, 24 * kGiB}, 8};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace teco;
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  const auto& cal = offload::default_calibration();
  const Sweep sweep = make_sweep(smoke);
  const std::vector<tier::Policy> policies = {
      tier::Policy::kAllHbm, tier::Policy::kNaiveSwap,
      tier::Policy::kMinStall, tier::Policy::kKnapsack};

  auto model = dl::gpt2();

  core::TextTable t(
      "Tiered activation offloading (GPT-2 proxy, batch " +
      std::to_string(sweep.batch) + ", giant cache 4 GiB)");
  t.set_header({"seq", "HBM", "policy", "all-HBM fit", "stall", "step",
                "migrated", "HBM peak", "vs naive"});

  bool acceptance_met = false;
  double best_reduction = 0.0;
  for (const std::uint32_t seq : sweep.seq_lens) {
    model.seq_len = seq;
    for (const std::uint64_t hbm : sweep.hbm_budgets) {
      double naive_stall = -1.0;
      for (const tier::Policy pol : policies) {
        offload::ActivationTimelineOptions opts;
        opts.policy = pol;
        opts.hbm_bytes = hbm;
        opts.giant_cache_bytes = 4 * kGiB;
        // Strict invariant checking rides every simulated step; any T1/T2/
        // T4 firing aborts the bench.
        check::TierInvariantChecker checker(check::CheckLevel::kStrict, 0);
        opts.observer = &checker;
        const auto r =
            offload::simulate_activation_step(model, sweep.batch, cal, opts);

        if (pol == tier::Policy::kNaiveSwap) naive_stall = r.stall_time();
        std::string vs_naive = "-";
        if (naive_stall > 0.0 && pol != tier::Policy::kNaiveSwap &&
            pol != tier::Policy::kAllHbm) {
          const double red = 1.0 - r.stall_time() / naive_stall;
          vs_naive = "-" + core::TextTable::pct(red) + " stall";
          if (r.hbm_oom && red >= 0.25) {
            acceptance_met = true;
            if (red > best_reduction) best_reduction = red;
          }
        }
        const bool oom_row = pol == tier::Policy::kAllHbm && r.hbm_oom;
        t.add_row({std::to_string(seq),
                   std::to_string(hbm / kGiB) + " GiB",
                   std::string(tier::to_string(pol)),
                   r.hbm_oom ? "OOM" : "fits",
                   oom_row ? "n/a" : core::TextTable::ms(r.stall_time()),
                   oom_row ? "n/a" : core::TextTable::ms(r.step_total),
                   core::TextTable::mib(
                       static_cast<double>(r.migrated_bytes())),
                   core::TextTable::mib(
                       static_cast<double>(r.sched.occupancy[0].peak)),
                   vs_naive});
      }
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  if (acceptance_met) {
    std::printf(
        "-> Where all-HBM is OOM, planned tiering cuts stall by up to "
        "%.0f%% vs naive synchronous swapping (>= 25%% target met).\n\n",
        best_reduction * 100.0);
  } else {
    std::puts("-> WARNING: no OOM config reached the 25% stall-reduction "
              "target.\n");
  }

  // Detailed run for the telemetry artifacts: the min_stall policy at the
  // largest sequence length, with the obs registry + span buffer attached.
  // This feeds both BENCH_tier_activation.json (always) and, with --json,
  // the unified Chrome trace.
  model.seq_len = sweep.seq_lens.back();
  offload::ActivationTimelineOptions opts;
  opts.policy = tier::Policy::kMinStall;
  opts.hbm_bytes = 16 * kGiB;
  opts.giant_cache_bytes = 4 * kGiB;
  obs::MetricsRegistry reg;
  obs::TraceBuffer spans;
  opts.metrics = &reg;
  opts.spans = &spans;
  const auto r =
      offload::simulate_activation_step(model, sweep.batch, cal, opts);

  obs::BenchReport report("tier_activation");
  report.set_config("model", "gpt2");
  report.set_config("batch", static_cast<double>(sweep.batch));
  report.set_config("seq_len", static_cast<double>(model.seq_len));
  report.set_config("hbm_gib",
                    static_cast<double>(opts.hbm_bytes) / kGiB);
  report.set_config("policy", std::string(tier::to_string(opts.policy)));
  report.set_headline("best_stall_reduction_pct", best_reduction * 100.0);
  report.set_headline("step_total_ms", r.step_total * 1e3);
  report.set_headline("stall_ms", r.stall_time() * 1e3);
  report.set_headline("migrated_mib",
                      static_cast<double>(r.migrated_bytes()) / (1 << 20));
  report.attach_registry(&reg);
  const std::string written = report.write();
  if (!written.empty()) {
    std::printf("Bench report written to %s\n", written.c_str());
  }

  if (!json_path.empty()) {
    const auto g = core::activation_gantt(r, opts.hbm_bytes,
                                          opts.giant_cache_bytes);
    std::vector<core::CounterSeries> counters;
    for (std::size_t i = 0; i < tier::kTierCount; ++i) {
      counters.push_back(
          {std::string(tier::to_string(static_cast<tier::Tier>(i))) +
               " bytes",
           r.sched.occupancy[i].points});
    }
    // One trace, three sources: the Gantt lanes (process 1) with the tier
    // occupancy counter tracks, plus the obs spans (process 2).
    core::ChromeTraceComposer composer;
    composer.add_gantt(g, "teco tier_activation", /*pid=*/1);
    composer.add_counters(counters, /*pid=*/1);
    composer.add_spans(spans, "teco obs spans", /*pid=*/2);
    if (composer.write(json_path)) {
      std::printf("Chrome trace written to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "ERROR: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
