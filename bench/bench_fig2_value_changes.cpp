// Fig. 2: distribution of value-changed bytes in parameters (a) and
// gradients (b) across two consecutive training steps, over the course of a
// real fine-tuning run (Adam, FP32).
//
// Paper: among changed parameters, ~80% change only the last byte and most
// of the rest only the last two bytes, with Cases 1+2 growing toward
// convergence; gradients show no such pattern.
#include <cstdio>

#include "core/report.hpp"
#include "dl/dba_training.hpp"

int main() {
  using namespace teco;
  // Fine-tuning regime: a noisy objective (so per-step gradients mostly
  // cancel in Adam's first moment) and a Bert-style learning rate. This is
  // the setting where the paper observes the last-byte-dominated updates.
  const dl::Task task{dl::RegressionTask(16, 4, /*noise=*/0.5f, 11)};
  dl::TrainRunConfig cfg;
  cfg.model = dl::default_model_for(task);
  cfg.steps = 2000;
  cfg.batch_size = 16;
  cfg.adam.lr = 2e-5f;
  cfg.record_every = 10;
  const auto res = dl::run_training(task, cfg);

  auto bucket_table = [&](const char* title, bool params) {
    core::TextTable t(title);
    t.set_header({"Training phase", "unchanged", "case1 (last byte)",
                  "case2 (last 2 bytes)", "other"});
    const auto& series = params ? res.param_changes : res.grad_changes;
    const std::size_t n = series.size();
    const char* names[] = {"steps 0-25%", "25-50%", "50-75%", "75-100%"};
    for (int q = 0; q < 4; ++q) {
      dl::ByteChangeStats agg;
      for (std::size_t i = n * q / 4; i < n * (q + 1) / 4; ++i) {
        agg += series[i];
      }
      t.add_row({names[q], core::TextTable::pct(agg.frac_unchanged()),
                 core::TextTable::pct(agg.frac_case1()),
                 core::TextTable::pct(agg.frac_case2()),
                 core::TextTable::pct(agg.frac_other())});
    }
    std::fputs(t.to_string().c_str(), stdout);
  };

  bucket_table("Fig. 2(a): value-changed bytes in PARAMETERS "
               "(fractions among changed values)", true);
  std::puts("");
  bucket_table("Fig. 2(b): value-changed bytes in GRADIENTS", false);

  const auto& p = res.aggregate_param_changes;
  const auto& g = res.aggregate_grad_changes;
  std::printf("\nAggregate: params low-2-bytes coverage %.1f%% "
              "(paper ~80%%+), unchanged %.1f%% (paper reports up to "
              "44.5%%); gradients low-2 coverage %.1f%% (no pattern).\n",
              100 * p.frac_low2_covered(), 100 * p.frac_unchanged(),
              100 * g.frac_low2_covered());
  std::puts("Observation 2 reproduced: parameter updates concentrate in the "
            "least significant bytes; gradients do not.");
  return 0;
}
