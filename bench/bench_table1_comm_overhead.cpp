// Table I: percentage of training time used for communication (exposed to
// the critical path) under ZeRO-Offload, Bert-large-cased, batch 4/8/16/20.
//
// Paper row: 42.24% | 37.87% | 28.65% | 25.95%.
#include <cstdio>

#include "core/report.hpp"
#include "dl/model_zoo.hpp"
#include "obs/bench_report.hpp"
#include "offload/experiments.hpp"

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const auto model = dl::bert_large_cased();

  core::TextTable t(
      "Table I: communication share of training time (ZeRO-Offload, "
      "Bert-large-cased)");
  t.set_header({"Batch size", "Overhead (measured)", "Overhead (paper)",
                "Step time", "Grad xfer exposed", "Param xfer exposed"});
  const double paper[] = {0.4224, 0.3787, 0.2865, 0.2595};
  const std::uint32_t batches[] = {4, 8, 16, 20};
  obs::MetricsRegistry reg;
  offload::StepOptions sopts;
  sopts.metrics = &reg;
  obs::BenchReport report("table1_comm_overhead");
  report.set_config("model", model.name);
  report.set_config("runtime", "ZeRO-Offload");
  for (int i = 0; i < 4; ++i) {
    const auto s = offload::simulate_step(offload::RuntimeKind::kZeroOffload,
                                          model, batches[i], cal, sopts);
    report.set_headline("overhead_pct_b" + std::to_string(batches[i]),
                        s.comm_fraction() * 100.0);
    t.add_row({std::to_string(batches[i]),
               core::TextTable::pct(s.comm_fraction(), 2),
               core::TextTable::pct(paper[i], 2),
               core::TextTable::ms(s.total()),
               core::TextTable::ms(s.grad_transfer_exposed),
               core::TextTable::ms(s.param_transfer_exposed)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("\nObservation 1: communication takes a large share of training "
            "time and shrinks sub-linearly with batch size.");
  report.attach_registry(&reg);
  report.write();
  return 0;
}
