// In-pool all-reduce on a pooled CXL 3.x fabric (docs/FABRIC.md).
//
// N data-parallel nodes share one switch whose pool ports are slower than
// the sum of the node links — the contended regime. Three ways to reduce
// the gradient shards:
//   dba_merge     in-pool: update-push shards, near-memory ReduceUnit fold,
//                 DBA-trimmed result broadcast (steady state);
//   pool_staging  naive: a reducer node demand-reads every staged shard
//                 back across the same contended port, reduces locally,
//                 ships the result up again;
//   per_link      the no-pool analytic arm bench_multi_device reports
//                 (offload::per_link_reduce), for an apples-to-apples
//                 baseline.
// Strict per-node ProtocolCheckers and the fabric invariants (shared-port
// packet conservation, merge watchdog) stay on for every simulated step.
//
// TECO_SMOKE=1 trims the sweep to 2 nodes and a small shard. The full run
// is committed as bench/baselines/BENCH_fabric_allreduce.json.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "fabric/allreduce.hpp"
#include "fabric/fabric.hpp"
#include "obs/bench_report.hpp"
#include "offload/calibration.hpp"
#include "offload/multi_device.hpp"
#include "sim/rng.hpp"

namespace {

using namespace teco;

struct CellResult {
  sim::Time push = 0.0;       ///< Mean steady-state phase times, seconds.
  sim::Time reduce = 0.0;
  sim::Time broadcast = 0.0;
  sim::Time wall = 0.0;
  double port_bytes = 0.0;    ///< Mean shared-port bytes (both directions).
  sim::Time queue = 0.0;      ///< Mean switch queueing added per step.
};

fabric::FabricConfig make_cfg(std::uint32_t nodes,
                              fabric::ReduceStrategy strategy,
                              std::uint64_t shard_bytes, double port_gbps) {
  fabric::FabricConfig cfg;
  cfg.nodes = nodes;
  cfg.reduce = strategy;
  cfg.shard_bytes = shard_bytes;
  cfg.port_gbps = port_gbps;  // < nodes * node link rate: contended.
  return cfg;
}

void seed_gradients(fabric::PoolAllReduce& ar, std::uint32_t nodes,
                    std::uint64_t step) {
  std::vector<float> shard(ar.shard_floats());
  for (std::uint32_t n = 0; n < nodes; ++n) {
    // Same (step, node) stream for every strategy, so all three arms do
    // identical numeric work.
    sim::Rng rng(1 + step * 64 + n);
    for (float& v : shard) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    ar.set_node_gradients(n, shard);
  }
}

/// One warm-up step (full-precision seeding; programs the DBA register on
/// the merge arm), then `measure` averaged steady-state steps.
CellResult run_cell(fabric::PoolAllReduce& ar, std::uint32_t nodes,
                    std::uint32_t measure) {
  seed_gradients(ar, nodes, 0);
  (void)ar.run_step();
  CellResult out;
  for (std::uint32_t s = 1; s <= measure; ++s) {
    seed_gradients(ar, nodes, s);
    const fabric::AllReduceReport r = ar.run_step();
    out.push += r.push_done - r.started;
    out.reduce += r.reduce_done - r.push_done;
    out.broadcast += r.broadcast_done - r.reduce_done;
    out.wall += r.wall();
    out.port_bytes +=
        static_cast<double>(r.to_pool_bytes + r.from_pool_bytes);
    out.queue += r.port_queue_time;
  }
  out.push /= measure;
  out.reduce /= measure;
  out.broadcast /= measure;
  out.wall /= measure;
  out.port_bytes /= measure;
  out.queue /= measure;
  return out;
}

std::string us(sim::Time seconds) {
  return core::TextTable::fmt(seconds * 1e6, 1) + " us";
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';
  const std::vector<std::uint32_t> node_counts =
      smoke ? std::vector<std::uint32_t>{2} : std::vector<std::uint32_t>{2, 4, 8};
  const std::uint64_t shard_bytes = smoke ? 4 * 1024 : 64 * 1024;
  const double port_gbps = 8.0;  // node links are 16 GB/s raw.
  const std::uint32_t measure = smoke ? 2 : 3;

  obs::BenchReport report("fabric_allreduce");
  report.set_config("node_counts", smoke ? "2" : "2,4,8");
  report.set_config("shard_bytes", static_cast<double>(shard_bytes));
  report.set_config("port_gbps", port_gbps);
  report.set_config("measured_steps", static_cast<double>(measure));
  report.set_config("smoke", smoke ? "1" : "0");

  const struct {
    fabric::ReduceStrategy strategy;
    const char* label;
  } arms[] = {
      {fabric::ReduceStrategy::kDbaMerge, "dba_merge (in-pool)"},
      {fabric::ReduceStrategy::kPoolStaging, "pool_staging (naive)"},
      {fabric::ReduceStrategy::kPerLink, "per_link (no pool)"},
  };

  core::TextTable t("In-pool all-reduce, steady state, shared " +
                    core::TextTable::fmt(port_gbps, 0) +
                    " GB/s pool port, shard " +
                    std::to_string(shard_bytes / 1024) + " KiB");
  t.set_header({"nodes", "strategy", "push", "reduce", "broadcast", "wall",
                "port MiB/step", "queue sum/step"});

  // Keep the last merge-arm domain alive so its registry lands in the JSON.
  std::unique_ptr<fabric::PoolAllReduce> merge_keeper;
  bool merge_wins = true;
  for (const std::uint32_t nodes : node_counts) {
    CellResult merge{}, staging{};
    for (const auto& arm : arms) {
      auto ar = std::make_unique<fabric::PoolAllReduce>(
          make_cfg(nodes, arm.strategy, shard_bytes, port_gbps));
      const CellResult cell = run_cell(*ar, nodes, measure);
      t.add_row({std::to_string(nodes), arm.label, us(cell.push),
                 us(cell.reduce), us(cell.broadcast), us(cell.wall),
                 core::TextTable::fmt(cell.port_bytes / (1024.0 * 1024.0)),
                 us(cell.queue)});
      if (arm.strategy == fabric::ReduceStrategy::kDbaMerge) {
        merge = cell;
        merge_keeper = std::move(ar);
      } else if (arm.strategy == fabric::ReduceStrategy::kPoolStaging) {
        staging = cell;
      }
    }
    const double speedup = staging.wall / merge.wall;
    const double byte_ratio = staging.port_bytes / merge.port_bytes;
    merge_wins = merge_wins && merge.wall < staging.wall &&
                 merge.port_bytes < staging.port_bytes;
    report.set_headline(
        "merge_vs_staging_speedup_n" + std::to_string(nodes), speedup);
    report.set_headline(
        "staging_vs_merge_port_bytes_n" + std::to_string(nodes), byte_ratio);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("");

  // The per_link arm above charges exactly what bench_multi_device prints
  // for its per-link gradient exchange (offload::per_link_reduce) — shown
  // here so both benches quote the same baseline numbers.
  {
    auto cal = offload::default_calibration();
    cal.phy = cxl::PhyConfig{};
    core::TextTable t2("Baseline arm cross-check: offload::per_link_reduce, "
                       "shared upstream (bench_multi_device)");
    t2.set_header({"nodes", "ship", "reduce", "broadcast", "total"});
    for (const std::uint32_t nodes : node_counts) {
      const auto p =
          offload::per_link_reduce(nodes, shard_bytes, cal, true);
      t2.add_row({std::to_string(nodes), us(p.ship), us(p.reduce),
                  us(p.broadcast), us(p.total())});
      if (nodes == node_counts.front()) {
        report.set_headline("per_link_total_us_n" + std::to_string(nodes),
                            p.total() * 1e6);
      }
    }
    std::fputs(t2.to_string().c_str(), stdout);
    std::puts("");
  }

  std::puts(merge_wins
                ? "In-pool DBA merge beats naive pool staging on wall clock "
                  "and shared-port bytes at every node count: staging drags "
                  "every shard across the contended port twice more (demand "
                  "pull + result push) while the merge folds near-memory and "
                  "broadcasts DBA-trimmed lines."
                : "ACCEPTANCE FAILURE: dba_merge did not beat pool_staging "
                  "at every node count under the contended port.");

  report.set_headline("merge_beats_staging", merge_wins ? 1.0 : 0.0);
  if (merge_keeper != nullptr) {
    report.attach_registry(&merge_keeper->registry());
  }
  const std::string path = report.write();
  if (!path.empty()) std::printf("bench report: %s\n", path.c_str());
  return merge_wins ? 0 : 1;
}
