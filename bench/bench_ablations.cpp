// Ablations of TECO's design choices (DESIGN.md Section 6).
//
//  A1  Interconnect generation: PCIe 3.0 vs PCIe 5.0 — does TECO still
//      matter on a 4x faster link?
//  A2  dirty_bytes sweep: volume vs speedup (and why 2 is the default).
//  A3  ZeRO-Offload gradient-buffer size: the baseline's own knob.
//  A4  CXL pending-queue depth: demand-fetch concurrency under the
//      invalidation protocol.
//  A5  DPU: how much of TECO's win could the baseline recover, at the cost
//      of delayed updates (and the convergence risk the paper cites)?
//  A6  Pacing granularity: the timeline's chunk count must not matter
//      (model-robustness check).
//
// TECO_SMOKE=1 trims each sweep to its endpoints for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/report.hpp"
#include "cxl/reliability.hpp"
#include "dl/model_zoo.hpp"
#include "offload/experiments.hpp"

namespace {

/// Sweep endpoints only under TECO_SMOKE=1.
template <typename T>
std::vector<T> sweep(std::vector<T> full, bool smoke) {
  if (smoke && full.size() > 2) return {full.front(), full.back()};
  return full;
}

}  // namespace

int main() {
  using namespace teco;
  const auto& cal = offload::default_calibration();
  const auto model = dl::bert_large_cased();
  const char* smoke_env = std::getenv("TECO_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] == '1';

  {
    core::TextTable t("A1: interconnect generation (Bert-large, batch 4)");
    t.set_header({"Link", "baseline step", "TECO-Red step", "speedup",
                  "baseline comm share"});
    for (const bool gen5 : {false, true}) {
      auto c = cal;
      if (gen5) c.phy.raw_bandwidth = 64.0 * sim::kGBps;
      const auto base = offload::simulate_step(
          offload::RuntimeKind::kZeroOffload, model, 4, c);
      const auto red = offload::simulate_step(
          offload::RuntimeKind::kTecoReduction, model, 4, c);
      t.add_row({gen5 ? "PCIe 5.0 x16" : "PCIe 3.0 x16",
                 core::TextTable::ms(base.total()),
                 core::TextTable::ms(red.total()),
                 core::TextTable::fmt(base.total() / red.total()) + "x",
                 core::TextTable::pct(base.comm_fraction())});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Faster links shrink but do not remove the gap: the "
              "baseline still serializes coarse transfers.\n");
  }

  {
    core::TextTable t("A2: dirty_bytes sweep (Bert-large, batch 4)");
    t.set_header({"dirty_bytes", "param volume", "param xfer exposed",
                  "speedup"});
    const auto base = offload::simulate_step(
        offload::RuntimeKind::kZeroOffload, model, 4, cal);
    for (const std::uint8_t n : sweep<std::uint8_t>({1, 2, 3, 4}, smoke)) {
      offload::StepOptions opts;
      opts.dirty_bytes = n;
      const auto s = offload::simulate_step(
          offload::RuntimeKind::kTecoReduction, model, 4, cal, opts);
      t.add_row({std::to_string(n),
                 core::TextTable::mib(static_cast<double>(s.bytes_to_device)),
                 core::TextTable::ms(s.param_transfer_exposed),
                 core::TextTable::fmt(base.total() / s.total()) + "x"});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> dirty_bytes=2 already hides the whole transfer; 1 saves "
              "no more time and risks accuracy, 3-4 re-expose nothing "
              "either here but pay volume on bigger models.\n");
  }

  {
    core::TextTable t("A3: ZeRO-Offload gradient-buffer size "
                      "(Bert-large, batch 4)");
    t.set_header({"buffer", "grad xfer exposed", "baseline step"});
    for (const std::uint64_t mib :
         sweep<std::uint64_t>({32, 64, 128, 256}, smoke)) {
      offload::StepInputs in =
          offload::compute_step_inputs(model, 4, cal);
      in.grad_buffer_bytes = mib << 20;
      // First-order exposure model: flushing starts after the first fill
      // and the DMA serializes the rest; exposure is whatever outruns the
      // backward window.
      const double flushes =
          static_cast<double>(in.grad_bytes) / static_cast<double>(mib << 20);
      const double transfer =
          static_cast<double>(in.grad_bytes) / cal.phy.dma_bandwidth() +
          flushes * cal.phy.dma_setup_latency;
      const double first_fill = in.backward / flushes;
      const double exposed =
          std::max(0.0, first_fill + transfer - in.backward);
      t.add_row({std::to_string(mib) + "MiB",
                 core::TextTable::ms(exposed),
                 core::TextTable::ms(in.forward + in.backward + exposed +
                                     in.grad_clip + in.adam)});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Smaller buckets start flushing earlier (less exposure) "
              "but pay per-flush setup; no buffer size closes the gap to "
              "line-grained streaming.\n");
  }

  {
    core::TextTable t("A4: pending-queue depth vs demand-fetch throughput "
                      "(invalidation protocol, T5-large, batch 4)");
    t.set_header({"queue entries", "invalidation step", "vs update"});
    const auto upd = offload::simulate_step(offload::RuntimeKind::kTecoCxl,
                                            dl::t5_large(), 4, cal);
    for (const std::size_t q :
         sweep<std::size_t>({32, 64, 128, 256, 512}, smoke)) {
      auto c = cal;
      c.cxl_queue_entries = q;
      const auto inv = offload::simulate_step(
          offload::RuntimeKind::kCxlInvalidation, dl::t5_large(), 4, c);
      t.add_row({std::to_string(q), core::TextTable::ms(inv.total()),
                 "+" + core::TextTable::pct(inv.total() / upd.total() - 1.0)});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Even very deep queues cannot make on-demand fetching "
              "competitive: the update protocol needs none of them.\n");
  }

  {
    core::TextTable t("A5: one-step delayed parameter update (DPU)");
    t.set_header({"Runtime", "b=4", "b=16"});
    for (const auto kind :
         {offload::RuntimeKind::kZeroOffload,
          offload::RuntimeKind::kZeroOffloadDpu,
          offload::RuntimeKind::kTecoReduction}) {
      std::vector<std::string> row = {std::string(offload::to_string(kind))};
      for (const std::uint32_t b : {4u, 16u}) {
        const auto s = offload::simulate_step(kind, model, b, cal);
        row.push_back(core::TextTable::ms(s.total()));
      }
      t.add_row(std::move(row));
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> DPU recovers part of the parameter-transfer cost but "
              "needs the next step's compute window (thin at small batch) "
              "and delays updates by one step, which the paper flags as a "
              "convergence risk; TECO beats it without either.\n");
  }

  {
    core::TextTable t("A6: pacing-granularity robustness (Bert-large, b=4, "
                      "TECO-Reduction)");
    t.set_header({"chunks", "step total"});
    double first = 0.0;
    for (const std::size_t chunks :
         sweep<std::size_t>({16, 64, 128, 512}, smoke)) {
      auto c = cal;
      c.pacing_chunks = chunks;
      const auto s = offload::simulate_step(
          offload::RuntimeKind::kTecoReduction, model, 4, c);
      if (first == 0.0) first = s.total();
      t.add_row({std::to_string(chunks), core::TextTable::ms(s.total())});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> Results are insensitive to the simulator's chunking "
              "(<4% spread across a 32x granularity range): the timeline "
              "measures the model, not the discretization.\n");
  }

  {
    core::TextTable t("A7: link-layer CRC retries vs bit-error rate "
                      "(why the model ignores them at spec BER)");
    t.set_header({"BER", "flit error prob", "goodput derate",
                  "extra latency/flit"});
    for (const double ber : {1e-12, 1e-10, 1e-8, 1e-6}) {
      cxl::RetryModel rm;
      rm.bit_error_rate = ber;
      char bers[32];
      std::snprintf(bers, sizeof bers, "%.0e", ber);
      char probs[32];
      std::snprintf(probs, sizeof probs, "%.2e",
                    rm.flit_error_probability());
      char lats[32];
      std::snprintf(lats, sizeof lats, "%.2e ns",
                    rm.expected_retry_latency() * 1e9);
      t.add_row({bers, probs,
                 core::TextTable::pct(1.0 - rm.throughput_derate(), 6),
                 lats});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("-> At the PCIe/CXL BER target (1e-12) retry overhead is "
              "~1e-7% of throughput: charging zero is sound.");
  }
  return 0;
}
