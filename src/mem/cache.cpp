#include "mem/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace teco::mem {

CacheConfig l1_config() { return CacheConfig{8 * 1024, 8, kLineBytes}; }
CacheConfig l2_config() { return CacheConfig{64 * 1024, 16, kLineBytes}; }
CacheConfig llc_config() {
  return CacheConfig{16 * 1024 * 1024, 64, kLineBytes};
}

Cache::Cache(CacheConfig cfg) : cfg_(cfg) {
  shard_.assert_held();
  if (cfg_.size_bytes == 0 || cfg_.ways == 0 || cfg_.line_bytes == 0) {
    throw std::invalid_argument("cache config fields must be nonzero");
  }
  if (cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) != 0) {
    throw std::invalid_argument("cache size must be a multiple of way size");
  }
  sets_.resize(cfg_.sets());
  for (auto& s : sets_) s.reserve(cfg_.ways);
}

std::vector<CacheLineMeta>& Cache::set_for(Addr addr) {
  return sets_[(addr / cfg_.line_bytes) % sets_.size()];
}
const std::vector<CacheLineMeta>& Cache::set_for(Addr addr) const {
  return sets_[(addr / cfg_.line_bytes) % sets_.size()];
}

CacheLineMeta* Cache::lookup(Addr addr) {
  shard_.assert_held();
  const Addr base = line_base(addr);
  for (auto& line : set_for(addr)) {
    if (line.valid && line.base == base) {
      line.last_use = ++tick_;
      ++stats_.hits;
      return &line;
    }
  }
  ++stats_.misses;
  return nullptr;
}

const CacheLineMeta* Cache::peek(Addr addr) const {
  shard_.assert_held();
  const Addr base = line_base(addr);
  for (const auto& line : set_for(addr)) {
    if (line.valid && line.base == base) return &line;
  }
  return nullptr;
}

CacheLineMeta& Cache::insert(Addr addr, std::uint8_t state, bool dirty) {
  shard_.assert_held();
  const Addr base = line_base(addr);
  auto& set = set_for(addr);
  for (auto& line : set) {
    if (line.valid && line.base == base) {
      line.state = state;
      line.dirty = line.dirty || dirty;
      line.last_use = ++tick_;
      return line;
    }
  }
  if (set.size() < cfg_.ways) {
    set.push_back(CacheLineMeta{base, true, dirty, state, ++tick_});
    return set.back();
  }
  // Reuse an invalidated slot before evicting anything: a husk left by
  // invalidate() is free capacity, and "evicting" one would report a drop
  // (with its stale state byte) for a line that is not resident at all.
  for (auto& line : set) {
    if (!line.valid) {
      line = CacheLineMeta{base, true, dirty, state, ++tick_};
      return line;
    }
  }
  // Evict the LRU victim (every slot is valid here).
  CacheLineMeta* victim = &set.front();
  for (auto& line : set) {
    if (line.last_use < victim->last_use) victim = &line;
  }
  ++stats_.evictions;
  if (victim->dirty) {
    ++stats_.writebacks;
    if (writeback_) writeback_(victim->base, victim->state);
  }
  if (observer_ != nullptr) {
    observer_->on_cache_drop(victim->base, victim->state, victim->dirty);
  }
  *victim = CacheLineMeta{base, true, dirty, state, ++tick_};
  return *victim;
}

bool Cache::invalidate(Addr addr, bool writeback_on_invalidate) {
  shard_.assert_held();
  const Addr base = line_base(addr);
  for (auto& line : set_for(addr)) {
    if (line.valid && line.base == base) {
      if (line.dirty && writeback_on_invalidate) {
        ++stats_.writebacks;
        if (writeback_) writeback_(line.base, line.state);
      }
      if (observer_ != nullptr) {
        observer_->on_cache_drop(line.base, line.state, line.dirty);
      }
      line.valid = false;
      line.dirty = false;
      return true;
    }
  }
  return false;
}

std::uint64_t Cache::flush_dirty() {
  shard_.assert_held();
  std::uint64_t n = 0;
  for (auto& set : sets_) {
    for (auto& line : set) {
      if (line.valid && line.dirty) {
        ++stats_.writebacks;
        if (writeback_) writeback_(line.base, line.state);
        line.dirty = false;
        ++n;
      }
    }
  }
  return n;
}

void Cache::reset() {
  shard_.assert_held();
  for (auto& set : sets_) set.clear();
  stats_ = CacheStats{};
  tick_ = 0;
}

std::uint64_t Cache::resident_lines() const {
  shard_.assert_held();
  std::uint64_t n = 0;
  for (const auto& set : sets_) {
    for (const auto& line : set) {
      if (line.valid) ++n;
    }
  }
  return n;
}

void Cache::for_each(
    const std::function<void(const CacheLineMeta&)>& fn) const {
  shard_.assert_held();
  for (const auto& set : sets_) {
    for (const auto& line : set) {
      if (line.valid) fn(line);
    }
  }
}

}  // namespace teco::mem
