// Sparse byte-addressable backing store.
//
// Holds the actual contents of CPU memory and the accelerator giant cache in
// the data-carrying paths (DBA merge correctness, coherence data movement
// tests). Pages are allocated lazily at cache-line granularity; untouched
// lines read as zero, mirroring zero-initialized simulated DRAM.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>

#include "mem/address.hpp"

namespace teco::mem {

class BackingStore {
 public:
  using Line = std::array<std::uint8_t, kLineBytes>;

  /// Read the 64-byte line containing `addr` (zeros if never written).
  Line read_line(Addr addr) const {
    const auto it = lines_.find(line_index(addr));
    if (it == lines_.end()) return Line{};
    return it->second;
  }

  void write_line(Addr addr, const Line& data) {
    lines_[line_index(addr)] = data;
  }

  /// Byte-granular accessors that may straddle lines.
  void write(Addr addr, std::span<const std::uint8_t> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      Line& line = lines_[line_index(addr + i)];
      line[(addr + i) % kLineBytes] = bytes[i];
    }
  }

  void read(Addr addr, std::span<std::uint8_t> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto it = lines_.find(line_index(addr + i));
      out[i] = it == lines_.end() ? 0 : it->second[(addr + i) % kLineBytes];
    }
  }

  float read_f32(Addr addr) const {
    std::uint8_t buf[4];
    read(addr, buf);
    float f;
    std::memcpy(&f, buf, 4);
    return f;
  }

  void write_f32(Addr addr, float f) {
    std::uint8_t buf[4];
    std::memcpy(buf, &f, 4);
    write(addr, buf);
  }

  std::size_t resident_lines() const { return lines_.size(); }
  void clear() { lines_.clear(); }

  /// Visit every resident line as (line base address, contents). Iteration
  /// order is unspecified; used by the ft checkpoint engine to snapshot or
  /// wipe stores without knowing the mapped regions.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const auto& [index, line] : lines_) {
      fn(static_cast<Addr>(index * kLineBytes), line);
    }
  }

 private:
  std::unordered_map<std::uint64_t, Line> lines_;
};

}  // namespace teco::mem
