// Sparse byte-addressable backing store.
//
// Holds the actual contents of CPU memory and the accelerator giant cache in
// the data-carrying paths (DBA merge correctness, coherence data movement
// tests). Pages are allocated lazily at cache-line granularity; untouched
// lines read as zero, mirroring zero-initialized simulated DRAM.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/annotations.hpp"
#include "mem/address.hpp"

namespace teco::mem {

class BackingStore {
 public:
  using Line = std::array<std::uint8_t, kLineBytes>;

  /// Read the 64-byte line containing `addr` (zeros if never written).
  Line read_line(Addr addr) const {
    shard_.assert_held();
    const auto it = lines_.find(line_index(addr));
    if (it == lines_.end()) return Line{};
    return it->second;
  }

  void write_line(Addr addr, const Line& data) {
    shard_.assert_held();
    lines_[line_index(addr)] = data;
  }

  /// Byte-granular accessors that may straddle lines.
  void write(Addr addr, std::span<const std::uint8_t> bytes) {
    shard_.assert_held();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      Line& line = lines_[line_index(addr + i)];
      line[(addr + i) % kLineBytes] = bytes[i];
    }
  }

  void read(Addr addr, std::span<std::uint8_t> out) const {
    shard_.assert_held();
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto it = lines_.find(line_index(addr + i));
      out[i] = it == lines_.end() ? 0 : it->second[(addr + i) % kLineBytes];
    }
  }

  float read_f32(Addr addr) const {
    std::uint8_t buf[4];
    read(addr, buf);
    float f;
    std::memcpy(&f, buf, 4);
    return f;
  }

  void write_f32(Addr addr, float f) {
    std::uint8_t buf[4];
    std::memcpy(buf, &f, 4);
    write(addr, buf);
  }

  std::size_t resident_lines() const {
    shard_.assert_held();
    return lines_.size();
  }
  void clear() {
    shard_.assert_held();
    lines_.clear();
  }

  /// Visit every resident line as (line base address, contents), in
  /// ascending address order. The order is a contract, not a convenience:
  /// the ft checkpoint engine and PersistentStore::commit serialize lines
  /// in visit order, so it must not depend on hash-table layout (which
  /// varies with insertion/rehash history) or replayed checkpoint images
  /// stop being bit-identical. tests/lint_test.cpp pins this.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    shard_.assert_held();
    std::vector<std::uint64_t> indices;
    indices.reserve(lines_.size());
    // Keys are sorted below before any order escapes to the visitor.
    // teco-lint: allow(unordered-iter)
    for (const auto& [index, line] : lines_) indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    for (const std::uint64_t index : indices) {
      fn(static_cast<Addr>(index * kLineBytes), lines_.find(index)->second);
    }
  }

 private:
  // Byte contents belong to the shard that owns this address range;
  // cross-shard reads must go through the coherence protocol, not here.
  core::ShardCapability shard_;
  std::unordered_map<std::uint64_t, Line> lines_ TECO_SHARD_AFFINE(shard_);
};

}  // namespace teco::mem
