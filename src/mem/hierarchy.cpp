#include "mem/hierarchy.hpp"

namespace teco::mem {

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig l2,
                               CacheConfig llc)
    : l1_(l1), l2_(l2), llc_(llc) {
  // Dirty victims cascade down one level; LLC victims hit memory.
  l1_.set_writeback_fn(
      [this](Addr a, std::uint8_t s) { l2_.insert(a, s, /*dirty=*/true); });
  l2_.set_writeback_fn(
      [this](Addr a, std::uint8_t s) { llc_.insert(a, s, /*dirty=*/true); });
  llc_.set_writeback_fn([this](Addr a, std::uint8_t) {
    ++memory_writebacks_;
    if (mem_writeback_) mem_writeback_(a);
  });
}

Cache& CacheHierarchy::cache(int level) {
  switch (level) {
    case 0: return l1_;
    case 1: return l2_;
    default: return llc_;
  }
}

CacheLineMeta& CacheHierarchy::fill(int /*level*/, Addr addr) {
  // Find the line in a lower level and migrate it up to L1, preserving the
  // dirty bit; allocate from memory on a full miss.
  for (int lower = 1; lower <= 2; ++lower) {
    Cache& c = cache(lower);
    if (const CacheLineMeta* meta = c.peek(addr); meta != nullptr) {
      const bool dirty = meta->dirty;
      const std::uint8_t state = meta->state;
      c.invalidate(addr, /*writeback_on_invalidate=*/false);
      return l1_.insert(addr, state, dirty);
    }
  }
  ++memory_fetches_;
  return l1_.insert(addr, 0, /*dirty=*/false);
}

void CacheHierarchy::access(Addr addr, bool write) {
  CacheLineMeta* meta = l1_.lookup(addr);
  if (meta == nullptr) {
    // Count the lower-level lookups in their stats too.
    if (l2_.lookup(addr) == nullptr) llc_.lookup(addr);
    meta = &fill(0, addr);
  }
  if (write) meta->dirty = true;
}

void CacheHierarchy::load(Addr addr) { access(addr, false); }
void CacheHierarchy::store(Addr addr) { access(addr, true); }

void CacheHierarchy::stream_region(Addr base, std::uint64_t bytes,
                                   bool writes) {
  for (Addr a = line_base(base); a < base + bytes; a += kLineBytes) {
    load(a);
    if (writes) store(a);
  }
}

std::uint64_t CacheHierarchy::flush_all() {
  const std::uint64_t before = memory_writebacks_;
  // Dirty lines cascade: L1 -> L2 -> LLC -> memory. flush_dirty() leaves
  // clean copies resident, which is fine for accounting.
  l1_.flush_dirty();
  l2_.flush_dirty();
  llc_.flush_dirty();
  return memory_writebacks_ - before;
}

HierarchyStats CacheHierarchy::stats() const {
  HierarchyStats s;
  s.l1 = l1_.stats();
  s.l2 = l2_.stats();
  s.llc = llc_.stats();
  s.memory_writebacks = memory_writebacks_;
  s.memory_fetches = memory_fetches_;
  return s;
}

void CacheHierarchy::set_mem_writeback_fn(MemWritebackFn fn) {
  mem_writeback_ = std::move(fn);
}

void CacheHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  llc_.reset();
  memory_writebacks_ = 0;
  memory_fetches_ = 0;
}

AdamSweepResult simulate_adam_sweep(std::uint64_t n_params,
                                    CacheHierarchy* hierarchy) {
  CacheHierarchy local;
  CacheHierarchy& h = hierarchy != nullptr ? *hierarchy : local;

  const std::uint64_t bytes = n_params * 4;
  constexpr Addr kParams = 0x1000'0000;
  constexpr Addr kGrads = 0x3000'0000;
  constexpr Addr kM = 0x5000'0000;
  constexpr Addr kV = 0x7000'0000;

  AdamSweepResult r;
  r.param_lines = (bytes + kLineBytes - 1) / kLineBytes;
  h.set_mem_writeback_fn([&](Addr a) {
    if (a >= kParams && a < kParams + bytes) {
      ++r.param_writebacks;
    } else {
      ++r.other_writebacks;
    }
  });

  // Fused streaming pass, one cache line of each array at a time — the
  // access shape of the AVX512 CPU-Adam: p RW, g R, m RW, v RW.
  for (std::uint64_t off = 0; off < bytes; off += kLineBytes) {
    h.load(kParams + off);
    h.load(kGrads + off);
    h.load(kM + off);
    h.load(kV + off);
    h.store(kParams + off);
    h.store(kM + off);
    h.store(kV + off);
  }
  h.flush_all();
  r.stats = h.stats();
  return r;
}

}  // namespace teco::mem
