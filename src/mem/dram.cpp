#include "mem/dram.hpp"

namespace teco::mem {

Dram::Dram(DramConfig cfg) : cfg_(cfg), banks_(cfg.banks) {}

std::uint64_t Dram::access(Addr addr, bool is_write) {
  const std::uint64_t global_row = addr / cfg_.row_bytes;
  auto& bank = banks_[global_row % cfg_.banks];
  const std::uint64_t row = global_row / cfg_.banks;

  std::uint64_t cycles = 0;
  if (!bank.open) {
    cycles += cfg_.t_rcd;  // ACT.
    bank.open = true;
    bank.row = row;
    ++stats_.row_misses;
  } else if (bank.row != row) {
    // Close the open row (honoring write recovery), open the new one.
    if (bank.has_last && bank.last_was_write) cycles += cfg_.t_wr;
    cycles += cfg_.t_rp + cfg_.t_rcd;
    bank.row = row;
    ++stats_.row_misses;
  } else {
    cycles += cfg_.t_ccd;
    ++stats_.row_hits;
  }

  // Bus turnaround between mixed read/write streams on the same bank.
  if (bank.has_last && bank.last_was_write != is_write) {
    cycles += bank.last_was_write ? cfg_.t_wtr : cfg_.t_rtw;
  }
  cycles += cfg_.t_cas;

  bank.last_was_write = is_write;
  bank.has_last = true;
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  stats_.cycles += cycles;
  return cycles;
}

std::uint64_t Dram::replay(const std::vector<std::pair<Addr, bool>>& trace) {
  std::uint64_t total = 0;
  for (const auto& [addr, is_write] : trace) total += access(addr, is_write);
  return total;
}

void Dram::reset() {
  for (auto& b : banks_) b = BankState{};
  stats_ = DramStats{};
}

}  // namespace teco::mem
