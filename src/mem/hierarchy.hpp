// Three-level CPU cache hierarchy (Table II) driven by access streams.
//
// TECO's update protocol taps LLC writebacks: the paper argues that the
// vectorized Adam sweep touches each parameter cache line exactly once per
// step, so the update stream carries each line once (Section IV-B). This
// model lets us *check* that premise instead of assuming it: run the Adam
// access pattern (four streamed arrays, read+write) through L1/L2/LLC and
// count the writebacks per region.
//
// The hierarchy is non-inclusive writeback/write-allocate: a miss allocates
// in the level that missed after fetching from below; dirty evictions fall
// to the next level; LLC dirty evictions surface through the writeback
// callback, tagged with the region they belong to.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/address.hpp"
#include "mem/cache.hpp"

namespace teco::mem {

struct HierarchyStats {
  CacheStats l1, l2, llc;
  std::uint64_t memory_writebacks = 0;  ///< LLC dirty evictions + flushes.
  std::uint64_t memory_fetches = 0;     ///< LLC misses served by DRAM.
};

class CacheHierarchy {
 public:
  /// Callback fired for each line written back from the LLC to memory.
  using MemWritebackFn = std::function<void(Addr)>;

  CacheHierarchy(CacheConfig l1 = l1_config(), CacheConfig l2 = l2_config(),
                 CacheConfig llc = llc_config());

  /// Byte-addressed load/store of the line containing `addr`.
  void load(Addr addr);
  void store(Addr addr);

  /// Stream over a contiguous region, line by line:
  /// loads then (optionally) stores each line — the shape of one array's
  /// traffic inside a fused streaming kernel.
  void stream_region(Addr base, std::uint64_t bytes, bool writes);

  /// Write back every dirty line in all levels (end-of-iteration flush).
  std::uint64_t flush_all();

  /// Snapshot of per-level and memory-side statistics.
  HierarchyStats stats() const;
  void set_mem_writeback_fn(MemWritebackFn fn);
  void reset();

 private:
  void access(Addr addr, bool write);
  /// Bring the line into `level` (0=L1), fetching from below as needed.
  CacheLineMeta& fill(int level, Addr addr);
  Cache& cache(int level);

  Cache l1_, l2_, llc_;
  std::uint64_t memory_writebacks_ = 0;
  std::uint64_t memory_fetches_ = 0;
  MemWritebackFn mem_writeback_;
};

/// The CPU-Adam access pattern over parameter/gradient/moment arrays:
/// p (RW), g (R), m (RW), v (RW), fused in one streaming pass (the AVX512
/// CPU-Adam of ZeRO-Offload). Returns writebacks observed per region.
struct AdamSweepResult {
  std::uint64_t param_writebacks = 0;
  std::uint64_t other_writebacks = 0;
  std::uint64_t param_lines = 0;
  HierarchyStats stats;
};

AdamSweepResult simulate_adam_sweep(std::uint64_t n_params,
                                    CacheHierarchy* hierarchy = nullptr);

}  // namespace teco::mem
