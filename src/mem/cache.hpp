// Set-associative cache model (tags + per-line metadata, no data payload).
//
// Models the CPU cache hierarchy of Table II and the accelerator-side giant
// cache directory. Lines carry an opaque 8-bit state (the coherence layer
// stores MESI states there) and a dirty bit; evictions surface through a
// writeback callback, which is exactly the stream the CXL update protocol
// taps (Section IV-B: "a cache line is transferred when ... written back").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "check/observer.hpp"
#include "core/annotations.hpp"
#include "mem/address.hpp"

namespace teco::mem {

struct CacheConfig {
  std::uint64_t size_bytes = 16 * 1024 * 1024;
  std::uint32_t ways = 16;
  std::uint64_t line_bytes = kLineBytes;

  std::uint64_t sets() const { return size_bytes / (line_bytes * ways); }
};

/// Table II CPU hierarchy presets.
CacheConfig l1_config();   // 8 KB / 64 B / 8-way
CacheConfig l2_config();   // 64 KB / 64 B / 16-way
CacheConfig llc_config();  // shared 16 MB / 64 B / 64-way

struct CacheLineMeta {
  Addr base = 0;
  bool valid = false;
  bool dirty = false;
  std::uint8_t state = 0;      ///< Opaque to the cache; MESI lives here.
  std::uint64_t last_use = 0;  ///< LRU timestamp.
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< Dirty evictions + explicit flushes.
};

class Cache {
 public:
  /// Called with (line_base, state) whenever a dirty line leaves the cache.
  using WritebackFn = std::function<void(Addr, std::uint8_t)>;

  explicit Cache(CacheConfig cfg);

  /// Look up the line containing `addr`. Touches LRU on hit.
  /// Returns nullptr on miss.
  CacheLineMeta* lookup(Addr addr);
  const CacheLineMeta* peek(Addr addr) const;  ///< No LRU side effects.

  /// Insert (allocating) the line containing `addr` with the given state.
  /// If the set is full the LRU victim is evicted first (writeback callback
  /// fires if it was dirty). Returns the inserted line's metadata.
  CacheLineMeta& insert(Addr addr, std::uint8_t state, bool dirty);

  /// Remove the line containing `addr` if present; fires writeback if dirty
  /// and `writeback_on_invalidate` is true. Returns true if it was present.
  bool invalidate(Addr addr, bool writeback_on_invalidate = true);

  /// Flush every dirty line (writeback callback per line), keep them
  /// resident and clean. This is the once-per-iteration CPU flush of
  /// Section IV-A2. Returns the number of lines written back.
  std::uint64_t flush_dirty();

  /// Drop everything (no writebacks) — test helper.
  void reset();

  void set_writeback_fn(WritebackFn fn) { writeback_ = std::move(fn); }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  /// The checker sees lines that leave the cache without a home-agent
  /// state call (LRU evictions, invalidates); reset() is exempt, being a
  /// whole-cache test helper rather than a protocol action.
  void set_observer(check::Observer* obs) { observer_ = obs; }

  bool contains(Addr addr) const { return peek(addr) != nullptr; }
  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }
  std::uint64_t resident_lines() const;

  /// Iterate over every valid line (test/debug helper).
  void for_each(const std::function<void(const CacheLineMeta&)>& fn) const;

 private:
  std::vector<CacheLineMeta>& set_for(Addr addr) TECO_REQUIRES(shard_);
  const std::vector<CacheLineMeta>& set_for(Addr addr) const
      TECO_REQUIRES(shard_);

  CacheConfig cfg_;
  // Tag/LRU/stats state is per-shard: the sharded engine gives each shard
  // its own cache slice, and lookups from another shard are a bug, not a
  // miss. See docs/STATIC_ANALYSIS.md.
  core::ShardCapability shard_;
  std::vector<std::vector<CacheLineMeta>> sets_ TECO_SHARD_AFFINE(shard_);
  WritebackFn writeback_;
  check::Observer* observer_ = nullptr;
  CacheStats stats_ TECO_SHARD_AFFINE(shard_);
  std::uint64_t tick_ TECO_SHARD_AFFINE(shard_) = 0;
};

}  // namespace teco::mem
