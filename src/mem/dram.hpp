// Ramulator-style DRAM bank/row timing model.
//
// Used for the Section VIII-D study: the Disaggregator turns each giant-cache
// line update into a read-modify-write, and the paper measures the simulated
// DRAM-cycle increase (2.48x sequential, 1.9x shuffled) with Ramulator. This
// model keeps per-bank open-row state and charges activation/precharge/CAS/
// bus-turnaround cycles per access, which is all that experiment needs.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address.hpp"

namespace teco::mem {

struct DramConfig {
  std::uint32_t banks = 16;
  std::uint64_t row_bytes = 2048;
  // Timings in DRAM command-clock cycles (GDDR5-class defaults).
  std::uint32_t t_rcd = 14;  ///< ACT -> column command.
  std::uint32_t t_rp = 14;   ///< PRE -> ACT.
  std::uint32_t t_cas = 14;  ///< Column command -> data.
  std::uint32_t t_ccd = 4;   ///< Column-to-column (burst) gap.
  std::uint32_t t_wr = 16;   ///< Write recovery before PRE.
  std::uint32_t t_rtw = 8;   ///< Read-to-write bus turnaround.
  std::uint32_t t_wtr = 10;  ///< Write-to-read turnaround.
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< Includes first access to a bank.
  std::uint64_t cycles = 0;      ///< Total charged command cycles.
};

class Dram {
 public:
  explicit Dram(DramConfig cfg = {});

  /// Charge one 64-byte column access; returns cycles consumed.
  std::uint64_t access(Addr addr, bool is_write);

  /// Replay a trace; returns total cycles.
  std::uint64_t replay(const std::vector<std::pair<Addr, bool>>& trace);

  const DramStats& stats() const { return stats_; }
  void reset();

 private:
  struct BankState {
    bool open = false;
    std::uint64_t row = 0;
    bool last_was_write = false;
    bool has_last = false;
  };

  DramConfig cfg_;
  std::vector<BankState> banks_;
  DramStats stats_;
};

}  // namespace teco::mem
