// Physical-address helpers shared by the cache, coherence and CXL layers.
#pragma once

#include <cstdint>

namespace teco::mem {

using Addr = std::uint64_t;

/// Cache lines are 64 B throughout (Table II, CXL.cache granularity).
inline constexpr std::uint64_t kLineBytes = 64;
inline constexpr std::uint64_t kLineShift = 6;
inline constexpr std::uint64_t kWordsPerLine = kLineBytes / 4;

constexpr Addr line_base(Addr a) { return a & ~(kLineBytes - 1); }
constexpr Addr line_index(Addr a) { return a >> kLineShift; }
constexpr bool line_aligned(Addr a) { return (a & (kLineBytes - 1)) == 0; }

/// Half-open byte range [base, base+bytes), used for giant-cache regions.
struct Region {
  Addr base = 0;
  std::uint64_t bytes = 0;

  bool contains(Addr a) const { return a >= base && a < base + bytes; }
  bool contains_line(Addr a) const {
    const Addr lb = line_base(a);
    return lb >= base && lb + kLineBytes <= base + bytes;
  }
  std::uint64_t lines() const { return (bytes + kLineBytes - 1) / kLineBytes; }
  bool overlaps(const Region& o) const {
    return base < o.base + o.bytes && o.base < base + bytes;
  }
};

}  // namespace teco::mem
