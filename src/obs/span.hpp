// teco::obs — span tracing on the simulated clock.
//
// A Span marks a [begin, end] interval on sim::Time and lands in a
// TraceBuffer; core::ChromeTraceComposer splices buffers, Gantt lanes and
// counter tracks into one Chrome/Perfetto trace_event JSON per run.
//
// Spans are RAII against the *simulated* clock, which has no global "now":
// construct with a pointer to the owner's clock variable and the span
// closes at whatever that clock reads on destruction —
//
//   obs::Span s(&spans_, "step", "step 12", &now_);
//   ... advance now_ through fences and compute ...
//   // ~Span records [begin, now_]
//
// or close explicitly with close(end) when the end time is computed rather
// than tracked. A null buffer makes every operation a no-op, so call sites
// need no `if (tracing)` guards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace teco::obs {

struct SpanEvent {
  std::string lane;  ///< Row in the viewer ("step", "tier.prefetch", ...).
  std::string name;  ///< Event label ("step 12", "t7 evict", ...).
  sim::Time begin = 0.0;
  sim::Time end = 0.0;
};

class TraceBuffer {
 public:
  /// Default span cap. Long runs (bench_serve_slo sweeps) emit spans per
  /// request iteration; the cap bounds memory, and overflow is counted in
  /// dropped() (surfaced as `obs.trace.dropped_spans` by core::Session)
  /// instead of growing silently.
  static constexpr std::size_t kDefaultMaxSpans = std::size_t{1} << 20;

  void emit(std::string lane, std::string name, sim::Time begin,
            sim::Time end) {
    if (events_.size() >= max_spans_) {
      ++dropped_;
      return;
    }
    events_.push_back(
        {std::move(lane), std::move(name), begin, begin > end ? begin : end});
  }

  const std::vector<SpanEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Spans rejected because the cap was hit (earliest spans win).
  std::uint64_t dropped() const { return dropped_; }
  std::size_t max_spans() const { return max_spans_; }
  void set_max_spans(std::size_t cap) { max_spans_ = cap; }

 private:
  std::vector<SpanEvent> events_;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::uint64_t dropped_ = 0;
};

/// RAII interval. Exactly one of close(end) / the clock pointer supplies
/// the end time; with neither, the span degenerates to an instant at
/// `begin` (still visible in the trace, still better than silence).
class Span {
 public:
  Span(TraceBuffer* buf, std::string lane, std::string name, sim::Time begin,
       const sim::Time* clock = nullptr)
      : buf_(buf), lane_(std::move(lane)), name_(std::move(name)),
        begin_(begin), clock_(clock) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now with an explicit end time; destruction becomes a
  /// no-op afterwards.
  void close(sim::Time end) {
    if (buf_ != nullptr) {
      buf_->emit(std::move(lane_), std::move(name_), begin_, end);
    }
    buf_ = nullptr;
  }

  ~Span() {
    if (buf_ != nullptr) {
      close(clock_ != nullptr ? *clock_ : begin_);
    }
  }

 private:
  TraceBuffer* buf_;
  std::string lane_;
  std::string name_;
  sim::Time begin_;
  const sim::Time* clock_;
};

}  // namespace teco::obs
