// teco::obs — end-of-step snapshots and their sinks.
//
// A StepSnapshot is the registry's view of one training step: every
// instrument's total at the step boundary plus, for monotone samples, the
// delta accrued during the step. core::Session publishes one per
// optimizer_step_complete(); ft::run_ft_training and the activation
// timeline ride the same path. Sinks are deliberately dumb — a JSONL
// appender for machine consumption, a Prometheus text-format writer for
// scripts/, and a plain formatter the core::TextTable adapter wraps for
// humans.
#pragma once

#include <array>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace teco::obs {

struct StepSnapshot {
  std::size_t step = 0;
  sim::Time t_begin = 0.0;
  sim::Time t_end = 0.0;
  /// All registry samples at the end of the step, sorted by name.
  std::vector<Sample> totals;
  /// Per-step deltas of the monotone samples (counters, histogram
  /// count/sum), same order as the corresponding totals entries.
  std::vector<Sample> deltas;
};

class StepSink {
 public:
  virtual ~StepSink() = default;
  virtual void on_step(const StepSnapshot& snap) = 0;
};

/// One JSON object per line:
///   {"step":3,"t_begin_us":...,"t_end_us":...,
///    "deltas":{"cxl.up.bytes":4096,...},"totals":{...}}
/// Zero-valued deltas are elided (steps that touch a subsystem lightly
/// stay readable); totals are complete.
class JsonlWriter final : public StepSink {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}
  void on_step(const StepSnapshot& snap) override;

  static std::string to_json_line(const StepSnapshot& snap);

 private:
  std::ostream& os_;
};

/// Prometheus text exposition format (# TYPE lines + samples). Dots are
/// mapped to underscores per Prometheus naming rules; the file is
/// rewritten whole on every step so scrapers always see current totals.
std::string to_prometheus_text(const MetricsRegistry& reg);

/// Human-oriented rows: one "name  delta  total" line per non-zero metric.
/// core::report wraps this into a TextTable; obs itself stays below core.
std::vector<std::array<std::string, 3>> snapshot_rows(
    const StepSnapshot& snap);

/// Computes snapshots (tracking previous totals for the deltas) and fans
/// them out to the attached sinks. Sinks are borrowed, not owned.
class StepPublisher {
 public:
  void add_sink(StepSink* sink);
  void remove_sink(StepSink* sink);
  bool has_sinks() const { return !sinks_.empty(); }

  /// Build the snapshot for [t_begin, t_end], update the delta baseline,
  /// and deliver it to every sink.
  StepSnapshot publish(const MetricsRegistry& reg, std::size_t step,
                       sim::Time t_begin, sim::Time t_end);

  /// Forget the delta baseline (next snapshot's deltas == totals).
  void rebase() { prev_.clear(); }

 private:
  std::vector<StepSink*> sinks_;
  std::vector<Sample> prev_;
};

}  // namespace teco::obs
