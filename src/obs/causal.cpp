#include "obs/causal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace teco::obs::causal {

const char* to_string(Category cat) {
  switch (cat) {
    case Category::kUnknown: return "unknown";
    case Category::kCompute: return "compute";
    case Category::kCxlUp: return "cxl_up";
    case Category::kCxlDown: return "cxl_down";
    case Category::kSwitchQueue: return "switch_queue";
    case Category::kFenceDrain: return "fence_drain";
    case Category::kEvictStall: return "evict_stall";
    case Category::kDemandFetch: return "demand_fetch";
    case Category::kPoolReduce: return "pool_reduce";
    case Category::kIdle: return "idle";
  }
  return "invalid";
}

const char* metric_suffix(Category cat) {
  switch (cat) {
    case Category::kUnknown: return "unknown_us";
    case Category::kCompute: return "compute_us";
    case Category::kCxlUp: return "cxl_up_us";
    case Category::kCxlDown: return "cxl_down_us";
    case Category::kSwitchQueue: return "switch_queue_us";
    case Category::kFenceDrain: return "fence_drain_us";
    case Category::kEvictStall: return "evict_stall_us";
    case Category::kDemandFetch: return "demand_fetch_us";
    case Category::kPoolReduce: return "pool_reduce_us";
    case Category::kIdle: return "idle_us";
  }
  return "invalid_us";
}

bool Attribution::conserved(sim::Time tol) const {
  if (end < begin) return false;
  sim::Time cursor = begin;
  for (const PathSegment& s : segments) {
    if (std::abs(s.begin - cursor) > tol) return false;  // gap or overlap
    if (s.end < s.begin) return false;
    cursor = s.end;
  }
  if (std::abs(cursor - end) > tol) return false;
  sim::Time sum = 0.0;
  for (sim::Time t : by_category) sum += t;
  return std::abs(sum - (end - begin)) <= tol * (1.0 + segments.size());
}

std::string Attribution::why_slow(const std::string& title) const {
  char line[160];
  std::snprintf(line, sizeof line,
                "why-slow: %s [%.3f us .. %.3f us] total %.3f us\n",
                title.c_str(), begin / sim::kMicro, end / sim::kMicro,
                total() / sim::kMicro);
  std::string out = line;
  std::array<std::size_t, kNumCategories> order{};
  for (std::size_t i = 0; i < kNumCategories; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (by_category[a] != by_category[b]) {
      return by_category[a] > by_category[b];
    }
    return a < b;  // deterministic tie-break on category value
  });
  const sim::Time tot = total();
  for (std::size_t i : order) {
    if (by_category[i] <= 0.0) continue;
    std::snprintf(line, sizeof line, "  %-14s %14.3f us  %5.1f%%\n",
                  to_string(static_cast<Category>(i)),
                  by_category[i] / sim::kMicro,
                  tot > 0.0 ? 100.0 * by_category[i] / tot : 0.0);
    out += line;
  }
  std::size_t hops = 0;
  for (const PathSegment& s : segments) {
    if (s.node != sim::kNoCausalNode) ++hops;
  }
  std::snprintf(line, sizeof line, "  critical path: %zu hops, %zu segments\n",
                hops, segments.size());
  out += line;
  return out;
}

Attribution critical_path(const CausalGraph& g, sim::Time begin,
                          sim::Time end, std::uint32_t terminal,
                          Category fill) {
  Attribution a;
  a.begin = begin;
  a.end = end < begin ? begin : end;

  // Walk the parent chain from the terminal backwards, claiming each
  // hop's in-flight window [scheduled, when] down to `begin`. The cursor
  // only moves backwards, so segments can never overlap; any span the
  // chain does not cover (terminal earlier than `end`, truncated chain,
  // zero-duration hops) is filled with `fill`.
  std::vector<PathSegment> rev;
  sim::Time cursor = a.end;
  std::uint32_t cur = terminal < g.size() ? terminal : sim::kNoCausalNode;
  if (cur != sim::kNoCausalNode && g.node(cur).when < cursor) {
    rev.push_back({sim::kNoCausalNode, fill, g.node(cur).when, cursor});
    cursor = std::max(begin, g.node(cur).when);
    if (rev.back().begin < begin) rev.back().begin = begin;
  }
  while (cur != sim::kNoCausalNode && cursor > begin) {
    const Node& n = g.node(cur);
    sim::Time start = std::max(begin, n.scheduled);
    if (start < cursor) {
      rev.push_back({cur, n.cat, start, cursor});
      cursor = start;
    }
    cur = n.parent < g.size() ? n.parent : sim::kNoCausalNode;
  }
  if (cursor > begin) {
    rev.push_back({sim::kNoCausalNode, fill, begin, cursor});
  }

  a.segments.assign(rev.rbegin(), rev.rend());
  for (const PathSegment& s : a.segments) {
    a.by_category[static_cast<std::size_t>(s.cat)] += s.end - s.begin;
  }

  // Hard conservation check, same spirit as the checker's flit
  // conservation: the attribution must account for the interval exactly.
  if (!a.conserved()) {
    std::fprintf(stderr,
                 "obs::causal: conservation violated for [%.9f, %.9f] "
                 "(%zu segments, terminal %u)\n",
                 begin, end, a.segments.size(), terminal);
    std::abort();
  }
  return a;
}

}  // namespace teco::obs::causal
