// teco::obs — the unified telemetry spine (metrics registry).
//
// Every layer of the simulator used to keep its own ad-hoc totals
// (sim::CounterSet here, hand-rolled uint64 fields there); the registry
// replaces them with one hierarchy of dot-named instruments so benches,
// step snapshots, and the BENCH_*.json pipeline all read the same numbers.
//
// Recording is handle-based: resolve once, record forever —
//
//   obs::Counter& c = reg.counter("cxl.up.flits");   // one string lookup
//   c.add(n);                                        // per event: one add
//
// Handles stay valid for the registry's lifetime (including across
// reset(), which zeroes values but never invalidates handles), so hot
// paths never touch a map. Compiling with TECO_OBS_DISABLED turns every
// record operation into a no-op while keeping registration and lookup
// alive, which is what the bench_micro_link overhead comparison measures.
//
// Naming scheme (docs/OBSERVABILITY.md): lowercase dot-separated paths,
// component prefix first — cxl.up.flits, coherence.m2s.flushdata,
// dba.bytes_saved, tier.prefetch_hits, ft.checkpoint_bytes, step.total_us.
// Times are recorded in microseconds and suffixed _us.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace teco::obs {

/// Monotonically increasing value (events, bytes, accumulated time in us).
/// Double-valued so byte counts and microsecond accumulations share one
/// instrument; 2^53 of headroom is far beyond any simulated run.
class Counter {
 public:
  void add(double delta = 1.0) {
#ifndef TECO_OBS_DISABLED
    v_ += delta;
#else
    (void)delta;
#endif
  }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// Last-write-wins instantaneous value (occupancy, queue depth).
class Gauge {
 public:
  void set(double v) {
#ifndef TECO_OBS_DISABLED
    v_ = v;
#else
    (void)v;
#endif
  }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// Distribution instrument: a sim::RunningStat for moments plus a
/// sim::Histogram for quantiles — the storage types every measurement
/// path already used, now behind one handle.
class Hist {
 public:
  Hist(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins) {}

  void observe(double x) {
#ifndef TECO_OBS_DISABLED
    stat_.add(x);
    hist_.add(x);
#else
    (void)x;
#endif
  }

  const sim::RunningStat& stat() const { return stat_; }
  const sim::Histogram& histogram() const { return hist_; }
  double quantile(double q) const { return hist_.quantile(q); }
  std::size_t count() const { return stat_.count(); }
  void reset() {
    stat_ = sim::RunningStat{};
    hist_ = sim::Histogram(lo_, hi_, bins_);
  }

 private:
  double lo_, hi_;
  std::size_t bins_;
  sim::RunningStat stat_;
  sim::Histogram hist_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricKind k);

/// One exported scalar. Histograms expand into several samples
/// (name.count, name.sum, name.mean, name.p50, name.p95, name.p99,
/// name.p999, name.max);
/// their kind marks which samples are monotone (deltas are meaningful)
/// versus instantaneous.
struct Sample {
  std::string name;
  double value = 0.0;
  MetricKind kind = MetricKind::kCounter;
  /// True when the sample is monotone non-decreasing (counter totals,
  /// histogram counts/sums) so per-step deltas are well defined.
  bool monotone = true;
};

/// Hierarchical, dot-named instrument registry. Registration is idempotent:
/// asking for an existing name returns the same handle. Re-registering a
/// name as a different kind throws std::logic_error — that is always a
/// naming bug, not a runtime condition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram bounds/bins are fixed at first registration; subsequent
  /// lookups ignore them and return the existing instrument.
  Hist& histogram(std::string_view name, double lo, double hi,
                  std::size_t bins);

  /// Lookup without registration; nullptr when absent or wrong kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Hist* find_histogram(std::string_view name) const;

  /// Scalar value of `name` (counter total, gauge value, or an expanded
  /// histogram sample such as "lat.p95"); 0.0 when absent. Convenience for
  /// tests and report code, not for hot paths.
  double value(std::string_view name) const;

  /// Every instrument flattened to samples, sorted by name.
  std::vector<Sample> samples() const;

  /// Zero all values. Handles stay valid — components that cached them
  /// keep recording into the same instruments. Pending deferred deltas are
  /// drained first, so they are zeroed too rather than leaking in later.
  void reset();

  /// Read-barrier flush hooks. A hot path may accumulate deltas into its
  /// own contiguous storage (cheaper than scattered counter stores) and
  /// register a flusher that folds them into the registry's instruments.
  /// Every aggregate read API — value(), samples(), reset() — drains the
  /// hooks first, so readers never observe a deferred value. `owner` keys
  /// removal; registering twice for one owner replaces the hook. Note:
  /// reading a cached Counter handle directly bypasses the barrier — go
  /// through the registry for instruments a flusher feeds.
  void add_flusher(const void* owner, std::function<void()> fn);
  void remove_flusher(const void* owner);

  std::size_t size() const { return instruments_.size(); }
  bool empty() const { return instruments_.empty(); }

 private:
  struct Instrument {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Hist> hist;
  };

  void flush() const;

  // std::map keeps iteration sorted (exports are deterministic) and, with
  // unique_ptr payloads, guarantees handle stability across rehash-free
  // inserts. Lookup cost does not matter: handles are resolved once.
  std::map<std::string, Instrument, std::less<>> instruments_;
  /// Deferred-delta drains, run before any aggregate read. Mutable because
  /// draining is a cache fill, not an observable state change.
  mutable std::vector<std::pair<const void*, std::function<void()>>>
      flushers_;
};

}  // namespace teco::obs
