#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"

namespace teco::obs {

namespace {

std::string format_value(double v) {
  char buf[32];
  // Counters are usually integers; print them as such, times as decimals.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string JsonlWriter::to_json_line(const StepSnapshot& snap) {
  std::string out = "{\"step\":" + std::to_string(snap.step);
  out += ",\"t_begin_us\":" + json_number(snap.t_begin * 1e6);
  out += ",\"t_end_us\":" + json_number(snap.t_end * 1e6);
  out += ",\"deltas\":{";
  bool first = true;
  for (const Sample& s : snap.deltas) {
    if (s.value == 0.0) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(s.name) + "\":" + json_number(s.value);
  }
  out += "},\"totals\":{";
  first = true;
  for (const Sample& s : snap.totals) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(s.name) + "\":" + json_number(s.value);
  }
  out += "}}";
  return out;
}

void JsonlWriter::on_step(const StepSnapshot& snap) {
  os_ << to_json_line(snap) << '\n';
  os_.flush();
}

std::string to_prometheus_text(const MetricsRegistry& reg) {
  std::string out;
  for (const Sample& s : reg.samples()) {
    std::string name = "teco_" + s.name;
    std::replace(name.begin(), name.end(), '.', '_');
    out += "# TYPE " + name + ' ';
    out += s.kind == MetricKind::kCounter && s.monotone ? "counter" : "gauge";
    out += '\n';
    out += name + ' ' + json_number(s.value) + '\n';
  }
  return out;
}

std::vector<std::array<std::string, 3>> snapshot_rows(
    const StepSnapshot& snap) {
  std::vector<std::array<std::string, 3>> rows;
  // deltas[i] pairs with the monotone subset of totals; index totals by
  // name for the join so reordering bugs cannot silently misalign rows.
  for (const Sample& t : snap.totals) {
    double delta = 0.0;
    bool has_delta = false;
    for (const Sample& d : snap.deltas) {
      if (d.name == t.name) {
        delta = d.value;
        has_delta = true;
        break;
      }
    }
    if (t.value == 0.0 && (!has_delta || delta == 0.0)) continue;
    rows.push_back({t.name, has_delta ? format_value(delta) : "-",
                    format_value(t.value)});
  }
  return rows;
}

void StepPublisher::add_sink(StepSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void StepPublisher::remove_sink(StepSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
}

StepSnapshot StepPublisher::publish(const MetricsRegistry& reg,
                                    std::size_t step, sim::Time t_begin,
                                    sim::Time t_end) {
  StepSnapshot snap;
  snap.step = step;
  snap.t_begin = t_begin;
  snap.t_end = t_end;
  snap.totals = reg.samples();
  for (const Sample& s : snap.totals) {
    if (!s.monotone) continue;
    double prev = 0.0;
    for (const Sample& p : prev_) {
      if (p.name == s.name) {
        prev = p.value;
        break;
      }
    }
    Sample d = s;
    d.value = s.value - prev;
    snap.deltas.push_back(std::move(d));
  }
  prev_ = snap.totals;
  for (StepSink* sink : sinks_) sink->on_step(snap);
  return snap;
}

}  // namespace teco::obs
