// teco::obs::causal — causal event-graph tracing + critical-path
// attribution.
//
// Flat counters say *how much* traffic flowed; spans say *when* something
// ran; neither says *why* an event ran when it did. This module records a
// bounded causal DAG of the run: sim::EventQueue threads a provenance
// token through schedule_at()/schedule_after() (see sim::CausalSink), so
// every event node knows its parent — the event whose callback scheduled
// it — plus a category tag set by the scheduling component via
// sim::TagScope. Closed-form components (core::Session's step model, the
// offload timeline phases) splice onto the same DAG with CausalGraph::add,
// chaining an explicit parent through every simulated-time advancement.
//
// On top of the DAG, critical_path() extracts the longest weighted path
// ending at a terminal node over an interval [begin, end] — a training
// step, a serve request's TTFT window, one fabric all-reduce — by walking
// the parent chain backwards and attributing each hop's in-flight window
// [scheduled, when] to the hop's category. The segments *partition* the
// interval (gaps become kIdle), so the category sums reconcile with the
// measured interval exactly — the same conservation spirit as the
// checker's flit-conservation equality, and it is enforced as a hard
// check: critical_path() aborts if the partition does not reconcile.
//
// The DAG is bounded (max_nodes, default 1<<20); past the bound new nodes
// are dropped (counted in dropped()) and the path walk simply ends at the
// truncation frontier, filling the remainder with kIdle.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace teco::obs::causal {

/// Why an event (or closed-form interval) occupied the timeline. The
/// uint8 values ride through sim::TagScope / sim::CausalSink.
enum class Category : std::uint8_t {
  kUnknown = 0,      ///< untagged event-queue activity
  kCompute = 1,      ///< GPU/CPU compute slot (forward, backward, Adam)
  kCxlUp = 2,        ///< device→CPU (S2M) link occupancy wait
  kCxlDown = 3,      ///< CPU→device (M2S) link occupancy wait
  kSwitchQueue = 4,  ///< fabric switch port queueing
  kFenceDrain = 5,   ///< stalled at CXLFENCE while queued traffic drains
  kEvictStall = 6,   ///< blocked behind a capacity eviction
  kDemandFetch = 7,  ///< blocked on a demand fetch / prefetch landing
  kPoolReduce = 8,   ///< in-pool DBA reduce fold/commit
  kIdle = 9,         ///< interval gap not on any causal chain
};
inline constexpr std::size_t kNumCategories = 10;

/// Human name ("fence_drain") — used by why_slow() and tests.
const char* to_string(Category cat);

/// Metric suffix ("fence_drain_us") under the `obs.critpath.` prefix.
const char* metric_suffix(Category cat);

inline std::uint8_t tag(Category cat) { return static_cast<std::uint8_t>(cat); }

/// One node of the causal DAG. `scheduled` is when the parent issued it
/// (== parent's `when` for event-queue children), `when` is when it fired;
/// [scheduled, when] is the in-flight window attributed to `cat`.
struct Node {
  std::uint32_t parent = sim::kNoCausalNode;
  Category cat = Category::kUnknown;
  sim::Time scheduled = 0.0;
  sim::Time when = 0.0;
};

/// Bounded causal DAG. Implements sim::CausalSink so an EventQueue records
/// provenance into it automatically; closed-form components append with
/// add(). Node ids are indices into a flat vector — allocation is one
/// push_back, lookups are O(1), and the bound caps memory for long runs.
#ifndef TECO_OBS_DISABLED
class CausalGraph final : public sim::CausalSink {
#else
// TECO_OBS=OFF compiles sim::CausalSink (and the queue's provenance
// plumbing) out; the graph itself stays available for closed-form add()
// chains so call sites build unchanged.
class CausalGraph final {
#endif
 public:
  static constexpr std::size_t kDefaultMaxNodes = std::size_t{1} << 20;

  explicit CausalGraph(std::size_t max_nodes = kDefaultMaxNodes)
      : max_nodes_(max_nodes) {}

  // sim::CausalSink (a plain method under TECO_OBS=OFF, where the
  // interface itself does not exist).
  std::uint32_t on_schedule(std::uint32_t parent, std::uint8_t tag,
                            sim::Time scheduled, sim::Time when)
#ifndef TECO_OBS_DISABLED
      override
#endif
  {
    // Runs inside the owning queue's dispatch (EventQueue::schedule_at
    // holds its shard token when it calls the sink), so the graph is
    // mutated on whichever shard drives that queue — shard-affine state.
    shard_.assert_held();
    return push(Node{parent, static_cast<Category>(tag), scheduled, when});
  }

  /// Append a closed-form node covering [from, when] explicitly.
  std::uint32_t add(Category cat, sim::Time when, std::uint32_t parent,
                    sim::Time from) {
    shard_.assert_held();
    return push(Node{parent, cat, from, when});
  }

  /// Append a closed-form node: an interval ending at `when`, starting at
  /// the parent's `when` (or collapsing to an instant for roots).
  std::uint32_t add(Category cat, sim::Time when,
                    std::uint32_t parent = sim::kNoCausalNode) {
    shard_.assert_held();
    return add(cat, when, parent,
               parent < nodes_.size() ? nodes_[parent].when : when);
  }

  const Node& node(std::uint32_t id) const {
    shard_.assert_held();
    return nodes_[id];
  }
  std::size_t size() const {
    shard_.assert_held();
    return nodes_.size();
  }
  bool empty() const {
    shard_.assert_held();
    return nodes_.empty();
  }
  /// Nodes rejected because the bound was hit.
  std::uint64_t dropped() const {
    shard_.assert_held();
    return dropped_;
  }
  std::size_t max_nodes() const { return max_nodes_; }

  void clear() {
    shard_.assert_held();
    nodes_.clear();
    dropped_ = 0;
  }

 private:
  std::uint32_t push(const Node& n) TECO_REQUIRES(shard_) {
    if (nodes_.size() >= max_nodes_) {
      ++dropped_;
      return sim::kNoCausalNode;
    }
    nodes_.push_back(n);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  core::ShardCapability shard_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_ TECO_SHARD_AFFINE(shard_);
  std::uint64_t dropped_ TECO_SHARD_AFFINE(shard_) = 0;
};

/// One hop of the extracted critical path. `node` is sim::kNoCausalNode
/// for gap-fill segments.
struct PathSegment {
  std::uint32_t node = sim::kNoCausalNode;
  Category cat = Category::kIdle;
  sim::Time begin = 0.0;
  sim::Time end = 0.0;
};

/// Critical-path attribution for one interval. `segments` is ascending and
/// partitions [begin, end] exactly; `by_category` sums segment durations
/// (seconds) per category. conserved() re-verifies the partition — it is
/// also checked (hard, abort-on-violation) inside critical_path() itself.
struct Attribution {
  sim::Time begin = 0.0;
  sim::Time end = 0.0;
  std::vector<PathSegment> segments;
  std::array<sim::Time, kNumCategories> by_category{};

  sim::Time total() const { return end - begin; }
  sim::Time of(Category cat) const {
    return by_category[static_cast<std::size_t>(cat)];
  }
  /// True iff the segments are adjacent, in-bounds, and their category
  /// sums reconcile with (end - begin) within `tol` seconds.
  bool conserved(sim::Time tol = 1e-12) const;
  /// Human `why-slow` report: category shares sorted by share, hop count.
  std::string why_slow(const std::string& title) const;
};

/// Extract the critical path ending at `terminal` over [begin, end]: walk
/// the parent chain backwards, attribute each hop's in-flight window to
/// its category, fill gaps (including a truncated or absent chain) with
/// `fill`. Aborts if the resulting segments fail the conservation check.
Attribution critical_path(const CausalGraph& g, sim::Time begin,
                          sim::Time end, std::uint32_t terminal,
                          Category fill = Category::kIdle);

}  // namespace teco::obs::causal
