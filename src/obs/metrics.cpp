#include "obs/metrics.hpp"

#include <stdexcept>

namespace teco::obs {

std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  __builtin_unreachable();
}

namespace {

[[noreturn]] void kind_clash(std::string_view name, MetricKind have,
                             MetricKind want) {
  throw std::logic_error("obs: metric '" + std::string(name) +
                         "' already registered as " +
                         std::string(to_string(have)) + ", requested as " +
                         std::string(to_string(want)));
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricKind::kCounter;
    inst.counter = std::make_unique<Counter>();
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  } else if (it->second.kind != MetricKind::kCounter) {
    kind_clash(name, it->second.kind, MetricKind::kCounter);
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricKind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  } else if (it->second.kind != MetricKind::kGauge) {
    kind_clash(name, it->second.kind, MetricKind::kGauge);
  }
  return *it->second.gauge;
}

Hist& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                 std::size_t bins) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricKind::kHistogram;
    inst.hist = std::make_unique<Hist>(lo, hi, bins);
    it = instruments_.emplace(std::string(name), std::move(inst)).first;
  } else if (it->second.kind != MetricKind::kHistogram) {
    kind_clash(name, it->second.kind, MetricKind::kHistogram);
  }
  return *it->second.hist;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = instruments_.find(name);
  if (it == instruments_.end() || it->second.kind != MetricKind::kCounter) {
    return nullptr;
  }
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = instruments_.find(name);
  if (it == instruments_.end() || it->second.kind != MetricKind::kGauge) {
    return nullptr;
  }
  return it->second.gauge.get();
}

const Hist* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = instruments_.find(name);
  if (it == instruments_.end() ||
      it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return it->second.hist.get();
}

double MetricsRegistry::value(std::string_view name) const {
  flush();
  // Exact counter/gauge name first, then the expanded histogram samples.
  if (const auto* c = find_counter(name)) return c->value();
  if (const auto* g = find_gauge(name)) return g->value();
  for (const Sample& s : samples()) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

std::vector<Sample> MetricsRegistry::samples() const {
  flush();
  std::vector<Sample> out;
  out.reserve(instruments_.size());
  for (const auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case MetricKind::kCounter:
        out.push_back({name, inst.counter->value(), MetricKind::kCounter,
                       /*monotone=*/true});
        break;
      case MetricKind::kGauge:
        out.push_back({name, inst.gauge->value(), MetricKind::kGauge,
                       /*monotone=*/false});
        break;
      case MetricKind::kHistogram: {
        const auto& h = *inst.hist;
        const auto& st = h.stat();
        out.push_back({name + ".count", static_cast<double>(st.count()),
                       MetricKind::kHistogram, true});
        out.push_back({name + ".sum", st.sum(), MetricKind::kHistogram,
                       true});
        out.push_back({name + ".mean", st.mean(), MetricKind::kHistogram,
                       false});
        out.push_back({name + ".p50", h.quantile(0.50),
                       MetricKind::kHistogram, false});
        out.push_back({name + ".p95", h.quantile(0.95),
                       MetricKind::kHistogram, false});
        out.push_back({name + ".p99", h.quantile(0.99),
                       MetricKind::kHistogram, false});
        out.push_back({name + ".p999", h.quantile(0.999),
                       MetricKind::kHistogram, false});
        out.push_back({name + ".max", st.max(), MetricKind::kHistogram,
                       false});
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::add_flusher(const void* owner,
                                  std::function<void()> fn) {
  remove_flusher(owner);
  flushers_.emplace_back(owner, std::move(fn));
}

void MetricsRegistry::remove_flusher(const void* owner) {
  std::erase_if(flushers_,
                [owner](const auto& f) { return f.first == owner; });
}

void MetricsRegistry::flush() const {
  for (const auto& [owner, fn] : flushers_) fn();
}

void MetricsRegistry::reset() {
  // Drain deferred deltas first so they are zeroed below instead of being
  // folded in by the next read.
  flush();
  for (auto& [name, inst] : instruments_) {
    switch (inst.kind) {
      case MetricKind::kCounter: inst.counter->reset(); break;
      case MetricKind::kGauge: inst.gauge->reset(); break;
      case MetricKind::kHistogram: inst.hist->reset(); break;
    }
  }
}

}  // namespace teco::obs
