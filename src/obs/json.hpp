// Minimal JSON emission helpers shared by the obs writers. Emission only —
// the repo never parses JSON in C++; scripts/ do that in python.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace teco::obs {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// JSON has no Inf/NaN; map them to null so files stay loadable.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace teco::obs
