#include "obs/bench_report.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"

namespace teco::obs {

namespace {

void upsert(std::vector<BenchReport::Entry>& entries, const std::string& key,
            std::string json_value) {
  for (auto& e : entries) {
    if (e.key == key) {
      e.json_value = std::move(json_value);
      return;
    }
  }
  entries.push_back({key, std::move(json_value)});
}

}  // namespace

BenchReport::BenchReport(std::string name)
    // teco-lint: allow(wallclock) — host-side bench wall time only.
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  const char* smoke = std::getenv("TECO_SMOKE");
  smoke_ = smoke != nullptr && smoke[0] == '1';
}

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  upsert(config_, key, '"' + json_escape(value) + '"');
}

void BenchReport::set_config(const std::string& key, double value) {
  upsert(config_, key, json_number(value));
}

void BenchReport::set_headline(const std::string& key, double value) {
  upsert(headline_, key, json_number(value));
}

std::string BenchReport::json() const {
  const double wall =
      // teco-lint: allow(wallclock) — report-only elapsed time.
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  std::string out = "{\n";
  out += "  \"schema\": \"teco-bench-v1\",\n";
  out += "  \"name\": \"" + json_escape(name_) + "\",\n";
  out += std::string("  \"smoke\": ") + (smoke_ ? "true" : "false") + ",\n";

  auto emit_block = [&out](const char* label,
                           const std::vector<Entry>& entries) {
    out += std::string("  \"") + label + "\": {";
    bool first = true;
    for (const Entry& e : entries) {
      if (!first) out += ',';
      first = false;
      out += "\n    \"" + json_escape(e.key) + "\": " + e.json_value;
    }
    out += entries.empty() ? "},\n" : "\n  },\n";
  };
  emit_block("config", config_);
  emit_block("headline", headline_);

  out += "  \"metrics\": {";
  if (registry_ != nullptr) {
    bool first = true;
    for (const Sample& s : registry_->samples()) {
      if (!first) out += ',';
      first = false;
      out += "\n    \"" + json_escape(s.name) + "\": " + json_number(s.value);
    }
    if (!first) out += "\n  ";
  }
  out += "},\n";
  out += "  \"wall_clock_s\": " + json_number(wall) + "\n";
  out += "}\n";
  return out;
}

std::string BenchReport::write() const {
  std::string dir;
  if (const char* env = std::getenv("TECO_BENCH_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
    if (dir.back() != '/') dir += '/';
  }
  const std::string path = dir + "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << json();
  return out ? path : std::string{};
}

}  // namespace teco::obs
