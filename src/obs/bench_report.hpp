// teco::obs — the canonical bench-results pipeline.
//
// Every bench_* binary emits one BENCH_<name>.json through this API so the
// perf trajectory is machine-readable and regressions are diffable
// (scripts/bench_diff.py). Schema "teco-bench-v1":
//
//   {
//     "schema": "teco-bench-v1",
//     "name": "tier_activation",
//     "smoke": false,                    // TECO_SMOKE=1 run
//     "config": {"batch": 8, ...},       // knobs that shaped the run
//     "headline": {"stall_reduction_pct": 76.2, ...},  // the claims
//     "metrics": {"cxl.up.bytes": ..., ...},           // registry dump
//     "wall_clock_s": 1.87               // host time, construction->write
//   }
//
// Output lands in $TECO_BENCH_DIR when set, else the working directory.
// Committed baselines live in bench/baselines/ (see ROADMAP.md for the
// regeneration convention).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace teco::obs {

class BenchReport {
 public:
  /// `name` without the BENCH_ prefix or .json suffix, e.g.
  /// "tier_activation". Reads TECO_SMOKE at construction.
  explicit BenchReport(std::string name);

  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, double value);
  /// Headline scalars are the bench's claims — the values a perf PR is
  /// judged on. At least one is required for a schema-valid report.
  void set_headline(const std::string& key, double value);
  /// Borrow `reg`; its samples are dumped at json()/write() time.
  void attach_registry(const MetricsRegistry* reg) { registry_ = reg; }

  const std::string& name() const { return name_; }
  std::string json() const;

  /// Write BENCH_<name>.json into $TECO_BENCH_DIR (or cwd). Returns the
  /// path written, or an empty string on I/O failure.
  std::string write() const;

  struct Entry {
    std::string key;
    std::string json_value;  ///< Pre-rendered (string or number).
  };

 private:
  std::string name_;
  bool smoke_ = false;
  std::vector<Entry> config_;
  std::vector<Entry> headline_;
  const MetricsRegistry* registry_ = nullptr;
  // Wall time of the host process, reported as wall_seconds in the bench
  // JSON; never feeds back into simulated time or event order.
  // teco-lint: allow(wallclock)
  std::chrono::steady_clock::time_point start_;
};

}  // namespace teco::obs
