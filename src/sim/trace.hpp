// Lightweight structured trace sink.
//
// Protocol components emit (time, component, event, detail) records; tests
// assert on exact sequences (e.g. the Fig. 5 coherence flow) and benches can
// dump them for debugging. Disabled sinks drop records with no allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace teco::sim {

struct TraceRecord {
  Time when = 0.0;
  std::string component;
  std::string event;
  std::string detail;
};

class Trace {
 public:
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool e) { enabled_ = e; }
  bool enabled() const { return enabled_; }

  void emit(Time when, std::string component, std::string event,
            std::string detail = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All records whose event name matches `event`, in order.
  std::vector<TraceRecord> filter_event(const std::string& event) const;

  /// Render as one line per record, for golden tests / debugging.
  std::string to_string() const;

 private:
  bool enabled_;
  std::vector<TraceRecord> records_;
};

}  // namespace teco::sim
