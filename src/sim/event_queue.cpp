#include "sim/event_queue.hpp"

#include <utility>

namespace teco::sim {

void EventQueue::schedule_at(Time when, Callback cb) {
  shard_.assert_held();
  if (when < now_) {
    ++clamped_;
    when = now_;
  }
#ifndef TECO_OBS_DISABLED
  std::uint32_t node = kNoCausalNode;
  if (causal_ != nullptr) {
    node = causal_->on_schedule(cur_node_, cur_tag_, now_, when);
  }
  heap_.push(Entry{when, next_seq_++, std::move(cb), node});
#else
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
#endif
}

bool EventQueue::step() {
  shard_.assert_held();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the entry is popped before the callback can touch the heap.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.when;
  ++executed_;
#ifndef TECO_OBS_DISABLED
  cur_node_ = e.node;
  e.cb();
  cur_node_ = kNoCausalNode;
#else
  e.cb();
#endif
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  shard_.assert_held();
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(Time until) {
  shard_.assert_held();
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace teco::sim
