#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace teco::sim {

void RunningStat::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // FP edge at hi_.
  ++counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  // Walk the cumulative mass: underflow (at lo_), the bins, overflow (at
  // hi_). The interpolation assumes samples spread uniformly in a bin.
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c > 0.0 && target <= cum + c) {
      return bin_lo(i) + width_ * (target - cum) / c;
    }
    cum += c;
  }
  return hi_;
}

void CounterSet::add(const std::string& name, std::uint64_t delta) {
  for (auto& [k, v] : counters_) {
    if (k == name) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(name, delta);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  for (const auto& [k, v] : counters_) {
    if (k == name) return v;
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterSet::sorted() const {
  auto out = counters_;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void CounterSet::reset() { counters_.clear(); }

}  // namespace teco::sim
