// Simulated-time primitives shared by every timing model in TECO.
//
// Simulated time is a double in *seconds*. The evaluation spans ~1 ns
// (aggregator latency) to ~hours (Table VII training time); a double keeps
// ~15 significant digits, so nanosecond resolution survives even at
// hour-scale magnitudes, and it composes directly with bandwidth math
// (bytes / bytes-per-second) without unit-conversion churn.
#pragma once

namespace teco::sim {

/// Simulated time in seconds.
using Time = double;

inline constexpr Time kSec = 1.0;
inline constexpr Time kMilli = 1e-3;
inline constexpr Time kMicro = 1e-6;
inline constexpr Time kNano = 1e-9;
inline constexpr Time kPico = 1e-12;

/// Convenience constructors, so call sites read `ns(1.28)` not `1.28e-9`.
constexpr Time hours(double h) { return h * 3600.0; }
constexpr Time seconds(double s) { return s; }
constexpr Time ms(double m) { return m * kMilli; }
constexpr Time us(double u) { return u * kMicro; }
constexpr Time ns(double n) { return n * kNano; }

/// Bandwidth in bytes per second.
using Bandwidth = double;

inline constexpr Bandwidth kGiBps = 1024.0 * 1024.0 * 1024.0;
/// Vendor-style decimal GB/s (PCIe 3.0 x16 is quoted as 16 GB/s decimal).
inline constexpr Bandwidth kGBps = 1e9;

/// Time to move `bytes` over a link of bandwidth `bw` (no latency term).
constexpr Time transfer_time(double bytes, Bandwidth bw) { return bytes / bw; }

}  // namespace teco::sim
