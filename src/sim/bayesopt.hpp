// Small 1-D Bayesian optimizer (Gaussian process + expected improvement).
//
// The paper notes act_aft_steps "can be tuned using Bayesian optimization
// [17],[94]"; this is that tuner. A real GP with an RBF kernel over the
// normalized input, exact Cholesky inference (observation counts are
// single digits), and EI acquisition maximized on a dense grid — enough to
// optimize any expensive scalar objective over an interval.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"

namespace teco::sim {

struct BayesOptConfig {
  std::size_t init_samples = 4;   ///< Quasi-random initial design.
  std::size_t iterations = 8;     ///< EI-guided evaluations after init.
  double length_scale = 0.2;      ///< RBF length scale in [0,1] input space.
  double signal_variance = 1.0;
  double noise_variance = 1e-6;
  std::size_t grid = 256;         ///< Acquisition grid resolution.
  std::uint64_t seed = 17;
};

class BayesOpt1D {
 public:
  struct Observation {
    double x = 0.0;  ///< In original units.
    double y = 0.0;
  };

  BayesOpt1D(double lo, double hi, BayesOptConfig cfg = {});

  /// Maximize `f` over [lo, hi]; returns the best observed x.
  double maximize(const std::function<double(double)>& f);

  const std::vector<Observation>& observations() const { return obs_; }
  double best_x() const { return best_x_; }
  double best_y() const { return best_y_; }

  /// GP posterior at a point (normalized internally) given current
  /// observations — exposed for testing.
  void posterior(double x, double* mean, double* variance) const;

 private:
  double kernel(double a, double b) const;
  void refit();
  double expected_improvement(double x) const;
  double to_unit(double x) const { return (x - lo_) / (hi_ - lo_); }

  double lo_, hi_;
  BayesOptConfig cfg_;
  Rng rng_;
  std::vector<Observation> obs_;
  // Cholesky factor of (K + noise I) and alpha = K^-1 y, refit per step.
  std::vector<double> chol_;
  std::vector<double> alpha_;
  double y_mean_ = 0.0;
  double best_x_ = 0.0;
  double best_y_ = -1e300;
};

}  // namespace teco::sim
