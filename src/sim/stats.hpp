// Streaming statistics used by every measurement path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace teco::sim {

/// Welford-style running mean/variance with min/max.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow bins so totals always reconcile.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Fraction of all samples (incl. under/overflow) in bin i.
  double fraction(std::size_t i) const;

  /// The q-quantile (q in [0, 1]) with linear interpolation inside the
  /// containing bin. Under/overflow mass is treated as concentrated at lo
  /// and hi respectively — the histogram cannot resolve beyond its range,
  /// so the bound is the honest answer. Returns 0.0 for an empty
  /// histogram. q is clamped to [0, 1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Named monotonically increasing counters (bytes moved, messages sent, ...).
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t get(const std::string& name) const;
  std::vector<std::pair<std::string, std::uint64_t>> sorted() const;
  void reset();

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
};

}  // namespace teco::sim
