#include "sim/bayesopt.hpp"

#include <cmath>
#include <stdexcept>

namespace teco::sim {

BayesOpt1D::BayesOpt1D(double lo, double hi, BayesOptConfig cfg)
    : lo_(lo), hi_(hi), cfg_(cfg), rng_(cfg.seed) {
  if (!(hi > lo)) throw std::invalid_argument("need hi > lo");
  if (cfg_.init_samples == 0) throw std::invalid_argument("init_samples > 0");
}

double BayesOpt1D::kernel(double a, double b) const {
  const double d = (a - b) / cfg_.length_scale;
  return cfg_.signal_variance * std::exp(-0.5 * d * d);
}

void BayesOpt1D::refit() {
  const std::size_t n = obs_.size();
  y_mean_ = 0.0;
  for (const auto& o : obs_) y_mean_ += o.y;
  y_mean_ /= static_cast<double>(n);

  // K + noise I, Cholesky in place (row-major lower triangle).
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      chol_[i * n + j] = kernel(to_unit(obs_[i].x), to_unit(obs_[j].x)) +
                         (i == j ? cfg_.noise_variance : 0.0);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = chol_[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= chol_[i * n + k] * chol_[j * n + k];
      }
      if (i == j) {
        chol_[i * n + i] = std::sqrt(std::max(sum, 1e-12));
      } else {
        chol_[i * n + j] = sum / chol_[j * n + j];
      }
    }
  }
  // alpha = K^-1 (y - mean) via forward/back substitution.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = obs_[i].y - y_mean_;
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * z[k];
    z[i] = sum / chol_[i * n + i];
  }
  alpha_.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      sum -= chol_[k * n + ii] * alpha_[k];
    }
    alpha_[ii] = sum / chol_[ii * n + ii];
  }
}

void BayesOpt1D::posterior(double x, double* mean, double* variance) const {
  const std::size_t n = obs_.size();
  if (n == 0) {
    *mean = 0.0;
    *variance = cfg_.signal_variance;
    return;
  }
  std::vector<double> k(n);
  for (std::size_t i = 0; i < n; ++i) {
    k[i] = kernel(to_unit(x), to_unit(obs_[i].x));
  }
  double m = y_mean_;
  for (std::size_t i = 0; i < n; ++i) m += k[i] * alpha_[i];
  // v = L^-1 k; var = k(x,x) - v.v.
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = k[i];
    for (std::size_t kk = 0; kk < i; ++kk) sum -= chol_[i * n + kk] * v[kk];
    v[i] = sum / chol_[i * n + i];
  }
  double var = cfg_.signal_variance;
  for (std::size_t i = 0; i < n; ++i) var -= v[i] * v[i];
  *mean = m;
  *variance = std::max(var, 0.0);
}

double BayesOpt1D::expected_improvement(double x) const {
  double mu, var;
  posterior(x, &mu, &var);
  const double sigma = std::sqrt(var);
  if (sigma < 1e-12) return 0.0;
  const double z = (mu - best_y_) / sigma;
  // Standard normal pdf/cdf.
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return (mu - best_y_) * cdf + sigma * pdf;
}

double BayesOpt1D::maximize(const std::function<double(double)>& f) {
  auto evaluate = [&](double x) {
    const double y = f(x);
    obs_.push_back({x, y});
    if (y > best_y_) {
      best_y_ = y;
      best_x_ = x;
    }
    refit();
  };

  // Initial design: stratified-random over the interval.
  for (std::size_t i = 0; i < cfg_.init_samples; ++i) {
    const double u = (static_cast<double>(i) + rng_.next_double()) /
                     static_cast<double>(cfg_.init_samples);
    evaluate(lo_ + u * (hi_ - lo_));
  }

  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    double best_acq = -1.0, best_cand = lo_;
    for (std::size_t g = 0; g <= cfg_.grid; ++g) {
      const double x =
          lo_ + (hi_ - lo_) * static_cast<double>(g) / cfg_.grid;
      const double a = expected_improvement(x);
      if (a > best_acq) {
        best_acq = a;
        best_cand = x;
      }
    }
    if (best_acq <= 1e-15) break;  // Converged: no expected improvement.
    evaluate(best_cand);
  }
  return best_x_;
}

}  // namespace teco::sim
