#include "sim/trace.hpp"

#include <sstream>

namespace teco::sim {

void Trace::emit(Time when, std::string component, std::string event,
                 std::string detail) {
  if (!enabled_) return;
  records_.push_back(
      {when, std::move(component), std::move(event), std::move(detail)});
}

std::vector<TraceRecord> Trace::filter_event(const std::string& event) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << r.when << " [" << r.component << "] " << r.event;
    if (!r.detail.empty()) os << " " << r.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace teco::sim
