// A deterministic discrete-event engine.
//
// This is the substrate under the CXL link model and the offload timeline
// simulator: components schedule callbacks at absolute simulated times and
// the engine runs them in (time, insertion-order) order.
//
// Same-timestamp ordering is a contract, not an accident. Every Entry
// carries a sequence number drawn from a monotone counter at schedule_at()
// time, and the heap comparator orders by (when, seq) — so events at equal
// times run strictly FIFO in schedule order, including events scheduled
// *during* another event at the same timestamp (they get later sequence
// numbers, so they run after everything already queued at that instant).
// Two runs that issue the same schedule calls therefore execute callbacks
// in bit-identical order. The model checker (teco::mc) pins state-space
// counts as goldens and cxl::EventChannel interleaves per-packet delivery
// callbacks with fence drains at equal timestamps; both depend on this
// tie-break being deterministic. tests/sim_test.cpp locks the contract.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/annotations.hpp"
#include "sim/time.hpp"

namespace teco::sim {

/// Node id in a causal sink's id space. kNoCausalNode marks "no parent"
/// (an event scheduled outside any callback) and "not tracked" (no sink
/// attached, or the sink hit its node bound).
inline constexpr std::uint32_t kNoCausalNode = 0xffffffffu;

#ifndef TECO_OBS_DISABLED
/// Provenance consumer for the causal event DAG (implemented by
/// obs::causal::CausalGraph). Declared here, in the sim layer, because the
/// queue records provenance but must not depend on obs. One call per
/// schedule_at(): `parent` is the node of the event whose callback is
/// executing, `tag` the active category tag (obs::causal::Category as
/// uint8), `scheduled` = now(), `when` the (clamped) fire time. Returns
/// the node id assigned to the new event, or kNoCausalNode to drop it.
class CausalSink {
 public:
  virtual ~CausalSink() = default;
  virtual std::uint32_t on_schedule(std::uint32_t parent, std::uint8_t tag,
                                    Time scheduled, Time when) = 0;
};
#endif

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Starts at 0 and only moves forward.
  Time now() const {
    shard_.assert_held();
    return now_;
  }

  /// Number of events not yet executed.
  std::size_t pending() const {
    shard_.assert_held();
    return heap_.size();
  }

  bool empty() const {
    shard_.assert_held();
    return heap_.empty();
  }

  /// Schedule `cb` at absolute time `when`. Scheduling in the past (before
  /// `now()`) is a logic error and is clamped to `now()` after recording it
  /// in `clamped_past_schedules()` so tests can assert it never happens.
  void schedule_at(Time when, Callback cb);

  /// Schedule `cb` at `now() + delay`.
  void schedule_after(Time delay, Callback cb) {
    shard_.assert_held();
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run events with time <= `until` (inclusive). Events an executed event
  /// schedules inside the window are run too. Advances now() to `until`
  /// even if nothing was pending. Returns the number executed.
  std::size_t run_until(Time until);

  std::uint64_t executed() const {
    shard_.assert_held();
    return executed_;
  }
  std::uint64_t clamped_past_schedules() const {
    shard_.assert_held();
    return clamped_;
  }

#ifndef TECO_OBS_DISABLED
  /// Attach / detach the provenance consumer. Null (the default) keeps
  /// schedule_at on its bare path: one pointer test per schedule.
  void set_causal_sink(CausalSink* sink) {
    shard_.assert_held();
    causal_ = sink;
  }
  CausalSink* causal_sink() const {
    shard_.assert_held();
    return causal_;
  }

  /// Node id of the event whose callback is currently executing
  /// (kNoCausalNode between events). Components use this to splice
  /// closed-form sub-chains onto the event-driven DAG.
  std::uint32_t current_node() const {
    shard_.assert_held();
    return cur_node_;
  }

  /// Active category tag, captured into every node scheduled while set.
  /// Prefer TagScope over calling this directly.
  void set_current_tag(std::uint8_t tag) {
    shard_.assert_held();
    cur_tag_ = tag;
  }
  std::uint8_t current_tag() const {
    shard_.assert_held();
    return cur_tag_;
  }
#else
  // TECO_OBS=OFF: provenance compiles out. The inline no-ops keep call
  // sites ifdef-free; Entry carries no node field and schedule_at pays
  // nothing.
  void set_causal_sink(void*) {}
  std::uint32_t current_node() const { return kNoCausalNode; }
  void set_current_tag(std::uint8_t) {}
  std::uint8_t current_tag() const { return 0; }
#endif

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
#ifndef TECO_OBS_DISABLED
    std::uint32_t node;
#endif
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // The queue IS the shard under the sharded engine: one EventQueue per
  // shard, and scheduling onto another shard's queue must go through its
  // event channel, never by calling schedule_at across the boundary. The
  // (time,seq) FIFO contract above only holds shard-locally.
  core::ShardCapability shard_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_
      TECO_SHARD_AFFINE(shard_);
  Time now_ TECO_SHARD_AFFINE(shard_) = 0.0;
  std::uint64_t next_seq_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t executed_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t clamped_ TECO_SHARD_AFFINE(shard_) = 0;
#ifndef TECO_OBS_DISABLED
  CausalSink* causal_ TECO_SHARD_AFFINE(shard_) = nullptr;
  std::uint32_t cur_node_ TECO_SHARD_AFFINE(shard_) = kNoCausalNode;
  std::uint8_t cur_tag_ TECO_SHARD_AFFINE(shard_) = 0;
#endif
};

/// RAII category tag: every event scheduled inside the scope is recorded
/// with `tag` (an obs::causal::Category). Nests; restores the previous tag
/// on exit. A no-op under TECO_OBS=OFF and when no sink is attached.
class TagScope {
 public:
  TagScope(EventQueue& q, std::uint8_t tag)
      : q_(q), prev_(q.current_tag()) {
    q_.set_current_tag(tag);
  }
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;
  ~TagScope() { q_.set_current_tag(prev_); }

 private:
  EventQueue& q_;
  std::uint8_t prev_;
};

}  // namespace teco::sim
