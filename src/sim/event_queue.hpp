// A deterministic discrete-event engine.
//
// This is the substrate under the CXL link model and the offload timeline
// simulator: components schedule callbacks at absolute simulated times and
// the engine runs them in (time, insertion-order) order.
//
// Same-timestamp ordering is a contract, not an accident. Every Entry
// carries a sequence number drawn from a monotone counter at schedule_at()
// time, and the heap comparator orders by (when, seq) — so events at equal
// times run strictly FIFO in schedule order, including events scheduled
// *during* another event at the same timestamp (they get later sequence
// numbers, so they run after everything already queued at that instant).
// Two runs that issue the same schedule calls therefore execute callbacks
// in bit-identical order. The model checker (teco::mc) pins state-space
// counts as goldens and cxl::EventChannel interleaves per-packet delivery
// callbacks with fence drains at equal timestamps; both depend on this
// tie-break being deterministic. tests/sim_test.cpp locks the contract.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/annotations.hpp"
#include "sim/time.hpp"

namespace teco::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Starts at 0 and only moves forward.
  Time now() const {
    shard_.assert_held();
    return now_;
  }

  /// Number of events not yet executed.
  std::size_t pending() const {
    shard_.assert_held();
    return heap_.size();
  }

  bool empty() const {
    shard_.assert_held();
    return heap_.empty();
  }

  /// Schedule `cb` at absolute time `when`. Scheduling in the past (before
  /// `now()`) is a logic error and is clamped to `now()` after recording it
  /// in `clamped_past_schedules()` so tests can assert it never happens.
  void schedule_at(Time when, Callback cb);

  /// Schedule `cb` at `now() + delay`.
  void schedule_after(Time delay, Callback cb) {
    shard_.assert_held();
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run events with time <= `until` (inclusive). Events an executed event
  /// schedules inside the window are run too. Advances now() to `until`
  /// even if nothing was pending. Returns the number executed.
  std::size_t run_until(Time until);

  std::uint64_t executed() const {
    shard_.assert_held();
    return executed_;
  }
  std::uint64_t clamped_past_schedules() const {
    shard_.assert_held();
    return clamped_;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // The queue IS the shard under the sharded engine: one EventQueue per
  // shard, and scheduling onto another shard's queue must go through its
  // event channel, never by calling schedule_at across the boundary. The
  // (time,seq) FIFO contract above only holds shard-locally.
  core::ShardCapability shard_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_
      TECO_SHARD_AFFINE(shard_);
  Time now_ TECO_SHARD_AFFINE(shard_) = 0.0;
  std::uint64_t next_seq_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t executed_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t clamped_ TECO_SHARD_AFFINE(shard_) = 0;
};

}  // namespace teco::sim
