// Deterministic PRNG (xoshiro256**) for workload synthesis.
//
// Every randomized component in the repository (training data, MD initial
// velocities, trace shuffling) takes an explicit Rng so experiments are
// reproducible from a single seed; nothing reads global entropy.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace teco::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// failure process, e.g. device crashes at a configured MTBF).
  double next_exponential(double mean) {
    // 1 - U in (0, 1], so the log argument never hits zero.
    return -mean * std::log(1.0 - next_double());
  }

  /// Interarrival gap of a Poisson process at `rate` events per unit time
  /// (requests/second for the serving arrival process). rate must be > 0.
  /// Identical to next_exponential(1 / rate); spelled out so arrival code
  /// reads in the units the workload is configured in.
  double next_interarrival(double rate) {
    return next_exponential(1.0 / rate);
  }

  /// Lognormal with the given median and log-space sigma: exp(N(ln median,
  /// sigma^2)). The standard heavy-tailed model for request/token-length
  /// distributions in serving workloads; median (not mean) parameterization
  /// keeps config values interpretable.
  double next_lognormal(double median, double sigma) {
    return median * std::exp(sigma * next_gaussian());
  }

  /// Binomial(n, p) sample. Exact Bernoulli counting for small n; for large
  /// n it switches to the Poisson (small p) or Gaussian approximation, both
  /// fully deterministic under this generator. Used by the Monte-Carlo
  /// link-retry path, where p is a per-flit CRC-corruption probability and
  /// n can reach millions of flits per stream.
  std::uint64_t next_binomial(std::uint64_t n, double p) {
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    if (n <= 128) {
      std::uint64_t k = 0;
      for (std::uint64_t i = 0; i < n; ++i) k += next_bool(p) ? 1 : 0;
      return k;
    }
    const double mean = static_cast<double>(n) * p;
    if (p < 1e-3 && mean < 64.0) {
      // Poisson approximation via Knuth's product method.
      const double limit = std::exp(-mean);
      std::uint64_t k = 0;
      double prod = next_double();
      while (prod > limit) {
        ++k;
        prod *= next_double();
      }
      return k > n ? n : k;
    }
    const double sigma = std::sqrt(mean * (1.0 - p));
    const double sample = mean + sigma * next_gaussian();
    if (sample <= 0.0) return 0;
    const auto k = static_cast<std::uint64_t>(sample + 0.5);
    return k > n ? n : k;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace teco::sim
