// Deterministic PRNG (xoshiro256**) for workload synthesis.
//
// Every randomized component in the repository (training data, MD initial
// velocities, trace shuffling) takes an explicit Rng so experiments are
// reproducible from a single seed; nothing reads global entropy.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace teco::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace teco::sim
