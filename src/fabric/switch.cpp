#include "fabric/switch.hpp"

#include <memory>
#include <stdexcept>
#include <string>

namespace teco::fabric {

namespace {
sim::Bandwidth port_bandwidth(const FabricConfig& cfg) {
  return cfg.port_gbps * sim::kGBps * cfg.node_phy.cxl_efficiency;
}
}  // namespace

CxlSwitch::CxlSwitch(const FabricConfig& cfg)
    : to_pool_ch_("nodes->pool", port_bandwidth(cfg), cfg.hop_latency),
      from_pool_ch_("pool->nodes", port_bandwidth(cfg), cfg.hop_latency),
      node_stats_(cfg.nodes),
      ports_(cfg.nodes) {}

void CxlSwitch::attach(std::uint32_t node, cxl::Link& link) {
  shard_.assert_held();
  if (node >= ports_.size()) {
    throw std::invalid_argument("CxlSwitch::attach: node " +
                                std::to_string(node) + " out of range");
  }
  if (ports_[node] != nullptr) {
    throw std::invalid_argument("CxlSwitch::attach: node " +
                                std::to_string(node) + " already attached");
  }
  ports_[node] = std::make_unique<Port>(*this, node);
  link.set_forwarder(ports_[node].get());
}

const PortStats& CxlSwitch::to_pool() const {
  shard_.assert_held();
  return port_stats_[0];
}

const PortStats& CxlSwitch::from_pool() const {
  shard_.assert_held();
  return port_stats_[1];
}

const NodePortStats& CxlSwitch::node_stats(std::uint32_t node) const {
  shard_.assert_held();
  return node_stats_.at(node);
}

sim::Time CxlSwitch::drain(cxl::Direction dir) const {
  shard_.assert_held();
  return port(dir).drain_time();
}

void CxlSwitch::set_metrics(obs::MetricsRegistry* reg) {
  shard_.assert_held();
  if (reg == nullptr) {
    for (int i = 0; i < 2; ++i) {
      m_pkts_[i] = m_bytes_[i] = m_queue_us_[i] = nullptr;
    }
    return;
  }
  const char* names[2] = {"to_pool", "from_pool"};
  for (int i = 0; i < 2; ++i) {
    const std::string p = std::string("fabric.switch.") + names[i] + '.';
    m_pkts_[i] = &reg->counter(p + "pkts");
    m_bytes_[i] = &reg->counter(p + "bytes");
    m_queue_us_[i] = &reg->counter(p + "queue_us");
  }
}

cxl::Delivery CxlSwitch::forward(std::uint32_t node, cxl::Direction dir,
                                 const cxl::Packet& pkt, std::uint64_t n,
                                 const cxl::Delivery& local) {
  shard_.assert_held();
  const int idx = dir == cxl::Direction::kDeviceToCpu ? 0 : 1;
  cxl::Channel& ch = idx == 0 ? to_pool_ch_ : from_pool_ch_;

  // FIFO arrival-order arbitration: the packet enters the shared port when
  // its private wire finishes, never before a previously arrived packet
  // (the clamp also keeps the channel's nondecreasing-ready contract).
  sim::Time t_in = local.finished;
  if (t_in < last_ready_[idx]) t_in = last_ready_[idx];
  last_ready_[idx] = t_in;

  const cxl::Delivery hop =
      n == 1 ? ch.submit(t_in, pkt) : ch.submit_stream(t_in, pkt, n);

  const std::uint64_t bytes = pkt.wire_bytes() * n;
  const sim::Time service = static_cast<double>(bytes) / ch.bandwidth();
  sim::Time waited = hop.finished - service - t_in;
  if (waited < 0.0) waited = 0.0;  // floating-point guard

  PortStats& ps = port_stats_[idx];
  ps.packets += n;
  ps.wire_bytes += bytes;
  ps.queue_time += waited;
  NodePortStats& ns = node_stats_[node];
  if (idx == 0) {
    ns.to_pool_packets += n;
    ns.to_pool_bytes += bytes;
  } else {
    ns.from_pool_packets += n;
    ns.from_pool_bytes += bytes;
  }
  if (m_pkts_[idx] != nullptr) {
    m_pkts_[idx]->add(static_cast<double>(n));
    m_bytes_[idx]->add(static_cast<double>(bytes));
    m_queue_us_[idx]->add(waited * 1e6);
  }

  // End-to-end delivery: producer admission is the private link's; finish
  // and arrival are the shared hop's.
  return cxl::Delivery{local.accepted, hop.finished, hop.delivered};
}

}  // namespace teco::fabric
