// teco::fabric — a pooled CXL 3.x fabric: N training nodes attached through
// a switch to one shared memory pool.
//
// The paper offloads tensors over a single point-to-point CXL link; the
// fabric layer scales that shape out. Each node keeps its own cxl::Link and
// coherence::HomeAgent (the pool is the CPU/home side of every node's
// domain), but all node<->pool traffic is multiplexed onto two shared pool
// ports by fabric::CxlSwitch (FIFO arbitration, measurable queueing). On
// top of that sits fabric::PoolAllReduce: data-parallel gradient reduction
// *through the pool*, with the update-push protocol as the transport and
// the DBA aggregator as a bandwidth multiplier for the result broadcast
// (CCCL / CXL-CCL and TrainingCXL in PAPERS.md). docs/FABRIC.md is the
// guide.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "cxl/phy.hpp"
#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "sim/time.hpp"

namespace teco::fabric {

/// How PoolAllReduce moves and reduces the gradient shards.
enum class ReduceStrategy : std::uint8_t {
  /// In-pool reduce: nodes update-push full-precision shards into per-node
  /// pooled contribution windows, the pool's near-memory ReduceUnit folds
  /// them (the DBA merge path reused as a reduction engine), and the
  /// reduced result broadcasts back DBA-trimmed once steady state is
  /// reached — the DBA becomes a bandwidth multiplier for the collective.
  kDbaMerge,
  /// Naive pool staging: nodes stage full lines into the pool, one reducer
  /// node demand-reads every other shard across the contended port, reduces
  /// locally, pushes the result back up, and full lines broadcast down.
  kPoolStaging,
  /// Analytic per-link baseline: no pool, every node ships its full
  /// gradient set over a private link and the CPU reduces N streams —
  /// exactly the offload::per_link_reduce() arm bench_multi_device reports.
  kPerLink,
};

std::string_view to_string(ReduceStrategy s);

/// Parse "dba_merge" / "pool_staging" / "per_link"; nullopt on anything
/// else (the config layer turns that into a per-line error).
std::optional<ReduceStrategy> reduce_from_string(std::string_view s);

struct FabricConfig {
  std::uint32_t nodes = 2;
  /// Pooled-memory capacity; carve-outs beyond it are admission-rejected.
  std::uint64_t pool_bytes = 8ull * 1024 * 1024;
  /// Raw bandwidth of each shared pool port (one per direction), in GB/s.
  /// The usable rate is port_gbps * node_phy.cxl_efficiency.
  double port_gbps = 16.0;
  ReduceStrategy reduce = ReduceStrategy::kDbaMerge;
  /// Per-node gradient shard (the all-reduce payload), line-aligned.
  std::uint64_t shard_bytes = 64 * 1024;
  /// Each node's private point-to-point link to its switch port.
  cxl::PhyConfig node_phy{};
  /// Fixed port-to-port flit latency through the switch.
  sim::Time hop_latency = sim::ns(250);
  /// DBA trim on the result broadcast (kDbaMerge only; activates after the
  /// seeding step so high bytes have a full-precision base to splice onto).
  bool dba_enabled = true;
  std::uint8_t dirty_bytes = 2;
  /// Attach a strict per-node ProtocolChecker (tests and benches keep this
  /// on; every fabric hop is protocol traffic, so the checker sees it all).
  bool check = true;
  std::uint64_t seed = 1;
  /// Pool-side (home-agent) cache per node; the mc slice driver shrinks it.
  mem::CacheConfig pool_cache = mem::llc_config();
  /// Base address of the pooled range in every node's address space.
  mem::Addr pool_base = 0x20000000;
};

}  // namespace teco::fabric
