#include "fabric/pool.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dba/aggregator.hpp"

namespace teco::fabric {

PooledMemory::PooledMemory(std::uint64_t capacity_bytes, mem::Addr base)
    : capacity_(capacity_bytes), next_(mem::line_base(base)) {}

std::optional<mem::Region> PooledMemory::try_carve(std::string name,
                                                   std::uint32_t owner,
                                                   std::uint64_t bytes) {
  shard_.assert_held();
  const std::uint64_t rounded =
      (bytes + mem::kLineBytes - 1) / mem::kLineBytes * mem::kLineBytes;
  if (rounded == 0 || carved_ + rounded > capacity_) {
    ++rejects_;
    if (m_rejects_ != nullptr) m_rejects_->add();
    return std::nullopt;
  }
  const mem::Region region{next_, rounded};
  next_ += rounded;
  carved_ += rounded;
  carveouts_.push_back(Carveout{std::move(name), owner, region});
  if (m_carved_ != nullptr) m_carved_->set(static_cast<double>(carved_));
  return region;
}

void PooledMemory::set_metrics(obs::MetricsRegistry* reg) {
  shard_.assert_held();
  if (reg == nullptr) {
    m_carved_ = nullptr;
    m_rejects_ = nullptr;
    return;
  }
  m_carved_ = &reg->gauge("fabric.pool.carved_bytes");
  m_rejects_ = &reg->counter("fabric.pool.admission_rejects");
  m_carved_->set(static_cast<double>(carved_));
}

ReduceUnit::ReduceUnit(PooledMemory& pool,
                       std::vector<mem::Region> contributions,
                       mem::Region result)
    : pool_(pool),
      contributions_(std::move(contributions)),
      result_(result),
      lines_(result.lines()) {
  for (const mem::Region& c : contributions_) {
    if (c.lines() != lines_) {
      throw std::invalid_argument(
          "ReduceUnit: contribution/result line counts differ");
    }
  }
  acc_.assign(lines_ * mem::kWordsPerLine, 0.0f);
  counts_.assign(lines_ * contributions_.size(), 0);
  fold_order_.assign(lines_, {});
}

void ReduceUnit::begin_step() {
  shard_.assert_held();
  std::fill(acc_.begin(), acc_.end(), 0.0f);
  std::fill(counts_.begin(), counts_.end(), 0);
  for (auto& order : fold_order_) order.clear();
}

sim::Time ReduceUnit::fold(sim::Time now, std::uint32_t node,
                           std::uint64_t line) {
  shard_.assert_held();
  if (node >= contributions_.size() || line >= lines_) {
    throw std::out_of_range("ReduceUnit::fold: node or line out of range");
  }
  const mem::Addr src = contributions_[node].base + line * mem::kLineBytes;
  float* acc = &acc_[line * mem::kWordsPerLine];
  for (std::uint64_t w = 0; w < mem::kWordsPerLine; ++w) {
    acc[w] += pool_.store().read_f32(src + w * 4);
  }
  ++counts_[line * contributions_.size() + node];
  fold_order_[line].push_back(node);
  ++folds_;
  if (m_folds_ != nullptr) m_folds_->add();
  return now + dba::kModeledDbaLatency;
}

sim::Time ReduceUnit::commit(sim::Time now, std::uint64_t line) {
  shard_.assert_held();
  if (line >= lines_) {
    throw std::out_of_range("ReduceUnit::commit: line out of range");
  }
  mem::BackingStore::Line out{};
  std::memcpy(out.data(), &acc_[line * mem::kWordsPerLine], mem::kLineBytes);
  pool_.store().write_line(result_.base + line * mem::kLineBytes, out);
  ++commits_;
  if (m_commits_ != nullptr) m_commits_->add();
  return now + dba::kModeledDbaLatency;
}

std::uint32_t ReduceUnit::fold_count(std::uint64_t line,
                                     std::uint32_t node) const {
  shard_.assert_held();
  return counts_.at(line * contributions_.size() + node);
}

std::span<const float> ReduceUnit::accumulator(std::uint64_t line) const {
  shard_.assert_held();
  return std::span<const float>(&acc_[line * mem::kWordsPerLine],
                                mem::kWordsPerLine);
}

std::optional<std::string> ReduceUnit::check_invariants() const {
  shard_.assert_held();
  for (std::uint64_t line = 0; line < lines_; ++line) {
    for (std::uint32_t n = 0; n < contributions_.size(); ++n) {
      if (counts_[line * contributions_.size() + n] > 1) {
        return "merge applied " +
               std::to_string(counts_[line * contributions_.size() + n]) +
               " times for node " + std::to_string(n) + " on line " +
               std::to_string(line);
      }
    }
    float expect[mem::kWordsPerLine] = {};
    for (const std::uint32_t n : fold_order_[line]) {
      const mem::Addr src = contributions_[n].base + line * mem::kLineBytes;
      for (std::uint64_t w = 0; w < mem::kWordsPerLine; ++w) {
        expect[w] += pool_.store().read_f32(src + w * 4);
      }
    }
    if (std::memcmp(expect, &acc_[line * mem::kWordsPerLine],
                    mem::kLineBytes) != 0) {
      return "accumulator of line " + std::to_string(line) +
             " diverged from the fold-order recompute (lost or corrupted "
             "contribution bytes)";
    }
  }
  return std::nullopt;
}

void ReduceUnit::set_metrics(obs::MetricsRegistry* reg) {
  shard_.assert_held();
  if (reg == nullptr) {
    m_folds_ = nullptr;
    m_commits_ = nullptr;
    return;
  }
  m_folds_ = &reg->counter("fabric.reduce.lines_folded");
  m_commits_ = &reg->counter("fabric.reduce.commits");
}

}  // namespace teco::fabric
