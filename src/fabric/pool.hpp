// fabric::PooledMemory + fabric::ReduceUnit — the shared pool device.
//
// PooledMemory is a CXL 3.x pooled-memory device: one backing store of
// capacity pool_bytes, handed out as DCD-style (dynamic capacity device)
// carve-outs. Carving is admission-controlled — a request past capacity is
// rejected (counted, observable), never silently satisfied.
//
// ReduceUnit is the pool's near-memory compute: the same
// aggregate-into-the-memory-path idea as the DBA disaggregator, pointed at
// reduction. It folds per-node contribution lines into an FP32 accumulator
// (one modeled DBA latency per folded line) and commits accumulated lines
// into the shared result window, so a gradient all-reduce never ships
// partial sums back over the contended port. check_invariants() is the
// fabric's merge watchdog: every contribution folds at most once per step,
// and the accumulator must bitwise equal a recompute of the pool bytes in
// recorded fold order (FP32 addition is commutative, not associative — the
// recorded order makes the oracle exact for arbitrary fold interleavings).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "mem/address.hpp"
#include "mem/backing_store.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace teco::fabric {

/// Owner id for carve-outs shared by every node (the result window).
inline constexpr std::uint32_t kSharedOwner = ~0u;

struct Carveout {
  std::string name;
  std::uint32_t owner = kSharedOwner;
  mem::Region region;
};

class PooledMemory {
 public:
  PooledMemory(std::uint64_t capacity_bytes, mem::Addr base);

  PooledMemory(const PooledMemory&) = delete;
  PooledMemory& operator=(const PooledMemory&) = delete;

  /// Carve `bytes` (rounded up to line granularity) out of pool capacity
  /// for `owner`. Returns the carved region, or nullopt when admission
  /// rejects the request (over capacity or zero-sized).
  std::optional<mem::Region> try_carve(std::string name, std::uint32_t owner,
                                       std::uint64_t bytes);

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t carved_bytes() const {
    shard_.assert_held();
    return carved_;
  }
  std::uint64_t admission_rejects() const {
    shard_.assert_held();
    return rejects_;
  }
  const std::vector<Carveout>& carveouts() const {
    shard_.assert_held();
    return carveouts_;
  }

  /// The pool's bytes. Every attached node's home agent uses this store as
  /// its CPU/home side, so protocol pushes land here and demand reads are
  /// served from here.
  mem::BackingStore& store() { return store_; }
  const mem::BackingStore& store() const { return store_; }

  /// Resolve fabric.pool.* handles; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg);

 private:
  std::uint64_t capacity_;
  core::ShardCapability shard_;
  mem::Addr next_ TECO_SHARD_AFFINE(shard_);
  std::uint64_t carved_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t rejects_ TECO_SHARD_AFFINE(shard_) = 0;
  std::vector<Carveout> carveouts_ TECO_SHARD_AFFINE(shard_);
  mem::BackingStore store_;
  obs::Gauge* m_carved_ = nullptr;
  obs::Counter* m_rejects_ = nullptr;
};

class ReduceUnit {
 public:
  /// `contributions[n]` is node n's staged-shard window, `result` the
  /// shared output window; all regions must span the same line count.
  ReduceUnit(PooledMemory& pool, std::vector<mem::Region> contributions,
             mem::Region result);

  ReduceUnit(const ReduceUnit&) = delete;
  ReduceUnit& operator=(const ReduceUnit&) = delete;

  /// Clear the accumulator and fold bookkeeping for a new step.
  void begin_step();

  /// Fold node's staged contribution line into the accumulator (16 FP32
  /// adds near memory). Returns completion time: one modeled DBA latency.
  sim::Time fold(sim::Time now, std::uint32_t node, std::uint64_t line);

  /// Write the accumulated line into the result window.
  sim::Time commit(sim::Time now, std::uint64_t line);

  std::uint64_t lines() const { return lines_; }
  std::uint32_t fold_count(std::uint64_t line, std::uint32_t node) const;
  std::span<const float> accumulator(std::uint64_t line) const;
  std::uint64_t folds() const {
    shard_.assert_held();
    return folds_;
  }
  std::uint64_t commits() const {
    shard_.assert_held();
    return commits_;
  }

  /// The merge watchdog (see file header). Returns a diagnostic on the
  /// first violated line, nullopt when every invariant holds.
  std::optional<std::string> check_invariants() const;

  /// Resolve fabric.reduce.* handles; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg);

 private:
  PooledMemory& pool_;
  std::vector<mem::Region> contributions_;
  mem::Region result_;
  std::uint64_t lines_;
  core::ShardCapability shard_;
  std::vector<float> acc_ TECO_SHARD_AFFINE(shard_);
  /// Folds applied this step, [line * nodes + node].
  std::vector<std::uint8_t> counts_ TECO_SHARD_AFFINE(shard_);
  /// Node order the folds were applied in, per line (the exact-recompute
  /// oracle's order).
  std::vector<std::vector<std::uint32_t>> fold_order_
      TECO_SHARD_AFFINE(shard_);
  std::uint64_t folds_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t commits_ TECO_SHARD_AFFINE(shard_) = 0;
  obs::Counter* m_folds_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
};

}  // namespace teco::fabric
