#include "fabric/fabric.hpp"

namespace teco::fabric {

std::string_view to_string(ReduceStrategy s) {
  switch (s) {
    case ReduceStrategy::kDbaMerge: return "dba_merge";
    case ReduceStrategy::kPoolStaging: return "pool_staging";
    case ReduceStrategy::kPerLink: return "per_link";
  }
  return "?";
}

std::optional<ReduceStrategy> reduce_from_string(std::string_view s) {
  if (s == "dba_merge") return ReduceStrategy::kDbaMerge;
  if (s == "pool_staging") return ReduceStrategy::kPoolStaging;
  if (s == "per_link") return ReduceStrategy::kPerLink;
  return std::nullopt;
}

}  // namespace teco::fabric
