// fabric::FabricNode + fabric::PoolAllReduce — the in-pool collective.
//
// Each FabricNode owns one coherent domain: its private cxl::Link (attached
// to a switch port), a giant cache mapping its pooled windows, a pool-side
// CPU cache, its device backing store, a HomeAgent whose CPU/home side IS
// the shared pool, and (tests/benches) a strict ProtocolChecker. The pool
// plays the CPU role of every node's domain, so node->pool traffic is the
// device->CPU update push and pool->node traffic is the CPU->device push —
// the paper's protocol, unchanged, becomes the collective's transport.
//
// PoolAllReduce drives one data-parallel gradient all-reduce step per
// run_step() call on a persistent sim::EventQueue: N concurrent per-node
// push streams contend at the switch's to_pool port, the pool reduces
// (ReduceUnit under kDbaMerge; a reducer node's demand-read staging under
// kPoolStaging), and results broadcast down through the from_pool port.
// kPerLink charges offload::per_link_reduce() — the bench_multi_device arm
// — for an apples-to-apples no-pool baseline. After every phase the fabric
// invariants run: shared-port packet conservation against the node links'
// channel stats and the ReduceUnit merge watchdog; violations throw.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/home_agent.hpp"
#include "core/annotations.hpp"
#include "fabric/fabric.hpp"
#include "fabric/pool.hpp"
#include "fabric/switch.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace teco::fabric {

class FabricNode {
 public:
  /// `staging` is non-empty only on the kPoolStaging reducer: other nodes'
  /// contribution windows, mapped demand-readable (and demoted — another
  /// node produces them, so there is no clear producer/consumer).
  FabricNode(std::uint32_t id, const FabricConfig& cfg, CxlSwitch& sw,
             PooledMemory& pool, mem::Region contribution, mem::Region result,
             std::span<const mem::Region> staging, obs::MetricsRegistry* reg);
  ~FabricNode();

  FabricNode(const FabricNode&) = delete;
  FabricNode& operator=(const FabricNode&) = delete;

  /// Load this node's gradient shard into device memory (no traffic).
  void set_gradients(std::span<const float> values);

  /// Update-push one contribution line into the pool (device->CPU, full
  /// precision — gradients never trim).
  std::optional<cxl::Delivery> push_contribution(sim::Time now,
                                                 std::uint64_t line);

  /// Push one reduced-result line pool->node (CPU->device; DBA-trimmed when
  /// the register is programmed — the bandwidth-multiplier path).
  std::optional<cxl::Delivery> broadcast_result(sim::Time now,
                                                std::uint64_t line);

  /// Push one locally reduced result line node->pool (the kPoolStaging
  /// reducer's writeback).
  std::optional<cxl::Delivery> push_result(sim::Time now, std::uint64_t line);

  /// Demand-read a staged line from the pool (kPoolStaging reducer).
  coherence::HomeAgent::Access pull_line(sim::Time now, mem::Addr addr);

  /// Pool-side write to a staged line: under the demoted (invalidation)
  /// protocol this back-invalidates this node's cached copy — the CXL 3.x
  /// BI round trip the pool issues after another node rewrites the window.
  void invalidate_staged(sim::Time now, mem::Addr addr);

  sim::Time fence(sim::Time now) { return agent_->cxl_fence(now); }
  void program_dba(sim::Time now, dba::DbaRegister reg) {
    agent_->set_dba(now, reg);
  }

  float device_f32(mem::Addr addr) const;
  void device_write_f32(mem::Addr addr, float v);
  /// This node's view of the reduced result (device copy of the window).
  std::vector<float> result_values() const;

  std::uint64_t lines() const { return contribution_.lines(); }
  const mem::Region& contribution() const { return contribution_; }
  const mem::Region& result() const { return result_; }
  coherence::HomeAgent& agent() { return *agent_; }
  const cxl::Link& link() const { return link_; }
  const check::ProtocolChecker* checker() const { return checker_.get(); }

 private:
  std::uint32_t id_;
  mem::Region contribution_;
  mem::Region result_;
  cxl::Link link_;
  coherence::GiantCache gc_;
  mem::Cache pool_cache_;
  mem::BackingStore device_mem_;
  std::unique_ptr<coherence::HomeAgent> agent_;
  std::unique_ptr<check::ProtocolChecker> checker_;  ///< Last: detaches first.
};

/// One completed all-reduce step's timeline and shared-port accounting.
struct AllReduceReport {
  std::uint64_t step = 0;
  sim::Time started = 0.0;
  sim::Time push_done = 0.0;       ///< All contributions fenced into the pool.
  sim::Time reduce_done = 0.0;     ///< Reduction complete (strategy-specific).
  sim::Time broadcast_done = 0.0;  ///< Results fenced on every node.
  sim::Time wall() const { return broadcast_done - started; }
  std::uint64_t to_pool_bytes = 0;    ///< Shared-port bytes this step.
  std::uint64_t from_pool_bytes = 0;
  sim::Time port_queue_time = 0.0;    ///< Switch queueing added this step.

  /// Tail of the step's causal chain and the critical-path attribution over
  /// [started, broadcast_done] (populated when set_causal() wired a graph):
  /// push occupancy lands in cxl_up, switch queueing in switch_queue, the
  /// reduction in pool_reduce and the result fan-out in cxl_down.
  std::uint32_t causal_tail = sim::kNoCausalNode;
  obs::causal::Attribution attribution;
};

class PoolAllReduce {
 public:
  explicit PoolAllReduce(const FabricConfig& cfg);

  PoolAllReduce(const PoolAllReduce&) = delete;
  PoolAllReduce& operator=(const PoolAllReduce&) = delete;

  std::uint64_t shard_floats() const { return cfg_.shard_bytes / 4; }
  void set_node_gradients(std::uint32_t node, std::span<const float> values);

  /// Run one all-reduce step to completion on the internal event queue.
  /// Simulated time is cumulative across calls (steady-state steps see the
  /// DBA register already programmed).
  AllReduceReport run_step();

  std::vector<float> node_result(std::uint32_t node) const;

  const FabricConfig& config() const { return cfg_; }
  CxlSwitch& fabric_switch() { return switch_; }
  PooledMemory& pool() { return pool_; }
  ReduceUnit& reduce_unit() { return *reduce_; }
  FabricNode& node(std::uint32_t i) { return *nodes_.at(i); }
  obs::MetricsRegistry& registry() { return metrics_; }
  sim::Time now() const { return eq_.now(); }
  std::uint64_t steps_run() const {
    shard_.assert_held();
    return step_;
  }

  /// Wire the causal DAG (must outlive the collective; nullptr = off): the
  /// graph becomes the event queue's provenance sink — every self-paced
  /// line-stream event is tagged with its phase's category — and each
  /// run_step() appends a phase chain whose critical-path attribution over
  /// the step interval lands in AllReduceReport::attribution.
  void set_causal(obs::causal::CausalGraph* g) {
    shard_.assert_held();
    causal_ = g;
    eq_.set_causal_sink(g);
  }

 private:
  using StreamOp = std::optional<cxl::Delivery> (PoolAllReduce::*)(
      std::uint32_t node, std::uint64_t line, sim::Time now);

  void run_dba_merge(AllReduceReport& r) TECO_REQUIRES(shard_);
  void run_pool_staging(AllReduceReport& r) TECO_REQUIRES(shard_);
  void run_per_link(AllReduceReport& r) TECO_REQUIRES(shard_);

  /// Run `op(node, line)` as a self-paced line stream per node, all nodes
  /// concurrently on the event queue (this is where port contention
  /// happens); drains the queue before returning. `tag` is the causal
  /// category every stream event of this phase is stamped with.
  void pump_streams(sim::Time start, const std::vector<std::uint32_t>& nodes,
                    StreamOp op, std::uint8_t tag) TECO_REQUIRES(shard_);

  std::optional<cxl::Delivery> op_push(std::uint32_t node, std::uint64_t line,
                                       sim::Time now) TECO_REQUIRES(shard_);
  std::optional<cxl::Delivery> op_broadcast(std::uint32_t node,
                                            std::uint64_t line, sim::Time now)
      TECO_REQUIRES(shard_);

  /// Fence every node; returns the barrier time and advances the queue.
  sim::Time fence_all() TECO_REQUIRES(shard_);

  /// The fabric-level invariants (shared-port packet conservation, merge
  /// watchdog); throws std::runtime_error on violation.
  void check_fabric(const char* phase) TECO_REQUIRES(shard_);

  FabricConfig cfg_;
  obs::MetricsRegistry metrics_;  ///< First member: outlives every recorder.
  core::ShardCapability shard_;
  sim::EventQueue eq_;
  /// The all-reduce owns its queue: gather/fold/commit pump lambdas and
  /// switch deliveries all run on this shard.
  TECO_QUEUE_CONTEXT(eq_);
  PooledMemory pool_;
  CxlSwitch switch_;
  std::vector<mem::Region> contributions_ TECO_SHARD_AFFINE(shard_);
  mem::Region result_ TECO_SHARD_AFFINE(shard_);
  std::unique_ptr<ReduceUnit> reduce_ TECO_SHARD_AFFINE(shard_);
  std::vector<std::unique_ptr<FabricNode>> nodes_ TECO_SHARD_AFFINE(shard_);
  std::uint64_t step_ TECO_SHARD_AFFINE(shard_) = 0;
  obs::causal::CausalGraph* causal_ TECO_SHARD_AFFINE(shard_) = nullptr;
  std::uint32_t causal_tail_ TECO_SHARD_AFFINE(shard_) = sim::kNoCausalNode;
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_up_bytes_ = nullptr;
  obs::Counter* m_down_bytes_ = nullptr;
};

}  // namespace teco::fabric
