// fabric::CxlSwitch — the shared choke point of the pooled fabric.
//
// N nodes' private links attach to switch ports; everything they carry is
// then forwarded onto two shared pool ports (one per direction), each a
// cxl::Channel with the configured port bandwidth and the fixed
// port-to-port hop latency. Arbitration is FIFO in wire-arrival order:
// packets enter the shared port in the order they finish on their private
// links, and the port's serializer imposes the queueing — the switch
// measures it (per-port waited time) so contention is observable, not just
// implied.
//
// Modeling note: the forwarder hook appends the shared hop *after* the
// private link in both directions. Physically a pool->node packet crosses
// the shared port first; for closed-form FIFO serializers the two hop
// orders compose to the same end-to-end timing, so one hook suffices.
// Ingress buffering at the switch is unbounded: backpressure to producers
// is the private link's 128-entry queue, and shared-port contention shows
// up as queue_time rather than producer stalls.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/annotations.hpp"
#include "cxl/channel.hpp"
#include "cxl/link.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"

namespace teco::fabric {

/// One shared pool port's accounting.
struct PortStats {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  /// Total time packets waited at the port for the shared wire (arrival to
  /// service start) — the measurable queueing contention produces.
  sim::Time queue_time = 0.0;
};

/// Per-attached-node forwarding totals (the arbitration-fairness test
/// compares these across saturating producers).
struct NodePortStats {
  std::uint64_t to_pool_packets = 0;
  std::uint64_t to_pool_bytes = 0;
  std::uint64_t from_pool_packets = 0;
  std::uint64_t from_pool_bytes = 0;
};

class CxlSwitch {
 public:
  explicit CxlSwitch(const FabricConfig& cfg);

  CxlSwitch(const CxlSwitch&) = delete;
  CxlSwitch& operator=(const CxlSwitch&) = delete;

  /// Attach a node's link to its switch port: every subsequent send on the
  /// link is forwarded through the shared pool ports. The switch must
  /// outlive the link (or the link must detach with set_forwarder(nullptr)
  /// first). `node` must be < cfg.nodes and attached at most once.
  void attach(std::uint32_t node, cxl::Link& link);

  /// Shared-port accounting. to_pool = node->pool (the up/S2M side of every
  /// attached link), from_pool = pool->node (down/M2S).
  const PortStats& to_pool() const;
  const PortStats& from_pool() const;
  const NodePortStats& node_stats(std::uint32_t node) const;

  /// Drain time of the shared port serving `dir` traffic.
  sim::Time drain(cxl::Direction dir) const;

  const cxl::Channel& port(cxl::Direction dir) const {
    return dir == cxl::Direction::kDeviceToCpu ? to_pool_ch_ : from_pool_ch_;
  }

  /// Resolve fabric.switch.* handles; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg);

 private:
  /// A node's attachment point; relays into the owning switch.
  class Port final : public cxl::LinkForwarder {
   public:
    Port(CxlSwitch& sw, std::uint32_t node) : sw_(sw), node_(node) {}
    cxl::Delivery forward(cxl::Direction dir, const cxl::Packet& pkt,
                          std::uint64_t n, const cxl::Delivery& local) override {
      return sw_.forward(node_, dir, pkt, n, local);
    }
    sim::Time forward_drain(cxl::Direction dir) const override {
      return sw_.drain(dir);
    }

   private:
    CxlSwitch& sw_;
    std::uint32_t node_;
  };

  cxl::Delivery forward(std::uint32_t node, cxl::Direction dir,
                        const cxl::Packet& pkt, std::uint64_t n,
                        const cxl::Delivery& local);

  // Switch state is one shard: every forward() serializes through the
  // shared-port clamp, so the sharded engine must route all attached
  // nodes' egress through this shard's queue.
  core::ShardCapability shard_;
  cxl::Channel to_pool_ch_ TECO_SHARD_AFFINE(shard_);
  cxl::Channel from_pool_ch_ TECO_SHARD_AFFINE(shard_);
  /// Last shared-port entry time per direction ([0]=to_pool, [1]=from_pool);
  /// clamping to it keeps the channel's nondecreasing-ready contract across
  /// N producers and realizes FIFO arrival-order arbitration.
  sim::Time last_ready_[2] TECO_SHARD_AFFINE(shard_) = {0.0, 0.0};
  PortStats port_stats_[2] TECO_SHARD_AFFINE(shard_);
  std::vector<NodePortStats> node_stats_ TECO_SHARD_AFFINE(shard_);
  std::vector<std::unique_ptr<Port>> ports_ TECO_SHARD_AFFINE(shard_);
  obs::Counter* m_pkts_[2] = {nullptr, nullptr};
  obs::Counter* m_bytes_[2] = {nullptr, nullptr};
  obs::Counter* m_queue_us_[2] = {nullptr, nullptr};
};

}  // namespace teco::fabric
