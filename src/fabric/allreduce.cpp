#include "fabric/allreduce.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "dba/aggregator.hpp"
#include "offload/multi_device.hpp"

namespace teco::fabric {

// --- FabricNode ------------------------------------------------------------

FabricNode::FabricNode(std::uint32_t id, const FabricConfig& cfg,
                       CxlSwitch& sw, PooledMemory& pool,
                       mem::Region contribution, mem::Region result,
                       std::span<const mem::Region> staging,
                       obs::MetricsRegistry* reg)
    : id_(id),
      contribution_(contribution),
      result_(result),
      link_(cfg.node_phy),
      gc_(cfg.pool_bytes),
      pool_cache_(cfg.pool_cache) {
  sw.attach(id, link_);
  gc_.map_region("grad#" + std::to_string(id), contribution_.base,
                 contribution_.bytes, coherence::MesiState::kExclusive,
                 /*dba_eligible=*/false);
  gc_.map_region("reduced", result_.base, result_.bytes,
                 coherence::MesiState::kExclusive, /*dba_eligible=*/true);
  for (std::size_t i = 0; i < staging.size(); ++i) {
    gc_.map_region("stage#" + std::to_string(i), staging[i].base,
                   staging[i].bytes, coherence::MesiState::kInvalid,
                   /*dba_eligible=*/false);
  }
  coherence::HomeAgent::Options o;
  o.protocol = coherence::Protocol::kUpdate;
  o.cpu_mem = &pool.store();
  o.device_mem = &device_mem_;
  agent_ = std::make_unique<coherence::HomeAgent>(link_, gc_, pool_cache_, o);
  // Staged windows are produced by another node and demand-read here: no
  // clear producer/consumer, so they run stock invalidation MESI.
  for (const mem::Region& s : staging) agent_->demote_region(0.0, s.base);
  if (cfg.check) {
    check::ProtocolChecker::Options co;
    co.level = check::CheckLevel::kStrict;
    co.cpu_mem = &pool.store();
    co.device_mem = &device_mem_;
    checker_ = std::make_unique<check::ProtocolChecker>(*agent_, co);
  }
  if (reg != nullptr) agent_->set_metrics(reg);
}

FabricNode::~FabricNode() {
  // Unregister the link's registry flusher before the link dies.
  agent_->set_metrics(nullptr);
}

void FabricNode::set_gradients(std::span<const float> values) {
  if (values.size() * 4 != contribution_.bytes) {
    throw std::invalid_argument("FabricNode::set_gradients: shard size "
                                "mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    device_mem_.write_f32(contribution_.base + i * 4, values[i]);
  }
}

std::optional<cxl::Delivery> FabricNode::push_contribution(
    sim::Time now, std::uint64_t line) {
  return agent_->device_write_line(now,
                                   contribution_.base + line * mem::kLineBytes);
}

std::optional<cxl::Delivery> FabricNode::broadcast_result(sim::Time now,
                                                          std::uint64_t line) {
  return agent_->cpu_write_line(now, result_.base + line * mem::kLineBytes);
}

std::optional<cxl::Delivery> FabricNode::push_result(sim::Time now,
                                                     std::uint64_t line) {
  return agent_->device_write_line(now, result_.base + line * mem::kLineBytes);
}

coherence::HomeAgent::Access FabricNode::pull_line(sim::Time now,
                                                   mem::Addr addr) {
  return agent_->device_read_line(now, addr);
}

void FabricNode::invalidate_staged(sim::Time now, mem::Addr addr) {
  agent_->cpu_write_line(now, addr);
}

float FabricNode::device_f32(mem::Addr addr) const {
  return device_mem_.read_f32(addr);
}

void FabricNode::device_write_f32(mem::Addr addr, float v) {
  device_mem_.write_f32(addr, v);
}

std::vector<float> FabricNode::result_values() const {
  std::vector<float> out(result_.bytes / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = device_mem_.read_f32(result_.base + i * 4);
  }
  return out;
}

// --- PoolAllReduce ---------------------------------------------------------

PoolAllReduce::PoolAllReduce(const FabricConfig& cfg)
    : cfg_(cfg), pool_(cfg.pool_bytes, cfg.pool_base), switch_(cfg) {
  if (cfg_.nodes == 0) {
    throw std::invalid_argument("fabric: nodes must be >= 1");
  }
  if (cfg_.shard_bytes == 0 || cfg_.shard_bytes % mem::kLineBytes != 0) {
    throw std::invalid_argument(
        "fabric: shard_bytes must be a positive multiple of 64");
  }
  pool_.set_metrics(&metrics_);
  switch_.set_metrics(&metrics_);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    auto c = pool_.try_carve("grad#" + std::to_string(n), n, cfg_.shard_bytes);
    if (!c.has_value()) {
      throw std::runtime_error(
          "fabric: pool admission rejected a gradient carve-out — "
          "fabric_pool_bytes must cover (nodes + 1) * shard_bytes");
    }
    contributions_.push_back(*c);
  }
  auto r = pool_.try_carve("reduced", kSharedOwner, cfg_.shard_bytes);
  if (!r.has_value()) {
    throw std::runtime_error(
        "fabric: pool admission rejected the result carve-out — "
        "fabric_pool_bytes must cover (nodes + 1) * shard_bytes");
  }
  result_ = *r;
  reduce_ = std::make_unique<ReduceUnit>(pool_, contributions_, result_);
  reduce_->set_metrics(&metrics_);

  std::vector<mem::Region> staging;
  if (cfg_.reduce == ReduceStrategy::kPoolStaging) {
    for (std::uint32_t m = 1; m < cfg_.nodes; ++m) {
      staging.push_back(contributions_[m]);
    }
  }
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    nodes_.push_back(std::make_unique<FabricNode>(
        n, cfg_, switch_, pool_, contributions_[n], result_,
        n == 0 ? std::span<const mem::Region>(staging)
               : std::span<const mem::Region>(),
        &metrics_));
  }
  m_steps_ = &metrics_.counter("fabric.allreduce.steps");
  m_up_bytes_ = &metrics_.counter("fabric.allreduce.up_bytes");
  m_down_bytes_ = &metrics_.counter("fabric.allreduce.down_bytes");
}

void PoolAllReduce::set_node_gradients(std::uint32_t node,
                                       std::span<const float> values) {
  shard_.assert_held();
  nodes_.at(node)->set_gradients(values);
}

std::vector<float> PoolAllReduce::node_result(std::uint32_t node) const {
  shard_.assert_held();
  return nodes_.at(node)->result_values();
}

AllReduceReport PoolAllReduce::run_step() {
  shard_.assert_held();
  AllReduceReport r;
  r.step = step_;
  r.started = eq_.now();
  const PortStats tp0 = switch_.to_pool();
  const PortStats fp0 = switch_.from_pool();

  switch (cfg_.reduce) {
    case ReduceStrategy::kDbaMerge:
      run_dba_merge(r);
      break;
    case ReduceStrategy::kPoolStaging:
      run_pool_staging(r);
      break;
    case ReduceStrategy::kPerLink:
      run_per_link(r);
      break;
  }

  const PortStats tp1 = switch_.to_pool();
  const PortStats fp1 = switch_.from_pool();
  r.to_pool_bytes = tp1.wire_bytes - tp0.wire_bytes;
  r.from_pool_bytes = fp1.wire_bytes - fp0.wire_bytes;
  r.port_queue_time =
      (tp1.queue_time - tp0.queue_time) + (fp1.queue_time - fp0.queue_time);
  if (causal_ != nullptr) {
    // Phase chain over [started, broadcast_done]: the tail of each phase
    // window is re-attributed to switch queueing, the head to link
    // occupancy / the reduction. Port queue_time sums every packet's wait
    // across N concurrent streams, so the per-stream average — not the
    // aggregate — approximates the critical stream's queueing; it is
    // clamped to the phase window so the chain stays a partition.
    using obs::causal::Category;
    const double streams = static_cast<double>(cfg_.nodes);
    const sim::Time q_up =
        std::min((tp1.queue_time - tp0.queue_time) / streams,
                 r.push_done - r.started);
    const sim::Time q_down =
        std::min((fp1.queue_time - fp0.queue_time) / streams,
                 r.broadcast_done - r.reduce_done);
    std::uint32_t tail = causal_tail_;
    const auto note = [&](Category cat, sim::Time from, sim::Time to) {
      if (to > from) tail = causal_->add(cat, to, tail, from);
    };
    note(Category::kCxlUp, r.started, r.push_done - q_up);
    note(Category::kSwitchQueue, r.push_done - q_up, r.push_done);
    note(Category::kPoolReduce, r.push_done, r.reduce_done);
    note(Category::kCxlDown, r.reduce_done, r.broadcast_done - q_down);
    note(Category::kSwitchQueue, r.broadcast_done - q_down, r.broadcast_done);
    causal_tail_ = tail;
    r.causal_tail = tail;
    r.attribution =
        obs::causal::critical_path(*causal_, r.started, r.broadcast_done, tail);
  }
  m_steps_->add();
  m_up_bytes_->add(static_cast<double>(r.to_pool_bytes));
  m_down_bytes_->add(static_cast<double>(r.from_pool_bytes));
  ++step_;
  return r;
}

void PoolAllReduce::pump_streams(sim::Time start,
                                 const std::vector<std::uint32_t>& nodes,
                                 StreamOp op, std::uint8_t tag) {
  const std::uint64_t lines = cfg_.shard_bytes / mem::kLineBytes;
  auto pump =
      std::make_shared<std::function<void(std::uint32_t, std::uint64_t)>>();
  *pump = [this, op, lines, pump, tag](std::uint32_t n, std::uint64_t line) {
    shard_.assert_held();
    const sim::Time now = eq_.now();
    const auto d = (this->*op)(n, line, now);
    if (line + 1 >= lines) return;
    // Self-pacing: the next line is ready when the link admits this one,
    // which interleaves the N streams at the shared port naturally.
    sim::Time next = now;
    if (d.has_value() && d->accepted > next) next = d->accepted;
    sim::TagScope ts(eq_, tag);
    eq_.schedule_at(next, [pump, n, line] { (*pump)(n, line + 1); });
  };
  sim::TagScope ts(eq_, tag);
  for (const std::uint32_t n : nodes) {
    eq_.schedule_at(start, [pump, n] { (*pump)(n, 0); });
  }
  eq_.run();
}

std::optional<cxl::Delivery> PoolAllReduce::op_push(std::uint32_t node,
                                                    std::uint64_t line,
                                                    sim::Time now) {
  return nodes_[node]->push_contribution(now, line);
}

std::optional<cxl::Delivery> PoolAllReduce::op_broadcast(std::uint32_t node,
                                                         std::uint64_t line,
                                                         sim::Time now) {
  return nodes_[node]->broadcast_result(now, line);
}

sim::Time PoolAllReduce::fence_all() {
  sim::Time t = eq_.now();
  for (auto& n : nodes_) {
    const sim::Time f = n->fence(eq_.now());
    if (f > t) t = f;
  }
  eq_.run_until(t);
  return t;
}

void PoolAllReduce::run_dba_merge(AllReduceReport& r) {
  const std::uint64_t lines = cfg_.shard_bytes / mem::kLineBytes;
  if (cfg_.dba_enabled && step_ == 1) {
    // Step 0 seeded every node's result window at full precision; from now
    // on broadcasts splice dirty bytes onto that base (Section V).
    const dba::DbaRegister reg(true, cfg_.dirty_bytes);
    for (auto& n : nodes_) n->program_dba(eq_.now(), reg);
  }
  std::vector<std::uint32_t> all(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) all[i] = i;

  // Reset the merge watchdog before the push phase rewrites the staged
  // windows it recomputes against.
  reduce_->begin_step();
  pump_streams(eq_.now(), all, &PoolAllReduce::op_push,
               obs::causal::tag(obs::causal::Category::kCxlUp));
  r.push_done = fence_all();
  check_fabric("push");

  // Near-memory reduce: fold every staged shard into the accumulator and
  // commit, one modeled DBA latency per folded/committed line.
  sim::Time t = r.push_done;
  for (std::uint64_t line = 0; line < lines; ++line) {
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      t = reduce_->fold(t, n, line);
    }
    t = reduce_->commit(t, line);
  }
  eq_.run_until(t);
  r.reduce_done = t;
  check_fabric("reduce");

  pump_streams(t, all, &PoolAllReduce::op_broadcast,
               obs::causal::tag(obs::causal::Category::kCxlDown));
  r.broadcast_done = fence_all();
  check_fabric("broadcast");
}

void PoolAllReduce::run_pool_staging(AllReduceReport& r) {
  const std::uint64_t lines = cfg_.shard_bytes / mem::kLineBytes;
  std::vector<std::uint32_t> all(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) all[i] = i;

  pump_streams(eq_.now(), all, &PoolAllReduce::op_push,
               obs::causal::tag(obs::causal::Category::kCxlUp));
  r.push_done = fence_all();
  check_fabric("push");

  // The staged windows run stock invalidation MESI, and the reducer's
  // copies from the previous step are stale: the pool back-invalidates
  // them (CXL 3.x BI toward the sharer) before the reducer re-reads.
  sim::Time t = r.push_done;
  FabricNode& red = *nodes_[0];
  for (std::uint32_t m = 1; m < cfg_.nodes; ++m) {
    for (std::uint64_t line = 0; line < lines; ++line) {
      red.invalidate_staged(t, contributions_[m].base + line * mem::kLineBytes);
    }
  }
  t = red.fence(t);
  // The reducer demand-reads every other staged shard through the
  // contended from_pool port — each pull is a full round trip.
  for (std::uint32_t m = 1; m < cfg_.nodes; ++m) {
    for (std::uint64_t line = 0; line < lines; ++line) {
      const auto a =
          red.pull_line(t, contributions_[m].base + line * mem::kLineBytes);
      if (a.ready > t) t = a.ready;
    }
  }
  // Local reduce, charged at the ReduceUnit's per-line rate so wire
  // traffic — not compute — differentiates the strategies.
  t += static_cast<double>(lines) * static_cast<double>(cfg_.nodes) *
       dba::kModeledDbaLatency;
  const std::uint64_t floats = shard_floats();
  for (std::uint64_t w = 0; w < floats; ++w) {
    float sum = 0.0f;
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      sum += red.device_f32(contributions_[n].base + w * 4);
    }
    red.device_write_f32(result_.base + w * 4, sum);
  }
  // Result writeback up through the to_pool port, then fence.
  for (std::uint64_t line = 0; line < lines; ++line) {
    const auto d = red.push_result(t, line);
    if (d.has_value() && d->accepted > t) t = d->accepted;
  }
  t = red.fence(t);
  eq_.run_until(t);
  r.reduce_done = t;
  check_fabric("reduce");

  // Full-line broadcast to everyone but the reducer.
  std::vector<std::uint32_t> others;
  for (std::uint32_t n = 1; n < cfg_.nodes; ++n) others.push_back(n);
  if (!others.empty()) {
    pump_streams(t, others, &PoolAllReduce::op_broadcast,
                 obs::causal::tag(obs::causal::Category::kCxlDown));
  }
  r.broadcast_done = fence_all();
  check_fabric("broadcast");
}

void PoolAllReduce::run_per_link(AllReduceReport& r) {
  offload::Calibration cal = offload::default_calibration();
  cal.phy = cfg_.node_phy;
  const offload::PerLinkReduce pl = offload::per_link_reduce(
      cfg_.nodes, cfg_.shard_bytes, cal, /*shared_upstream=*/true);
  r.push_done = eq_.now() + pl.ship;
  r.reduce_done = r.push_done + pl.reduce;
  r.broadcast_done = r.reduce_done + pl.broadcast;
  eq_.run_until(r.broadcast_done);
  // The per-link exchange is exact — land the scalar sum in every node's
  // result window so node_result() is comparable across strategies.
  const std::uint64_t floats = shard_floats();
  for (std::uint64_t w = 0; w < floats; ++w) {
    float sum = 0.0f;
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      sum += nodes_[n]->device_f32(contributions_[n].base + w * 4);
    }
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      nodes_[n]->device_write_f32(result_.base + w * 4, sum);
    }
  }
}

void PoolAllReduce::check_fabric(const char* phase) {
  if (!cfg_.check) return;
  // Carve-out disjointness: DCD capacity is handed out exclusively.
  const auto& carves = pool_.carveouts();
  for (std::size_t i = 0; i < carves.size(); ++i) {
    for (std::size_t j = i + 1; j < carves.size(); ++j) {
      if (carves[i].region.overlaps(carves[j].region)) {
        throw std::runtime_error(
            std::string("fabric invariant violated (") + phase +
            "): carve-outs '" + carves[i].name + "' and '" + carves[j].name +
            "' overlap");
      }
    }
  }
  // Shared-port packet conservation: every packet a node link carried was
  // forwarded through exactly one shared pool port.
  std::uint64_t up = 0;
  std::uint64_t down = 0;
  for (const auto& n : nodes_) {
    up += n->link().channel(cxl::Direction::kDeviceToCpu).stats().packets;
    down += n->link().channel(cxl::Direction::kCpuToDevice).stats().packets;
  }
  if (up != switch_.to_pool().packets || down != switch_.from_pool().packets) {
    throw std::runtime_error(
        std::string("fabric invariant violated (") + phase +
        "): shared-port packet counts diverge from the node links' totals");
  }
  // The merge watchdog (double-applied folds, lost contribution bytes).
  if (const auto v = reduce_->check_invariants(); v.has_value()) {
    throw std::runtime_error(std::string("fabric invariant violated (") +
                             phase + "): " + *v);
  }
}

}  // namespace teco::fabric
