// One direction of the serial CXL link.
//
// The paper's emulator treats CXL as a serial bus: "updated cache lines ...
// are going through the link one after another in a stream manner", gated by
// a 128-entry pending queue in the CXL controller (Section VIII-A). The
// channel is therefore an order-preserving serializer with queue-depth
// backpressure, implemented in closed form: each submission records when the
// producer could actually hand the packet over (stall if the queue is full),
// when the wire finishes it, and when it lands (plus propagation latency).
// This handles tens of millions of line-grain submissions without an event
// per packet.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

struct ChannelStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time busy_time = 0.0;        ///< Wire occupancy.
  sim::Time producer_stall = 0.0;   ///< Time producers waited on a full queue.
  std::uint64_t stalled_packets = 0;
  sim::Time last_finish = 0.0;      ///< Wire-finish of the latest packet.
  sim::Time last_delivery = 0.0;    ///< Arrival (finish + latency).
};

struct Delivery {
  sim::Time accepted;   ///< When the producer's submission was accepted.
  sim::Time finished;   ///< When the wire finished transmitting.
  sim::Time delivered;  ///< finished + propagation latency.
};

class Channel {
 public:
  Channel(std::string name, sim::Bandwidth bandwidth, sim::Time latency,
          std::size_t queue_capacity = 128);

  /// Submit a packet that becomes ready at `t_ready`. Returns the timing of
  /// its acceptance/transmission/delivery. Submissions must be made in
  /// nondecreasing `t_ready` order per producer; the channel itself imposes
  /// FIFO wire order on whatever it is given.
  Delivery submit(sim::Time t_ready, const Packet& pkt);

  /// Bulk submission of `count` identical packets (a homogeneous stream).
  /// Equivalent to calling submit() `count` times but O(1); valid because
  /// for a saturated FIFO the k-th completion is start + k * per_packet.
  Delivery submit_stream(sim::Time t_ready, const Packet& pkt,
                         std::uint64_t count);

  /// Earliest time by which everything submitted so far has been delivered.
  sim::Time drain_time() const { return stats_.last_delivery; }

  const ChannelStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  sim::Bandwidth bandwidth() const { return bandwidth_; }

  void reset();

 private:
  sim::Time queue_admission(sim::Time t_ready);
  void record_finish(sim::Time finish);

  std::string name_;
  sim::Bandwidth bandwidth_;
  sim::Time latency_;
  std::size_t capacity_;
  /// Wire-finish times of up to `capacity_` most recent packets, oldest
  /// first; the front is the packet whose completion frees a queue slot.
  std::deque<sim::Time> inflight_finish_;
  sim::Time wire_free_ = 0.0;
  ChannelStats stats_;
};

}  // namespace teco::cxl
