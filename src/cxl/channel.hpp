// One direction of the serial CXL link.
//
// The paper's emulator treats CXL as a serial bus: "updated cache lines ...
// are going through the link one after another in a stream manner", gated by
// a 128-entry pending queue in the CXL controller (Section VIII-A). The
// channel is therefore an order-preserving serializer with queue-depth
// backpressure, implemented in closed form: each submission records when the
// producer could actually hand the packet over (stall if the queue is full),
// when the wire finishes it, and when it lands (plus propagation latency).
// This handles tens of millions of line-grain submissions without an event
// per packet.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "cxl/flit.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "cxl/reliability.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

struct ChannelStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time busy_time = 0.0;        ///< Wire occupancy (includes retries).
  sim::Time producer_stall = 0.0;   ///< Time producers waited on a full queue.
  std::uint64_t stalled_packets = 0;
  sim::Time last_finish = 0.0;      ///< Wire-finish of the latest packet.
  sim::Time last_delivery = 0.0;    ///< Arrival (finish + latency).
  // Monte-Carlo link-retry accounting (enable_retry()).
  std::uint64_t flits = 0;          ///< Goodput flits carried.
  std::uint64_t retried_flits = 0;  ///< Extra transmissions due to CRC fails.
  sim::Time retry_time = 0.0;       ///< Wire + handshake time spent retrying.
};

struct Delivery {
  sim::Time accepted;   ///< When the producer's submission was accepted.
  sim::Time finished;   ///< When the wire finished transmitting.
  sim::Time delivered;  ///< finished + propagation latency.
};

class Channel {
 public:
  Channel(std::string name, sim::Bandwidth bandwidth, sim::Time latency,
          std::size_t queue_capacity = 128);

  /// Submit a packet that becomes ready at `t_ready`. Returns the timing of
  /// its acceptance/transmission/delivery. Submissions must be made in
  /// nondecreasing `t_ready` order per producer; the channel itself imposes
  /// FIFO wire order on whatever it is given.
  Delivery submit(sim::Time t_ready, const Packet& pkt);

  /// Bulk submission of `count` identical packets (a homogeneous stream).
  /// Equivalent to calling submit() `count` times but O(1); valid because
  /// for a saturated FIFO the k-th completion is start + k * per_packet.
  Delivery submit_stream(sim::Time t_ready, const Packet& pkt,
                         std::uint64_t count);

  /// Earliest time by which everything submitted so far has been delivered.
  sim::Time drain_time() const { return stats_.last_delivery; }

  /// Make the analytic RetryModel executable: every submission is framed
  /// into flits and a seeded Monte-Carlo draw decides how many arrive
  /// corrupted and are retransmitted (each retransmission re-occupies the
  /// wire for one flit time plus the retry handshake round trip). With the
  /// spec BER (1e-12) this is a no-op in practice — which is exactly the
  /// claim reliability.hpp makes analytically and the property test checks
  /// empirically at elevated BERs.
  void enable_retry(const RetryModel& model, std::uint64_t seed,
                    const FlitConfig& flit = {});
  void disable_retry() { retry_.reset(); }
  bool retry_enabled() const { return retry_.has_value(); }

  const ChannelStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  sim::Bandwidth bandwidth() const { return bandwidth_; }

  void reset();

 private:
  struct RetryState {
    RetryModel model;
    FlitConfig flit;
    double flit_error_prob = 0.0;
    sim::Rng rng;
  };

  sim::Time queue_admission(sim::Time t_ready);
  void record_finish(sim::Time finish);
  /// Extra wire + handshake time for retransmissions of a submission that
  /// carries `wire_bytes` of payload (0 when retry is disabled).
  sim::Time retry_penalty(std::uint64_t wire_bytes);

  std::string name_;
  sim::Bandwidth bandwidth_;
  sim::Time latency_;
  std::size_t capacity_;
  /// Wire-finish times of up to `capacity_` most recent packets, oldest
  /// first; the front is the packet whose completion frees a queue slot.
  std::deque<sim::Time> inflight_finish_;
  sim::Time wire_free_ = 0.0;
  ChannelStats stats_;
  std::optional<RetryState> retry_;
};

}  // namespace teco::cxl
