// Full-duplex CXL link: one serial channel per direction plus CXLFENCE.
//
// PCIe (and therefore CXL) is full duplex, so CPU->device parameter pushes
// and device->CPU gradient writebacks never contend with each other; each
// direction carries the PhyConfig CXL bandwidth. CXLFENCE() (Section IV-A2)
// resolves to the drain time of the fenced direction: the earliest instant
// by which every previously submitted coherence packet has been delivered.
#pragma once

#include <cstdint>

#include "check/observer.hpp"
#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

enum class Direction : std::uint8_t {
  kCpuToDevice,
  kDeviceToCpu,
};

/// Injection hook consulted before every submission. ft::FaultInjector uses
/// it to model link-down/retrain windows: the returned delay shifts the
/// packet's ready time (the producer is stalled until the link is back up).
/// Return 0 for healthy transmissions.
class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;
  virtual sim::Time transmit_delay(Direction dir, sim::Time t_ready,
                                   const Packet& pkt, std::uint64_t count) = 0;
};

class Link {
 public:
  explicit Link(const PhyConfig& phy = {}, std::size_t queue_capacity = 128)
      : phy_(phy),
        down_("cpu->dev", phy.cxl_bandwidth(), phy.packet_latency,
              queue_capacity),
        up_("dev->cpu", phy.cxl_bandwidth(), phy.packet_latency,
            queue_capacity) {}

  Delivery send(Direction dir, sim::Time t_ready, const Packet& pkt) {
    count(pkt, 1);
    const Delivery d = channel(dir).submit(faulted(dir, t_ready, pkt, 1), pkt);
    notify(dir, t_ready, pkt, 1, d);
    return d;
  }

  Delivery send_stream(Direction dir, sim::Time t_ready, const Packet& pkt,
                       std::uint64_t n) {
    count(pkt, n);
    const Delivery d =
        channel(dir).submit_stream(faulted(dir, t_ready, pkt, n), pkt, n);
    notify(dir, t_ready, pkt, n, d);
    return d;
  }

  /// CXLFENCE(): completion time of all in-flight traffic in `dir`,
  /// observed at `now`.
  sim::Time fence(Direction dir, sim::Time now) const {
    const sim::Time drain = channel(dir).drain_time();
    const sim::Time t = drain > now ? drain : now;
    if (observer_ != nullptr) {
      observer_->on_fence(static_cast<std::uint8_t>(dir), now, t);
    }
    return t;
  }

  /// Fence both directions.
  sim::Time fence_all(sim::Time now) const {
    return fence(Direction::kDeviceToCpu,
                 fence(Direction::kCpuToDevice, now));
  }

  Channel& channel(Direction dir) {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }
  const Channel& channel(Direction dir) const {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }

  const PhyConfig& phy() const { return phy_; }
  const sim::CounterSet& message_counts() const { return message_counts_; }

  std::uint64_t total_wire_bytes() const {
    return down_.stats().wire_bytes + up_.stats().wire_bytes;
  }

  void reset() {
    down_.reset();
    up_.reset();
    message_counts_.reset();
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  /// Attach before traffic starts (or re-baseline): the checker's flit
  /// conservation compares its observed injections against channel stats.
  void set_observer(check::Observer* obs) { observer_ = obs; }

  /// Attach/detach a fault-injection hook (nullptr to detach). Consulted on
  /// every send; see LinkFaultHook.
  void set_fault_hook(LinkFaultHook* hook) { fault_hook_ = hook; }

  /// Enable the Monte-Carlo CRC-retry path on both directions. Each
  /// direction gets a decorrelated stream derived from `seed`.
  void enable_retry(const RetryModel& model, std::uint64_t seed,
                    const FlitConfig& flit = {}) {
    down_.enable_retry(model, seed * 2 + 1, flit);
    up_.enable_retry(model, seed * 2 + 2, flit);
  }

 private:
  sim::Time faulted(Direction dir, sim::Time t_ready, const Packet& pkt,
                    std::uint64_t n) {
    if (fault_hook_ == nullptr) return t_ready;
    return t_ready + fault_hook_->transmit_delay(dir, t_ready, pkt, n);
  }
  void count(const Packet& pkt, std::uint64_t n) {
    message_counts_.add(std::string(to_string(pkt.type)), n);
  }

  void notify(Direction dir, sim::Time t_ready, const Packet& pkt,
              std::uint64_t n, const Delivery& d) {
    if (observer_ != nullptr) {
      observer_->on_packet(t_ready, static_cast<std::uint8_t>(dir),
                           static_cast<std::uint8_t>(pkt.type), pkt.addr, n,
                           d.delivered);
    }
  }

  PhyConfig phy_;
  Channel down_;
  Channel up_;
  check::Observer* observer_ = nullptr;
  LinkFaultHook* fault_hook_ = nullptr;
  sim::CounterSet message_counts_;
};

}  // namespace teco::cxl
