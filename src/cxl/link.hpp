// Full-duplex CXL link: one serial channel per direction plus CXLFENCE.
//
// PCIe (and therefore CXL) is full duplex, so CPU->device parameter pushes
// and device->CPU gradient writebacks never contend with each other; each
// direction carries the PhyConfig CXL bandwidth. CXLFENCE() (Section IV-A2)
// resolves to the drain time of the fenced direction: the earliest instant
// by which every previously submitted coherence packet has been delivered.
#pragma once

#include <cstdint>

#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

enum class Direction : std::uint8_t {
  kCpuToDevice,
  kDeviceToCpu,
};

class Link {
 public:
  explicit Link(const PhyConfig& phy = {}, std::size_t queue_capacity = 128)
      : phy_(phy),
        down_("cpu->dev", phy.cxl_bandwidth(), phy.packet_latency,
              queue_capacity),
        up_("dev->cpu", phy.cxl_bandwidth(), phy.packet_latency,
            queue_capacity) {}

  Delivery send(Direction dir, sim::Time t_ready, const Packet& pkt) {
    count(pkt, 1);
    return channel(dir).submit(t_ready, pkt);
  }

  Delivery send_stream(Direction dir, sim::Time t_ready, const Packet& pkt,
                       std::uint64_t n) {
    count(pkt, n);
    return channel(dir).submit_stream(t_ready, pkt, n);
  }

  /// CXLFENCE(): completion time of all in-flight traffic in `dir`,
  /// observed at `now`.
  sim::Time fence(Direction dir, sim::Time now) const {
    const sim::Time drain = channel(dir).drain_time();
    return drain > now ? drain : now;
  }

  /// Fence both directions.
  sim::Time fence_all(sim::Time now) const {
    return fence(Direction::kDeviceToCpu,
                 fence(Direction::kCpuToDevice, now));
  }

  Channel& channel(Direction dir) {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }
  const Channel& channel(Direction dir) const {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }

  const PhyConfig& phy() const { return phy_; }
  const sim::CounterSet& message_counts() const { return message_counts_; }

  std::uint64_t total_wire_bytes() const {
    return down_.stats().wire_bytes + up_.stats().wire_bytes;
  }

  void reset() {
    down_.reset();
    up_.reset();
    message_counts_.reset();
  }

 private:
  void count(const Packet& pkt, std::uint64_t n) {
    message_counts_.add(std::string(to_string(pkt.type)), n);
  }

  PhyConfig phy_;
  Channel down_;
  Channel up_;
  sim::CounterSet message_counts_;
};

}  // namespace teco::cxl
