// Full-duplex CXL link: one serial channel per direction plus CXLFENCE.
//
// PCIe (and therefore CXL) is full duplex, so CPU->device parameter pushes
// and device->CPU gradient writebacks never contend with each other; each
// direction carries the PhyConfig CXL bandwidth. CXLFENCE() (Section IV-A2)
// resolves to the drain time of the fenced direction: the earliest instant
// by which every previously submitted coherence packet has been delivered.
#pragma once

#include <cstdint>

#include "check/observer.hpp"
#include "cxl/channel.hpp"
#include "cxl/flit.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

enum class Direction : std::uint8_t {
  kCpuToDevice,
  kDeviceToCpu,
};

/// Injection hook consulted before every submission. ft::FaultInjector uses
/// it to model link-down/retrain windows: the returned delay shifts the
/// packet's ready time (the producer is stalled until the link is back up).
/// Return 0 for healthy transmissions.
class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;
  virtual sim::Time transmit_delay(Direction dir, sim::Time t_ready,
                                   const Packet& pkt, std::uint64_t count) = 0;
};

/// Egress forwarder: the switch attach point for pooled-fabric topologies
/// (fabric::CxlSwitch). When attached, every packet that finishes on this
/// link's private wire is handed to the forwarder, which extends the
/// delivery through its next hop (a shared pool port) and returns the
/// end-to-end timing. CXLFENCE() on a forwarded link covers the forwarder's
/// drain too, so fence completeness holds across the whole path. The
/// forwarder must outlive the link or be detached first.
class LinkForwarder {
 public:
  virtual ~LinkForwarder() = default;
  /// `local` is the delivery on this link's private wire; the packet enters
  /// the next hop at local.finished. Returns the extended delivery.
  virtual Delivery forward(Direction dir, const Packet& pkt, std::uint64_t n,
                           const Delivery& local) = 0;
  /// Earliest time everything forwarded so far in `dir` has been delivered.
  virtual sim::Time forward_drain(Direction dir) const = 0;
};

class Link {
 public:
  explicit Link(const PhyConfig& phy = {}, std::size_t queue_capacity = 128)
      : phy_(phy),
        down_("cpu->dev", phy.cxl_bandwidth(), phy.packet_latency,
              queue_capacity),
        up_("dev->cpu", phy.cxl_bandwidth(), phy.packet_latency,
            queue_capacity) {}

  Delivery send(Direction dir, sim::Time t_ready, const Packet& pkt) {
    count(pkt, 1);
    const std::uint64_t retried0 = channel(dir).stats().retried_flits;
    Delivery d = channel(dir).submit(faulted(dir, t_ready, pkt, 1), pkt);
    if (forwarder_ != nullptr) d = forwarder_->forward(dir, pkt, 1, d);
    record(dir, pkt, 1, channel(dir).stats().retried_flits - retried0);
    notify(dir, t_ready, pkt, 1, d);
    return d;
  }

  Delivery send_stream(Direction dir, sim::Time t_ready, const Packet& pkt,
                       std::uint64_t n) {
    count(pkt, n);
    const std::uint64_t retried0 = channel(dir).stats().retried_flits;
    Delivery d =
        channel(dir).submit_stream(faulted(dir, t_ready, pkt, n), pkt, n);
    if (forwarder_ != nullptr) d = forwarder_->forward(dir, pkt, n, d);
    record(dir, pkt, n, channel(dir).stats().retried_flits - retried0);
    notify(dir, t_ready, pkt, n, d);
    return d;
  }

  /// CXLFENCE(): completion time of all in-flight traffic in `dir`,
  /// observed at `now`. With a forwarder attached, covers the forwarded
  /// hop's drain too — the fence is end-to-end.
  sim::Time fence(Direction dir, sim::Time now) const {
    sim::Time drain = channel(dir).drain_time();
    if (forwarder_ != nullptr) {
      const sim::Time f = forwarder_->forward_drain(dir);
      if (f > drain) drain = f;
    }
    const sim::Time t = drain > now ? drain : now;
    if (observer_ != nullptr) {
      observer_->on_fence(static_cast<std::uint8_t>(dir), now, t);
    }
    return t;
  }

  /// Fence both directions.
  sim::Time fence_all(sim::Time now) const {
    return fence(Direction::kDeviceToCpu,
                 fence(Direction::kCpuToDevice, now));
  }

  Channel& channel(Direction dir) {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }
  const Channel& channel(Direction dir) const {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }

  const PhyConfig& phy() const { return phy_; }
  const sim::CounterSet& message_counts() const { return message_counts_; }

  std::uint64_t total_wire_bytes() const {
    return down_.stats().wire_bytes + up_.stats().wire_bytes;
  }

  void reset() {
    down_.reset();
    up_.reset();
    message_counts_.reset();
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  /// Attach before traffic starts (or re-baseline): the checker's flit
  /// conservation compares its observed injections against channel stats.
  void set_observer(check::Observer* obs) { observer_ = obs; }

  /// Attach/detach a fault-injection hook (nullptr to detach). Consulted on
  /// every send; see LinkFaultHook.
  void set_fault_hook(LinkFaultHook* hook) { fault_hook_ = hook; }

  /// Attach/detach an egress forwarder (nullptr to detach); see
  /// LinkForwarder. Attach before traffic starts: deliveries returned to
  /// producers and reported to the observer are end-to-end once attached.
  void set_forwarder(LinkForwarder* fwd) { forwarder_ = fwd; }

  /// Attach/detach a telemetry registry (nullptr to detach). Handles are
  /// resolved once here; per-send recording is a pointer check plus a few
  /// counter adds. Both the link-layer view (cxl.{down,up}.*) and the
  /// protocol view (coherence.{m2s,s2m}.*) are recorded at this choke point
  /// because every coherence message — the same stream the protocol
  /// checker's flit-conservation invariant observes via notify() — crosses
  /// the link exactly once. m2s (master-to-subordinate) is the CPU->device
  /// "down" channel; s2m is the device->CPU "up" channel.
  /// Lifetime: the link registers a read-barrier flusher with the
  /// registry; do not read the registry after the link is destroyed
  /// without calling set_metrics(nullptr) first.
  void set_metrics(obs::MetricsRegistry* reg) {
    if (metrics_ != nullptr && metrics_ != reg) {
      metrics_->remove_flusher(this);
    }
    if (reg == nullptr) {
      metrics_ = nullptr;
      return;
    }
    auto wire = [reg](DirMetrics& m, const char* cxl_dir,
                      const char* coh_dir) {
      const std::string c = std::string("cxl.") + cxl_dir + '.';
      const std::string h = std::string("coherence.") + coh_dir + '.';
      m.flits = &reg->counter(c + "flits");
      m.bytes = &reg->counter(c + "bytes");
      m.retries = &reg->counter(c + "retries");
      m.crc_errors = &reg->counter(c + "crc_errors");
      m.msgs = &reg->counter(h + "msgs");
      m.flushdata = &reg->counter(h + "flushdata");
      m.snoop = &reg->counter(h + "snoop");
    };
    wire(dir_metrics_[0], "down", "m2s");
    wire(dir_metrics_[1], "up", "s2m");
    metrics_ = reg;
    // Per-send recording lands in the DirMetrics pending fields (one hot
    // struct, no scattered counter stores); the registry drains them
    // through this read barrier before any aggregate read.
    reg->add_flusher(this, [this] { flush_metrics(); });
  }

  /// Enable the Monte-Carlo CRC-retry path on both directions. Each
  /// direction gets a decorrelated stream derived from `seed`.
  void enable_retry(const RetryModel& model, std::uint64_t seed,
                    const FlitConfig& flit = {}) {
    down_.enable_retry(model, seed * 2 + 1, flit);
    up_.enable_retry(model, seed * 2 + 2, flit);
  }

 private:
  sim::Time faulted(Direction dir, sim::Time t_ready, const Packet& pkt,
                    std::uint64_t n) {
    if (fault_hook_ == nullptr) return t_ready;
    return t_ready + fault_hook_->transmit_delay(dir, t_ready, pkt, n);
  }
  void count(const Packet& pkt, std::uint64_t n) {
    message_counts_.add(std::string(to_string(pkt.type)), n);
  }

  /// Flits a burst of `n` copies of `pkt` occupies on the wire. Control
  /// messages and 32-bit-sized data payloads go through the FlitCodec's
  /// exact packing arithmetic; the baseline runtime's multi-GB bulk-DMA
  /// packets fall back to whole payload flits.
  std::uint64_t flits_for(const Packet& pkt, std::uint64_t n) const {
    const FlitConfig& fc = codec_.config();
    if (pkt.payload_bytes == 0) {
      return codec_.wire_bytes_for_control(n) / fc.flit_wire_bytes();
    }
    if (pkt.payload_bytes <= 0xffffffffULL) {
      return codec_.wire_bytes_for_burst(
                 n, static_cast<std::uint32_t>(pkt.payload_bytes)) /
             fc.flit_wire_bytes();
    }
    const std::uint64_t per_flit = fc.flit_payload_bytes();
    return (pkt.payload_bytes + per_flit - 1) / per_flit * n;
  }

  void record(Direction dir, const Packet& pkt, std::uint64_t n,
              std::uint64_t retried) {
#ifndef TECO_OBS_DISABLED
    if (metrics_ == nullptr) return;
    DirMetrics& m = dir_metrics_[dir == Direction::kCpuToDevice ? 0 : 1];
    // The codec packing arithmetic dominates the recording cost, and hot
    // loops send runs of identical packets — one (payload, n) memo per
    // direction drops the steady-state cost to a compare plus the adds.
    if (pkt.payload_bytes != m.memo_payload || n != m.memo_n) {
      m.memo_payload = pkt.payload_bytes;
      m.memo_n = n;
      m.memo_flits = static_cast<double>(flits_for(pkt, n));
      m.memo_bytes = static_cast<double>(pkt.wire_bytes() * n);
    }
    m.p_flits += m.memo_flits;
    m.p_bytes += m.memo_bytes;
    if (retried != 0) {
      // Monte-Carlo retry path: every retransmission was triggered by
      // exactly one CRC-failed flit, so the two counts coincide.
      m.p_retries += static_cast<double>(retried);
    }
    m.p_msgs += static_cast<double>(n);
    if (pkt.type == MessageType::kFlushData) {
      m.p_flushdata += static_cast<double>(n);
    } else if (pkt.type == MessageType::kInvalidate ||
               pkt.type == MessageType::kInvAck) {
      m.p_snoop += static_cast<double>(n);
    }
#else
    (void)dir;
    (void)pkt;
    (void)n;
    (void)retried;
#endif
  }

  void notify(Direction dir, sim::Time t_ready, const Packet& pkt,
              std::uint64_t n, const Delivery& d) {
    if (observer_ != nullptr) {
      observer_->on_packet(t_ready, static_cast<std::uint8_t>(dir),
                           static_cast<std::uint8_t>(pkt.type), pkt.addr, n,
                           d.delivered);
    }
  }

  struct DirMetrics {
    obs::Counter* flits = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* crc_errors = nullptr;
    obs::Counter* msgs = nullptr;
    obs::Counter* flushdata = nullptr;
    obs::Counter* snoop = nullptr;
    /// Memo of the last (payload, n) -> (flits, wire bytes) conversion.
    std::uint64_t memo_payload = ~0ull;
    std::uint64_t memo_n = 0;
    double memo_flits = 0.0;
    double memo_bytes = 0.0;
    /// Deferred deltas, drained into the counters by flush_metrics().
    double p_flits = 0.0;
    double p_bytes = 0.0;
    double p_retries = 0.0;
    double p_msgs = 0.0;
    double p_flushdata = 0.0;
    double p_snoop = 0.0;
  };

  /// Drain the pending per-direction deltas into the registry counters.
  /// Called by the registry's read barrier, so aggregate reads always see
  /// up-to-date totals.
  void flush_metrics() {
    for (DirMetrics& m : dir_metrics_) {
      if (m.p_flits != 0.0) m.flits->add(m.p_flits);
      if (m.p_bytes != 0.0) m.bytes->add(m.p_bytes);
      if (m.p_retries != 0.0) {
        m.retries->add(m.p_retries);
        m.crc_errors->add(m.p_retries);
      }
      if (m.p_msgs != 0.0) m.msgs->add(m.p_msgs);
      if (m.p_flushdata != 0.0) m.flushdata->add(m.p_flushdata);
      if (m.p_snoop != 0.0) m.snoop->add(m.p_snoop);
      m.p_flits = m.p_bytes = m.p_retries = 0.0;
      m.p_msgs = m.p_flushdata = m.p_snoop = 0.0;
    }
  }

  PhyConfig phy_;
  Channel down_;
  Channel up_;
  check::Observer* observer_ = nullptr;
  LinkFaultHook* fault_hook_ = nullptr;
  LinkForwarder* forwarder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  DirMetrics dir_metrics_[2];  ///< [0]=down/m2s, [1]=up/s2m.
  FlitCodec codec_;
  sim::CounterSet message_counts_;
};

}  // namespace teco::cxl
