// Full-duplex CXL link: one serial channel per direction plus CXLFENCE.
//
// PCIe (and therefore CXL) is full duplex, so CPU->device parameter pushes
// and device->CPU gradient writebacks never contend with each other; each
// direction carries the PhyConfig CXL bandwidth. CXLFENCE() (Section IV-A2)
// resolves to the drain time of the fenced direction: the earliest instant
// by which every previously submitted coherence packet has been delivered.
#pragma once

#include <cstdint>

#include "check/observer.hpp"
#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

enum class Direction : std::uint8_t {
  kCpuToDevice,
  kDeviceToCpu,
};

class Link {
 public:
  explicit Link(const PhyConfig& phy = {}, std::size_t queue_capacity = 128)
      : phy_(phy),
        down_("cpu->dev", phy.cxl_bandwidth(), phy.packet_latency,
              queue_capacity),
        up_("dev->cpu", phy.cxl_bandwidth(), phy.packet_latency,
            queue_capacity) {}

  Delivery send(Direction dir, sim::Time t_ready, const Packet& pkt) {
    count(pkt, 1);
    const Delivery d = channel(dir).submit(t_ready, pkt);
    notify(dir, t_ready, pkt, 1, d);
    return d;
  }

  Delivery send_stream(Direction dir, sim::Time t_ready, const Packet& pkt,
                       std::uint64_t n) {
    count(pkt, n);
    const Delivery d = channel(dir).submit_stream(t_ready, pkt, n);
    notify(dir, t_ready, pkt, n, d);
    return d;
  }

  /// CXLFENCE(): completion time of all in-flight traffic in `dir`,
  /// observed at `now`.
  sim::Time fence(Direction dir, sim::Time now) const {
    const sim::Time drain = channel(dir).drain_time();
    const sim::Time t = drain > now ? drain : now;
    if (observer_ != nullptr) {
      observer_->on_fence(static_cast<std::uint8_t>(dir), now, t);
    }
    return t;
  }

  /// Fence both directions.
  sim::Time fence_all(sim::Time now) const {
    return fence(Direction::kDeviceToCpu,
                 fence(Direction::kCpuToDevice, now));
  }

  Channel& channel(Direction dir) {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }
  const Channel& channel(Direction dir) const {
    return dir == Direction::kCpuToDevice ? down_ : up_;
  }

  const PhyConfig& phy() const { return phy_; }
  const sim::CounterSet& message_counts() const { return message_counts_; }

  std::uint64_t total_wire_bytes() const {
    return down_.stats().wire_bytes + up_.stats().wire_bytes;
  }

  void reset() {
    down_.reset();
    up_.reset();
    message_counts_.reset();
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  /// Attach before traffic starts (or re-baseline): the checker's flit
  /// conservation compares its observed injections against channel stats.
  void set_observer(check::Observer* obs) { observer_ = obs; }

 private:
  void count(const Packet& pkt, std::uint64_t n) {
    message_counts_.add(std::string(to_string(pkt.type)), n);
  }

  void notify(Direction dir, sim::Time t_ready, const Packet& pkt,
              std::uint64_t n, const Delivery& d) {
    if (observer_ != nullptr) {
      observer_->on_packet(t_ready, static_cast<std::uint8_t>(dir),
                           static_cast<std::uint8_t>(pkt.type), pkt.addr, n,
                           d.delivered);
    }
  }

  PhyConfig phy_;
  Channel down_;
  Channel up_;
  check::Observer* observer_ = nullptr;
  sim::CounterSet message_counts_;
};

}  // namespace teco::cxl
