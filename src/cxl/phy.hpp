// Physical-layer parameters for the CPU<->accelerator interconnect.
//
// The paper emulates PCIe 3.0 x16 (16 GB/s raw) and charges CXL traffic
// 94.3 % of that (Section VIII-A). Baseline ZeRO-Offload uses explicit
// DMA copies (cudaMemcpy-style), which on real systems reach ~85 % of raw
// after per-transfer setup latency; those two constants are the only knobs
// separating the baseline's coarse copies from CXL's streamed lines.
#pragma once

#include "sim/time.hpp"

namespace teco::cxl {

struct PhyConfig {
  /// Raw serial-bus bandwidth (PCIe 3.0 x16).
  sim::Bandwidth raw_bandwidth = 16.0 * sim::kGBps;
  /// Fraction of raw bandwidth CXL.cache payload traffic achieves [20],[106].
  double cxl_efficiency = 0.943;
  /// Fraction of raw bandwidth bulk DMA copies achieve.
  double dma_efficiency = 0.85;
  /// One-way propagation + protocol latency per CXL packet.
  sim::Time packet_latency = sim::ns(400);
  /// Per-transfer software/driver setup cost for explicit DMA copies.
  sim::Time dma_setup_latency = sim::us(10);

  sim::Bandwidth cxl_bandwidth() const { return raw_bandwidth * cxl_efficiency; }
  sim::Bandwidth dma_bandwidth() const { return raw_bandwidth * dma_efficiency; }
};

/// PCIe 5.0 variant used for sensitivity discussion (4x gen3 bandwidth).
inline PhyConfig pcie5_phy() {
  PhyConfig p;
  p.raw_bandwidth = 64.0 * sim::kGBps;
  return p;
}

}  // namespace teco::cxl
