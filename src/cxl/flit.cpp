#include "cxl/flit.hpp"

namespace teco::cxl {

std::uint64_t FlitCodec::slots_for_payload(std::uint32_t payload_bytes) const {
  return (payload_bytes + cfg_.slot_bytes - 1) / cfg_.slot_bytes;
}

std::uint64_t FlitCodec::flits_for_slots(std::uint64_t slots) const {
  return (slots + cfg_.slots_per_flit - 1) / cfg_.slots_per_flit;
}

std::uint64_t FlitCodec::wire_bytes_for_burst(
    std::uint64_t n, std::uint32_t payload_bytes) const {
  if (n == 0) return 0;
  const std::uint64_t data_slots = n * slots_for_payload(payload_bytes);
  const std::uint64_t header_slots =
      (n + cfg_.messages_per_header - 1) / cfg_.messages_per_header;
  const std::uint64_t flits = flits_for_slots(data_slots + header_slots);
  return flits * cfg_.flit_wire_bytes();
}

std::uint64_t FlitCodec::wire_bytes_for_control(std::uint64_t n) const {
  if (n == 0) return 0;
  return flits_for_slots(n) * cfg_.flit_wire_bytes();
}

double FlitCodec::data_efficiency(std::uint32_t payload_bytes) const {
  // Evaluate over a long burst so per-flit rounding amortizes away.
  constexpr std::uint64_t kBurst = 1 << 20;
  const double payload =
      static_cast<double>(kBurst) * payload_bytes;
  const double wire =
      static_cast<double>(wire_bytes_for_burst(kBurst, payload_bytes));
  return payload / wire * cfg_.phy_encoding;
}

}  // namespace teco::cxl
