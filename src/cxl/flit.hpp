// CXL link-layer flit framing.
//
// The paper (and COARSE [106]) charge CXL traffic 94.3 % of the raw PCIe
// bandwidth. That number is not arbitrary — it falls out of the CXL 1.1/2.0
// link layer: 528-bit (66 B) flits of four 16 B slots plus a 2 B CRC,
// with one header slot amortized over a burst of data messages, all on top
// of PCIe's 128b/130b encoding. This codec implements the packing
// arithmetic so the PhyConfig constant can be *derived* and cross-checked
// instead of assumed, and so benches can convert message mixes to exact
// wire-byte counts.
#pragma once

#include <cstdint>

namespace teco::cxl {

struct FlitConfig {
  std::uint32_t slots_per_flit = 4;
  std::uint32_t slot_bytes = 16;
  std::uint32_t crc_bytes = 2;
  /// One header slot announces up to this many data messages in a burst
  /// (all-data-flit streaming mode).
  std::uint32_t messages_per_header = 16;
  /// PCIe serial encoding efficiency (128b/130b for gen3+).
  double phy_encoding = 128.0 / 130.0;

  std::uint32_t flit_payload_bytes() const {
    return slots_per_flit * slot_bytes;
  }
  std::uint32_t flit_wire_bytes() const {
    return flit_payload_bytes() + crc_bytes;
  }
};

class FlitCodec {
 public:
  explicit FlitCodec(FlitConfig cfg = {}) : cfg_(cfg) {}

  /// Slots consumed by one data message of `payload_bytes` (rounded up to
  /// whole slots): a 64 B line is 4 slots, a 32 B DBA payload 2 slots.
  std::uint64_t slots_for_payload(std::uint32_t payload_bytes) const;

  /// Total wire bytes (before PHY encoding) for a burst of `n` data
  /// messages of `payload_bytes` each, including amortized header slots
  /// and per-flit CRC.
  std::uint64_t wire_bytes_for_burst(std::uint64_t n,
                                     std::uint32_t payload_bytes) const;

  /// Wire bytes for `n` standalone control messages (one slot each).
  std::uint64_t wire_bytes_for_control(std::uint64_t n) const;

  /// End-to-end efficiency for a long burst: payload bits delivered per
  /// raw serial-link bit, including PHY encoding. For 64 B lines this
  /// lands at ~0.94 — the paper's 94.3 % figure.
  double data_efficiency(std::uint32_t payload_bytes) const;

  const FlitConfig& config() const { return cfg_; }

 private:
  std::uint64_t flits_for_slots(std::uint64_t slots) const;

  FlitConfig cfg_;
};

}  // namespace teco::cxl
