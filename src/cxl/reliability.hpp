// Link-layer reliability: CRC-triggered flit retry.
//
// CXL protects every flit with a CRC; a corrupted flit is retransmitted
// from the retry buffer (link-level retry, like PCIe's). At the spec's
// raw bit-error-rate target (1e-12) retries are vanishingly rare, which is
// why the performance model ignores them — this module quantifies that
// claim and lets the ablation bench sweep the BER to find where retries
// would start to matter.
#pragma once

#include <cstdint>

#include "cxl/flit.hpp"
#include "sim/time.hpp"

namespace teco::cxl {

struct RetryModel {
  double bit_error_rate = 1e-12;  ///< PCIe gen3 spec target.
  /// Round-trip of the retry handshake (NAK + replay).
  sim::Time retry_round_trip = sim::us(1.0);

  /// Probability that one flit arrives corrupted.
  double flit_error_probability(const FlitConfig& flit = {}) const;

  /// Expected transmissions per flit (>= 1).
  double expected_transmissions(const FlitConfig& flit = {}) const;

  /// Effective throughput derate: goodput / raw throughput in (0, 1].
  double throughput_derate(const FlitConfig& flit = {}) const;

  /// Expected extra latency per flit from retries.
  sim::Time expected_retry_latency(const FlitConfig& flit = {}) const;
};

}  // namespace teco::cxl
