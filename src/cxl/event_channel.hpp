// Event-driven facade over the serial channel.
//
// The Channel computes timings in closed form; some consumers want
// *callbacks* instead — e.g. a simulation where the CPU optimizer reacts
// to gradient arrivals, or tooling that traces deliveries as events. The
// EventChannel schedules each delivery on a sim::EventQueue so downstream
// logic runs at the right simulated instants, while the underlying timing
// stays bit-identical to Channel's.
//
// Back-to-back packets can share a delivery instant, and a fence drain
// lands exactly at the last delivery's timestamp. The queue's documented
// (time, sequence) FIFO tie-break is what keeps those coincident events in
// submission order — deliveries before the drain that waits on them —
// deterministically across replays.
#pragma once

#include <functional>
#include <utility>

#include "cxl/channel.hpp"
#include "sim/event_queue.hpp"

namespace teco::cxl {

class EventChannel {
 public:
  using DeliveryFn = std::function<void(const Packet&, const Delivery&)>;

  EventChannel(sim::EventQueue& queue, std::string name,
               sim::Bandwidth bandwidth, sim::Time latency,
               std::size_t queue_capacity = 128)
      : queue_(queue),
        channel_(std::move(name), bandwidth, latency, queue_capacity) {}

  /// Submit a packet that becomes ready at `t_ready` (>= queue.now());
  /// `on_delivered` fires as an event at the delivery instant.
  Delivery submit(sim::Time t_ready, const Packet& pkt,
                  DeliveryFn on_delivered = {}) {
    const Delivery d = channel_.submit(t_ready, pkt);
    if (on_delivered) {
      queue_.schedule_at(d.delivered,
                         [pkt, d, fn = std::move(on_delivered)] {
                           fn(pkt, d);
                         });
    }
    return d;
  }

  /// Schedule `fn` when everything submitted so far has been delivered —
  /// the event-driven CXLFENCE().
  void on_drained(std::function<void()> fn) {
    queue_.schedule_at(channel_.drain_time(), std::move(fn));
  }

  const Channel& channel() const { return channel_; }
  sim::EventQueue& queue() { return queue_; }

 private:
  sim::EventQueue& queue_;
  Channel channel_;
};

}  // namespace teco::cxl
