// CXL.cache message and packet formats.
//
// Only the fields the protocol and accounting need are modeled: opcode,
// line address, payload size and the DBA "aggregated" header bit the paper
// reserves in the packet header (Section V-B). Header/CRC overheads are
// folded into the PHY efficiency factor rather than itemized per flit.
#pragma once

#include <cstdint>
#include <string_view>

#include "mem/address.hpp"

namespace teco::cxl {

enum class MessageType : std::uint8_t {
  kReadOwn,     ///< Requester asks for exclusive ownership (I->E).
  kGo,          ///< Home agent grant.
  kGoFlush,     ///< Grant + instruct immediate FlushData (update protocol).
  kFlushData,   ///< Pushed cache-line data (update protocol / writeback).
  kInvalidate,  ///< Invalidation snoop (MESI baseline).
  kInvAck,      ///< Invalidation acknowledgment.
  kDemandRead,  ///< Consumer read request for an invalidated line.
  kData,        ///< Data response to a demand read.
  kDbaConfig,   ///< DBA-register value pushed to the device CXL module.
};

std::string_view to_string(MessageType t);

/// Wire size of a message. Control flits are 16 B slots; data messages carry
/// the payload on top of the same slot.
struct Packet {
  MessageType type = MessageType::kFlushData;
  mem::Addr addr = 0;
  /// Payload size; 0 for pure control messages. 64-bit because the baseline
  /// runtime models multi-GB bulk DMA copies as single packets.
  std::uint64_t payload_bytes = 0;
  bool dba_aggregated = false;  ///< Reserved header bit (Section V-B).

  static constexpr std::uint64_t kControlFlitBytes = 16;

  /// Bytes of link occupancy. Data-packet framing/CRC overhead is folded
  /// into PhyConfig::cxl_efficiency (the 94.3 % figure), so a data packet
  /// occupies exactly its payload; pure control messages occupy one slot.
  std::uint64_t wire_bytes() const {
    return payload_bytes == 0 ? kControlFlitBytes : payload_bytes;
  }
};

constexpr Packet control_packet(MessageType t, mem::Addr addr) {
  return Packet{t, addr, 0, false};
}

constexpr Packet data_packet(MessageType t, mem::Addr addr,
                             std::uint64_t payload, bool aggregated = false) {
  return Packet{t, addr, payload, aggregated};
}

inline std::string_view to_string(MessageType t) {
  switch (t) {
    case MessageType::kReadOwn: return "ReadOwn";
    case MessageType::kGo: return "GO";
    case MessageType::kGoFlush: return "GO_Flush";
    case MessageType::kFlushData: return "FlushData";
    case MessageType::kInvalidate: return "Invalidate";
    case MessageType::kInvAck: return "InvAck";
    case MessageType::kDemandRead: return "DemandRead";
    case MessageType::kData: return "Data";
    case MessageType::kDbaConfig: return "DbaConfig";
  }
  __builtin_unreachable();
}

}  // namespace teco::cxl
