// Link is header-only today; this TU anchors the library target.
#include "cxl/link.hpp"
