#include "cxl/reliability.hpp"

#include <cmath>

namespace teco::cxl {

double RetryModel::flit_error_probability(const FlitConfig& flit) const {
  const double bits = static_cast<double>(flit.flit_wire_bytes()) * 8.0;
  // 1 - (1-ber)^bits, computed stably for tiny ber.
  return -std::expm1(bits * std::log1p(-bit_error_rate));
}

double RetryModel::expected_transmissions(const FlitConfig& flit) const {
  const double p = flit_error_probability(flit);
  return 1.0 / (1.0 - p);
}

double RetryModel::throughput_derate(const FlitConfig& flit) const {
  return 1.0 / expected_transmissions(flit);
}

sim::Time RetryModel::expected_retry_latency(const FlitConfig& flit) const {
  const double p = flit_error_probability(flit);
  // Expected number of retry round trips per flit: p / (1 - p).
  return retry_round_trip * (p / (1.0 - p));
}

}  // namespace teco::cxl
