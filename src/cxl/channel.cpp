#include "cxl/channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace teco::cxl {

Channel::Channel(std::string name, sim::Bandwidth bandwidth, sim::Time latency,
                 std::size_t queue_capacity)
    : name_(std::move(name)), bandwidth_(bandwidth), latency_(latency),
      capacity_(queue_capacity) {
  if (bandwidth_ <= 0.0) throw std::invalid_argument("bandwidth must be > 0");
  if (capacity_ == 0) throw std::invalid_argument("queue capacity must be > 0");
}

sim::Time Channel::queue_admission(sim::Time t_ready) {
  // Retire in-flight packets that finished before the producer shows up.
  while (!inflight_finish_.empty() && inflight_finish_.front() <= t_ready) {
    inflight_finish_.pop_front();
  }
  if (inflight_finish_.size() < capacity_) return t_ready;
  // Queue full: the producer blocks until the oldest in-flight packet
  // leaves the wire and frees its slot.
  const sim::Time admission = inflight_finish_.front();
  inflight_finish_.pop_front();
  stats_.producer_stall += admission - t_ready;
  ++stats_.stalled_packets;
  return admission;
}

void Channel::record_finish(sim::Time finish) {
  inflight_finish_.push_back(finish);
  stats_.last_finish = std::max(stats_.last_finish, finish);
  stats_.last_delivery = std::max(stats_.last_delivery, finish + latency_);
}

void Channel::enable_retry(const RetryModel& model, std::uint64_t seed,
                           const FlitConfig& flit) {
  RetryState st{model, flit, model.flit_error_probability(flit),
                sim::Rng(seed)};
  retry_ = st;
}

sim::Time Channel::retry_penalty(std::uint64_t wire_bytes) {
  if (!retry_.has_value() || wire_bytes == 0) return 0.0;
  RetryState& st = *retry_;
  const std::uint64_t payload = st.flit.flit_payload_bytes();
  const std::uint64_t flits = (wire_bytes + payload - 1) / payload;
  // Every transmission (original or retry) is corrupted independently with
  // the flit error probability; a corrupted flit goes around again.
  std::uint64_t extra = 0;
  std::uint64_t pending = flits;
  while (pending > 0) {
    const std::uint64_t corrupted = st.rng.next_binomial(pending,
                                                         st.flit_error_prob);
    extra += corrupted;
    pending = corrupted;
  }
  stats_.flits += flits;
  if (extra == 0) return 0.0;
  stats_.retried_flits += extra;
  // A retransmission re-occupies the wire for one flit time; the NAK +
  // replay handshake adds the configured round trip on top.
  const sim::Time flit_time =
      sim::transfer_time(static_cast<double>(wire_bytes) /
                             static_cast<double>(flits),
                         bandwidth_);
  const sim::Time penalty = static_cast<double>(extra) *
                            (flit_time + st.model.retry_round_trip);
  stats_.retry_time += penalty;
  return penalty;
}

Delivery Channel::submit(sim::Time t_ready, const Packet& pkt) {
  const sim::Time admission = queue_admission(t_ready);
  const sim::Time start = std::max(admission, wire_free_);
  const sim::Time duration = sim::transfer_time(pkt.wire_bytes(), bandwidth_) +
                             retry_penalty(pkt.wire_bytes());
  const sim::Time finish = start + duration;
  wire_free_ = finish;
  record_finish(finish);

  ++stats_.packets;
  stats_.payload_bytes += pkt.payload_bytes;
  stats_.wire_bytes += pkt.wire_bytes();
  stats_.busy_time += duration;
  return Delivery{admission, finish, finish + latency_};
}

Delivery Channel::submit_stream(sim::Time t_ready, const Packet& pkt,
                                std::uint64_t count) {
  if (count == 0) return Delivery{t_ready, t_ready, t_ready};
  const sim::Time d = sim::transfer_time(pkt.wire_bytes(), bandwidth_);
  // Retries for the whole stream are drawn in one batch and smeared across
  // it: the closed form keeps O(1) timing while the flit counts stay exact.
  const sim::Time stream_retry =
      retry_penalty(static_cast<std::uint64_t>(pkt.wire_bytes()) * count);

  // Admission of the first packet obeys the same queue rule as submit().
  const sim::Time admission_first = queue_admission(t_ready);
  const sim::Time start = std::max(admission_first, wire_free_);
  const sim::Time finish_last =
      start + d * static_cast<double>(count) + stream_retry;
  wire_free_ = finish_last;

  // Packets beyond the queue capacity are admitted one wire-completion at a
  // time; charge the producer the exact aggregate wait.
  sim::Time admission_last = admission_first;
  if (count > capacity_ - inflight_finish_.size()) {
    const std::uint64_t room = capacity_ - inflight_finish_.size();
    const std::uint64_t n_stalled = count - room;
    const double n = static_cast<double>(n_stalled);
    // Packet room+k (k in [0, n_stalled)) is admitted when completion k+1
    // of this stream frees a slot: start + (k+1)*d.
    admission_last = start + d * n;
    stats_.producer_stall +=
        n * (start - t_ready) + d * (n * (n + 1.0) / 2.0);
    stats_.stalled_packets += n_stalled;
  }

  // Keep only the finishes that can still occupy queue slots.
  const std::uint64_t tail =
      std::min<std::uint64_t>(count, static_cast<std::uint64_t>(capacity_));
  for (std::uint64_t j = 0; j < tail; ++j) {
    const double back = static_cast<double>(tail - 1 - j);
    record_finish(finish_last - d * back);
    if (inflight_finish_.size() > capacity_) inflight_finish_.pop_front();
  }

  stats_.packets += count;
  stats_.payload_bytes += static_cast<std::uint64_t>(pkt.payload_bytes) * count;
  stats_.wire_bytes += static_cast<std::uint64_t>(pkt.wire_bytes()) * count;
  stats_.busy_time += d * static_cast<double>(count) + stream_retry;
  return Delivery{admission_last, finish_last, finish_last + latency_};
}

void Channel::reset() {
  inflight_finish_.clear();
  wire_free_ = 0.0;
  stats_ = ChannelStats{};
}

}  // namespace teco::cxl
