#include "dba/aggregator.hpp"

namespace teco::dba {

std::vector<std::uint8_t> Aggregator::pack(
    const mem::BackingStore::Line& line) const {
  shard_.assert_held();
  ++lines_processed_;
  if (!reg_.trims()) {
    std::vector<std::uint8_t> full(line.begin(), line.end());
    if (observer_ != nullptr) {
      observer_->on_dba_pack(line.data(), full.data(), full.size(),
                             reg_.encode());
    }
    return full;
  }
  const std::uint8_t n = reg_.dirty_bytes();
  std::vector<std::uint8_t> payload;
  payload.reserve(payload_bytes(n));
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    // Little-endian FP32: the least significant N bytes are the first N
    // bytes of the word in memory order.
    for (std::uint8_t b = 0; b < n; ++b) {
      payload.push_back(line[w * 4 + b]);
    }
  }
  if (observer_ != nullptr) {
    observer_->on_dba_pack(line.data(), payload.data(), payload.size(),
                           reg_.encode());
  }
  return payload;
}

}  // namespace teco::dba
