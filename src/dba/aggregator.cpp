#include "dba/aggregator.hpp"

namespace teco::dba {

std::vector<std::uint8_t> Aggregator::pack(
    const mem::BackingStore::Line& line) const {
  ++lines_processed_;
  if (!reg_.trims()) {
    return std::vector<std::uint8_t>(line.begin(), line.end());
  }
  const std::uint8_t n = reg_.dirty_bytes();
  std::vector<std::uint8_t> payload;
  payload.reserve(payload_bytes(n));
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    // Little-endian FP32: the least significant N bytes are the first N
    // bytes of the word in memory order.
    for (std::uint8_t b = 0; b < n; ++b) {
      payload.push_back(line[w * 4 + b]);
    }
  }
  return payload;
}

}  // namespace teco::dba
