#include "dba/disaggregator.hpp"

#include "dba/aggregator.hpp"

#include <cstring>
#include <stdexcept>

namespace teco::dba {

mem::BackingStore::Line Disaggregator::merge(
    const mem::BackingStore::Line& old_line,
    std::span<const std::uint8_t> payload) const {
  shard_.assert_held();
  ++lines_processed_;
  if (!reg_.trims()) {
    if (payload.size() != mem::kLineBytes) {
      throw std::invalid_argument("bypass payload must be a full line");
    }
    mem::BackingStore::Line out;
    std::memcpy(out.data(), payload.data(), mem::kLineBytes);
    if (observer_ != nullptr) {
      observer_->on_dba_merge(old_line.data(), payload.data(), payload.size(),
                              out.data(), reg_.encode());
    }
    return out;
  }
  const std::uint8_t n = reg_.dirty_bytes();
  if (payload.size() != payload_bytes(n)) {
    throw std::invalid_argument("payload size does not match DBA register");
  }
  ++extra_reads_;  // The stale line must be read from the giant cache.
  mem::BackingStore::Line out = old_line;
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    for (std::uint8_t b = 0; b < n; ++b) {
      out[w * 4 + b] = payload[w * n + b];
    }
  }
  if (observer_ != nullptr) {
    observer_->on_dba_merge(old_line.data(), payload.data(), payload.size(),
                            out.data(), reg_.encode());
  }
  return out;
}

mem::BackingStore::Line expected_merge(DbaRegister reg,
                                       const mem::BackingStore::Line& old_line,
                                       const mem::BackingStore::Line& src) {
  if (!reg.trims()) return src;
  mem::BackingStore::Line out = old_line;
  const std::uint8_t n = reg.dirty_bytes();
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    for (std::uint8_t b = 0; b < n; ++b) {
      out[w * 4 + b] = src[w * 4 + b];
    }
  }
  return out;
}

float splice_f32(float old_val, float new_val, std::uint8_t dirty_bytes) {
  if (dirty_bytes > 4) throw std::invalid_argument("dirty_bytes in [0,4]");
  if (dirty_bytes == 4) return new_val;
  if (dirty_bytes == 0) return old_val;
  std::uint32_t o, nv;
  std::memcpy(&o, &old_val, 4);
  std::memcpy(&nv, &new_val, 4);
  const std::uint32_t lo_mask = (1u << (8 * dirty_bytes)) - 1u;
  const std::uint32_t merged = (o & ~lo_mask) | (nv & lo_mask);
  float out;
  std::memcpy(&out, &merged, 4);
  return out;
}

}  // namespace teco::dba
