// Accelerator-side Disaggregator (Section V-C).
//
// Reconstructs an updated cache line by merging the aggregated dirty bytes
// with the stale copy resident in the giant cache: per 4-byte word,
//   new = (old & ~lo_mask(N)) | (payload_word & lo_mask(N)).
// The paper implements this as reset-shift-OR in the device CXL module; the
// merge costs one extra giant-cache DRAM read per line (studied in VIII-D).
#pragma once

#include <cstdint>
#include <span>

#include "check/observer.hpp"
#include "core/annotations.hpp"
#include "dba/dba_register.hpp"
#include "mem/backing_store.hpp"

namespace teco::dba {

class Disaggregator {
 public:
  explicit Disaggregator(DbaRegister reg = {}) : reg_(reg) {}

  /// Device-side register mirror, set by the kDbaConfig message.
  void set_register(DbaRegister reg) {
    shard_.assert_held();
    reg_ = reg;
  }
  DbaRegister reg() const {
    shard_.assert_held();
    return reg_;
  }

  /// Merge a payload (16*N bytes if trimming, else a full 64-byte line)
  /// into `old_line`, returning the reconstructed line.
  mem::BackingStore::Line merge(const mem::BackingStore::Line& old_line,
                                std::span<const std::uint8_t> payload) const;

  std::uint64_t lines_processed() const {
    shard_.assert_held();
    return lines_processed_;
  }
  /// Extra giant-cache reads performed for merges (VIII-D amplification).
  std::uint64_t extra_reads() const {
    shard_.assert_held();
    return extra_reads_;
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  void set_observer(check::Observer* obs) { observer_ = obs; }

 private:
  // Device-side register mirror: owned by the shard of the home agent that
  // programs it via kDbaConfig messages.
  core::ShardCapability shard_;
  DbaRegister reg_ TECO_SHARD_AFFINE(shard_);
  check::Observer* observer_ = nullptr;
  mutable std::uint64_t lines_processed_ TECO_SHARD_AFFINE(shard_) = 0;
  mutable std::uint64_t extra_reads_ TECO_SHARD_AFFINE(shard_) = 0;
};

/// Bit-exact FP32 splice used by the numeric training path: keep the high
/// (4-N) bytes of `old_val` and take the low N bytes of `new_val` — exactly
/// what a DBA-transferred parameter looks like on the accelerator.
float splice_f32(float old_val, float new_val, std::uint8_t dirty_bytes);

/// Closed-form pack+merge: the line the device must hold after a push of
/// `src` over `old_line` under `reg` (bypass copy when not trimming, else
/// per-word low-byte splice). This is the independent oracle the model
/// checker compares the real Aggregator->link->Disaggregator pipeline
/// against, so keep it a separate expression of Section V, not a call into
/// the units it is checking.
mem::BackingStore::Line expected_merge(DbaRegister reg,
                                       const mem::BackingStore::Line& old_line,
                                       const mem::BackingStore::Line& src);

}  // namespace teco::dba
