// The 4-bit DBA configuration register (Section V-B).
//
// Bit 3 (msb) activates dirty-byte aggregation; bits 2..0 encode the dirty
// byte length per 4-byte word (0..4). The paper's example: dirty_bytes = 2
// active => 1010b. The register lives in the CPU CXL module and is mirrored
// to the accelerator CXL module via a kDbaConfig message.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace teco::dba {

class DbaRegister {
 public:
  constexpr DbaRegister() = default;

  constexpr DbaRegister(bool active, std::uint8_t dirty_bytes)
      : active_(active), dirty_bytes_(dirty_bytes) {
    if (dirty_bytes > 4) throw std::invalid_argument("dirty_bytes in [0,4]");
  }

  static constexpr DbaRegister decode(std::uint8_t bits) {
    return DbaRegister((bits & 0b1000u) != 0,
                       static_cast<std::uint8_t>(bits & 0b0111u));
  }

  constexpr std::uint8_t encode() const {
    return static_cast<std::uint8_t>((active_ ? 0b1000u : 0u) |
                                     (dirty_bytes_ & 0b0111u));
  }

  constexpr bool active() const { return active_; }
  constexpr std::uint8_t dirty_bytes() const { return dirty_bytes_; }

  /// DBA only trims when active and trimming fewer than all 4 bytes.
  constexpr bool trims() const { return active_ && dirty_bytes_ < 4; }

  constexpr bool operator==(const DbaRegister&) const = default;

 private:
  bool active_ = false;
  std::uint8_t dirty_bytes_ = 2;
};

}  // namespace teco::dba
