// CPU-side Aggregator (Section V-B).
//
// For each FP32 word of a 64-byte cache line, take the least significant
// `dirty_bytes` bytes and concatenate them into a payload of
// 16 * dirty_bytes bytes. FP32 values are little-endian in memory, so the
// "least significant two bytes" of the paper are byte offsets 0..N-1 of each
// word. Processing latency per line is ~1.28 ns scaled (Section VIII-D);
// the end-to-end model charges the conservative 1 ns per the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "check/observer.hpp"
#include "core/annotations.hpp"
#include "dba/dba_register.hpp"
#include "mem/backing_store.hpp"
#include "sim/time.hpp"

namespace teco::dba {

/// Payload size produced for one 64-byte line at a given dirty-byte length.
constexpr std::uint32_t payload_bytes(std::uint8_t dirty_bytes) {
  return static_cast<std::uint32_t>(mem::kWordsPerLine) * dirty_bytes;
}

/// ASIC-scaled processing latencies from the Vivado synthesis (VIII-D).
inline constexpr sim::Time kAggregatorLatency = sim::ns(1.28);
inline constexpr sim::Time kDisaggregatorLatency = sim::ns(1.126);
/// The end-to-end performance model charges this per line (paper's choice).
inline constexpr sim::Time kModeledDbaLatency = sim::ns(1.0);
/// Synthesized, FPGA->ASIC-scaled power (W).
inline constexpr double kAggregatorPowerW = 0.0127;
inline constexpr double kDisaggregatorPowerW = 0.017;

class Aggregator {
 public:
  explicit Aggregator(DbaRegister reg = {}) : reg_(reg) {}

  void set_register(DbaRegister reg) {
    shard_.assert_held();
    reg_ = reg;
  }
  DbaRegister reg() const {
    shard_.assert_held();
    return reg_;
  }

  /// Pack one 64-byte line. If DBA is inactive (or dirty_bytes == 4) the
  /// full line is returned unchanged (the "bypass" path).
  std::vector<std::uint8_t> pack(const mem::BackingStore::Line& line) const;

  /// Wire payload size for one line under the current register.
  std::uint32_t packed_bytes() const {
    shard_.assert_held();
    return reg_.trims() ? payload_bytes(reg_.dirty_bytes())
                        : static_cast<std::uint32_t>(mem::kLineBytes);
  }

  std::uint64_t lines_processed() const {
    shard_.assert_held();
    return lines_processed_;
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  void set_observer(check::Observer* obs) { observer_ = obs; }

 private:
  // The CPU-side DBA register bank is home-agent-shard state (the kDbaConfig
  // mirror keeps the device side in sync through the protocol, not through
  // shared memory).
  core::ShardCapability shard_;
  DbaRegister reg_ TECO_SHARD_AFFINE(shard_);
  check::Observer* observer_ = nullptr;
  mutable std::uint64_t lines_processed_ TECO_SHARD_AFFINE(shard_) = 0;
};

}  // namespace teco::dba
