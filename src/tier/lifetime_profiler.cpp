#include "tier/lifetime_profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "offload/step_model.hpp"

namespace teco::tier {

std::uint64_t StepProfile::total_bytes(TensorClass cls) const {
  std::uint64_t sum = 0;
  for (const auto& t : tensors) {
    if (t.cls == cls) sum += t.bytes;
  }
  return sum;
}

std::uint64_t StepProfile::peak_live_bytes() const {
  // Sweep (time, +/-bytes) events; frees sort before allocations at equal
  // times so back-to-back lifetimes don't double-count.
  struct Ev {
    sim::Time t;
    std::int64_t delta;
  };
  std::vector<Ev> evs;
  evs.reserve(tensors.size() * 2);
  for (const auto& rec : tensors) {
    evs.push_back({rec.produce, static_cast<std::int64_t>(rec.bytes)});
    evs.push_back({rec.last_use(), -static_cast<std::int64_t>(rec.bytes)});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (const auto& e : evs) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  return static_cast<std::uint64_t>(peak);
}

std::uint32_t TensorLifetimeProfiler::on_produce(std::string name,
                                                TensorClass cls,
                                                std::uint32_t layer,
                                                std::uint64_t bytes,
                                                sim::Time t) {
  TensorRecord rec;
  rec.id = static_cast<std::uint32_t>(tensors_.size());
  rec.name = std::move(name);
  rec.cls = cls;
  rec.layer = layer;
  rec.bytes = bytes;
  rec.produce = t;
  tensors_.push_back(std::move(rec));
  return tensors_.back().id;
}

void TensorLifetimeProfiler::on_consume(std::uint32_t id, sim::Time t) {
  if (id >= tensors_.size()) {
    throw std::out_of_range("TensorLifetimeProfiler: unknown tensor id " +
                            std::to_string(id));
  }
  auto& c = tensors_[id].consumes;
  c.insert(std::upper_bound(c.begin(), c.end(), t), t);
}

StepProfile TensorLifetimeProfiler::finish(sim::Time forward,
                                           sim::Time backward,
                                           std::uint32_t n_layers) const {
  StepProfile p;
  p.forward = forward;
  p.backward = backward;
  p.n_layers = n_layers;
  p.tensors = tensors_;
  return p;
}

StepProfile profile_step(const dl::ModelConfig& m, std::uint32_t batch,
                         const offload::Calibration& cal) {
  const auto in = offload::compute_step_inputs(m, batch, cal);
  const std::uint32_t layers = std::max(1u, m.n_layers);
  const sim::Time fwd_layer = in.forward / layers;
  const sim::Time bwd_layer = in.backward / layers;

  TensorLifetimeProfiler prof;
  // FP16 compute copy of the weights, sliced per layer. Live from step
  // start; read at the start of its forward layer and again when backward
  // reaches the layer.
  const std::uint64_t w_bytes = m.n_params * 2 / layers;
  const auto act_bytes =
      static_cast<std::uint64_t>(m.activation_bytes_per_layer(batch));
  for (std::uint32_t i = 0; i < layers; ++i) {
    const auto id = prof.on_produce("w.L" + std::to_string(i),
                                    TensorClass::kWeight, i, w_bytes, 0.0);
    prof.on_consume(id, fwd_layer * i);
    prof.on_consume(id, in.forward + bwd_layer * (layers - 1 - i));
  }
  for (std::uint32_t i = 0; i < layers; ++i) {
    const auto id =
        prof.on_produce("act.L" + std::to_string(i), TensorClass::kActivation,
                        i, act_bytes, fwd_layer * (i + 1));
    prof.on_consume(id, in.forward + bwd_layer * (layers - 1 - i));
  }
  return prof.finish(in.forward, in.backward, layers);
}

}  // namespace teco::tier
