#include "tier/migration_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "cxl/packet.hpp"

namespace teco::tier {

MigrationScheduler::MigrationScheduler(const StepProfile& prof,
                                       const TierPlan& plan,
                                       const offload::Calibration& cal,
                                       check::TierObserver* obs)
    : prof_(prof), plan_(plan), cal_(cal), obs_(obs) {
  const std::uint32_t layers = std::max(1u, prof_.n_layers);
  n_slots_ = 2ull * layers;
  consumers_.assign(n_slots_, {});
  produces_.assign(n_slots_, {});
  state_.assign(prof_.tensors.size(), {});

  for (const auto& rec : prof_.tensors) {
    for (std::size_t i = 0; i < rec.consumes.size(); ++i) {
      consumers_[slot_of(rec.consumes[i])].push_back({rec.id, i});
    }
    if (rec.cls == TensorClass::kActivation) {
      produces_[std::min<std::size_t>(rec.layer, layers - 1)].push_back(
          rec.id);
    }
  }
  for (const auto& m : plan_.migrations) {
    if (!m.prefetch || prof_.tensors[m.tensor].consumes.empty()) continue;
    const auto& rec = prof_.tensors[m.tensor];
    const std::size_t idx = std::min(m.consume_idx, rec.consumes.size() - 1);
    pending_.push_back({m.tensor, idx, slot_of(rec.consumes[idx])});
  }
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingPrefetch& a, const PendingPrefetch& b) {
                     return a.slot < b.slot;
                   });
}

std::size_t MigrationScheduler::slot_of(sim::Time consume_t) const {
  const std::uint32_t layers = std::max(1u, prof_.n_layers);
  const sim::Time eps = 1e-9 * std::max(1.0, prof_.forward + prof_.backward);
  if (consume_t + eps < prof_.forward) {
    const auto i = static_cast<std::size_t>(
        (consume_t + eps) / std::max(prof_.fwd_layer_time(), 1e-30));
    return std::min<std::size_t>(i, layers - 1);
  }
  const auto r = static_cast<std::size_t>(
      (consume_t - prof_.forward + eps) /
      std::max(prof_.bwd_layer_time(), 1e-30));
  return layers + std::min<std::size_t>(r, layers - 1);
}

void MigrationScheduler::occ_change(sim::Time t, Tier tier,
                                    std::int64_t delta) {
  auto& bytes = occ_bytes_[static_cast<std::size_t>(tier)];
  const std::int64_t next = static_cast<std::int64_t>(bytes) + delta;
  assert(next >= 0 && "tier occupancy went negative");
  bytes = next < 0 ? 0 : static_cast<std::uint64_t>(next);
  auto& series = res_.occupancy[static_cast<std::size_t>(tier)];
  series.points.push_back({t, bytes});
  series.peak = std::max(series.peak, bytes);
  if (obs_ != nullptr) {
    obs_->on_tier_occupancy(t, static_cast<std::uint8_t>(tier), bytes);
  }
}

sim::Time MigrationScheduler::transfer(sim::Time t, std::uint32_t tensor,
                                       Tier from, Tier to, bool prefetch) {
  const std::uint64_t bytes = prof_.tensors[tensor].bytes;
  sim::Time end;
  if (from == Tier::kGiantCache || to == Tier::kGiantCache) {
    // Device-local copy through the BAR window; no link crossing.
    end = t + cal_.hbm_gc_copy_latency +
          static_cast<double>(bytes) / cal_.hbm_gc_copy_bw;
  } else {
    cxl::Channel* ch = to == Tier::kHbm ? down_ : up_;
    const auto pkt = cxl::data_packet(cxl::MessageType::kData, 0, bytes);
    end = ch->submit(t, pkt).delivered;
  }
  res_.transfers.push_back({t, end, from, to, tensor, bytes, prefetch});
  if (trace_ != nullptr) {
    trace_->emit(to == Tier::kHbm ? "tier.fetch" : "tier.evict",
                 "t" + std::to_string(tensor), t, end);
  }
  if (obs_ != nullptr) {
    obs_->on_tier_migration(t, tensor, static_cast<std::uint8_t>(from),
                            static_cast<std::uint8_t>(to), bytes, end,
                            prefetch);
  }
  return end;
}

void MigrationScheduler::charge_stall(sim::Time from, sim::Time to) {
  res_.stall_time += to - from;
  res_.stalls.push_back({from, to});
  m_.stall_us->add((to - from) * 1e6);
  if (trace_ != nullptr) trace_->emit("tier.stall", "stall", from, to);
}

void MigrationScheduler::causal_note(obs::causal::Category cat,
                                     sim::Time from, sim::Time to) {
  if (causal_ == nullptr || to <= from) return;
  causal_tail_ = causal_->add(cat, to, causal_tail_, from);
}

sim::Time MigrationScheduler::issue_fetch(sim::Time t, std::uint32_t tensor) {
  auto& st = state_[tensor];
  const Tier home = plan_.home[tensor];
  const sim::Time end = transfer(t, tensor, home, Tier::kHbm, true);
  st.fetching = true;
  st.hbm_ready = end;
  m_.prefetch_bytes->add(static_cast<double>(prof_.tensors[tensor].bytes));
  // Delivery flips residency on the queue, so slots after the landing see
  // the tensor in HBM without polling. The guard keeps a flip from firing
  // for a tensor that died (state reset) while the fetch was in flight.
  // The flip is the fetch landing off the down link — tag it so the
  // causal sink records why it ran.
  sim::TagScope tag(*q_, obs::causal::tag(obs::causal::Category::kCxlDown));
  q_->schedule_at(end, [this, tensor, end] {
    shard_.assert_held();
    auto& s = state_[tensor];
    if (!s.fetching || s.hbm_ready != end) return;
    s.fetching = false;
    s.in_hbm = true;
    occ_change(end, Tier::kHbm,
               static_cast<std::int64_t>(prof_.tensors[tensor].bytes));
  });
  return end;
}

sim::Time MigrationScheduler::require(sim::Time t, std::uint32_t tensor) {
  auto& st = state_[tensor];
  if (st.in_hbm) return t;
  if (st.fetching) return std::max(t, st.hbm_ready);
  // Demand fetch from the home tier, fully exposed.
  m_.demand_fetches->add();
  st.prefetched = false;
  return issue_fetch(t, tensor);
}

void MigrationScheduler::try_issue_prefetches(std::size_t horizon_slot,
                                              sim::Time t) {
  std::vector<PendingPrefetch> keep;
  keep.reserve(pending_.size());
  for (const auto& pf : pending_) {
    if (pf.slot > horizon_slot) {
      keep.push_back(pf);
      continue;
    }
    auto& st = state_[pf.tensor];
    if (st.consumed > pf.consume_idx) continue;  // Already served.
    if (st.fetching || st.in_hbm) continue;      // Resident or on its way.
    if (!st.in_lower) {
      // Not evicted yet (eviction retires later); revisit next slot.
      keep.push_back(pf);
      continue;
    }
    issue_fetch(t, pf.tensor);
    st.prefetched = true;
    m_.prefetches->add();
  }
  pending_ = std::move(keep);
}

sim::Time MigrationScheduler::evict(sim::Time t, std::uint32_t tensor) {
  auto& st = state_[tensor];
  if (!st.in_hbm) return t;
  const std::uint64_t bytes = prof_.tensors[tensor].bytes;
  if (st.in_lower) {
    // A clean copy already lives below: dropping the HBM copy is free.
    st.in_hbm = false;
    occ_change(t, Tier::kHbm, -static_cast<std::int64_t>(bytes));
    return t;
  }
  const Tier home = plan_.home[tensor];
  const sim::Time end = transfer(t, tensor, Tier::kHbm, home, false);
  st.in_hbm = false;
  st.in_lower = true;
  occ_change(end, Tier::kHbm, -static_cast<std::int64_t>(bytes));
  occ_change(end, home, static_cast<std::int64_t>(bytes));
  m_.evictions->add();
  m_.evict_bytes->add(static_cast<double>(bytes));
  return end;
}

void MigrationScheduler::exec_slot(sim::EventQueue& q, std::size_t g,
                                   sim::Time t) {
  const std::uint32_t layers = std::max(1u, prof_.n_layers);
  const bool backward = g >= layers;
  const std::uint32_t layer =
      backward ? layers - 1 - static_cast<std::uint32_t>(g - layers)
               : static_cast<std::uint32_t>(g);
  const sim::Time dur =
      backward ? prof_.bwd_layer_time() : prof_.fwd_layer_time();

  if (plan_.policy != Policy::kNaiveSwap && plan_.prefetch_depth > 0) {
    try_issue_prefetches(std::min(n_slots_ - 1, g + plan_.prefetch_depth), t);
  }

  // Gather this slot's consumers and wait for the slowest residency.
  struct Pre {
    std::uint32_t id;
    std::size_t idx;
    std::uint8_t resident;
    bool in_hbm;
  };
  std::vector<Pre> pres;
  pres.reserve(consumers_[g].size());
  sim::Time ready_all = t;
  for (const auto& [id, idx] : consumers_[g]) {
    const auto& st = state_[id];
    // A hit: the consume finds the tensor resident (or already inbound)
    // because a prefetch put it there — the quantity the prefetch-depth
    // autotuner wants maximized.
    if (st.prefetched && (st.in_hbm || st.fetching)) m_.prefetch_hits->add();
    pres.push_back({id, idx,
                    st.in_hbm ? static_cast<std::uint8_t>(Tier::kHbm)
                              : static_cast<std::uint8_t>(plan_.home[id]),
                    st.in_hbm});
    ready_all = std::max(ready_all, require(t, id));
  }
  if (obs_ != nullptr) {
    for (const auto& p : pres) {
      obs_->on_tier_access(t, p.id, p.resident, p.in_hbm, ready_all - t);
    }
  }
  if (ready_all > t) {
    charge_stall(t, ready_all);
    causal_note(obs::causal::Category::kDemandFetch, t, ready_all);
  }

  // Retire the consumes; free dead activations, re-park gap tensors.
  for (const auto& p : pres) {
    auto& st = state_[p.id];
    const auto& rec = prof_.tensors[p.id];
    st.consumed = p.idx + 1;
    const bool last_use = p.idx + 1 == rec.consumes.size();
    if (last_use && rec.cls == TensorClass::kActivation) {
      // Dead: free every copy. A still-in-flight fetch was consumed off
      // the wire — its delivery flip is disarmed by the state reset, so
      // the bytes are never charged to HBM. (Weights stay resident.)
      if (st.in_hbm) {
        occ_change(ready_all, Tier::kHbm,
                   -static_cast<std::int64_t>(rec.bytes));
      }
      if (st.in_lower) {
        occ_change(ready_all, plan_.home[p.id],
                   -static_cast<std::int64_t>(rec.bytes));
      }
      st = TState{};
      st.consumed = p.idx + 1;
    } else if (!last_use && plan_.home[p.id] != Tier::kHbm &&
               rec.consumes[p.idx + 1] > rec.consumes[p.idx]) {
      // Park it again for the gap until the next consume (a clean-copy
      // drop when the lower copy is still valid, a transfer otherwise).
      if (st.fetching) {
        // Let the in-flight fetch land first; the evict event is
        // scheduled after the delivery flip (same time, later sequence).
        sim::TagScope tag(q,
                          obs::causal::tag(obs::causal::Category::kEvictStall));
        q.schedule_at(std::max(ready_all, st.hbm_ready),
                      [this, &q, id = p.id] {
                        shard_.assert_held();
                        evict(q.now(), id);
                      });
      } else {
        evict(ready_all, p.id);
      }
    }
  }

  const sim::Time start = ready_all;
  sim::Time end = start + dur;
  causal_note(obs::causal::Category::kCompute, start, end);

  // The hook fires before the produce-time evictions so its channel
  // submissions (the gradient stream) stay in nondecreasing time order
  // with the evictions issued at this slot's end.
  if (hook_) hook_(backward, layer, start, end);

  // Forward slots materialize their activations in HBM at slot end.
  if (!backward) {
    const sim::Time eps =
        1e-9 * std::max(1.0, prof_.forward + prof_.backward);
    for (const std::uint32_t id : produces_[g]) {
      auto& st = state_[id];
      const auto& rec = prof_.tensors[id];
      st.in_hbm = true;
      occ_change(end, Tier::kHbm, static_cast<std::int64_t>(rec.bytes));
      // A tensor consumed at the very next slot boundary gains nothing
      // from leaving HBM — skip its eviction (the write-through strawman
      // still pays it, that is its defining cost).
      const bool has_gap = rec.consumes.empty() ||
                           rec.first_consume() > rec.produce + eps;
      if (plan_.home[id] != Tier::kHbm &&
          (has_gap || plan_.policy == Policy::kNaiveSwap)) {
        const sim::Time ev_end = evict(end, id);
        if (plan_.policy == Policy::kNaiveSwap && ev_end > end) {
          // Write-through: forward blocks until the line stream lands.
          charge_stall(end, ev_end);
          causal_note(obs::causal::Category::kEvictStall, end, ev_end);
          end = ev_end;
        }
      }
    }
  }

  if (g + 1 == static_cast<std::size_t>(layers)) res_.forward_end = end;
  if (g + 1 == n_slots_) {
    res_.backward_end = end;
    return;
  }
  sim::TagScope tag(q, obs::causal::tag(obs::causal::Category::kCompute));
  q.schedule_at(end, [this, &q, g] {
    shard_.assert_held();
    exec_slot(q, g + 1, q.now());
  });
}

MigrationScheduler::Handles MigrationScheduler::resolve_handles(
    obs::MetricsRegistry& reg) {
  Handles h;
  h.prefetches = &reg.counter("tier.prefetches");
  h.prefetch_bytes = &reg.counter("tier.prefetch_bytes");
  h.prefetch_hits = &reg.counter("tier.prefetch_hits");
  h.demand_fetches = &reg.counter("tier.demand_fetches");
  h.evictions = &reg.counter("tier.evictions");
  h.evict_bytes = &reg.counter("tier.evict_bytes");
  h.stall_us = &reg.counter("tier.stall_us");
  return h;
}

ScheduleResult MigrationScheduler::run(sim::EventQueue& q, cxl::Channel& up,
                                       cxl::Channel& down) {
  shard_.assert_held();
  q_ = &q;
  up_ = &up;
  down_ = &down;
  res_ = {};
  occ_bytes_ = {};
  causal_tail_ = sim::kNoCausalNode;
  if (causal_ != nullptr) q.set_causal_sink(causal_);

  // tier.* counters accumulate in the attached registry (or a private one,
  // so recording is branch-free either way); the run's share is the delta.
  obs::MetricsRegistry& reg = ext_reg_ != nullptr ? *ext_reg_ : local_reg_;
  m_ = resolve_handles(reg);
  const obs::Counter* const handles[] = {
      m_.prefetches,   m_.prefetch_bytes, m_.prefetch_hits,
      m_.demand_fetches, m_.evictions,    m_.evict_bytes,
      m_.stall_us};
  static constexpr const char* kNames[] = {
      "tier.prefetches",     "tier.prefetch_bytes", "tier.prefetch_hits",
      "tier.demand_fetches", "tier.evictions",      "tier.evict_bytes",
      "tier.stall_us"};
  double base[std::size(kNames)];
  for (std::size_t i = 0; i < std::size(kNames); ++i) {
    base[i] = handles[i]->value();
  }

  // Initial residency: weights start parked in their home tier.
  const sim::Time t0 = q.now();
  for (const auto& rec : prof_.tensors) {
    if (rec.cls != TensorClass::kWeight) continue;
    auto& st = state_[rec.id];
    if (plan_.home[rec.id] == Tier::kHbm) {
      st.in_hbm = true;
      occ_change(t0, Tier::kHbm, static_cast<std::int64_t>(rec.bytes));
    } else {
      st.in_lower = true;
      occ_change(t0, plan_.home[rec.id],
                 static_cast<std::int64_t>(rec.bytes));
    }
  }
  {
    sim::TagScope tag(q, obs::causal::tag(obs::causal::Category::kCompute));
    q.schedule_at(t0, [this, &q] {
      shard_.assert_held();
      exec_slot(q, 0, q.now());
    });
  }
  q.run();
  if (causal_ != nullptr) q.set_causal_sink(nullptr);
  res_.causal_tail = causal_tail_;

  // Stall-shifted deliveries can record occupancy slightly out of order;
  // normalize the series for renderers and exporters.
  for (auto& series : res_.occupancy) {
    std::stable_sort(series.points.begin(), series.points.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }
  res_.metrics.reserve(std::size(kNames));
  for (std::size_t i = 0; i < std::size(kNames); ++i) {
    res_.metrics.push_back({kNames[i], handles[i]->value() - base[i],
                            obs::MetricKind::kCounter, true});
  }
  return res_;
}

}  // namespace teco::tier
