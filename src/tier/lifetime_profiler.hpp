// TensorLifetimeProfiler — produce/consume intervals for one training step.
//
// Two entry points: the event API (on_produce / on_consume) lets tests and
// future runtimes record arbitrary tensor lifetimes by hand; profile_step()
// derives the canonical step profile from the analytic step model — forward
// produces each layer's activations in order, backward consumes them in
// reverse, and each layer's FP16 weight slice is read once per pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "tier/tier.hpp"

namespace teco::tier {

/// The profiled step: every tensor's lifetime plus the phase geometry the
/// planner and scheduler need to reason about overlap windows.
struct StepProfile {
  sim::Time forward = 0.0;   ///< Unstalled forward duration.
  sim::Time backward = 0.0;  ///< Unstalled backward duration.
  std::uint32_t n_layers = 0;
  std::vector<TensorRecord> tensors;  ///< Indexed by TensorRecord::id.

  sim::Time fwd_layer_time() const {
    return n_layers > 0 ? forward / n_layers : forward;
  }
  sim::Time bwd_layer_time() const {
    return n_layers > 0 ? backward / n_layers : backward;
  }
  std::uint64_t total_bytes(TensorClass cls) const;
  /// Peak simultaneously-live bytes if every tensor lived in one tier —
  /// the all-HBM high-water mark (event sweep over produce/last-use).
  std::uint64_t peak_live_bytes() const;
};

class TensorLifetimeProfiler {
 public:
  /// Record a tensor materializing at `t`. Returns its id.
  std::uint32_t on_produce(std::string name, TensorClass cls,
                           std::uint32_t layer, std::uint64_t bytes,
                           sim::Time t);
  /// Record a compute read of `id` at `t`. Throws std::out_of_range for an
  /// unknown id; consume times may arrive out of order and are kept sorted.
  void on_consume(std::uint32_t id, sim::Time t);

  const std::vector<TensorRecord>& tensors() const { return tensors_; }

  /// Package the recording into a StepProfile.
  StepProfile finish(sim::Time forward, sim::Time backward,
                     std::uint32_t n_layers) const;

 private:
  std::vector<TensorRecord> tensors_;
};

/// The canonical profile of one training step of `m` at `batch`: layer i's
/// weight slice (FP16 compute copy, param_bytes()/2/L) is consumed at the
/// start of forward layer i and again at the start of backward layer i;
/// layer i's activations (dl::ModelConfig::activation_bytes_per_layer)
/// materialize at the end of forward layer i and are consumed when backward
/// reaches the layer, in reverse order.
StepProfile profile_step(const dl::ModelConfig& m, std::uint32_t batch,
                         const offload::Calibration& cal);

}  // namespace teco::tier
