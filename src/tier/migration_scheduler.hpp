// MigrationScheduler — execute a TierPlan against the event/link substrate.
//
// The scheduler replays the step's compute slots (forward layers in order,
// then backward layers in reverse) on the shared sim::EventQueue and turns
// the plan's migrations into real traffic: CXL-tier migrations are
// submitted to the caller's cxl::Channel pair — the SAME channels the
// parameter/gradient update streams use, so link contention is modeled,
// not assumed away — while giant-cache migrations are device-local copies
// that never cross the link. When a consumer reaches a tensor whose fetch
// has not landed, the slot stalls until delivery and the stall is charged
// (and reported to the check::TierObserver, where the strict checker
// enforces the T1/T2 invariants).
//
// Prefetch pacing: a prefetch for a consume in slot s may be issued once
// execution enters slot s - prefetch_depth (initial slots are issued at
// step start). Under Policy::kNaiveSwap there is no lookahead and
// evictions are synchronous: compute blocks on the link both ways — the
// strawman the benches compare against.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "check/tier_checker.hpp"
#include "cxl/channel.hpp"
#include "offload/calibration.hpp"
#include "sim/event_queue.hpp"
#include "tier/placement_planner.hpp"

namespace teco::tier {

/// Step-function byte occupancy of one tier over the step.
struct OccupancySeries {
  std::vector<std::pair<sim::Time, std::uint64_t>> points;
  std::uint64_t peak = 0;
};

/// One executed migration, for Gantt lanes and trace export.
struct Transfer {
  sim::Time start = 0.0;
  sim::Time end = 0.0;
  Tier from = Tier::kHbm;
  Tier to = Tier::kCxlDram;
  std::uint32_t tensor = 0;
  std::uint64_t bytes = 0;
  bool prefetch = false;
};

struct ScheduleResult {
  sim::Time forward_end = 0.0;   ///< Includes fetch/evict stalls.
  sim::Time backward_end = 0.0;  ///< End of compute, with stalls.
  sim::Time stall_time = 0.0;
  std::vector<std::pair<sim::Time, sim::Time>> stalls;  ///< Stalled spans.
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t evict_bytes = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t evictions = 0;
  std::uint64_t demand_fetches = 0;  ///< Fetches issued at consume time.
  std::array<OccupancySeries, kTierCount> occupancy;
  std::vector<Transfer> transfers;

  std::uint64_t migrated_bytes() const {
    return prefetch_bytes + evict_bytes;
  }
};

class MigrationScheduler {
 public:
  /// `obs` may be null; `prof` and `plan` must outlive run().
  MigrationScheduler(const StepProfile& prof, const TierPlan& plan,
                     const offload::Calibration& cal,
                     check::TierObserver* obs = nullptr);

  /// Called as each compute slot retires: (backward, layer, start, end).
  /// The activation timeline uses it to pace the gradient update stream
  /// onto the same up-link the evictions ride.
  using SlotHook =
      std::function<void(bool, std::uint32_t, sim::Time, sim::Time)>;
  void set_slot_hook(SlotHook hook) { hook_ = std::move(hook); }

  /// Run the step to completion on `q`, submitting CXL migrations to
  /// `up` (device -> CPU: evictions) and `down` (CPU -> device:
  /// prefetches and demand fetches).
  ScheduleResult run(sim::EventQueue& q, cxl::Channel& up,
                     cxl::Channel& down);

 private:
  struct TState {
    bool in_hbm = false;
    bool in_lower = false;
    bool fetching = false;
    sim::Time hbm_ready = 0.0;
    std::size_t consumed = 0;  ///< Retired consume count.
  };
  struct PendingPrefetch {
    std::uint32_t tensor = 0;
    std::size_t consume_idx = 0;
    std::size_t slot = 0;  ///< Slot whose start the fetch must beat.
  };

  std::size_t slot_of(sim::Time consume_t) const;
  void occ_change(sim::Time t, Tier tier, std::int64_t delta);
  /// Move `bytes` of `tensor`; returns delivery time.
  sim::Time transfer(sim::Time t, std::uint32_t tensor, Tier from, Tier to,
                     bool prefetch);
  /// Start a fetch toward HBM and schedule its delivery flip; returns the
  /// delivery time.
  sim::Time issue_fetch(sim::Time t, std::uint32_t tensor);
  /// Fetch toward HBM if needed; returns the time the tensor is usable.
  sim::Time require(sim::Time t, std::uint32_t tensor);
  void try_issue_prefetches(std::size_t horizon_slot, sim::Time t);
  sim::Time evict(sim::Time t, std::uint32_t tensor);
  void exec_slot(sim::EventQueue& q, std::size_t g, sim::Time t);

  const StepProfile& prof_;
  const TierPlan& plan_;
  const offload::Calibration& cal_;
  check::TierObserver* obs_;
  SlotHook hook_;

  sim::EventQueue* q_ = nullptr;
  cxl::Channel* up_ = nullptr;
  cxl::Channel* down_ = nullptr;
  ScheduleResult res_;
  std::vector<TState> state_;
  std::array<std::uint64_t, kTierCount> occ_bytes_{};
  std::size_t n_slots_ = 0;
  /// Per slot: (tensor, consume_idx) retiring at slot start.
  std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>> consumers_;
  /// Per forward slot: activations materializing at slot end.
  std::vector<std::vector<std::uint32_t>> produces_;
  std::vector<PendingPrefetch> pending_;
};

}  // namespace teco::tier
