// MigrationScheduler — execute a TierPlan against the event/link substrate.
//
// The scheduler replays the step's compute slots (forward layers in order,
// then backward layers in reverse) on the shared sim::EventQueue and turns
// the plan's migrations into real traffic: CXL-tier migrations are
// submitted to the caller's cxl::Channel pair — the SAME channels the
// parameter/gradient update streams use, so link contention is modeled,
// not assumed away — while giant-cache migrations are device-local copies
// that never cross the link. When a consumer reaches a tensor whose fetch
// has not landed, the slot stalls until delivery and the stall is charged
// (and reported to the check::TierObserver, where the strict checker
// enforces the T1/T2 invariants).
//
// Prefetch pacing: a prefetch for a consume in slot s may be issued once
// execution enters slot s - prefetch_depth (initial slots are issued at
// step start). Under Policy::kNaiveSwap there is no lookahead and
// evictions are synchronous: compute blocks on the link both ways — the
// strawman the benches compare against.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "check/tier_checker.hpp"
#include "core/annotations.hpp"
#include "cxl/channel.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "offload/calibration.hpp"
#include "sim/event_queue.hpp"
#include "tier/placement_planner.hpp"

namespace teco::tier {

/// Step-function byte occupancy of one tier over the step.
struct OccupancySeries {
  std::vector<std::pair<sim::Time, std::uint64_t>> points;
  std::uint64_t peak = 0;
};

/// One executed migration, for Gantt lanes and trace export.
struct Transfer {
  sim::Time start = 0.0;
  sim::Time end = 0.0;
  Tier from = Tier::kHbm;
  Tier to = Tier::kCxlDram;
  std::uint32_t tensor = 0;
  std::uint64_t bytes = 0;
  bool prefetch = false;
};

struct ScheduleResult {
  sim::Time forward_end = 0.0;   ///< Includes fetch/evict stalls.
  sim::Time backward_end = 0.0;  ///< End of compute, with stalls.
  sim::Time stall_time = 0.0;
  std::vector<std::pair<sim::Time, sim::Time>> stalls;  ///< Stalled spans.
  std::array<OccupancySeries, kTierCount> occupancy;
  std::vector<Transfer> transfers;
  /// tier.* registry deltas for this run (tier.prefetches,
  /// tier.prefetch_bytes, tier.prefetch_hits, tier.demand_fetches,
  /// tier.evictions, tier.evict_bytes, tier.stall_us) — the scheduler's
  /// bespoke counter fields migrated onto the one instrumentation spine.
  std::vector<obs::Sample> metrics;
  /// Tail of the scheduler's causal chain (stall -> compute -> evict
  /// nodes per slot), sim::kNoCausalNode unless set_causal() was wired.
  /// Callers splice follow-on phases (the activation timeline's optimizer
  /// stages) onto it and extract the step's critical path from theirs.
  std::uint32_t causal_tail = sim::kNoCausalNode;

  /// Value of a tier.* delta by full dotted name; 0.0 when absent.
  double metric(std::string_view name) const {
    for (const obs::Sample& s : metrics) {
      if (s.name == name) return s.value;
    }
    return 0.0;
  }

  std::uint64_t migrated_bytes() const {
    return static_cast<std::uint64_t>(metric("tier.prefetch_bytes") +
                                      metric("tier.evict_bytes"));
  }
};

class MigrationScheduler {
 public:
  /// `obs` may be null; `prof` and `plan` must outlive run().
  MigrationScheduler(const StepProfile& prof, const TierPlan& plan,
                     const offload::Calibration& cal,
                     check::TierObserver* obs = nullptr);

  /// Called as each compute slot retires: (backward, layer, start, end).
  /// The activation timeline uses it to pace the gradient update stream
  /// onto the same up-link the evictions ride.
  using SlotHook =
      std::function<void(bool, std::uint32_t, sim::Time, sim::Time)>;
  void set_slot_hook(SlotHook hook) {
    shard_.assert_held();
    hook_ = std::move(hook);
  }

  /// Record tier.* counters into `reg` instead of the scheduler's private
  /// registry (nullptr reverts). Handles are resolved at run() start; the
  /// run's deltas land in ScheduleResult::metrics either way.
  void set_metrics(obs::MetricsRegistry* reg) {
    shard_.assert_held();
    ext_reg_ = reg;
  }

  /// Emit tier.{fetch,evict}/tier.stall spans into `buf` (nullptr = off).
  void set_trace(obs::TraceBuffer* buf) {
    shard_.assert_held();
    trace_ = buf;
  }

  /// Record the run's causal chain into `g` (nullptr = off): the graph is
  /// attached to the queue as its provenance sink for the duration of
  /// run(), fetch/evict schedules are category-tagged, and every slot
  /// appends stall/compute nodes to an explicit chain ending at
  /// ScheduleResult::causal_tail.
  void set_causal(obs::causal::CausalGraph* g) {
    shard_.assert_held();
    causal_ = g;
  }

  /// Run the step to completion on `q`, submitting CXL migrations to
  /// `up` (device -> CPU: evictions) and `down` (CPU -> device:
  /// prefetches and demand fetches).
  ScheduleResult run(sim::EventQueue& q, cxl::Channel& up,
                     cxl::Channel& down);

 private:
  struct TState {
    bool in_hbm = false;
    bool in_lower = false;
    bool fetching = false;
    bool prefetched = false;  ///< Current residency came from a prefetch.
    sim::Time hbm_ready = 0.0;
    std::size_t consumed = 0;  ///< Retired consume count.
  };
  struct PendingPrefetch {
    std::uint32_t tensor = 0;
    std::size_t consume_idx = 0;
    std::size_t slot = 0;  ///< Slot whose start the fetch must beat.
  };

  std::size_t slot_of(sim::Time consume_t) const;
  void occ_change(sim::Time t, Tier tier, std::int64_t delta)
      TECO_REQUIRES(shard_);
  /// Move `bytes` of `tensor`; returns delivery time.
  sim::Time transfer(sim::Time t, std::uint32_t tensor, Tier from, Tier to,
                     bool prefetch) TECO_REQUIRES(shard_);
  /// Start a fetch toward HBM and schedule its delivery flip; returns the
  /// delivery time.
  sim::Time issue_fetch(sim::Time t, std::uint32_t tensor)
      TECO_REQUIRES(shard_);
  /// Fetch toward HBM if needed; returns the time the tensor is usable.
  sim::Time require(sim::Time t, std::uint32_t tensor) TECO_REQUIRES(shard_);
  void try_issue_prefetches(std::size_t horizon_slot, sim::Time t)
      TECO_REQUIRES(shard_);
  sim::Time evict(sim::Time t, std::uint32_t tensor) TECO_REQUIRES(shard_);
  void exec_slot(sim::EventQueue& q, std::size_t g, sim::Time t)
      TECO_REQUIRES(shard_);

  const StepProfile& prof_;
  const TierPlan& plan_;
  const offload::Calibration& cal_;
  check::TierObserver* obs_;
  SlotHook hook_ TECO_SHARD_AFFINE(shard_);

  /// Resolved tier.* handles, valid for the duration of one run().
  struct Handles {
    obs::Counter* prefetches = nullptr;
    obs::Counter* prefetch_bytes = nullptr;
    obs::Counter* prefetch_hits = nullptr;
    obs::Counter* demand_fetches = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* evict_bytes = nullptr;
    obs::Counter* stall_us = nullptr;
  };
  Handles resolve_handles(obs::MetricsRegistry& reg);
  void charge_stall(sim::Time from, sim::Time to) TECO_REQUIRES(shard_);
  /// Append a [from, to] node to the explicit chain (no-op when unwired
  /// or zero-width).
  void causal_note(obs::causal::Category cat, sim::Time from, sim::Time to)
      TECO_REQUIRES(shard_);

  /// The scheduler drives the caller's queue for the whole step (run()
  /// loops it to completion), so it is a queue context: every slot/flip
  /// lambda it schedules runs on this shard and re-establishes the token
  /// before touching guarded state.
  core::ShardCapability shard_;
  TECO_QUEUE_CONTEXT(q_);

  obs::MetricsRegistry* ext_reg_ TECO_SHARD_AFFINE(shard_) = nullptr;
  obs::MetricsRegistry local_reg_;  ///< Used when no registry is attached.
  obs::TraceBuffer* trace_ TECO_SHARD_AFFINE(shard_) = nullptr;
  obs::causal::CausalGraph* causal_ TECO_SHARD_AFFINE(shard_) = nullptr;
  std::uint32_t causal_tail_ TECO_SHARD_AFFINE(shard_) = sim::kNoCausalNode;
  Handles m_ TECO_SHARD_AFFINE(shard_);

  sim::EventQueue* q_ TECO_SHARD_AFFINE(shard_) = nullptr;
  cxl::Channel* up_ TECO_SHARD_AFFINE(shard_) = nullptr;
  cxl::Channel* down_ TECO_SHARD_AFFINE(shard_) = nullptr;
  ScheduleResult res_ TECO_SHARD_AFFINE(shard_);
  std::vector<TState> state_ TECO_SHARD_AFFINE(shard_);
  std::array<std::uint64_t, kTierCount> occ_bytes_ TECO_SHARD_AFFINE(shard_){};
  std::size_t n_slots_ = 0;
  /// Per slot: (tensor, consume_idx) retiring at slot start.
  std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>> consumers_;
  /// Per forward slot: activations materializing at slot end.
  std::vector<std::vector<std::uint32_t>> produces_;
  std::vector<PendingPrefetch> pending_ TECO_SHARD_AFFINE(shard_);
};

}  // namespace teco::tier
