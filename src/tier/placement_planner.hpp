// PlacementPlanner — decide each tensor's home tier and migration schedule.
//
// Four policies, in increasing sophistication:
//
//  kAllHbm    — everything stays in HBM. Zero migrations; infeasible (OOM)
//               whenever the step's peak live bytes exceed the budget.
//  kNaiveSwap — the strawman every offloading paper measures against:
//               activations are written straight through to CXL DRAM when
//               produced (synchronously — forward blocks on the link) and
//               demand-fetched when backward needs them (fully exposed).
//  kMinStall  — greedy cost model: evict the tensors whose re-fetch can be
//               overlapped most cheaply (largest dead span relative to the
//               prefetch window the link bandwidth allows) until the plan
//               fits the budget. Tight-deadline tensors go to the giant
//               cache (device-local, no link crossing) while it has room.
//  kKnapsack  — 10Cache-style lifetime/size scoring: each tensor's HBM
//               residency is valued at its estimated avoided stall and
//               weighted by the byte-seconds it would occupy; the keep-set
//               is filled by value density until the budget is consumed.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "offload/calibration.hpp"
#include "tier/lifetime_profiler.hpp"
#include "tier/tier.hpp"

namespace teco::tier {

enum class Policy : std::uint8_t {
  kAllHbm,
  kNaiveSwap,
  kMinStall,
  kKnapsack,
};

std::string_view to_string(Policy p);
/// Parse the config-file spelling (all_hbm | naive_swap | min_stall |
/// knapsack); nullopt for anything else.
std::optional<Policy> policy_from_string(std::string_view s);

/// One eviction candidate for runtime (non-planned) victim selection.
/// The serving runtime builds these from HBM-resident KV sessions each time
/// the budget is exceeded; unlike the ahead-of-time TierPlan, candidates
/// carry *observed* recency and a scheduler-provided next-use estimate.
struct VictimCandidate {
  std::uint64_t id = 0;          ///< Owner id (session, tensor, ...).
  std::uint64_t bytes = 0;       ///< HBM bytes freed by evicting it.
  sim::Time idle = 0.0;          ///< Time since the owner last ran.
  sim::Time next_use_gap = 0.0;  ///< Estimated time until it runs again.
};

/// Sort candidates best-victim-first under the policy's selection logic:
/// kMinStall approximates Belady (evict whatever is needed furthest in the
/// future, so the re-fetch has the longest overlap window), kKnapsack
/// scores byte-seconds (cold-and-large first, the 10Cache density rule),
/// and the strawmen fall back to id order. Ties always break by id, so the
/// ordering is a deterministic total order.
void order_victims(Policy p, std::vector<VictimCandidate>& v);

struct PlannerConfig {
  Policy policy = Policy::kMinStall;
  std::uint64_t hbm_bytes = 16ull << 30;
  std::uint64_t giant_cache_bytes = 4ull << 30;
  /// How many compute slots ahead of a consumer the scheduler may issue
  /// its prefetch (and the overlap window the min-stall cost model prices).
  std::size_t prefetch_depth = 2;
};

/// One planned data movement. Migrations are anchored to lifetime events,
/// not wall-clock times: the scheduler fires them when the (possibly
/// stall-shifted) producing/consuming event actually happens.
struct Migration {
  std::uint32_t tensor = 0;
  Tier from = Tier::kHbm;
  Tier to = Tier::kCxlDram;
  bool prefetch = false;  ///< false = eviction out of HBM.
  /// Eviction: start after this consume index has retired (SIZE_MAX =
  /// right after produce). Prefetch: must land before this consume index.
  std::size_t consume_idx = 0;
  sim::Time planned_issue = 0.0;     ///< From the unstalled profile.
  sim::Time planned_deadline = 0.0;  ///< Consume time it must beat.
};

struct TierPlan {
  Policy policy = Policy::kAllHbm;
  /// Copied from PlannerConfig so the scheduler sees the same window the
  /// cost model priced.
  std::size_t prefetch_depth = 2;
  std::vector<Tier> home;  ///< Indexed by tensor id.
  std::vector<Migration> migrations;
  /// Static HBM high-water mark of the plan (kept tensors only; the
  /// transient produce-then-evict residency of offloaded activations is a
  /// scheduler-level quantity).
  std::uint64_t planned_hbm_peak = 0;
  std::uint64_t planned_offload_bytes = 0;
  /// Whether the all-HBM placement would have fit the budget at all.
  bool hbm_feasible = true;

  std::uint64_t migration_count(bool prefetch) const {
    std::uint64_t n = 0;
    for (const auto& m : migrations) n += m.prefetch == prefetch ? 1 : 0;
    return n;
  }
};

class PlacementPlanner {
 public:
  PlacementPlanner(PlannerConfig cfg, const offload::Calibration& cal)
      : cfg_(cfg), cal_(cal) {}

  TierPlan plan(const StepProfile& prof) const;

  const PlannerConfig& config() const { return cfg_; }

 private:
  /// Estimated stall if `rec` is evicted to `t` and prefetched back inside
  /// an overlap window of `window` seconds per consume.
  sim::Time estimated_stall(const TensorRecord& rec, Tier t,
                            sim::Time window) const;
  sim::Time transfer_time(std::uint64_t bytes, Tier t) const;
  void emit_migrations(const StepProfile& prof, TierPlan* plan) const;

  PlannerConfig cfg_;
  offload::Calibration cal_;
};

}  // namespace teco::tier
