// teco::tier — lifetime-aware tensor placement over the coherent domain.
//
// The update protocol (src/offload, src/coherence) moves parameters and
// gradients; for long-context fine-tuning the dominant memory consumer is
// the *activation* working set, which grows with batch x sequence length
// while HBM does not. This library manages where each tensor lives across
// the three tiers of the TECO memory hierarchy and when it migrates:
//
//   kHbm        — accelerator HBM: compute reads/writes happen here.
//   kGiantCache — the giant cache (resizable-BAR window on the device):
//                 device-local, no link crossing, but a limited capacity.
//   kCxlDram    — CXL-attached CPU DRAM: effectively unlimited, but every
//                 migration crosses the serial link and contends with the
//                 parameter/gradient update streams.
//
// The pipeline is profile -> plan -> schedule (lifetime_profiler.hpp,
// placement_planner.hpp, migration_scheduler.hpp); the user-facing step
// timeline that glues it to the five existing runtimes lives in
// offload/activation_timeline.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace teco::tier {

enum class Tier : std::uint8_t {
  kHbm = 0,
  kGiantCache = 1,
  kCxlDram = 2,
};
inline constexpr std::size_t kTierCount = 3;

std::string_view to_string(Tier t);

enum class TensorClass : std::uint8_t {
  kWeight,      ///< FP16 compute copy; used once per pass per layer.
  kActivation,  ///< Saved forward output; consumed by backward in reverse.
};

std::string_view to_string(TensorClass c);

/// One tensor's lifetime inside a training step: when it materializes and
/// every instant a compute phase reads it. Times are the *unstalled*
/// schedule of the step model; the migration scheduler re-times them when
/// fetch stalls push compute back.
struct TensorRecord {
  std::uint32_t id = 0;
  std::string name;
  TensorClass cls = TensorClass::kActivation;
  std::uint32_t layer = 0;
  std::uint64_t bytes = 0;
  sim::Time produce = 0.0;
  std::vector<sim::Time> consumes;  ///< Sorted, nondecreasing.

  sim::Time first_consume() const {
    return consumes.empty() ? produce : consumes.front();
  }
  sim::Time last_use() const {
    return consumes.empty() ? produce : consumes.back();
  }
  /// The longest idle gap between uses — the window a planner can park the
  /// tensor in a lower tier without (ideally) stalling anything.
  sim::Time dead_span() const {
    sim::Time best = 0.0;
    sim::Time prev = produce;
    for (const sim::Time c : consumes) {
      if (c - prev > best) best = c - prev;
      prev = c;
    }
    return best;
  }
};

}  // namespace teco::tier
