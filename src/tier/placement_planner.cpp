#include "tier/placement_planner.hpp"

#include <algorithm>
#include <cmath>

namespace teco::tier {

std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kAllHbm: return "all_hbm";
    case Policy::kNaiveSwap: return "naive_swap";
    case Policy::kMinStall: return "min_stall";
    case Policy::kKnapsack: return "knapsack";
  }
  __builtin_unreachable();
}

std::optional<Policy> policy_from_string(std::string_view s) {
  if (s == "all_hbm") return Policy::kAllHbm;
  if (s == "naive_swap") return Policy::kNaiveSwap;
  if (s == "min_stall") return Policy::kMinStall;
  if (s == "knapsack") return Policy::kKnapsack;
  return std::nullopt;
}

void order_victims(Policy p, std::vector<VictimCandidate>& v) {
  switch (p) {
    case Policy::kAllHbm:
    case Policy::kNaiveSwap:
      // No cost model: deterministic id order (oldest session first).
      std::sort(v.begin(), v.end(),
                [](const VictimCandidate& a, const VictimCandidate& b) {
                  return a.id < b.id;
                });
      return;
    case Policy::kMinStall:
      // Belady approximation: the candidate needed furthest in the future
      // gives the prefetcher the longest window to hide the re-fetch.
      std::sort(v.begin(), v.end(),
                [](const VictimCandidate& a, const VictimCandidate& b) {
                  if (a.next_use_gap != b.next_use_gap) {
                    return a.next_use_gap > b.next_use_gap;
                  }
                  if (a.idle != b.idle) return a.idle > b.idle;
                  return a.id < b.id;
                });
      return;
    case Policy::kKnapsack:
      // Byte-seconds density: evicting cold-and-large owners buys the most
      // budget headroom per unit of expected re-fetch pain.
      std::sort(v.begin(), v.end(),
                [](const VictimCandidate& a, const VictimCandidate& b) {
                  const double sa = static_cast<double>(a.bytes) *
                                    (a.idle + a.next_use_gap);
                  const double sb = static_cast<double>(b.bytes) *
                                    (b.idle + b.next_use_gap);
                  if (sa != sb) return sa > sb;
                  return a.id < b.id;
                });
      return;
  }
  __builtin_unreachable();
}

std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::kHbm: return "HBM";
    case Tier::kGiantCache: return "giant$";
    case Tier::kCxlDram: return "CXL";
  }
  __builtin_unreachable();
}

std::string_view to_string(TensorClass c) {
  switch (c) {
    case TensorClass::kWeight: return "weight";
    case TensorClass::kActivation: return "activation";
  }
  __builtin_unreachable();
}

sim::Time PlacementPlanner::transfer_time(std::uint64_t bytes, Tier t) const {
  if (t == Tier::kGiantCache) {
    // Device-local copy through the resizable-BAR window: no link crossing.
    return cal_.hbm_gc_copy_latency +
           static_cast<double>(bytes) / cal_.hbm_gc_copy_bw;
  }
  return cal_.phy.packet_latency +
         static_cast<double>(bytes) / cal_.phy.cxl_bandwidth();
}

sim::Time PlacementPlanner::estimated_stall(const TensorRecord& rec, Tier t,
                                            sim::Time window) const {
  // Each consume needs the tensor back in HBM; the scheduler can hide the
  // re-fetch behind up to `window` of earlier compute, but never more than
  // the idle gap that actually precedes the consume — a tensor consumed
  // right after produce pays the full transfer.
  const sim::Time xfer = transfer_time(rec.bytes, t);
  sim::Time stall = 0.0;
  sim::Time prev = rec.produce;
  for (const sim::Time c : rec.consumes) {
    const sim::Time overlap = std::min(window, std::max(0.0, c - prev));
    stall += std::max(0.0, xfer - overlap);
    prev = c;
  }
  return stall;
}

void PlacementPlanner::emit_migrations(const StepProfile& prof,
                                       TierPlan* plan) const {
  for (const auto& rec : prof.tensors) {
    const Tier home = plan->home[rec.id];
    if (home == Tier::kHbm) continue;
    const sim::Time xfer = transfer_time(rec.bytes, home);
    // Weights start the step already parked in their home tier, so the
    // first prefetch has no preceding eviction; activations materialize in
    // HBM and are evicted right after produce.
    if (rec.cls == TensorClass::kActivation) {
      plan->migrations.push_back({rec.id, Tier::kHbm, home, false, SIZE_MAX,
                                  rec.produce, 0.0});
    }
    sim::Time prev = rec.produce;
    for (std::size_t i = 0; i < rec.consumes.size(); ++i) {
      const sim::Time c = rec.consumes[i];
      const bool idle_before = c > prev || (i == 0 &&
                               rec.cls == TensorClass::kWeight);
      if (idle_before) {
        plan->migrations.push_back(
            {rec.id, home, Tier::kHbm, true, i,
             std::max(rec.produce, c - xfer), c});
      }
      // Park it again between uses (no data moves for a clean copy; the
      // scheduler frees the HBM bytes once the next idle gap opens).
      if (i + 1 < rec.consumes.size() && rec.consumes[i + 1] > c) {
        plan->migrations.push_back({rec.id, Tier::kHbm, home, false, i, c,
                                    0.0});
      }
      prev = c;
    }
  }
  std::stable_sort(plan->migrations.begin(), plan->migrations.end(),
                   [](const Migration& a, const Migration& b) {
                     return a.planned_issue < b.planned_issue;
                   });
}

TierPlan PlacementPlanner::plan(const StepProfile& prof) const {
  TierPlan p;
  p.policy = cfg_.policy;
  p.prefetch_depth = cfg_.prefetch_depth;
  p.home.assign(prof.tensors.size(), Tier::kHbm);
  const std::uint64_t peak = prof.peak_live_bytes();
  p.hbm_feasible = peak <= cfg_.hbm_bytes;
  p.planned_hbm_peak = peak;

  if (cfg_.policy == Policy::kAllHbm) return p;

  // Which tensors leave HBM?
  std::vector<std::uint32_t> evicted;
  if (cfg_.policy == Policy::kNaiveSwap) {
    // Write-through everything that is not a weight; no cost model.
    for (const auto& rec : prof.tensors) {
      if (rec.cls == TensorClass::kActivation) evicted.push_back(rec.id);
    }
  } else if (peak > cfg_.hbm_bytes) {
    const std::uint64_t need = peak - cfg_.hbm_bytes;
    const sim::Time fwd_win =
        static_cast<double>(cfg_.prefetch_depth) * prof.fwd_layer_time();
    const sim::Time bwd_win =
        static_cast<double>(cfg_.prefetch_depth) * prof.bwd_layer_time();
    struct Cand {
      std::uint32_t id;
      std::uint64_t bytes;
      double score;  ///< Lower = evict first.
    };
    std::vector<Cand> cands;
    for (const auto& rec : prof.tensors) {
      if (rec.bytes == 0 || rec.consumes.empty()) continue;
      const sim::Time window =
          rec.cls == TensorClass::kWeight ? std::min(fwd_win, bwd_win)
                                          : bwd_win;
      const sim::Time stall = estimated_stall(rec, Tier::kCxlDram, window);
      double score;
      if (cfg_.policy == Policy::kMinStall) {
        // Greedy min-stall: pay the least added stall per byte freed.
        score = stall / static_cast<double>(rec.bytes);
      } else {
        // Knapsack (10Cache-style): HBM residency is valued at the stall
        // it avoids and weighted by the byte-seconds it occupies; low
        // value density leaves first.
        const double byte_seconds = static_cast<double>(rec.bytes) *
                                    std::max(rec.dead_span(), 1e-9);
        score = stall / byte_seconds;
      }
      cands.push_back({rec.id, rec.bytes, score});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& a, const Cand& b) {
                       return a.score < b.score;
                     });
    std::uint64_t freed = 0;
    for (const auto& c : cands) {
      if (freed >= need) break;
      evicted.push_back(c.id);
      freed += c.bytes;
    }
  }

  // Destination tiers: the giant cache is the fast escape hatch, so spend
  // it on the tensors with the tightest idle gaps (the ones a CXL round
  // trip would most likely stall on).
  std::stable_sort(evicted.begin(), evicted.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return prof.tensors[a].dead_span() <
                            prof.tensors[b].dead_span();
                   });
  std::uint64_t gc_used = 0;
  for (const std::uint32_t id : evicted) {
    const std::uint64_t bytes = prof.tensors[id].bytes;
    if (cfg_.policy != Policy::kNaiveSwap &&
        gc_used + bytes <= cfg_.giant_cache_bytes) {
      p.home[id] = Tier::kGiantCache;
      gc_used += bytes;
    } else {
      p.home[id] = Tier::kCxlDram;
    }
    p.planned_offload_bytes += bytes;
  }
  p.planned_hbm_peak = peak > p.planned_offload_bytes
                           ? peak - p.planned_offload_bytes
                           : 0;
  emit_migrations(prof, &p);
  return p;
}

}  // namespace teco::tier
