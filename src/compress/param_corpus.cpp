#include "compress/param_corpus.hpp"

#include <cstring>

#include "sim/rng.hpp"

namespace teco::compress {

std::vector<CorpusSpec> table8_corpora() {
  // zero_run_fraction tuned so the real LZ4 codec measures ~Table VIII's
  // ratios (5 %, 0 %, 0 %, 36 % saved) on the generated corpus.
  return {
      {"GPT2", 0.075, 101},
      {"Albert-xxlarge-v1", 0.0, 102},
      {"Bert-large", 0.0, 103},
      {"T5-large", 0.52, 104},
  };
}

std::vector<std::uint8_t> make_param_corpus(const CorpusSpec& spec,
                                            std::size_t bytes) {
  const std::size_t n_floats = bytes / 4;
  std::vector<std::uint8_t> out(n_floats * 4);
  sim::Rng rng(spec.seed);

  std::size_t i = 0;
  while (i < n_floats) {
    if (spec.zero_run_fraction > 0.0 &&
        rng.next_bool(spec.zero_run_fraction / 64.0)) {
      // A zero run of ~64 floats (a pruned row / padding block).
      const std::size_t run = 32 + rng.next_below(64);
      for (std::size_t k = 0; k < run && i < n_floats; ++k, ++i) {
        std::memset(out.data() + i * 4, 0, 4);
      }
      continue;
    }
    const float v = static_cast<float>(rng.next_gaussian()) * 0.02f;
    std::memcpy(out.data() + i * 4, &v, 4);
    ++i;
  }
  return out;
}

}  // namespace teco::compress
