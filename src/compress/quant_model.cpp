#include "compress/quant_model.hpp"

#include <algorithm>

#include "offload/runtime.hpp"
#include "offload/step_model.hpp"

namespace teco::compress {

sim::Time lz4_step_time(const dl::ModelConfig& m, std::uint32_t batch,
                        const offload::Calibration& cal,
                        const Lz4PathConfig& lz4) {
  // Gradients ride the TECO-CXL update path unchanged; replace only the
  // parameter path: CPU compress -> link transfer -> GPU decompress.
  const auto base =
      offload::simulate_step(offload::RuntimeKind::kTecoCxl, m, batch, cal);
  const auto in = offload::compute_step_inputs(m, batch, cal);
  const double bytes = static_cast<double>(in.param_bytes);

  const sim::Time compress = bytes / lz4.compress_bw;
  const sim::Time transfer = bytes * lz4.ratio / cal.phy.cxl_bandwidth();
  const sim::Time decompress = bytes / lz4.decompress_bw;
  // The three stages pipeline against each other but can only start once
  // the optimizer produced the parameters; the slowest stage is exposed
  // beyond whatever the Adam window hides.
  const sim::Time pipeline = std::max({compress, transfer, decompress});
  const sim::Time exposed = std::max(0.0, pipeline - in.adam) +
                            std::min(compress, in.adam);

  return base.forward_backward + base.grad_transfer_exposed +
         base.grad_optimizer + base.param_optimizer + exposed;
}

sim::Time zeroquant_step_time(const dl::ModelConfig& m, std::uint32_t batch,
                              const offload::Calibration& cal,
                              const ZeroQuantConfig& zq) {
  const auto in = offload::compute_step_inputs(m, batch, cal);
  const sim::Time student_fb = in.forward + in.backward;
  // Teacher inference (forward only) + layer-wise distillation losses.
  const sim::Time teacher = in.forward;
  const sim::Time kd = zq.kd_overhead_factor * student_fb;
  // Quantized parameters shrink the explicit transfers 4x.
  const sim::Time param_xfer = static_cast<double>(in.param_bytes) *
                               zq.compression_ratio / cal.phy.dma_bandwidth();
  const sim::Time grad_xfer = static_cast<double>(in.grad_bytes) *
                              zq.compression_ratio / cal.phy.dma_bandwidth();
  return student_fb + teacher + kd + in.grad_clip + in.adam + param_xfer +
         grad_xfer;
}

Table7Row table7_training_hours(std::uint32_t batch, std::uint32_t epochs) {
  const auto& cal = offload::default_calibration();
  const auto model = dl::bert_base_uncased();
  const double steps =
      static_cast<double>(392702ull * epochs) / static_cast<double>(batch);

  const sim::Time teco_step =
      offload::simulate_step(offload::RuntimeKind::kTecoReduction, model,
                             batch, cal)
          .total();
  const sim::Time zq_step = zeroquant_step_time(model, batch, cal);

  Table7Row row;
  row.teco_hours = teco_step * steps / 3600.0;
  row.zeroquant_hours = zq_step * steps / 3600.0;
  row.ratio = row.zeroquant_hours / row.teco_hours;
  return row;
}

}  // namespace teco::compress
