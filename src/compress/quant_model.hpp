// Cost models for the model-compression alternatives (Section VIII-F).
//
// Table VII: ZeRO-Quant trains a quantized student alongside a
// full-precision teacher; the extra teacher forward and layer-wise
// knowledge distillation make each step ~2.9x a TECO-Reduction step even
// though its parameter traffic is 4x smaller.
//
// Table VIII: replacing DBA with LZ4 keeps transfers lossless but pays a
// CPU compression pass per step on the full parameter stream; the measured
// codec ratio and throughput (from compress/lz4.hpp on the Table VIII
// corpora) decide the exposed time.
#pragma once

#include <cstdint>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::compress {

struct Lz4PathConfig {
  double ratio = 1.0;           ///< compressed/original, measured on corpus.
  double compress_bw = 2.0e9;   ///< Multithreaded CPU LZ4 (bytes/s).
  double decompress_bw = 20e9;  ///< GPU nvCOMP-class decompression.
};

/// One training step where the parameter stream is LZ4-compressed on CPU,
/// sent over CXL, and decompressed on the GPU (gradients use TECO-CXL).
sim::Time lz4_step_time(const dl::ModelConfig& m, std::uint32_t batch,
                        const offload::Calibration& cal,
                        const Lz4PathConfig& lz4);

struct ZeroQuantConfig {
  /// Teacher-forward + layer-wise distillation overhead as a multiple of
  /// the student's forward+backward time. Fitted once to Table VII.
  double kd_overhead_factor = 5.8;
  /// INT8 quantization: 75 % parameter-traffic reduction (Table VII).
  double compression_ratio = 0.25;
};

sim::Time zeroquant_step_time(const dl::ModelConfig& m, std::uint32_t batch,
                              const offload::Calibration& cal,
                              const ZeroQuantConfig& zq = {});

/// Table VII end-to-end hours: GLUE-MNLI (392,702 samples) x epochs.
struct Table7Row {
  double zeroquant_hours = 0.0;
  double teco_hours = 0.0;
  double ratio = 0.0;
};
Table7Row table7_training_hours(std::uint32_t batch = 8,
                                std::uint32_t epochs = 3);

}  // namespace teco::compress
