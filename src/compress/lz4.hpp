// From-scratch LZ4 block codec (Section VIII-F, Table VIII).
//
// The paper evaluates LZ4 as the lossless alternative to DBA and finds it
// impractical: FP32 parameter streams barely compress (0-36 %) while the
// (de)compression passes at least double training time. We implement the
// real LZ4 block format — greedy hash-table matcher, standard token/
// literal/offset encoding — so both the ratio and the throughput columns of
// Table VIII come from a genuine codec run on parameter bytes.
//
// Format: each sequence is
//   token(1B: lit_len<<4 | (match_len-4)) [lit_len ext] literals
//   offset(2B LE) [match_len ext]
// with 255-run length extensions; the block ends with a literals-only
// sequence and the last 5 bytes are always literals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace teco::compress {

/// Compress `src` into a self-contained LZ4 block. Never fails; worst case
/// the output is slightly larger than the input (incompressible data).
std::vector<std::uint8_t> lz4_compress(std::span<const std::uint8_t> src);

/// Decompress an LZ4 block produced by lz4_compress (or any conformant
/// encoder) into exactly `decompressed_size` bytes. Throws
/// std::runtime_error on malformed input.
std::vector<std::uint8_t> lz4_decompress(std::span<const std::uint8_t> src,
                                         std::size_t decompressed_size);

/// Convenience: compressed-size / original-size (1.0 = incompressible).
double compression_ratio(std::span<const std::uint8_t> src);

}  // namespace teco::compress
