#include "compress/lz4.hpp"

#include <cstring>
#include <stdexcept>

namespace teco::compress {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kLastLiterals = 5;   ///< Spec: last 5 bytes literal.
constexpr std::size_t kMfLimit = 12;       ///< No match starts within 12B of end.
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashLog = 16;

std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

void emit_length(std::vector<std::uint8_t>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

}  // namespace

std::vector<std::uint8_t> lz4_compress(std::span<const std::uint8_t> src) {
  std::vector<std::uint8_t> out;
  out.reserve(src.size() + src.size() / 255 + 16);
  const std::size_t n = src.size();
  const std::uint8_t* base = src.data();

  auto emit_literal_run = [&](std::size_t lit_start, std::size_t lit_len,
                              std::size_t match_len, std::size_t offset) {
    const std::size_t ml_code = match_len == 0 ? 0 : match_len - kMinMatch;
    std::uint8_t token = 0;
    token |= static_cast<std::uint8_t>(
        (lit_len >= 15 ? 15 : lit_len) << 4);
    token |= static_cast<std::uint8_t>(ml_code >= 15 ? 15 : ml_code);
    out.push_back(token);
    if (lit_len >= 15) emit_length(out, lit_len - 15);
    out.insert(out.end(), base + lit_start, base + lit_start + lit_len);
    if (match_len != 0) {
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      if (ml_code >= 15) emit_length(out, ml_code - 15);
    }
  };

  if (n < kMfLimit + kLastLiterals) {
    if (n > 0) emit_literal_run(0, n, 0, 0);
    return out;
  }

  std::vector<std::uint32_t> table(1u << kHashLog, 0xFFFFFFFFu);
  std::size_t anchor = 0;
  std::size_t ip = 0;
  const std::size_t match_limit = n - kMfLimit;

  while (ip < match_limit) {
    const std::uint32_t h = hash4(read32(base + ip));
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(ip);
    if (cand == 0xFFFFFFFFu || ip - cand > kMaxOffset ||
        read32(base + cand) != read32(base + ip)) {
      ++ip;
      continue;
    }
    // Extend the match forward, keeping the last-5-literals invariant.
    std::size_t match_len = kMinMatch;
    const std::size_t max_len = (n - kLastLiterals) - ip;
    while (match_len < max_len &&
           base[cand + match_len] == base[ip + match_len]) {
      ++match_len;
    }
    emit_literal_run(anchor, ip - anchor, match_len, ip - cand);
    ip += match_len;
    anchor = ip;
  }
  emit_literal_run(anchor, n - anchor, 0, 0);
  return out;
}

std::vector<std::uint8_t> lz4_decompress(std::span<const std::uint8_t> src,
                                         std::size_t decompressed_size) {
  std::vector<std::uint8_t> out;
  out.reserve(decompressed_size);
  std::size_t ip = 0;
  const std::size_t n = src.size();

  auto read_length = [&](std::size_t initial) {
    std::size_t len = initial;
    if (initial == 15) {
      std::uint8_t b;
      do {
        if (ip >= n) throw std::runtime_error("lz4: truncated length");
        b = src[ip++];
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip < n) {
    const std::uint8_t token = src[ip++];
    const std::size_t lit_len = read_length(token >> 4);
    if (ip + lit_len > n) throw std::runtime_error("lz4: truncated literals");
    out.insert(out.end(), src.begin() + ip, src.begin() + ip + lit_len);
    ip += lit_len;
    if (ip >= n) break;  // Final literals-only sequence.
    if (ip + 2 > n) throw std::runtime_error("lz4: truncated offset");
    const std::size_t offset = src[ip] | (src[ip + 1] << 8);
    ip += 2;
    if (offset == 0 || offset > out.size()) {
      throw std::runtime_error("lz4: invalid offset");
    }
    const std::size_t match_len = read_length(token & 0x0F) + kMinMatch;
    // Overlapping copies are legal (offset < match_len): copy byte-wise.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }
  if (out.size() != decompressed_size) {
    throw std::runtime_error("lz4: size mismatch after decompression");
  }
  return out;
}

double compression_ratio(std::span<const std::uint8_t> src) {
  if (src.empty()) return 1.0;
  const auto c = lz4_compress(src);
  return static_cast<double>(c.size()) / static_cast<double>(src.size());
}

}  // namespace teco::compress
