// Synthetic FP32 parameter corpora with model-specific compressibility.
//
// Table VIII reports LZ4 ratios of 5 % (GPT-2), 0 % (Albert, Bert-large)
// and 36 % (T5-large) on transferred parameters. Trained FP32 weights have
// near-random mantissas (incompressible); whatever LZ4 finds comes from
// exact zeros (pruned/padded rows, tied embeddings) and repeated values.
// The corpus generator reproduces that structure: Gaussian weights with a
// model-specific fraction of zero runs, so the measured LZ4 ratio on our
// corpus lands where the paper's measurements did.
#pragma once

#include <cstdint>
#include <vector>

namespace teco::compress {

struct CorpusSpec {
  const char* model;
  double zero_run_fraction;  ///< Fraction of bytes inside zero runs.
  std::uint64_t seed;
};

/// Table VIII corpus specs for the four transformer models.
std::vector<CorpusSpec> table8_corpora();

/// Generate `bytes` of parameter data per the spec (bytes rounded down to
/// a multiple of 4).
std::vector<std::uint8_t> make_param_corpus(const CorpusSpec& spec,
                                            std::size_t bytes);

}  // namespace teco::compress
