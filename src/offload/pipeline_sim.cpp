#include "offload/pipeline_sim.hpp"

#include <algorithm>

#include "mem/address.hpp"

namespace teco::offload {

namespace {
using cxl::Channel;
using sim::Time;
}  // namespace

PipelineResult simulate_pipeline(RuntimeKind kind,
                                 const dl::ModelConfig& model,
                                 std::uint32_t batch, std::size_t steps,
                                 const Calibration& cal,
                                 const StepOptions& opts) {
  PipelineResult out;
  if (steps == 0) return out;

  if (kind == RuntimeKind::kCxlInvalidation) {
    // Demand-driven transfers serialize inside each step; nothing
    // pipelines across boundaries.
    const Time per = simulate_step(kind, model, batch, cal, opts).total();
    out.step_durations.assign(steps, per);
    out.total = per * static_cast<double>(steps);
    out.first_step = per;
    out.steady_step = per;
    return out;
  }

  const StepInputs in = compute_step_inputs(model, batch, cal);
  const bool teco =
      kind == RuntimeKind::kTecoCxl || kind == RuntimeKind::kTecoReduction;
  const bool dpu = kind == RuntimeKind::kZeroOffloadDpu;
  const auto& phy = cal.phy;

  Channel up("pipe-up", teco ? phy.cxl_bandwidth() : phy.dma_bandwidth(),
             teco ? phy.packet_latency : phy.dma_setup_latency,
             cal.cxl_queue_entries);
  Channel down("pipe-down", teco ? phy.cxl_bandwidth() : phy.dma_bandwidth(),
               teco ? phy.packet_latency : phy.dma_setup_latency,
               cal.cxl_queue_entries);

  const std::uint64_t param_payload =
      kind == RuntimeKind::kTecoReduction && opts.dirty_bytes < 4
          ? mem::kWordsPerLine * opts.dirty_bytes
          : mem::kLineBytes;

  std::vector<Time> params_delivered(steps, 0.0);
  Time gpu_free = 0.0, cpu_free = 0.0, prev_end = 0.0;
  out.step_durations.reserve(steps);

  for (std::size_t i = 0; i < steps; ++i) {
    // Forward may only use parameters that have landed on the device.
    // DPU: the optimizer remains synchronous with the training loop
    // (optimizer.step() blocks), but the TRANSFER of step i overlaps step
    // i+1's compute — the device only needs step i-1's delivery.
    Time fwd_start = gpu_free;
    if (dpu) {
      fwd_start = std::max(fwd_start, cpu_free);
      if (i >= 2) fwd_start = std::max(fwd_start, params_delivered[i - 2]);
    } else if (i >= 1) {
      fwd_start = std::max(fwd_start, params_delivered[i - 1]);
    }
    const Time bwd_start = fwd_start + in.forward;
    const Time bwd_end = bwd_start + in.backward;
    gpu_free = bwd_end;

    // Gradients.
    Time grads_done;
    if (teco) {
      grads_done = paced_line_stream(up, bwd_start, in.backward,
                                     in.grad_lines, mem::kLineBytes,
                                     cal.pacing_chunks);
    } else {
      const std::uint64_t n_flushes =
          (in.grad_bytes + in.grad_buffer_bytes - 1) / in.grad_buffer_bytes;
      grads_done = bwd_end;
      std::uint64_t sent = 0;
      for (std::uint64_t fl = 0; fl < n_flushes; ++fl) {
        const std::uint64_t upto =
            std::min(in.grad_bytes, (fl + 1) * in.grad_buffer_bytes);
        const Time ready =
            bwd_start + in.backward * static_cast<double>(upto) /
                            static_cast<double>(in.grad_bytes);
        grads_done =
            up.submit(ready, cxl::data_packet(cxl::MessageType::kData, 0,
                                              upto - sent))
                .delivered;
        sent = upto;
      }
    }

    // CPU phases.
    const Time cpu_start = std::max({bwd_end, grads_done, cpu_free});
    const Time adam_start = cpu_start + in.grad_clip;
    const Time opt_end = adam_start + in.adam;
    cpu_free = opt_end;

    // Parameter transfer.
    if (teco) {
      Time done = paced_line_stream(down, adam_start, in.adam,
                                    in.param_lines, param_payload,
                                    cal.pacing_chunks);
      if (kind == RuntimeKind::kTecoReduction) done += cal.dba_latency;
      params_delivered[i] = done;
    } else {
      const std::size_t chunks =
          std::max<std::size_t>(1, cal.param_staging_chunks);
      const double chunk_bytes =
          static_cast<double>(in.param_bytes) / static_cast<double>(chunks);
      const Time fill = chunk_bytes / cal.pinned_copy_bw;
      Time done = opt_end;
      for (std::size_t j = 0; j < chunks; ++j) {
        const Time ready = opt_end + fill * static_cast<double>(j + 1);
        done = down.submit(ready,
                           cxl::data_packet(
                               cxl::MessageType::kData, 0,
                               static_cast<std::uint64_t>(chunk_bytes)))
                   .delivered;
      }
      params_delivered[i] = done;
    }

    // Step boundary: when this step's state is committed. Under DPU the
    // transfer spills into the next step by design.
    const Time end = dpu ? opt_end : std::max(opt_end, params_delivered[i]);
    out.step_durations.push_back(end - prev_end);
    prev_end = end;
  }

  out.total = std::max(prev_end, params_delivered.back());
  out.first_step = out.step_durations.front();
  out.steady_step = out.step_durations.back();
  return out;
}

}  // namespace teco::offload
