#include "offload/experiments.hpp"

#include <algorithm>

namespace teco::offload {

SpeedupCell speedup_vs_baseline(RuntimeKind treatment,
                                const dl::ModelConfig& model,
                                std::uint32_t batch, const Calibration& cal,
                                const StepOptions& opts) {
  SpeedupCell cell;
  cell.model = model.name;
  cell.batch = batch;
  if (!fits_on_gpu(model, batch)) {
    cell.valid = false;
    return cell;
  }
  cell.baseline =
      simulate_step(RuntimeKind::kZeroOffload, model, batch, cal, opts);
  cell.treatment = simulate_step(treatment, model, batch, cal, opts);
  cell.speedup = cell.baseline.total() / cell.treatment.total();
  cell.valid = true;
  return cell;
}

std::vector<SpeedupCell> speedup_grid(RuntimeKind treatment,
                                      const std::vector<dl::ModelConfig>& ms,
                                      const std::vector<std::uint32_t>& batches,
                                      const Calibration& cal,
                                      const StepOptions& opts) {
  std::vector<SpeedupCell> out;
  for (const auto& m : ms) {
    if (m.full_graph_only) {
      // GCNII only supports full-graph training: one cell, batch ignored.
      out.push_back(speedup_vs_baseline(treatment, m, 1, cal, opts));
      continue;
    }
    for (const auto b : batches) {
      out.push_back(speedup_vs_baseline(treatment, m, b, cal, opts));
    }
  }
  return out;
}

VolumeReport volume_report(RuntimeKind treatment, const dl::ModelConfig& model,
                           std::uint32_t batch, const Calibration& cal,
                           const StepOptions& opts) {
  const auto base =
      simulate_step(RuntimeKind::kZeroOffload, model, batch, cal, opts);
  const auto treat = simulate_step(treatment, model, batch, cal, opts);
  VolumeReport r;
  r.base_to_device = base.bytes_to_device;
  r.base_to_cpu = base.bytes_to_cpu;
  r.treat_to_device = treat.bytes_to_device;
  r.treat_to_cpu = treat.bytes_to_cpu;
  r.param_volume_reduction =
      base.bytes_to_device == 0
          ? 0.0
          : 1.0 - static_cast<double>(treat.bytes_to_device) /
                      static_cast<double>(base.bytes_to_device);
  r.comm_overhead_reduction =
      base.comm_exposed() <= 0.0
          ? 0.0
          : 1.0 - treat.comm_exposed() / base.comm_exposed();
  return r;
}

sim::Time schedule_training_time(RuntimeKind kind, const dl::ModelConfig& m,
                                 std::uint32_t batch, std::size_t steps,
                                 std::size_t act_aft_steps,
                                 const Calibration& cal,
                                 const StepOptions& opts) {
  if (kind != RuntimeKind::kTecoReduction || act_aft_steps == 0) {
    return simulate_step(kind, m, batch, cal, opts).total() *
           static_cast<double>(steps);
  }
  const std::size_t pre = std::min(act_aft_steps, steps);
  const auto before =
      simulate_step(RuntimeKind::kTecoCxl, m, batch, cal, opts).total();
  const auto after =
      simulate_step(RuntimeKind::kTecoReduction, m, batch, cal, opts).total();
  return before * static_cast<double>(pre) +
         after * static_cast<double>(steps - pre);
}

HeadlineSummary headline_summary(const std::vector<dl::ModelConfig>& models,
                                 const std::vector<std::uint32_t>& batches,
                                 const Calibration& cal,
                                 const StepOptions& opts) {
  HeadlineSummary s;
  double time_sum = 0.0, comm_sum = 0.0;
  const auto cells =
      speedup_grid(RuntimeKind::kTecoReduction, models, batches, cal, opts);
  for (const auto& c : cells) {
    if (!c.valid) continue;
    const double time_red = 1.0 - c.treatment.total() / c.baseline.total();
    const double comm_red =
        c.baseline.comm_exposed() <= 0.0
            ? 0.0
            : 1.0 - c.treatment.comm_exposed() / c.baseline.comm_exposed();
    time_sum += time_red;
    comm_sum += comm_red;
    s.max_time_reduction = std::max(s.max_time_reduction, time_red);
    s.max_comm_reduction = std::max(s.max_comm_reduction, comm_red);
    ++s.cells;
  }
  if (s.cells > 0) {
    s.avg_time_reduction = time_sum / static_cast<double>(s.cells);
    s.avg_comm_reduction = comm_sum / static_cast<double>(s.cells);
  }
  return s;
}

}  // namespace teco::offload
