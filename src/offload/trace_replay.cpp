#include "offload/trace_replay.hpp"

#include <algorithm>
#include <numeric>

#include "coherence/giant_cache.hpp"
#include "cxl/link.hpp"
#include "mem/cache.hpp"
#include "sim/rng.hpp"

namespace teco::offload {

namespace {

std::vector<std::uint64_t> visit_order(std::uint64_t n, bool shuffle,
                                       sim::Rng& rng) {
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0ull);
  if (shuffle) {
    for (std::uint64_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
  }
  return order;
}

}  // namespace

ReplayResult replay_training_step(const ReplayStepConfig& cfg,
                                  const Calibration& cal) {
  cxl::Link link(cal.phy, cal.cxl_queue_entries);
  const std::uint64_t gc_bytes =
      (cfg.param_lines + cfg.grad_lines) * mem::kLineBytes;
  coherence::GiantCache gc(gc_bytes);
  constexpr mem::Addr kParamBase = 0x1000'0000;
  const mem::Addr grad_base =
      kParamBase + cfg.param_lines * mem::kLineBytes;
  gc.map_region("params", kParamBase, cfg.param_lines * mem::kLineBytes,
                coherence::MesiState::kExclusive, true);
  gc.map_region("grads", grad_base, cfg.grad_lines * mem::kLineBytes,
                coherence::MesiState::kExclusive, false);
  mem::Cache cpu_cache(mem::llc_config());

  coherence::HomeAgent::Options opts;
  opts.protocol = cfg.protocol;
  opts.dba = cfg.dba;
  coherence::HomeAgent agent(link, gc, cpu_cache, opts);
  sim::Rng rng(cfg.seed);

  ReplayResult r;

  // --- Backward: the accelerator writes gradient lines back over the
  // backward window; each writeback rides the protocol.
  const auto grad_order = visit_order(cfg.grad_lines, cfg.shuffle, rng);
  const sim::Time bwd_end = cfg.forward + cfg.backward;
  for (std::uint64_t i = 0; i < cfg.grad_lines; ++i) {
    const sim::Time when =
        cfg.forward + cfg.backward * static_cast<double>(i + 1) /
                          static_cast<double>(cfg.grad_lines);
    agent.device_write_line(when,
                            grad_base + grad_order[i] * mem::kLineBytes);
  }
  r.grads_fence = agent.cxl_fence(bwd_end);
  r.grad_exposed = r.grads_fence - bwd_end;

  // Invalidation mode: the CPU must demand-fetch gradients before the clip.
  sim::Time cpu_ready = r.grads_fence;
  if (cfg.protocol == coherence::Protocol::kInvalidation) {
    // Demand reads issue pipelined (up to the pending-queue depth); the
    // clip starts when the last line lands.
    for (std::uint64_t i = 0; i < cfg.grad_lines; ++i) {
      const auto a = agent.cpu_read_line(r.grads_fence,
                                         grad_base + i * mem::kLineBytes);
      if (a.ready > cpu_ready) cpu_ready = a.ready;
    }
    r.grad_exposed = cpu_ready - bwd_end;
  }

  // --- Optimizer: the vectorized Adam sweep writes parameter lines back
  // over the adam window; each writeback rides the protocol.
  const sim::Time adam_start = cpu_ready + cfg.grad_clip;
  const sim::Time opt_end = adam_start + cfg.adam;
  const auto param_order = visit_order(cfg.param_lines, cfg.shuffle, rng);
  for (std::uint64_t i = 0; i < cfg.param_lines; ++i) {
    const sim::Time when =
        adam_start + cfg.adam * static_cast<double>(i + 1) /
                         static_cast<double>(cfg.param_lines);
    agent.cpu_write_line(when,
                         kParamBase + param_order[i] * mem::kLineBytes);
  }
  r.params_fence = agent.cxl_fence(opt_end);
  r.param_exposed = r.params_fence - opt_end;

  // Invalidation mode: the next forward demand-fetches every parameter.
  if (cfg.protocol == coherence::Protocol::kInvalidation) {
    sim::Time dev_ready = r.params_fence;
    for (std::uint64_t i = 0; i < cfg.param_lines; ++i) {
      const auto a = agent.device_read_line(
          r.params_fence, kParamBase + i * mem::kLineBytes);
      if (a.ready > dev_ready) dev_ready = a.ready;
    }
    r.param_exposed = dev_ready - opt_end;
    r.params_fence = dev_ready;
  }
  agent.cpu_flush_all(r.params_fence);

  r.step_total = cfg.forward + cfg.backward + r.grad_exposed +
                 cfg.grad_clip + cfg.adam + r.param_exposed;
  r.bytes_to_cpu =
      link.channel(cxl::Direction::kDeviceToCpu).stats().payload_bytes;
  r.bytes_to_device =
      link.channel(cxl::Direction::kCpuToDevice).stats().payload_bytes;
  r.agent_stats = agent.stats();
  r.snoop_filter_peak = agent.snoop_filter().peak_entries();
  return r;
}

}  // namespace offload
