#include "offload/multi_device.hpp"

#include <algorithm>
#include <stdexcept>

namespace teco::offload {

MultiDeviceStep simulate_multi_device_step(RuntimeKind kind,
                                           const dl::ModelConfig& model,
                                           const MultiDeviceConfig& mdc,
                                           const Calibration& cal,
                                           const StepOptions& opts) {
  if (mdc.devices == 0) throw std::invalid_argument("devices > 0");
  if (mdc.global_batch % mdc.devices != 0) {
    throw std::invalid_argument("global batch must divide evenly");
  }
  const std::uint32_t per_dev_batch = mdc.global_batch / mdc.devices;

  MultiDeviceStep out;
  // Every device runs the single-device timeline on its shard. With
  // private links the per-device breakdown applies as-is; behind a shared
  // CXL switch each device effectively sees 1/N of the upstream bandwidth
  // (the fair-share steady state of N synchronized identical streams).
  if (mdc.shared_upstream && mdc.devices > 1) {
    Calibration shared = cal;
    shared.phy.raw_bandwidth /= static_cast<double>(mdc.devices);
    out.per_device = simulate_step(kind, model, per_dev_batch, shared, opts);
  } else {
    out.per_device = simulate_step(kind, model, per_dev_batch, cal, opts);
  }

  // CPU-side gradient reduction: the single-device timeline already
  // includes one clip pass; the reduction of the remaining (N-1) streams
  // is the extra serial stage (the closed form lives in per_link_reduce so
  // bench_fabric_allreduce's baseline arm charges the identical model).
  out.grad_reduce =
      per_link_reduce(mdc.devices, model.gradient_bytes(), cal).reduce;

  out.step_total = out.per_device.total() + out.grad_reduce;
  out.comm_fraction = out.per_device.comm_exposed() / out.step_total;
  return out;
}

PerLinkReduce per_link_reduce(std::uint32_t devices, std::uint64_t grad_bytes,
                              const Calibration& cal, bool shared_upstream) {
  if (devices == 0) throw std::invalid_argument("devices > 0");
  PerLinkReduce out;
  sim::Bandwidth bw = cal.phy.cxl_bandwidth();
  if (shared_upstream && devices > 1) bw /= static_cast<double>(devices);
  out.ship = static_cast<double>(grad_bytes) / bw;
  // Read N streams + write one, sharing the CPU memory bandwidth (one
  // socket does all the summing): (N-1) extra read+write passes.
  out.reduce = static_cast<double>(devices - 1) *
               static_cast<double>(grad_bytes) * 2.0 / cal.cpu_stream_bw;
  out.broadcast = static_cast<double>(grad_bytes) / bw;
  return out;
}

std::vector<ScalingPoint> scaling_sweep(const dl::ModelConfig& model,
                                        std::uint32_t global_batch,
                                        const std::vector<std::uint32_t>& ns,
                                        const Calibration& cal) {
  std::vector<ScalingPoint> out;
  for (const auto n : ns) {
    MultiDeviceConfig mdc;
    mdc.devices = n;
    mdc.global_batch = global_batch;
    const auto base = simulate_multi_device_step(RuntimeKind::kZeroOffload,
                                                 model, mdc, cal);
    const auto teco = simulate_multi_device_step(
        RuntimeKind::kTecoReduction, model, mdc, cal);
    out.push_back(ScalingPoint{n, base.step_total, teco.step_total,
                               base.step_total / teco.step_total,
                               base.per_device.comm_exposed() /
                                   base.step_total,
                               fits_on_gpu(model, global_batch / n)});
  }
  return out;
}

}  // namespace teco::offload
