// ActivationOffloadTimeline — the sixth runtime timeline: one training step
// of the TECO update-protocol runtime with lifetime-aware activation and
// weight tiering layered on top (teco::tier).
//
// The five existing timelines treat forward+backward as an opaque compute
// block; this one replays it layer by layer through tier::MigrationScheduler
// so activation evictions and prefetches ride the SAME cxl-up / cxl-down
// channels as the gradient and parameter update streams — migration traffic
// and protocol traffic contend for link bandwidth instead of being costed
// independently.
//
// The file lives in offload/ with its runtime siblings but is compiled into
// the teco_tier library (it needs the tier planner/scheduler, which layer
// above teco_offload).
#pragma once

#include <cstdint>

#include "check/tier_checker.hpp"
#include "dl/model_zoo.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"
#include "offload/step_model.hpp"
#include "tier/lifetime_profiler.hpp"
#include "tier/migration_scheduler.hpp"
#include "tier/placement_planner.hpp"

namespace teco::offload {

struct ActivationTimelineOptions {
  tier::Policy policy = tier::Policy::kMinStall;
  /// Accelerator HBM capacity. The planner budget is this minus the
  /// non-tierable residents (ZeRO-Offload gradient buffer).
  std::uint64_t hbm_bytes = 16ull << 30;
  std::uint64_t giant_cache_bytes = 4ull << 30;
  std::size_t prefetch_depth = 2;
  std::uint8_t dirty_bytes = 2;  ///< DBA payload on the parameter stream.
  /// Optional invariant observer (e.g. check::TierInvariantChecker).
  check::TierObserver* observer = nullptr;
  /// Optional telemetry. `metrics` accumulates tier.*, offload.* and step.*
  /// counters; `spans` receives phase + tier.{fetch,evict,stall} intervals;
  /// `publisher` (with `metrics`) gets an end-of-step StepSnapshot labeled
  /// `step_index`.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceBuffer* spans = nullptr;
  obs::StepPublisher* publisher = nullptr;
  std::size_t step_index = 0;
  /// Optional causal DAG: the migration scheduler's per-slot chain plus
  /// one node per serialized step phase land here, and the report carries
  /// the step's critical-path attribution (hard-conserved over
  /// [0, step_total]). The exposed grad/param transfer windows are the
  /// two CXLFENCE drains of the step model, so they attribute to
  /// fence_drain; migration stalls attribute to demand_fetch/evict_stall.
  obs::causal::CausalGraph* causal = nullptr;
};

struct ActivationStepReport {
  /// The corrected all-HBM memory check at the configured budget: whether
  /// keeping everything resident would OOM (batch x seq_len aware).
  GpuMemoryCheck memory;
  bool hbm_oom = false;

  tier::StepProfile profile;
  tier::TierPlan plan;
  tier::ScheduleResult sched;

  sim::Time forward_backward = 0.0;  ///< Compute + migration stalls.
  sim::Time grad_transfer_exposed = 0.0;
  sim::Time grad_optimizer = 0.0;
  sim::Time param_optimizer = 0.0;
  sim::Time param_transfer_exposed = 0.0;
  sim::Time step_total = 0.0;

  std::uint64_t bytes_to_cpu = 0;     ///< Wire volume up (grads+evictions).
  std::uint64_t bytes_to_device = 0;  ///< Wire volume down (params+fetches).

  /// Tail of the step's causal chain and its critical-path attribution
  /// (only populated when ActivationTimelineOptions::causal is wired).
  std::uint32_t causal_tail = sim::kNoCausalNode;
  obs::causal::Attribution attribution;

  sim::Time stall_time() const { return sched.stall_time; }
  std::uint64_t migrated_bytes() const { return sched.migrated_bytes(); }
};

/// Simulate one steady-state training step with tiered activations.
ActivationStepReport simulate_activation_step(
    const dl::ModelConfig& m, std::uint32_t batch, const Calibration& cal,
    const ActivationTimelineOptions& opts = {});

}  // namespace teco::offload
