// Training-step timelines for every evaluated runtime (Sections II, IV, VI).
//
// Each runtime schedules the five phases of a ZeRO-Offload training step
// (Fig. 1) against the interconnect model and reports how much transfer time
// is exposed on the critical path — the quantity every table and figure in
// the paper's evaluation is built from.
//
//  kZeroOffload     — the baseline: explicit DMA copies. Gradients flush
//                     from a GPU-side buffer during backward; CPU Adam runs
//                     after ALL gradients arrive; parameters stage through a
//                     double buffer after the optimizer and the transfer is
//                     largely exposed (Section II-A).
//  kZeroOffloadDpu  — baseline + one-step delayed parameter update: the
//                     parameter transfer overlaps the NEXT step's GPU
//                     compute (risks convergence; needs high arithmetic
//                     intensity).
//  kCxlInvalidation — TECO hardware with stock invalidation MESI: updates
//                     send invalidations; data crosses the link on demand
//                     reads, serialized onto the consumer's critical path
//                     (the +56.6 % motivation of Section IV-A2).
//  kTecoCxl         — the update-protocol extension: cache-line-grained
//                     pushes stream during the producer's compute window.
//  kTecoReduction   — kTecoCxl + dirty-byte aggregation on the parameter
//                     stream (half the volume at dirty_bytes = 2).
#pragma once

#include <cstdint>
#include <string_view>

#include "cxl/channel.hpp"
#include "dl/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "offload/calibration.hpp"
#include "offload/step_model.hpp"
#include "sim/time.hpp"

namespace teco::offload {

enum class RuntimeKind {
  kZeroOffload,
  kZeroOffloadDpu,
  kCxlInvalidation,
  kTecoCxl,
  kTecoReduction,
};

std::string_view to_string(RuntimeKind k);

struct StepBreakdown {
  // The five Fig. 12 components.
  sim::Time forward_backward = 0.0;
  sim::Time grad_transfer_exposed = 0.0;
  sim::Time grad_optimizer = 0.0;   ///< Gradient clipping on CPU.
  sim::Time param_optimizer = 0.0;  ///< Adam sweep on CPU.
  sim::Time param_transfer_exposed = 0.0;

  // Wire accounting (payload bytes, per direction).
  std::uint64_t bytes_to_cpu = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t packets = 0;

  sim::Time total() const {
    return forward_backward + grad_transfer_exposed + grad_optimizer +
           param_optimizer + param_transfer_exposed;
  }
  sim::Time comm_exposed() const {
    return grad_transfer_exposed + param_transfer_exposed;
  }
  double comm_fraction() const {
    const sim::Time t = total();
    return t > 0.0 ? comm_exposed() / t : 0.0;
  }
};

struct StepOptions {
  std::uint8_t dirty_bytes = 2;  ///< For kTecoReduction.
  /// When set, the step's wire totals are also recorded as
  /// offload.{up,down}.{payload_bytes,packets} counters (accumulating
  /// across steps; read per-step deltas via a StepPublisher).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Simulate one steady-state training step.
StepBreakdown simulate_step(RuntimeKind kind, const dl::ModelConfig& model,
                            std::uint32_t batch, const Calibration& cal,
                            const StepOptions& opts = {});

/// Stream `total_lines` cache-line packets, produced uniformly across
/// [t_start, t_start + window], through `ch` in `chunks` paced bursts.
/// Returns the delivery time of the final line. Shared by the single-step
/// timelines and the multi-step pipeline simulator.
sim::Time paced_line_stream(cxl::Channel& ch, sim::Time t_start,
                            sim::Time window, std::uint64_t total_lines,
                            std::uint64_t line_payload_bytes,
                            std::size_t chunks);

}  // namespace teco::offload
