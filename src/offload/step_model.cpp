#include "offload/step_model.hpp"

#include "mem/address.hpp"

namespace teco::offload {

double flops_per_sample(const dl::ModelConfig& m) {
  const double h = m.hidden_size;
  const double s = m.seq_len;
  const double layers = m.n_layers;
  if (m.kind == dl::ModelKind::kGraphNeuralNetwork) {
    // Dense propagation over the full graph: per layer, each node does a
    // h x h transform plus neighborhood aggregation. seq_len = node count.
    const double nodes = s;
    return 3.0 * layers * nodes * (2.0 * h * h + 2.0 * nodes * h);
  }
  // Transformer: ~24 h^2 (projections + MLP) + 4 s h (attention scores)
  // FLOPs per token per layer, x3 for forward + backward.
  return 3.0 * layers * s * (24.0 * h * h + 4.0 * s * h);
}

StepInputs compute_step_inputs(const dl::ModelConfig& m, std::uint32_t batch,
                               const Calibration& cal) {
  StepInputs in;

  // Full-graph models (GCNII) run one graph per step regardless of batch
  // and keep the SMs busy; batched models follow the occupancy curve.
  double work_flops;
  double eff;
  if (m.full_graph_only) {
    work_flops = flops_per_sample(m);
    eff = cal.gpu_peak_flops * 16.0 / (16.0 + cal.occupancy_half_batch);
  } else {
    work_flops = flops_per_sample(m) * static_cast<double>(batch);
    eff = cal.gpu_peak_flops * static_cast<double>(batch) /
          (static_cast<double>(batch) + cal.occupancy_half_batch);
  }
  const sim::Time compute = work_flops / eff;
  const sim::Time floor = cal.gpu_layer_floor * m.n_layers;
  // Backward is ~2x forward in both FLOPs and kernel count. Billion-scale
  // models train with activation checkpointing (see fits_on_gpu), which
  // re-runs the forward pass during backward: +50 % backward time.
  in.forward = (compute + floor) / 3.0;
  in.backward = 2.0 * (compute + floor) / 3.0;
  if (m.n_params > 1'000'000'000ull) in.backward *= 1.5;

  const double p = static_cast<double>(m.n_params);
  in.grad_clip = p * cal.clip_bytes_per_param / cal.cpu_stream_bw;
  in.adam = p * cal.adam_bytes_per_param / cal.cpu_stream_bw;

  in.param_bytes = m.param_bytes();
  in.grad_bytes = m.gradient_bytes();
  in.grad_buffer_bytes = m.gradient_buffer_bytes();
  in.param_lines = (in.param_bytes + mem::kLineBytes - 1) / mem::kLineBytes;
  in.grad_lines = (in.grad_bytes + mem::kLineBytes - 1) / mem::kLineBytes;
  return in;
}

GpuMemoryCheck check_gpu_memory(const dl::ModelConfig& m, std::uint32_t batch,
                                std::uint64_t gpu_bytes,
                                bool checkpointing) {
  GpuMemoryCheck c;
  // ZeRO-Offload keeps FP16 parameters + the gradient buffer on the GPU;
  // the activation term grows with batch x seq_len (dl::ModelConfig owns
  // the footprint formula so the tier profiler sees the same bytes).
  c.params_fp16 = m.n_params * 2;
  c.grad_buffer = m.gradient_buffer_bytes();
  c.activation_bytes = m.activation_bytes(batch, checkpointing);
  c.budget = gpu_bytes;
  c.fits = c.total() <= static_cast<double>(gpu_bytes);
  return c;
}

bool fits_on_gpu(const dl::ModelConfig& m, std::uint32_t batch,
                 std::uint64_t gpu_bytes) {
  // Billion-scale models enable activation checkpointing (store layer
  // inputs only, ~2 B/unit, + one layer of recompute space).
  return check_gpu_memory(m, batch, gpu_bytes,
                          m.n_params > 1'000'000'000ull)
      .fits;
}

CheckpointCosts checkpoint_costs(const dl::ModelConfig& m,
                                 const Calibration& cal) {
  CheckpointCosts c;
  // FP32 master parameters + Adam first/second moments.
  c.full_bytes = m.param_bytes() * 3;
  c.full_write = cal.pmem_access_latency +
                 static_cast<double>(c.full_bytes) / cal.pmem_write_bw +
                 cal.pmem_flush_latency;
  // Restore reads everything back from pmem, then re-pushes the parameter
  // image to the accelerator over the CXL link (the optimizer state stays
  // CPU-side).
  c.restore = cal.pmem_access_latency +
              static_cast<double>(c.full_bytes) / cal.pmem_read_bw +
              static_cast<double>(m.param_bytes()) / cal.phy.cxl_bandwidth();
  return c;
}

FtOverhead expected_ft_overhead(sim::Time step_time,
                                std::size_t interval_steps,
                                sim::Time ckpt_cost, sim::Time restore_cost,
                                sim::Time mtbf) {
  FtOverhead o;
  if (interval_steps == 0 || step_time <= 0.0) return o;
  const double interval = static_cast<double>(interval_steps);
  o.ckpt_per_step = ckpt_cost / interval;
  // A failure lands uniformly inside the interval: half an interval of work
  // (plus its amortized checkpoint cost) is redone, then one restore runs.
  o.expected_lost_work = interval * (step_time + o.ckpt_per_step) / 2.0;
  o.expected_restore = restore_cost;
  if (mtbf > 0.0) {
    o.overhead_fraction =
        o.ckpt_per_step / step_time +
        (o.expected_lost_work + o.expected_restore) / mtbf;
  }
  return o;
}

}  // namespace teco::offload
