#include "offload/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "mem/address.hpp"

namespace teco::offload {

namespace {

using cxl::Channel;
using cxl::Packet;
using sim::Time;

}  // namespace

Time paced_line_stream(Channel& ch, Time t_start, Time window,
                       std::uint64_t total_lines,
                       std::uint64_t line_payload_bytes, std::size_t chunks) {
  if (total_lines == 0) return t_start;
  const Packet line_pkt = cxl::data_packet(
      cxl::MessageType::kFlushData, 0, line_payload_bytes);
  Time last = t_start;
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::uint64_t upto = total_lines * (i + 1) / chunks;
    const std::uint64_t n = upto - sent;
    sent = upto;
    if (n == 0) continue;
    const Time ready =
        t_start + window * static_cast<double>(i + 1) /
                      static_cast<double>(chunks);
    last = ch.submit_stream(ready, line_pkt, n).delivered;
  }
  return last;
}

namespace {

/// The one wire-accounting sink every runtime timeline ends with: fill the
/// breakdown's totals from the channel stats and mirror them onto the
/// registry when one is attached. Replaces three hand-rolled copies.
void harvest_wire(StepBreakdown& b, const Channel& up, const Channel& down,
                  obs::MetricsRegistry* reg) {
  b.bytes_to_cpu = up.stats().payload_bytes;
  b.bytes_to_device = down.stats().payload_bytes;
  b.packets = up.stats().packets + down.stats().packets;
  if (reg != nullptr) {
    reg->counter("offload.up.payload_bytes")
        .add(static_cast<double>(b.bytes_to_cpu));
    reg->counter("offload.down.payload_bytes")
        .add(static_cast<double>(b.bytes_to_device));
    reg->counter("offload.up.packets")
        .add(static_cast<double>(up.stats().packets));
    reg->counter("offload.down.packets")
        .add(static_cast<double>(down.stats().packets));
  }
}

/// Bulk demand fetch under the invalidation protocol. Unlike the update
/// protocol's pushes, demand reads are request/response: at most the
/// pending-queue depth of line fetches is in flight, so throughput is
/// concurrency-limited to queue * 64 B / RTT — usually well below the link
/// bandwidth. This is the physics behind the +56.6 % motivation number.
Time demand_fetch(const Calibration& cal, Channel& data_ch, Time t_start,
                  std::uint64_t total_lines) {
  if (total_lines == 0) return t_start;
  const Time rtt = 2.0 * cal.phy.packet_latency;
  const double concurrency_bw =
      static_cast<double>(cal.cxl_queue_entries) * mem::kLineBytes / rtt;
  const double eff_bw = std::min(cal.phy.cxl_bandwidth(), concurrency_bw);
  // Account wire volume through the channel, but pace completion by the
  // effective demand-read throughput.
  const Packet line_pkt =
      cxl::data_packet(cxl::MessageType::kData, 0, mem::kLineBytes);
  data_ch.submit_stream(t_start, line_pkt, total_lines);
  return t_start + rtt +
         static_cast<double>(total_lines) * mem::kLineBytes / eff_bw;
}

StepBreakdown simulate_zero_offload(const StepInputs& in,
                                    const Calibration& cal, bool dpu,
                                    obs::MetricsRegistry* reg) {
  const auto& phy = cal.phy;
  Channel up("dma-up", phy.dma_bandwidth(), phy.dma_setup_latency);
  Channel down("dma-down", phy.dma_bandwidth(), phy.dma_setup_latency);

  StepBreakdown b;
  b.forward_backward = in.forward + in.backward;
  const Time bwd_start = in.forward;
  const Time bwd_end = in.forward + in.backward;

  // Phase 3: the gradient buffer flushes whenever it fills during backward.
  const std::uint64_t n_flushes =
      (in.grad_bytes + in.grad_buffer_bytes - 1) / in.grad_buffer_bytes;
  Time grads_done = bwd_end;
  std::uint64_t sent = 0;
  for (std::uint64_t i = 0; i < n_flushes; ++i) {
    const std::uint64_t upto =
        std::min(in.grad_bytes, (i + 1) * in.grad_buffer_bytes);
    const std::uint64_t bytes = upto - sent;
    sent = upto;
    const Time ready =
        bwd_start + in.backward * static_cast<double>(upto) /
                        static_cast<double>(in.grad_bytes);
    const auto pkt = cxl::data_packet(cxl::MessageType::kData, 0, bytes);
    grads_done = up.submit(ready, pkt).delivered;
  }

  // Phases 4-5: CPU waits for every gradient before clipping (Section II-A).
  const Time cpu_start = std::max(bwd_end, grads_done);
  b.grad_transfer_exposed = cpu_start - bwd_end;
  b.grad_optimizer = in.grad_clip;
  b.param_optimizer = in.adam;
  const Time opt_end = cpu_start + in.grad_clip + in.adam;

  // Parameter transfer: double-buffer staging AFTER the optimizer. The
  // pinned-buffer fill is fast; the DMA transfer is what's exposed.
  const std::size_t chunks = std::max<std::size_t>(1, cal.param_staging_chunks);
  const double chunk_bytes =
      static_cast<double>(in.param_bytes) / static_cast<double>(chunks);
  const Time fill_per_chunk = chunk_bytes / cal.pinned_copy_bw;
  Time params_done = opt_end;
  for (std::size_t j = 0; j < chunks; ++j) {
    const Time ready = opt_end + fill_per_chunk * static_cast<double>(j + 1);
    const auto pkt = cxl::data_packet(
        cxl::MessageType::kData, 0, static_cast<std::uint64_t>(chunk_bytes));
    params_done = down.submit(ready, pkt).delivered;
  }
  const Time param_xfer = params_done - opt_end;
  if (dpu) {
    // DPU overlaps the transfer with the NEXT step's forward+backward
    // (steady state): only the overhang is exposed.
    b.param_transfer_exposed = std::max(0.0, param_xfer - b.forward_backward);
  } else {
    b.param_transfer_exposed = param_xfer;
  }

  harvest_wire(b, up, down, reg);
  return b;
}

StepBreakdown simulate_teco_update(const StepInputs& in,
                                   const Calibration& cal, bool dba,
                                   std::uint8_t dirty_bytes,
                                   obs::MetricsRegistry* reg) {
  const auto& phy = cal.phy;
  Channel up("cxl-up", phy.cxl_bandwidth(), phy.packet_latency,
             cal.cxl_queue_entries);
  Channel down("cxl-down", phy.cxl_bandwidth(), phy.packet_latency,
               cal.cxl_queue_entries);

  StepBreakdown b;
  b.forward_backward = in.forward + in.backward;
  const Time bwd_end = in.forward + in.backward;

  // Gradient lines stream up the link as the GPU writes them back during
  // backward (Fig. 6 step 3); CXLFENCE() at loss.backward() completion.
  const Time grads_done =
      paced_line_stream(up, in.forward, in.backward, in.grad_lines,
                        mem::kLineBytes, cal.pacing_chunks);
  const Time cpu_start = std::max(bwd_end, grads_done);
  b.grad_transfer_exposed = cpu_start - bwd_end;

  b.grad_optimizer = in.grad_clip;
  b.param_optimizer = in.adam;
  const Time adam_start = cpu_start + in.grad_clip;
  const Time opt_end = adam_start + in.adam;

  // Parameter lines stream down as the vectorized Adam sweep writes them
  // back (Fig. 6 steps 1-2); DBA trims each line's payload when active.
  const std::uint32_t payload =
      dba && dirty_bytes < 4
          ? static_cast<std::uint32_t>(mem::kWordsPerLine) * dirty_bytes
          : static_cast<std::uint32_t>(mem::kLineBytes);
  Time params_done =
      paced_line_stream(down, adam_start, in.adam, in.param_lines, payload,
                        cal.pacing_chunks);
  if (dba) params_done += cal.dba_latency;  // Pipelined Agg/Disagg stages.

  // CXLFENCE() at the end of optimizer.step().
  b.param_transfer_exposed = std::max(0.0, params_done - opt_end);

  harvest_wire(b, up, down, reg);
  return b;
}

StepBreakdown simulate_invalidation(const StepInputs& in,
                                    const Calibration& cal,
                                    obs::MetricsRegistry* reg) {
  const auto& phy = cal.phy;
  Channel up("cxl-up", phy.cxl_bandwidth(), phy.packet_latency,
             cal.cxl_queue_entries);
  Channel down("cxl-down", phy.cxl_bandwidth(), phy.packet_latency,
               cal.cxl_queue_entries);

  StepBreakdown b;
  b.forward_backward = in.forward + in.backward;
  const Time bwd_end = in.forward + in.backward;

  // Device gradient writes invalidated the CPU copies; before the CPU can
  // clip, it demand-fetches every gradient line — fully exposed.
  const Time grads_done = demand_fetch(cal, up, bwd_end, in.grad_lines);
  b.grad_transfer_exposed = grads_done - bwd_end;

  b.grad_optimizer = in.grad_clip;
  b.param_optimizer = in.adam;
  const Time opt_end = grads_done + in.grad_clip + in.adam;
  // Invalidations sent during the Adam sweep (control flits; cheap).
  const Packet inv = cxl::control_packet(cxl::MessageType::kInvalidate, 0);
  down.submit_stream(opt_end - in.adam, inv, in.param_lines);

  // Next step's forward stalls on demand reads of every parameter line —
  // the on-demand transfer the paper measures at +56.6 % training time.
  const Time params_done = demand_fetch(cal, down, opt_end, in.param_lines);
  b.param_transfer_exposed = params_done - opt_end;

  harvest_wire(b, up, down, reg);
  return b;
}

}  // namespace

std::string_view to_string(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::kZeroOffload: return "ZeRO-Offload";
    case RuntimeKind::kZeroOffloadDpu: return "ZeRO-Offload+DPU";
    case RuntimeKind::kCxlInvalidation: return "CXL-Invalidation";
    case RuntimeKind::kTecoCxl: return "TECO-CXL";
    case RuntimeKind::kTecoReduction: return "TECO-Reduction";
  }
  __builtin_unreachable();
}

StepBreakdown simulate_step(RuntimeKind kind, const dl::ModelConfig& model,
                            std::uint32_t batch, const Calibration& cal,
                            const StepOptions& opts) {
  const StepInputs in = compute_step_inputs(model, batch, cal);
  switch (kind) {
    case RuntimeKind::kZeroOffload:
      return simulate_zero_offload(in, cal, /*dpu=*/false, opts.metrics);
    case RuntimeKind::kZeroOffloadDpu:
      return simulate_zero_offload(in, cal, /*dpu=*/true, opts.metrics);
    case RuntimeKind::kCxlInvalidation:
      return simulate_invalidation(in, cal, opts.metrics);
    case RuntimeKind::kTecoCxl:
      return simulate_teco_update(in, cal, /*dba=*/false, opts.dirty_bytes,
                                  opts.metrics);
    case RuntimeKind::kTecoReduction:
      return simulate_teco_update(in, cal, /*dba=*/true, opts.dirty_bytes,
                                  opts.metrics);
  }
  return {};
}

}  // namespace teco::offload
