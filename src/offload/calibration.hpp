// Calibration constants of the performance model (DESIGN.md Section 4).
//
// The paper's evaluation stack is gem5-avx (48 OoO cores, 8 DDR4-2666
// controllers) + Accel-Sim (V100) + a CXL emulator at 94.3 % of PCIe 3.0
// x16. We replace cycle simulation with a calibrated roofline; every
// constant below is either taken directly from the paper/testbed or tuned
// once so that the *baseline* (ZeRO-Offload) reproduces Table I's measured
// communication fractions. The TECO numbers are then predictions of the
// model, not fits.
#pragma once

#include <cstddef>

#include "cxl/phy.hpp"
#include "sim/time.hpp"

namespace teco::offload {

struct Calibration {
  /// Interconnect (paper Section VIII-A).
  cxl::PhyConfig phy{};
  std::size_t cxl_queue_entries = 128;

  /// GPU compute: V100 tensor-core peak. Achieved throughput follows an
  /// occupancy curve eff(B) = peak * B / (B + occupancy_half_batch): small
  /// batches underutilize the SMs, which is why the communication share of
  /// the step shrinks sub-linearly with batch size (Table I: 42 % at b=4 ->
  /// 26 % at b=20). Calibrated once against Table I's Bert-large column.
  double gpu_peak_flops = 112e12;
  double occupancy_half_batch = 8.0;
  /// Per-layer fixed cost: kernel launches + synchronization.
  sim::Time gpu_layer_floor = sim::us(550);

  /// CPU optimizer: the 48-core AVX512 gem5 config is memory-bound; 8
  /// DDR4-2666 channels give ~170 GB/s peak, ~130 GB/s streaming-effective.
  double cpu_stream_bw = 130e9;
  /// Adam touches p,g,m,v (reads) and p,m,v (writes): 28 B per parameter.
  double adam_bytes_per_param = 28.0;
  /// Gradient clipping: one read + one scaled write pass: 8 B/param.
  double clip_bytes_per_param = 8.0;

  /// ZeRO-Offload double-buffer staging: pinned-buffer fill bandwidth
  /// (a memcpy; "much faster than the parameter transfer").
  double pinned_copy_bw = 40e9;
  std::size_t param_staging_chunks = 2;  ///< The double buffer.

  /// Streaming granularity of the timeline: fine-grained line streams are
  /// submitted in this many paced chunks per phase.
  std::size_t pacing_chunks = 128;

  /// HBM <-> giant-cache migration path (teco::tier): a device-local copy
  /// through the resizable-BAR window — far faster than a CXL crossing but
  /// not free. Bandwidth is PCIe-BAR-window-limited, latency covers the
  /// doorbell + DMA setup per tensor.
  double hbm_gc_copy_bw = 100e9;
  sim::Time hbm_gc_copy_latency = sim::us(5);

  /// Aggregator/Disaggregator pipeline latency charged end-to-end
  /// (Section VIII-D: 1 ns, amortized by pipelining).
  sim::Time dba_latency = sim::ns(1.0);

  /// Persistent CXL memory device — the checkpoint target of teco::ft
  /// (TrainingCXL-style CXL-PM expander). Sequential-write-limited media
  /// behind a CXL.mem port: write bandwidth well below the link, reads
  /// closer to DRAM-over-CXL.
  double pmem_write_bw = 8e9;
  double pmem_read_bw = 20e9;
  /// Media + port access latency charged once per checkpoint/restore pass.
  sim::Time pmem_access_latency = sim::ns(400);
  /// Durability fence: flush the device write buffer so a crash cannot
  /// lose the checkpoint (ADR-style drain, charged per commit).
  sim::Time pmem_flush_latency = sim::us(2.0);
};

/// Shared default used by all benches (so tables are comparable).
const Calibration& default_calibration();

}  // namespace teco::offload
