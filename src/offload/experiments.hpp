// Experiment-level aggregations over simulate_step (DESIGN.md Section 5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "offload/runtime.hpp"

namespace teco::offload {

/// One cell of a speedup grid (Fig. 11 / Tables IV, VI). `valid` is false
/// when the configuration OOMs under the baseline (T5-large at batch 16).
struct SpeedupCell {
  std::string model;
  std::uint32_t batch = 0;
  double speedup = 0.0;
  bool valid = false;
  StepBreakdown baseline;
  StepBreakdown treatment;
};

SpeedupCell speedup_vs_baseline(RuntimeKind treatment,
                                const dl::ModelConfig& model,
                                std::uint32_t batch, const Calibration& cal,
                                const StepOptions& opts = {});

/// Full model x batch grid.
std::vector<SpeedupCell> speedup_grid(RuntimeKind treatment,
                                      const std::vector<dl::ModelConfig>& ms,
                                      const std::vector<std::uint32_t>& batches,
                                      const Calibration& cal,
                                      const StepOptions& opts = {});

/// Section VIII-C accounting: per-direction payload volume and the exposed
/// communication reduction of a treatment vs. the ZeRO-Offload baseline.
struct VolumeReport {
  std::uint64_t base_to_device = 0, base_to_cpu = 0;
  std::uint64_t treat_to_device = 0, treat_to_cpu = 0;
  double param_volume_reduction = 0.0;  ///< 1 - treat_down / base_down.
  double comm_overhead_reduction = 0.0; ///< 1 - exposed_treat / exposed_base.
};

VolumeReport volume_report(RuntimeKind treatment, const dl::ModelConfig& model,
                           std::uint32_t batch, const Calibration& cal,
                           const StepOptions& opts = {});

/// Training time for a schedule that activates DBA after `act_aft_steps`
/// (before activation, steps run as TECO-CXL). Used by Fig. 13 and the
/// Table VII hour-scale comparisons.
sim::Time schedule_training_time(RuntimeKind kind, const dl::ModelConfig& m,
                                 std::uint32_t batch, std::size_t steps,
                                 std::size_t act_aft_steps,
                                 const Calibration& cal,
                                 const StepOptions& opts = {});

/// The paper's headline aggregates over a grid of cells: average and max
/// training-time reduction, average and max communication-overhead
/// reduction ("33.7 % avg / up to 55.4 %" and "93.7 % avg / up to 100 %").
struct HeadlineSummary {
  double avg_time_reduction = 0.0;
  double max_time_reduction = 0.0;
  double avg_comm_reduction = 0.0;
  double max_comm_reduction = 0.0;
  std::size_t cells = 0;
};

HeadlineSummary headline_summary(const std::vector<dl::ModelConfig>& models,
                                 const std::vector<std::uint32_t>& batches,
                                 const Calibration& cal,
                                 const StepOptions& opts = {});

}  // namespace teco::offload
