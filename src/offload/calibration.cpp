#include "offload/calibration.hpp"

namespace teco::offload {

const Calibration& default_calibration() {
  static const Calibration cal = [] {
    Calibration c;
    // Bulk cudaMemcpy on PCIe 3.0 x16 sustains ~12.8 GB/s in practice
    // (pinned-buffer staging overheads); CXL keeps the spec's 94.3 %.
    c.phy.dma_efficiency = 0.80;
    return c;
  }();
  return cal;
}

}  // namespace teco::offload
