// Writeback-trace replay through the full protocol stack.
//
// The paper's evaluation collects main-memory writeback traces from
// gem5-avx / Accel-Sim and replays them through a CXL emulator
// (Section VIII-A). This module is that pipeline at reduced scale: it
// synthesizes a per-step writeback trace (gradient lines written back
// during the backward window, parameter lines during the Adam sweep) and
// replays every line through the real HomeAgent + Link, producing fence
// times and exposed-communication measurements.
//
// It doubles as a cross-validation of the analytic timeline in runtime.cpp:
// both layers ride the same serial-channel model, so their exposed times
// must agree (tested in tests/replay_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "coherence/home_agent.hpp"
#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::offload {

struct ReplayStepConfig {
  std::uint64_t param_lines = 50'000;
  std::uint64_t grad_lines = 50'000;
  sim::Time forward = sim::ms(10);
  sim::Time backward = sim::ms(20);
  sim::Time grad_clip = sim::ms(3);
  sim::Time adam = sim::ms(12);
  coherence::Protocol protocol = coherence::Protocol::kUpdate;
  dba::DbaRegister dba{};
  /// Shuffle writeback order within each window (addresses are visited in
  /// a pseudo-random order, as OoO execution would produce).
  bool shuffle = false;
  std::uint64_t seed = 5;
};

struct ReplayResult {
  sim::Time grads_fence = 0.0;   ///< CXLFENCE() after backward.
  sim::Time params_fence = 0.0;  ///< CXLFENCE() after optimizer.step().
  sim::Time grad_exposed = 0.0;
  sim::Time param_exposed = 0.0;
  sim::Time step_total = 0.0;
  std::uint64_t bytes_to_cpu = 0;
  std::uint64_t bytes_to_device = 0;
  coherence::HomeAgentStats agent_stats;
  std::size_t snoop_filter_peak = 0;
};

/// Synthesize one training step's writeback trace and replay it line by
/// line through HomeAgent + Link under `cal`'s PHY.
ReplayResult replay_training_step(const ReplayStepConfig& cfg,
                                  const Calibration& cal);

}  // namespace teco::offload
