// Multi-step pipeline simulation across training-step boundaries.
//
// simulate_step() assumes steady state; this simulator runs K consecutive
// steps with PERSISTENT link channels and explicit cross-step
// dependencies, so pipelined effects are modeled exactly:
//
//  * ZeRO-Offload: forward of step i+1 waits for step i's parameter
//    transfer (the exposure simulate_step charges within the step);
//  * ZeRO-Offload+DPU: step i+1 computes with one-step-delayed parameters,
//    so its forward only waits for step i-1's transfer — the transfer of
//    step i overlaps step i+1's compute, sharing the downlink with nothing
//    (gradients ride the uplink);
//  * TECO runtimes: fences close each producer window as in the paper.
//
// The tests use it to verify that the steady-state single-step model and
// the explicit pipeline agree.
#pragma once

#include <cstdint>
#include <vector>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"

namespace teco::offload {

struct PipelineResult {
  std::vector<sim::Time> step_durations;  ///< Wall time between step ends.
  sim::Time total = 0.0;
  sim::Time steady_step = 0.0;  ///< Duration of the final step.
  sim::Time first_step = 0.0;
};

/// Simulate `steps` consecutive steps. kCxlInvalidation is supported by
/// falling back to per-step composition (its transfers are demand-driven
/// and never pipeline across steps).
PipelineResult simulate_pipeline(RuntimeKind kind,
                                 const dl::ModelConfig& model,
                                 std::uint32_t batch, std::size_t steps,
                                 const Calibration& cal,
                                 const StepOptions& opts = {});

}  // namespace teco::offload
