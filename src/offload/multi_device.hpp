// Multi-accelerator data-parallel extension of the TECO step model.
//
// The paper evaluates one GPU but motivates TECO with multi-GPU clusters,
// where the global batch cannot grow (convergence) so the per-GPU batch
// shrinks and communication dominates — exactly where DPU fails
// (Section II-A). This module extends the timeline to N accelerators in
// ZeRO-Offload-style data parallelism sharing one CPU:
//
//  * each device trains batch/N samples and ships a full gradient set over
//    its OWN CXL/PCIe link (links are per-slot, so transfers parallelize);
//  * the CPU reduces the N gradient streams (memory-bound pass over N x
//    grad_bytes), clips, runs one Adam sweep, and broadcasts parameters
//    down every link in parallel;
//  * CPU memory bandwidth is shared: concurrent reductions divide it.
//
// The TECO runtimes stream line-grained updates exactly as in the
// single-device model; the reduction pass is the extra serial CPU stage.
#pragma once

#include <cstdint>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"

namespace teco::offload {

struct MultiDeviceConfig {
  std::uint32_t devices = 4;
  /// Global batch, split evenly across devices (the convergence-limited
  /// regime the paper describes).
  std::uint32_t global_batch = 32;
  /// Topology: each device on its own x16 slot (false), or all devices
  /// behind one CXL switch sharing a single x16 upstream port (true) —
  /// transfers then contend for 1/N of the link each.
  bool shared_upstream = false;
};

struct MultiDeviceStep {
  StepBreakdown per_device;     ///< Worst-case device timeline.
  sim::Time grad_reduce = 0.0;  ///< CPU reduction of N gradient streams.
  sim::Time step_total = 0.0;
  double comm_fraction = 0.0;
};

MultiDeviceStep simulate_multi_device_step(RuntimeKind kind,
                                           const dl::ModelConfig& model,
                                           const MultiDeviceConfig& mdc,
                                           const Calibration& cal,
                                           const StepOptions& opts = {});

/// The per-link gradient exchange in closed form: every device ships its
/// full gradient set over its own link, the CPU reduces the N streams
/// (memory-bound, (N-1) extra read+write passes over grad_bytes sharing
/// cpu_stream_bw), and results broadcast back down every link in parallel.
/// `reduce` is exactly the grad_reduce stage simulate_multi_device_step
/// charges; the whole struct is the baseline arm `bench_fabric_allreduce`
/// compares the pooled-fabric collectives against (and the numbers
/// `bench_multi_device` prints for the same topology).
struct PerLinkReduce {
  sim::Time ship = 0.0;       ///< Gradients up, per link (parallel).
  sim::Time reduce = 0.0;     ///< CPU reduction of the N streams.
  sim::Time broadcast = 0.0;  ///< Results down, per link (parallel).
  sim::Time total() const { return ship + reduce + broadcast; }
};

/// `shared_upstream` mirrors MultiDeviceConfig: behind one switch port the
/// links fair-share 1/N of the upstream bandwidth.
PerLinkReduce per_link_reduce(std::uint32_t devices, std::uint64_t grad_bytes,
                              const Calibration& cal,
                              bool shared_upstream = false);

/// Strong-scaling sweep: speedup of TECO-Reduction over ZeRO-Offload as
/// device count grows at fixed global batch.
struct ScalingPoint {
  std::uint32_t devices = 0;
  sim::Time baseline = 0.0;
  sim::Time teco = 0.0;
  double speedup = 0.0;
  double baseline_comm_fraction = 0.0;
  /// False when the per-device batch would OOM a 32 GB card under the
  /// baseline (the row is still reported, flagged hypothetical).
  bool fits = true;
};

std::vector<ScalingPoint> scaling_sweep(const dl::ModelConfig& model,
                                        std::uint32_t global_batch,
                                        const std::vector<std::uint32_t>& ns,
                                        const Calibration& cal);

}  // namespace teco::offload
