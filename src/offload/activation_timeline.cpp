#include "offload/activation_timeline.hpp"

#include <algorithm>
#include <utility>

#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "mem/address.hpp"
#include "sim/event_queue.hpp"

namespace teco::offload {

ActivationStepReport simulate_activation_step(
    const dl::ModelConfig& m, std::uint32_t batch, const Calibration& cal,
    const ActivationTimelineOptions& opts) {
  const auto& phy = cal.phy;
  ActivationStepReport r;
  const StepInputs in = compute_step_inputs(m, batch, cal);
  r.profile = tier::profile_step(m, batch, cal);

  // The corrected check: would the all-HBM placement OOM at this budget?
  r.memory = check_gpu_memory(m, batch, opts.hbm_bytes,
                              /*checkpointing=*/false);
  r.hbm_oom = !r.memory.fits;

  // The planner manages the profiled tensors (FP16 weights + activations);
  // the gradient buffer is a fixed resident carved out of the budget.
  tier::PlannerConfig pcfg;
  pcfg.policy = opts.policy;
  const std::uint64_t reserved = in.grad_buffer_bytes;
  pcfg.hbm_bytes = opts.hbm_bytes > reserved ? opts.hbm_bytes - reserved : 0;
  pcfg.giant_cache_bytes = opts.giant_cache_bytes;
  pcfg.prefetch_depth = opts.prefetch_depth;
  const tier::PlacementPlanner planner(pcfg, cal);
  r.plan = planner.plan(r.profile);

  cxl::Channel up("cxl-up", phy.cxl_bandwidth(), phy.packet_latency,
                  cal.cxl_queue_entries);
  cxl::Channel down("cxl-down", phy.cxl_bandwidth(), phy.packet_latency,
                    cal.cxl_queue_entries);
  sim::EventQueue q;

  // Gradient lines stream up the link as backward retires each layer
  // (Fig. 6 step 3) — one burst per backward slot, contending with the
  // activation evictions on the same channel.
  const std::uint32_t layers = std::max(1u, m.n_layers);
  const cxl::Packet grad_pkt =
      cxl::data_packet(cxl::MessageType::kFlushData, 0, mem::kLineBytes);
  sim::Time grads_wire_done = 0.0;
  std::uint64_t grad_sent = 0;
  std::uint32_t bwd_retired = 0;
  tier::MigrationScheduler sched(r.profile, r.plan, cal, opts.observer);
  sched.set_metrics(opts.metrics);
  sched.set_trace(opts.spans);
  sched.set_causal(opts.causal);
  sched.set_slot_hook([&](bool backward, std::uint32_t /*layer*/,
                          sim::Time /*start*/, sim::Time end) {
    if (!backward) return;
    ++bwd_retired;
    const std::uint64_t upto = in.grad_lines * bwd_retired / layers;
    const std::uint64_t n = upto - grad_sent;
    grad_sent = upto;
    if (n == 0) return;
    grads_wire_done = up.submit_stream(end, grad_pkt, n).delivered;
  });
  r.sched = sched.run(q, up, down);

  r.forward_backward = r.sched.backward_end;
  const sim::Time grads_done = std::max(r.forward_backward, grads_wire_done);
  r.grad_transfer_exposed = grads_done - r.forward_backward;

  r.grad_optimizer = in.grad_clip;
  r.param_optimizer = in.adam;
  const sim::Time adam_start = grads_done + in.grad_clip;
  const sim::Time opt_end = adam_start + in.adam;

  // Parameter lines stream down as the Adam sweep writes them back, with
  // dirty-byte aggregation trimming the payload (Fig. 6 steps 1-2).
  const std::uint32_t payload =
      opts.dirty_bytes < 4
          ? static_cast<std::uint32_t>(mem::kWordsPerLine) * opts.dirty_bytes
          : static_cast<std::uint32_t>(mem::kLineBytes);
  sim::Time params_done = paced_line_stream(
      down, adam_start, in.adam, in.param_lines, payload, cal.pacing_chunks);
  params_done += cal.dba_latency;
  r.param_transfer_exposed = std::max(0.0, params_done - opt_end);

  r.step_total = r.forward_backward + r.grad_transfer_exposed +
                 r.grad_optimizer + r.param_optimizer +
                 r.param_transfer_exposed;
  r.bytes_to_cpu = up.stats().payload_bytes;
  r.bytes_to_device = down.stats().payload_bytes;

  if (opts.causal != nullptr) {
    // Splice the serialized phases onto the scheduler's per-slot chain:
    // the exposed grad/param windows are the backward and optimizer
    // CXLFENCE drains, the clip+Adam sweeps are CPU compute. The chain
    // then covers [0, step_total] gaplessly, so the extracted path's
    // category sums reconcile with the step end-to-end (hard-checked).
    std::uint32_t tail = r.sched.causal_tail;
    const auto note = [&](obs::causal::Category cat, sim::Time from,
                          sim::Time to) {
      if (to > from) tail = opts.causal->add(cat, to, tail, from);
    };
    note(obs::causal::Category::kFenceDrain, r.forward_backward, grads_done);
    note(obs::causal::Category::kCompute, grads_done, adam_start);
    note(obs::causal::Category::kCompute, adam_start, opt_end);
    note(obs::causal::Category::kFenceDrain, opt_end,
         opt_end + r.param_transfer_exposed);
    r.causal_tail = tail;
    r.attribution =
        obs::causal::critical_path(*opts.causal, 0.0, r.step_total, tail);
  }

  if (opts.spans != nullptr) {
    // One span per Fig. 12 phase, on the same simulated clock the tier
    // spans use, so the unified trace shows compute, exposed transfers and
    // migrations in one viewer.
    sim::Time t = 0.0;
    const std::pair<const char*, sim::Time> phases[] = {
        {"forward+backward", r.forward_backward},
        {"grad_transfer", r.grad_transfer_exposed},
        {"grad_clip", r.grad_optimizer},
        {"adam", r.param_optimizer},
        {"param_transfer", r.param_transfer_exposed}};
    for (const auto& [name, dur] : phases) {
      if (dur > 0.0) opts.spans->emit("phase", name, t, t + dur);
      t += dur;
    }
  }
  if (opts.metrics != nullptr) {
    obs::MetricsRegistry& reg = *opts.metrics;
    reg.counter("offload.up.payload_bytes")
        .add(static_cast<double>(r.bytes_to_cpu));
    reg.counter("offload.down.payload_bytes")
        .add(static_cast<double>(r.bytes_to_device));
    reg.counter("step.total_us").add(r.step_total * 1e6);
    // Exposed transfer time sits behind the two CXLFENCE() drains; busy
    // time beyond that (and beyond migration stalls) ran under compute.
    const sim::Time exposed =
        r.grad_transfer_exposed + r.param_transfer_exposed;
    const sim::Time busy =
        up.stats().busy_time + down.stats().busy_time;
    reg.counter("step.fence_drain_us").add(exposed * 1e6);
    reg.counter("step.overlap_us")
        .add(std::max(0.0, busy - exposed - r.sched.stall_time) * 1e6);
    if (opts.publisher != nullptr) {
      opts.publisher->publish(reg, opts.step_index, 0.0, r.step_total);
    }
  }
  return r;
}

}  // namespace teco::offload
