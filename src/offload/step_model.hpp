// Analytic phase-duration model for one training step.
//
// Converts a ModelConfig + batch size into the raw compute durations and
// transfer volumes the runtime timelines schedule. The five phases mirror
// ZeRO-Offload's step (Fig. 1): forward, backward, gradient transfer,
// gradient clipping + Adam on CPU, parameter transfer.
#pragma once

#include <cstdint>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::offload {

struct StepInputs {
  sim::Time forward = 0.0;
  sim::Time backward = 0.0;
  sim::Time grad_clip = 0.0;   ///< CPU pass, gradients are local.
  sim::Time adam = 0.0;        ///< CPU optimizer sweep.
  std::uint64_t param_bytes = 0;
  std::uint64_t grad_bytes = 0;
  std::uint64_t grad_buffer_bytes = 0;  ///< ZeRO-Offload GPU-side buffer.
  std::uint64_t param_lines = 0;
  std::uint64_t grad_lines = 0;
};

/// Forward+backward FLOPs per sample for the architecture. Transformers use
/// the standard 24*h^2 + 4*s*h per token per layer estimate (x3 for
/// fwd+bwd); GNNs use a dense-propagation estimate over the fixed graph.
double flops_per_sample(const dl::ModelConfig& m);

StepInputs compute_step_inputs(const dl::ModelConfig& m, std::uint32_t batch,
                               const Calibration& cal);

/// V100-style memory check: ZeRO-Offload keeps parameters + activations on
/// the GPU; returns false when the configuration would OOM on a 32 GB card
/// (reproduces the T5-large batch-16 N/A in Table IV). The default budget
/// is 32 GiB minus ~2 GiB of CUDA context / framework overhead.
bool fits_on_gpu(const dl::ModelConfig& m, std::uint32_t batch,
                 std::uint64_t gpu_bytes = 30ull << 30);

}  // namespace teco::offload
