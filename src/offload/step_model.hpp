// Analytic phase-duration model for one training step.
//
// Converts a ModelConfig + batch size into the raw compute durations and
// transfer volumes the runtime timelines schedule. The five phases mirror
// ZeRO-Offload's step (Fig. 1): forward, backward, gradient transfer,
// gradient clipping + Adam on CPU, parameter transfer.
#pragma once

#include <cstdint>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::offload {

struct StepInputs {
  sim::Time forward = 0.0;
  sim::Time backward = 0.0;
  sim::Time grad_clip = 0.0;   ///< CPU pass, gradients are local.
  sim::Time adam = 0.0;        ///< CPU optimizer sweep.
  std::uint64_t param_bytes = 0;
  std::uint64_t grad_bytes = 0;
  std::uint64_t grad_buffer_bytes = 0;  ///< ZeRO-Offload GPU-side buffer.
  std::uint64_t param_lines = 0;
  std::uint64_t grad_lines = 0;
};

/// Forward+backward FLOPs per sample for the architecture. Transformers use
/// the standard 24*h^2 + 4*s*h per token per layer estimate (x3 for
/// fwd+bwd); GNNs use a dense-propagation estimate over the fixed graph.
double flops_per_sample(const dl::ModelConfig& m);

StepInputs compute_step_inputs(const dl::ModelConfig& m, std::uint32_t batch,
                               const Calibration& cal);

/// Itemized V100-style memory check: ZeRO-Offload keeps the FP16 parameter
/// copy, the gradient buffer, and the saved activations on the GPU. The
/// activation term scales with batch x seq_len x hidden x layers (it is the
/// dominant term for long sequences), so the OOM frontier moves with
/// sequence length — the effect bench_tier_activation sweeps.
struct GpuMemoryCheck {
  std::uint64_t params_fp16 = 0;
  std::uint64_t grad_buffer = 0;
  double activation_bytes = 0.0;
  std::uint64_t budget = 0;
  bool fits = false;

  double total() const {
    return static_cast<double>(params_fp16) +
           static_cast<double>(grad_buffer) + activation_bytes;
  }
};

/// `checkpointing` selects the activation-checkpointing footprint (layer
/// inputs only + one layer of recompute space).
GpuMemoryCheck check_gpu_memory(const dl::ModelConfig& m, std::uint32_t batch,
                                std::uint64_t gpu_bytes,
                                bool checkpointing);

/// Convenience wrapper around check_gpu_memory: returns false when the
/// configuration would OOM on a 32 GB card (reproduces the T5-large
/// batch-16 N/A in Table IV); billion-scale models are assumed to train
/// with activation checkpointing. The default budget is 32 GiB minus
/// ~2 GiB of CUDA context / framework overhead.
bool fits_on_gpu(const dl::ModelConfig& m, std::uint32_t batch,
                 std::uint64_t gpu_bytes = 30ull << 30);

// --- Fault-tolerance accounting (teco::ft) ---------------------------------

/// Costs of persisting one training state snapshot (FP32 master parameters
/// plus Adam m/v) into the persistent CXL memory device.
struct CheckpointCosts {
  std::uint64_t full_bytes = 0;   ///< params + m + v.
  sim::Time full_write = 0.0;     ///< Synchronous write + durability fence.
  sim::Time restore = 0.0;        ///< Pmem read + re-push of params to the
                                  ///< device over the CXL link.
};

CheckpointCosts checkpoint_costs(const dl::ModelConfig& m,
                                 const Calibration& cal);

/// Expected steady-state overhead of checkpoint interval `interval_steps`
/// under a Poisson failure process with the given MTBF (Young's first-order
/// model): per-step checkpoint cost, plus — amortized over the expected
/// time between failures — half an interval of lost work and one restore.
struct FtOverhead {
  sim::Time ckpt_per_step = 0.0;       ///< ckpt_cost / interval.
  sim::Time expected_lost_work = 0.0;  ///< interval * step_time / 2.
  sim::Time expected_restore = 0.0;    ///< restore_cost (per failure).
  /// Fraction of useful runtime spent on checkpoints + failures.
  double overhead_fraction = 0.0;
};

FtOverhead expected_ft_overhead(sim::Time step_time,
                                std::size_t interval_steps,
                                sim::Time ckpt_cost, sim::Time restore_cost,
                                sim::Time mtbf);

}  // namespace teco::offload
