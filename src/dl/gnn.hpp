// GCNII-style deep graph convolutional network with manual backprop.
//
// Table III's fifth workload is GCNII (64 layers, full-graph training on
// the Wisconsin dataset). This module provides the real-numeric
// counterpart: a synthetic Wisconsin-like node-classification graph and a
// GCNII network
//
//   H0 = relu(X W_in)
//   H_{l+1} = relu( ((1-a) A_hat H_l + a H0) ((1-b_l) I + b_l W_l) ),
//   b_l = log(lambda/l + 1),   logits = H_L W_out
//
// with initial-residual + identity-mapping exactly as in Chen et al. 2020,
// trained full-graph with softmax cross-entropy on a train mask. Gradients
// are validated against finite differences in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "dl/tensor.hpp"
#include "sim/rng.hpp"

namespace teco::dl {

/// Synthetic node-classification graph (Wisconsin-scale by default).
struct SyntheticGraph {
  std::size_t n_nodes = 0;
  std::size_t n_features = 0;
  std::size_t n_classes = 0;
  Tensor features;                 ///< [N, F].
  std::vector<std::uint32_t> labels;
  std::vector<bool> train_mask;
  /// Symmetrically normalized adjacency with self-loops, dense [N, N].
  Tensor norm_adj;
};

struct GraphConfig {
  std::size_t n_nodes = 251;   ///< Wisconsin has 251 nodes.
  std::size_t n_features = 16;
  std::size_t n_classes = 5;
  double edge_prob = 0.03;
  /// Probability that an edge connects same-class nodes (Wisconsin is
  /// heterophilic: same-class edges are the minority).
  double homophily = 0.3;
  /// Feature noise around the class centers; the default makes the task
  /// roughly as hard as Wisconsin (GCNII ~55 % accuracy).
  double feature_noise = 2.0;
  double train_fraction = 0.48;  ///< The 48/32/20 fixed split.
  std::uint64_t seed = 33;
};

SyntheticGraph make_synthetic_graph(const GraphConfig& cfg);

struct GcniiConfig {
  std::size_t n_layers = 8;   ///< Scaled-down from the paper's 64.
  std::size_t hidden = 16;
  float alpha = 0.1f;         ///< Initial-residual strength.
  float lambda = 0.5f;        ///< Identity-mapping decay.
  float init_stddev = 0.5f;
  std::uint64_t seed = 9;
};

class Gcnii {
 public:
  Gcnii(GcniiConfig cfg, std::size_t in_features, std::size_t n_classes);

  /// Full-graph forward; returns logits [N, C].
  const Tensor& forward(const SyntheticGraph& g);
  /// Masked cross-entropy backward; returns mean train loss.
  float backward(const SyntheticGraph& g);
  /// Accuracy over nodes where `use_train` selects the mask polarity.
  float accuracy(const SyntheticGraph& g, bool on_train_mask) const;

  std::span<float> params() { return params_; }
  std::span<const float> grads() const { return grads_; }
  std::size_t n_params() const { return params_.size(); }

 private:
  float beta(std::size_t layer) const;

  GcniiConfig cfg_;
  std::size_t in_features_, n_classes_;
  std::size_t w_in_off_ = 0, w_out_off_ = 0;
  std::vector<std::size_t> w_off_;  ///< Per-layer [H, H].
  std::vector<float> params_;
  std::vector<float> grads_;

  // Forward caches.
  Tensor h0_;                  ///< [N, H] after input projection + relu.
  std::vector<Tensor> pre_;    ///< Per layer: P M before relu.
  std::vector<Tensor> h_;      ///< Per layer: relu output.
  std::vector<Tensor> p_;      ///< Per layer: (1-a) A H + a H0.
  Tensor logits_;
};

/// Convenience: train a GCNII on the synthetic graph; returns final
/// held-out accuracy (the Table V GCNII row).
float train_gcnii_accuracy(const GraphConfig& gcfg, const GcniiConfig& mcfg,
                           std::size_t steps, float lr);

}  // namespace teco::dl
