#include "dl/synthetic_data.hpp"

namespace teco::dl {

namespace {
MlpConfig teacher_config(std::size_t in, std::size_t out, std::uint64_t seed) {
  MlpConfig cfg;
  cfg.layer_sizes = {in, 32, out};
  cfg.output = OutputKind::kRegression;
  cfg.init_stddev = 1.0f;
  cfg.seed = seed;
  return cfg;
}
}  // namespace

RegressionTask::RegressionTask(std::size_t input_dim, std::size_t output_dim,
                               float noise_stddev, std::uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim), noise_(noise_stddev),
      teacher_(teacher_config(input_dim, output_dim, seed)) {}

Batch RegressionTask::sample(std::size_t batch_size, sim::Rng& rng) const {
  Tensor x = Tensor::randn(batch_size, input_dim_, rng, 1.0f);
  Tensor y = teacher_.forward(x);
  for (auto& v : y.flat()) {
    v += static_cast<float>(rng.next_gaussian()) * noise_;
  }
  return Batch{std::move(x), std::move(y)};
}

ClassificationTask::ClassificationTask(std::size_t input_dim,
                                       std::size_t classes,
                                       float cluster_spread,
                                       std::uint64_t seed)
    : input_dim_(input_dim), classes_(classes), spread_(cluster_spread) {
  sim::Rng rng(seed);
  centers_.resize(classes_);
  for (auto& c : centers_) {
    c.resize(input_dim_);
    for (auto& v : c) v = static_cast<float>(rng.next_gaussian());
  }
}

Batch ClassificationTask::sample(std::size_t batch_size, sim::Rng& rng) const {
  Tensor x(batch_size, input_dim_);
  Tensor y(batch_size, 1);
  for (std::size_t i = 0; i < batch_size; ++i) {
    const auto label = rng.next_below(classes_);
    y.at(i, 0) = static_cast<float>(label);
    for (std::size_t d = 0; d < input_dim_; ++d) {
      x.at(i, d) = centers_[label][d] +
                   static_cast<float>(rng.next_gaussian()) * spread_;
    }
  }
  return Batch{std::move(x), std::move(y)};
}

}  // namespace teco::dl
