// A tiny single-head transformer block with manual backpropagation.
//
// The paper fine-tunes transformers; this model gives the numeric
// experiments a transformer-shaped proxy (softmax attention + residuals +
// MLP) whose gradients are verified against finite differences. Inputs are
// flat rows of seq_len * d_model features, reshaped internally:
//
//   X[T,D] -> Q,K,V = X Wq|Wk|Wv
//   P = softmax(Q K^T / sqrt(D));  H = P V;  R1 = X + H Wo
//   Z = tanh(R1 W1 + b1);          R2 = R1 + (Z W2 + b2)
//   out = mean_t(R2) Wr + br       (regression or softmax-CE readout)
//
// Parameters and gradients live in one contiguous FP32 buffer, like Mlp.
#pragma once

#include <cstdint>
#include <vector>

#include "dl/mlp.hpp"  // OutputKind.
#include "dl/model_base.hpp"

namespace teco::dl {

struct TransformerConfig {
  std::size_t seq_len = 4;
  std::size_t d_model = 8;   ///< Must give seq_len * d_model = input dim.
  std::size_t d_ff = 32;
  std::size_t out_dim = 4;   ///< Output dim or class count.
  OutputKind output = OutputKind::kRegression;
  float init_stddev = 0.5f;
  std::uint64_t seed = 7;
};

class TinyTransformer final : public ModelBase {
 public:
  explicit TinyTransformer(TransformerConfig cfg);

  const Tensor& forward(const Tensor& x) override;
  float backward(const Tensor& targets) override;
  float accuracy(const Tensor& targets) const override;

  std::span<float> params() override { return params_; }
  std::span<const float> grads() const override { return grads_; }
  void load_params(std::span<const float> p) override;
  std::size_t n_params() const override { return params_.size(); }
  const TransformerConfig& config() const { return cfg_; }

 private:
  // Parameter-buffer offsets (row-major blocks).
  struct Layout {
    std::size_t wq, wk, wv, wo;      ///< [D, D] each.
    std::size_t w1, b1;              ///< [F, D], [F].
    std::size_t w2, b2;              ///< [D, F], [D].
    std::size_t wr, br;              ///< [O, D], [O].
    std::size_t total;
  };

  std::span<const float> P(std::size_t off, std::size_t count) const {
    return std::span<const float>(params_).subspan(off, count);
  }
  std::span<float> G(std::size_t off, std::size_t count) {
    return std::span<float>(grads_).subspan(off, count);
  }

  TransformerConfig cfg_;
  Layout lay_{};
  std::vector<float> params_;
  std::vector<float> grads_;

  // Forward caches (rows = B * T unless noted).
  std::size_t batch_ = 0;
  Tensor x_;        ///< [B*T, D] reshaped input.
  Tensor q_, k_, v_;
  Tensor p_;        ///< [B*T, T] attention rows per sample.
  Tensor h_;        ///< [B*T, D] attention output.
  Tensor r1_;       ///< [B*T, D].
  Tensor z_;        ///< [B*T, F].
  Tensor r2_;       ///< [B*T, D].
  Tensor pooled_;   ///< [B, D].
  Tensor out_;      ///< [B, O].
};

}  // namespace teco::dl
