// Adam optimizer, matching ZeRO-Offload's CPU optimizer semantics.
//
// ZeRO-Offload keeps optimizer states (m, v) and FP32 master parameters in
// CPU memory; each training step clips gradients by global norm (phase 4)
// and runs a vectorized Adam sweep (phase 5). The sweep is a streaming pass
// over four arrays — that streaming store of updated parameters is exactly
// the cache-line writeback stream the update protocol taps.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace teco::dl {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip_norm = 1.0f;  ///< <= 0 disables clipping.
};

class Adam {
 public:
  Adam(std::size_t n_params, AdamConfig cfg = {});

  /// Clip `grads` in place to the configured global norm.
  /// Returns the pre-clip norm.
  float clip_gradients(std::span<float> grads) const;

  /// One Adam step: params -= update(grads). Arrays must have n_params
  /// elements. Bias-corrected, matching torch.optim.Adam.
  void step(std::span<float> params, std::span<const float> grads);

  std::size_t steps_taken() const { return t_; }
  std::span<const float> first_moment() const { return m_; }
  std::span<const float> second_moment() const { return v_; }
  const AdamConfig& config() const { return cfg_; }

 private:
  AdamConfig cfg_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
};

}  // namespace teco::dl
