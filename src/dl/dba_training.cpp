#include "dl/dba_training.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "dba/disaggregator.hpp"
#include "dl/fp16.hpp"

namespace teco::dl {

namespace {

Batch sample_task(const Task& task, std::size_t batch, sim::Rng& rng) {
  return std::visit([&](const auto& t) { return t.sample(batch, rng); },
                    task);
}

bool is_classification(const Task& task) {
  return std::holds_alternative<ClassificationTask>(task);
}

}  // namespace

Task make_regression_task(std::uint64_t seed) {
  return Task{RegressionTask(16, 4, 0.05f, seed)};
}

Task make_classification_task(std::uint64_t seed) {
  return Task{ClassificationTask(16, 10, 0.9f, seed)};
}

MlpConfig default_model_for(const Task& task, std::uint64_t seed) {
  MlpConfig cfg;
  cfg.seed = seed;
  if (is_classification(task)) {
    const auto& t = std::get<ClassificationTask>(task);
    cfg.layer_sizes = {t.input_dim(), 64, 64, t.classes()};
    cfg.output = OutputKind::kClassification;
  } else {
    const auto& t = std::get<RegressionTask>(task);
    cfg.layer_sizes = {t.input_dim(), 64, 64, t.output_dim()};
    cfg.output = OutputKind::kRegression;
  }
  return cfg;
}

TransformerConfig default_transformer_for(const Task& task,
                                          std::uint64_t seed) {
  TransformerConfig cfg;
  cfg.seed = seed;
  cfg.seq_len = 2;
  cfg.d_ff = 64;
  if (is_classification(task)) {
    const auto& t = std::get<ClassificationTask>(task);
    cfg.d_model = t.input_dim() / cfg.seq_len;
    cfg.out_dim = t.classes();
    cfg.output = OutputKind::kClassification;
  } else {
    const auto& t = std::get<RegressionTask>(task);
    cfg.d_model = t.input_dim() / cfg.seq_len;
    cfg.out_dim = t.output_dim();
    cfg.output = OutputKind::kRegression;
  }
  return cfg;
}

TrainResult run_training(const Task& task, const TrainRunConfig& cfg) {
  std::unique_ptr<ModelBase> model_holder;
  if (cfg.transformer.has_value()) {
    model_holder = std::make_unique<TinyTransformer>(*cfg.transformer);
  } else {
    model_holder = std::make_unique<Mlp>(cfg.model);
  }
  ModelBase& model = *model_holder;
  const std::size_t n = model.n_params();

  // Accelerator-side FP32 copy (giant-cache contents; DBA splices here)
  // and the CPU-side exact FP32 master.
  std::vector<float> accel(model.params().begin(), model.params().end());
  std::vector<float> master = accel;
  std::vector<float> prev_master = master;
  std::vector<float> prev_grads(n, 0.0f);
  std::vector<float> clipped(n, 0.0f);
  std::vector<float> compute(n, 0.0f);

  Adam adam(n, cfg.adam);
  sim::Rng data_rng(cfg.data_seed);

  TrainResult res;
  res.steps_run = cfg.steps;

  for (std::size_t step = 0; step < cfg.steps; ++step) {
    // Accelerator: forward + backward on its (possibly DBA-stale) FP32
    // copy; under mixed precision, the on-device FP16 conversion happens
    // after the transfer (Section V), so compute sees rounded weights.
    if (cfg.mixed_precision) {
      compute = accel;
      fp16_round_array(compute);
      model.load_params(compute);
    } else {
      model.load_params(accel);
    }
    const Batch batch = sample_task(task, cfg.batch_size, data_rng);
    model.forward(batch.inputs);
    const float loss = model.backward(batch.targets);

    // CPU: clip + Adam on the exact master copy (phases 4-5).
    clipped.assign(model.grads().begin(), model.grads().end());
    adam.clip_gradients(clipped);
    adam.step(master, clipped);

    // Parameter transfer CPU -> accelerator (always FP32 on the wire).
    const bool dba_on = cfg.dba_enabled && step >= cfg.act_aft_steps;
    if (dba_on) {
      ++res.dba_active_steps;
      for (std::size_t i = 0; i < n; ++i) {
        accel[i] = dba::splice_f32(accel[i], master[i], cfg.dirty_bytes);
      }
    } else {
      accel = master;
    }

    // Instrumentation.
    if (cfg.record_every != 0 &&
        (step % cfg.record_every == 0 || step + 1 == cfg.steps)) {
      res.recorded_steps.push_back(step);
      res.loss_curve.push_back(loss);
      const auto pc = compare_arrays(prev_master, master);
      const auto gc = compare_arrays(prev_grads, clipped);
      res.param_changes.push_back(pc);
      res.grad_changes.push_back(gc);
      res.aggregate_param_changes += pc;
      res.aggregate_grad_changes += gc;
    }
    prev_master = master;
    prev_grads = clipped;
    res.final_train_loss = loss;
  }

  // Evaluate with the accelerator's post-transfer parameters.
  if (cfg.mixed_precision) {
    compute = accel;
    fp16_round_array(compute);
    model.load_params(compute);
  } else {
    model.load_params(accel);
  }

  // Held-out evaluation with a fixed seed (same data for every variant).
  sim::Rng eval_rng(cfg.eval_seed);
  const Batch eval = sample_task(task, cfg.eval_batch, eval_rng);
  model.forward(eval.inputs);
  res.final_eval_loss = model.backward(eval.targets);
  if (is_classification(task)) {
    model.forward(eval.inputs);
    res.final_metric = model.accuracy(eval.targets);
  } else {
    res.final_metric = std::exp(res.final_eval_loss);
  }
  return res;
}

}  // namespace teco::dl
