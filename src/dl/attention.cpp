#include "dl/attention.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace teco::dl {

namespace {
/// y[T,N] = x[T,M] * w^T + optional bias, for one sample's rows.
void matmul_rows(const float* x, std::size_t t, std::size_t m,
                 const float* w, std::size_t n, const float* bias,
                 float* y) {
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = bias != nullptr ? bias[j] : 0.0f;
      for (std::size_t kk = 0; kk < m; ++kk) {
        acc += x[i * m + kk] * w[j * m + kk];
      }
      y[i * n + j] = acc;
    }
  }
}
}  // namespace

TinyTransformer::TinyTransformer(TransformerConfig cfg) : cfg_(cfg) {
  const std::size_t d = cfg_.d_model, f = cfg_.d_ff, o = cfg_.out_dim;
  if (d == 0 || f == 0 || o == 0 || cfg_.seq_len == 0) {
    throw std::invalid_argument("transformer dims must be nonzero");
  }
  std::size_t off = 0;
  auto take = [&](std::size_t count) {
    const std::size_t at = off;
    off += count;
    return at;
  };
  lay_.wq = take(d * d);
  lay_.wk = take(d * d);
  lay_.wv = take(d * d);
  lay_.wo = take(d * d);
  lay_.w1 = take(f * d);
  lay_.b1 = take(f);
  lay_.w2 = take(d * f);
  lay_.b2 = take(d);
  lay_.wr = take(o * d);
  lay_.br = take(o);
  lay_.total = off;

  params_.resize(lay_.total);
  grads_.resize(lay_.total, 0.0f);
  sim::Rng rng(cfg_.seed);
  auto init_block = [&](std::size_t at, std::size_t count, std::size_t fanin) {
    const float scale =
        cfg_.init_stddev / std::sqrt(static_cast<float>(fanin));
    for (std::size_t i = 0; i < count; ++i) {
      params_[at + i] = static_cast<float>(rng.next_gaussian()) * scale;
    }
  };
  init_block(lay_.wq, d * d, d);
  init_block(lay_.wk, d * d, d);
  init_block(lay_.wv, d * d, d);
  init_block(lay_.wo, d * d, d);
  init_block(lay_.w1, f * d, d);
  init_block(lay_.w2, d * f, f);
  init_block(lay_.wr, o * d, d);
  // Biases start at zero (resize already did).
}

const Tensor& TinyTransformer::forward(const Tensor& x) {
  const std::size_t t = cfg_.seq_len, d = cfg_.d_model, f = cfg_.d_ff,
                    o = cfg_.out_dim;
  if (x.cols() != t * d) {
    throw std::invalid_argument("input dim must equal seq_len * d_model");
  }
  batch_ = x.rows();
  const std::size_t rows = batch_ * t;
  x_ = Tensor(rows, d);
  for (std::size_t b = 0; b < batch_; ++b) {
    for (std::size_t i = 0; i < t * d; ++i) {
      x_.flat()[b * t * d + i] = x.at(b, i);
    }
  }
  q_ = Tensor(rows, d);
  k_ = Tensor(rows, d);
  v_ = Tensor(rows, d);
  p_ = Tensor(rows, t);
  h_ = Tensor(rows, d);
  r1_ = Tensor(rows, d);
  z_ = Tensor(rows, f);
  r2_ = Tensor(rows, d);
  pooled_ = Tensor(batch_, d);
  out_ = Tensor(batch_, o);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* xb = x_.data() + b * t * d;
    float* qb = q_.data() + b * t * d;
    float* kb = k_.data() + b * t * d;
    float* vb = v_.data() + b * t * d;
    matmul_rows(xb, t, d, params_.data() + lay_.wq, d, nullptr, qb);
    matmul_rows(xb, t, d, params_.data() + lay_.wk, d, nullptr, kb);
    matmul_rows(xb, t, d, params_.data() + lay_.wv, d, nullptr, vb);

    // P = softmax(Q K^T / sqrt(d)), row per query position.
    float* pb = p_.data() + b * t * t;
    for (std::size_t i = 0; i < t; ++i) {
      float mx = -1e30f;
      for (std::size_t j = 0; j < t; ++j) {
        float s = 0.0f;
        for (std::size_t e = 0; e < d; ++e) {
          s += qb[i * d + e] * kb[j * d + e];
        }
        s *= inv_sqrt_d;
        pb[i * t + j] = s;
        mx = std::max(mx, s);
      }
      float zsum = 0.0f;
      for (std::size_t j = 0; j < t; ++j) {
        pb[i * t + j] = std::exp(pb[i * t + j] - mx);
        zsum += pb[i * t + j];
      }
      for (std::size_t j = 0; j < t; ++j) pb[i * t + j] /= zsum;
    }

    // H = P V ; R1 = X + H Wo.
    float* hb = h_.data() + b * t * d;
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < t; ++j) {
          acc += pb[i * t + j] * vb[j * d + e];
        }
        hb[i * d + e] = acc;
      }
    }
    float* r1b = r1_.data() + b * t * d;
    matmul_rows(hb, t, d, params_.data() + lay_.wo, d, nullptr, r1b);
    for (std::size_t i = 0; i < t * d; ++i) r1b[i] += xb[i];

    // MLP with residual.
    float* zb = z_.data() + b * t * f;
    matmul_rows(r1b, t, d, params_.data() + lay_.w1, f,
                params_.data() + lay_.b1, zb);
    for (std::size_t i = 0; i < t * f; ++i) zb[i] = std::tanh(zb[i]);
    float* r2b = r2_.data() + b * t * d;
    matmul_rows(zb, t, f, params_.data() + lay_.w2, d,
                params_.data() + lay_.b2, r2b);
    for (std::size_t i = 0; i < t * d; ++i) r2b[i] += r1b[i];

    // Mean-pool + readout.
    for (std::size_t e = 0; e < d; ++e) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < t; ++i) acc += r2b[i * d + e];
      pooled_.at(b, e) = acc / static_cast<float>(t);
    }
    matmul_rows(pooled_.data() + b * d, 1, d, params_.data() + lay_.wr, o,
                params_.data() + lay_.br, out_.data() + b * o);
  }
  return out_;
}

float TinyTransformer::backward(const Tensor& targets) {
  std::fill(grads_.begin(), grads_.end(), 0.0f);
  const std::size_t t = cfg_.seq_len, d = cfg_.d_model, f = cfg_.d_ff,
                    o = cfg_.out_dim;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

  // Loss gradient w.r.t. the readout, per sample.
  Tensor dout(batch_, o);
  double loss = 0.0;
  if (cfg_.output == OutputKind::kRegression) {
    assert(targets.rows() == batch_ && targets.cols() == o);
    const double inv = 1.0 / static_cast<double>(batch_ * o);
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t j = 0; j < o; ++j) {
        const float diff = out_.at(b, j) - targets.at(b, j);
        loss += static_cast<double>(diff) * diff * inv;
        dout.at(b, j) = static_cast<float>(2.0 * inv) * diff;
      }
    }
  } else {
    assert(targets.rows() == batch_ && targets.cols() == 1);
    const double invb = 1.0 / static_cast<double>(batch_);
    for (std::size_t b = 0; b < batch_; ++b) {
      float mx = out_.at(b, 0);
      for (std::size_t j = 1; j < o; ++j) mx = std::max(mx, out_.at(b, j));
      double zsum = 0.0;
      for (std::size_t j = 0; j < o; ++j) {
        zsum += std::exp(static_cast<double>(out_.at(b, j) - mx));
      }
      const auto label = static_cast<std::size_t>(targets.at(b, 0));
      for (std::size_t j = 0; j < o; ++j) {
        const double pr =
            std::exp(static_cast<double>(out_.at(b, j) - mx)) / zsum;
        dout.at(b, j) =
            static_cast<float>((pr - (j == label ? 1.0 : 0.0)) * invb);
        if (j == label) loss -= std::log(std::max(pr, 1e-12)) * invb;
      }
    }
  }

  // Scratch buffers reused per sample.
  std::vector<float> dr2(t * d), dz(t * f), dpre(t * f), dr1(t * d);
  std::vector<float> dh(t * d), dp(t * t), ds(t * t), dq(t * d), dk(t * d),
      dv(t * d);

  for (std::size_t b = 0; b < batch_; ++b) {
    const float* xb = x_.data() + b * t * d;
    const float* qb = q_.data() + b * t * d;
    const float* kb = k_.data() + b * t * d;
    const float* vb = v_.data() + b * t * d;
    const float* pb = p_.data() + b * t * t;
    const float* hb = h_.data() + b * t * d;
    const float* r1b = r1_.data() + b * t * d;
    const float* zb = z_.data() + b * t * f;

    // Readout: out = pooled Wr^T + br.
    const float* pooled = pooled_.data() + b * d;
    for (std::size_t j = 0; j < o; ++j) {
      const float g = dout.at(b, j);
      G(lay_.br, o)[j] += g;
      for (std::size_t e = 0; e < d; ++e) {
        G(lay_.wr, o * d)[j * d + e] += g * pooled[e];
      }
    }
    // dpooled -> spread uniformly over positions (mean pool).
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < o; ++j) {
          acc += dout.at(b, j) * params_[lay_.wr + j * d + e];
        }
        dr2[i * d + e] = acc / static_cast<float>(t);
      }
    }

    // MLP backward: R2 = R1 + (tanh(R1 W1 + b1) W2 + b2).
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t ff = 0; ff < f; ++ff) {
        float acc = 0.0f;
        for (std::size_t e = 0; e < d; ++e) {
          acc += dr2[i * d + e] * params_[lay_.w2 + e * f + ff];
        }
        dz[i * f + ff] = acc;
        const float zz = zb[i * f + ff];
        dpre[i * f + ff] = acc * (1.0f - zz * zz);
      }
    }
    for (std::size_t e = 0; e < d; ++e) {
      for (std::size_t i = 0; i < t; ++i) {
        G(lay_.b2, d)[e] += dr2[i * d + e];
        for (std::size_t ff = 0; ff < f; ++ff) {
          G(lay_.w2, d * f)[e * f + ff] += dr2[i * d + e] * zb[i * f + ff];
        }
      }
    }
    for (std::size_t ff = 0; ff < f; ++ff) {
      for (std::size_t i = 0; i < t; ++i) {
        G(lay_.b1, f)[ff] += dpre[i * f + ff];
        for (std::size_t e = 0; e < d; ++e) {
          G(lay_.w1, f * d)[ff * d + e] += dpre[i * f + ff] * r1b[i * d + e];
        }
      }
    }
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = dr2[i * d + e];  // Residual path.
        for (std::size_t ff = 0; ff < f; ++ff) {
          acc += dpre[i * f + ff] * params_[lay_.w1 + ff * d + e];
        }
        dr1[i * d + e] = acc;
      }
    }

    // Attention output: R1 = X + H Wo^T (rows convention of matmul_rows).
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t e = 0; e < d; ++e) {
          G(lay_.wo, d * d)[j * d + e] += dr1[i * d + j] * hb[i * d + e];
        }
      }
    }
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < d; ++j) {
          acc += dr1[i * d + j] * params_[lay_.wo + j * d + e];
        }
        dh[i * d + e] = acc;
      }
    }

    // H = P V.
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < t; ++j) {
        float acc = 0.0f;
        for (std::size_t e = 0; e < d; ++e) {
          acc += dh[i * d + e] * vb[j * d + e];
        }
        dp[i * t + j] = acc;
      }
    }
    for (std::size_t j = 0; j < t; ++j) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < t; ++i) {
          acc += pb[i * t + j] * dh[i * d + e];
        }
        dv[j * d + e] = acc;
      }
    }

    // Softmax rows: dS = P * (dP - sum(dP * P)).
    for (std::size_t i = 0; i < t; ++i) {
      float dot = 0.0f;
      for (std::size_t j = 0; j < t; ++j) {
        dot += dp[i * t + j] * pb[i * t + j];
      }
      for (std::size_t j = 0; j < t; ++j) {
        ds[i * t + j] = pb[i * t + j] * (dp[i * t + j] - dot);
      }
    }

    // S = Q K^T / sqrt(d).
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < t; ++j) {
          acc += ds[i * t + j] * kb[j * d + e];
        }
        dq[i * d + e] = acc * inv_sqrt_d;
      }
    }
    for (std::size_t j = 0; j < t; ++j) {
      for (std::size_t e = 0; e < d; ++e) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < t; ++i) {
          acc += ds[i * t + j] * qb[i * d + e];
        }
        dk[j * d + e] = acc * inv_sqrt_d;
      }
    }

    // Q|K|V = X Wq|Wk|Wv (rows convention).
    auto accum_proj = [&](std::size_t w_off, const std::vector<float>& dy) {
      for (std::size_t j = 0; j < d; ++j) {
        for (std::size_t i = 0; i < t; ++i) {
          for (std::size_t e = 0; e < d; ++e) {
            G(w_off, d * d)[j * d + e] += dy[i * d + j] * xb[i * d + e];
          }
        }
      }
    };
    accum_proj(lay_.wq, dq);
    accum_proj(lay_.wk, dk);
    accum_proj(lay_.wv, dv);
  }
  return static_cast<float>(loss);
}

float TinyTransformer::accuracy(const Tensor& targets) const {
  if (cfg_.output != OutputKind::kClassification || out_.rows() == 0) {
    return 0.0f;
  }
  std::size_t correct = 0;
  for (std::size_t b = 0; b < out_.rows(); ++b) {
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < out_.cols(); ++j) {
      if (out_.at(b, j) > out_.at(b, argmax)) argmax = j;
    }
    if (argmax == static_cast<std::size_t>(targets.at(b, 0))) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(out_.rows());
}

void TinyTransformer::load_params(std::span<const float> p) {
  if (p.size() != params_.size()) {
    throw std::invalid_argument("parameter size mismatch");
  }
  std::copy(p.begin(), p.end(), params_.begin());
}

}  // namespace teco::dl
