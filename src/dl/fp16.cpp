#include "dl/fp16.hpp"

#include <cstring>

namespace teco::dl {

std::uint16_t f32_to_f16_bits(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t exp = (x >> 23) & 0xFFu;
  std::uint32_t mant = x & 0x7FFFFFu;

  if (exp == 0xFF) {  // Inf / NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00u |
                                      (mant ? 0x200u | (mant >> 13) : 0));
  }

  // Unbiased exponent; half bias is 15, float bias 127.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) {  // Overflow -> inf.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (e <= 0) {  // Subnormal half or zero.
    if (e < -10) return static_cast<std::uint16_t>(sign);  // Underflow.
    // Add the implicit leading 1, then shift into subnormal position.
    mant |= 0x800000u;
    const int shift = 14 - e;  // 14..24.
    const std::uint32_t sub = mant >> shift;
    // Round to nearest even on the dropped bits.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t out = sub;
    if (rem > half || (rem == half && (sub & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }

  // Normal: keep 10 mantissa bits, round to nearest even on the low 13.
  std::uint32_t out = (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) {
    ++out;  // May carry into the exponent; that is correct (rounds up to
            // the next binade, or to inf at the top).
  }
  return static_cast<std::uint16_t>(sign | out);
}

float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // Signed zero.
    } else {
      // Subnormal half: normalize into a float.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN.
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, 4);
  return f;
}

void fp16_round_array(std::span<float> values) {
  for (auto& v : values) v = fp16_round(v);
}

}  // namespace teco::dl
