// Synthetic supervised tasks standing in for the paper's datasets.
//
// The numeric experiments measure optimizer-driven parameter dynamics and
// DBA's effect on convergence, which depend on the training process, not on
// language data (unavailable offline). Two tasks:
//  * Regression: targets from a fixed random teacher MLP plus noise —
//    the "perplexity"-metric proxy (GPT-2/T5-style generative losses).
//  * Classification: Gaussian clusters with class overlap — the
//    "accuracy"-metric proxy (Bert/Albert-style discriminative tasks).
// Both are deterministic from a seed.
#pragma once

#include <cstddef>
#include <vector>

#include "dl/mlp.hpp"
#include "dl/tensor.hpp"
#include "sim/rng.hpp"

namespace teco::dl {

struct Batch {
  Tensor inputs;
  Tensor targets;
};

/// Regression task: y = teacher(x) + noise.
class RegressionTask {
 public:
  RegressionTask(std::size_t input_dim, std::size_t output_dim,
                 float noise_stddev, std::uint64_t seed);

  Batch sample(std::size_t batch_size, sim::Rng& rng) const;
  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return output_dim_; }

 private:
  std::size_t input_dim_, output_dim_;
  float noise_;
  /// Never trained; mutable because forward() caches activations.
  mutable Mlp teacher_;
};

/// Classification task: `classes` Gaussian clusters in `input_dim` dims.
class ClassificationTask {
 public:
  ClassificationTask(std::size_t input_dim, std::size_t classes,
                     float cluster_spread, std::uint64_t seed);

  Batch sample(std::size_t batch_size, sim::Rng& rng) const;
  std::size_t input_dim() const { return input_dim_; }
  std::size_t classes() const { return classes_; }

 private:
  std::size_t input_dim_, classes_;
  float spread_;
  std::vector<std::vector<float>> centers_;
};

}  // namespace teco::dl
