// A real multi-layer perceptron with manual backpropagation.
//
// Stands in for the paper's fine-tuned transformers in the numeric
// experiments. All parameters live in ONE contiguous FP32 buffer (weights
// then biases, layer by layer) and all gradients in a parallel buffer, so:
//  * the byte-change instrumentation (Fig. 2) walks them like cache lines,
//  * Adam sweeps them in a single streaming pass (like ZeRO-Offload's
//    CPU-Adam), and
//  * DBA splicing can be applied bit-exactly to the "accelerator copy".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dl/model_base.hpp"
#include "dl/tensor.hpp"
#include "sim/rng.hpp"

namespace teco::dl {

enum class OutputKind {
  kRegression,      ///< Linear output + MSE loss.
  kClassification,  ///< Softmax + cross-entropy loss.
};

struct MlpConfig {
  std::vector<std::size_t> layer_sizes;  ///< e.g. {16, 64, 64, 1}.
  OutputKind output = OutputKind::kRegression;
  float init_stddev = 0.25f;
  std::uint64_t seed = 42;
};

class Mlp final : public ModelBase {
 public:
  explicit Mlp(MlpConfig cfg);

  /// Forward pass over a batch (rows = samples), caching activations.
  /// Returns network outputs [B, out_dim].
  const Tensor& forward(const Tensor& x) override;

  /// Backward pass; fills the gradient buffer and returns the mean loss.
  /// For regression, `targets` is [B, out_dim]; for classification it is
  /// [B, 1] holding class indices.
  float backward(const Tensor& targets) override;

  /// Classification accuracy of the latest forward() outputs.
  float accuracy(const Tensor& targets) const override;

  std::span<float> params() override { return params_; }
  std::span<const float> params() const { return params_; }
  std::span<float> grads() { return grads_; }
  std::span<const float> grads() const override { return grads_; }
  std::size_t n_params() const override { return params_.size(); }
  const MlpConfig& config() const { return cfg_; }

  /// Replace parameters (e.g. with a DBA-spliced accelerator copy).
  void load_params(std::span<const float> p) override;

 private:
  struct LayerView {
    std::size_t w_off, b_off, in, out;
  };

  MlpConfig cfg_;
  std::vector<LayerView> layers_;
  std::vector<float> params_;
  std::vector<float> grads_;

  // Forward caches.
  Tensor input_;
  std::vector<Tensor> pre_act_;   ///< z_l = W_l a_{l-1} + b_l.
  std::vector<Tensor> post_act_;  ///< a_l = act(z_l); last = output.
};

}  // namespace teco::dl
