// Common interface for the real trainable models (MLP, tiny transformer).
//
// All models keep their parameters and gradients in single contiguous FP32
// buffers so the byte-change instrumentation, Adam, and DBA splicing treat
// them uniformly.
#pragma once

#include <cstddef>
#include <span>

#include "dl/tensor.hpp"

namespace teco::dl {

class ModelBase {
 public:
  virtual ~ModelBase() = default;

  /// Forward over a batch (rows = samples); returns outputs [B, out_dim].
  virtual const Tensor& forward(const Tensor& x) = 0;
  /// Backward from the latest forward; fills grads, returns mean loss.
  virtual float backward(const Tensor& targets) = 0;
  /// Classification accuracy of the latest forward outputs (0 otherwise).
  virtual float accuracy(const Tensor& targets) const = 0;

  virtual std::span<float> params() = 0;
  virtual std::span<const float> grads() const = 0;
  virtual void load_params(std::span<const float> p) = 0;
  virtual std::size_t n_params() const = 0;
};

}  // namespace teco::dl
