// Software IEEE 754 binary16 conversion (Section V, mixed-precision note).
//
// In mixed-precision ZeRO-Offload the FP32 master parameters live on CPU
// and are converted to FP16 *on the GPU* after the transfer — so the
// CPU->GPU stream stays FP32 and DBA still applies. We implement the
// conversion bit-exactly (round-to-nearest-even, subnormals, inf/NaN) so
// the training harness can model the FP16 compute path and verify that
// DBA's low-byte splice composes with it.
#pragma once

#include <cstdint>
#include <span>

namespace teco::dl {

/// Convert an FP32 value to IEEE binary16 bits (round-to-nearest-even).
std::uint16_t f32_to_f16_bits(float f);

/// Convert IEEE binary16 bits to FP32 (exact).
float f16_bits_to_f32(std::uint16_t h);

/// Round-trip through FP16: what a tensor-core kernel sees of an FP32
/// parameter.
inline float fp16_round(float f) { return f16_bits_to_f32(f32_to_f16_bits(f)); }

/// In-place FP16 round-trip of a whole array (the GPU-side conversion).
void fp16_round_array(std::span<float> values);

}  // namespace teco::dl
