// End-to-end numeric training harness with bit-exact DBA emulation.
//
// Reproduces the training-quality side of the paper:
//  * Fig. 2  — per-step value-changed-byte distributions for parameters and
//              gradients under real Adam fine-tuning;
//  * Fig. 10 — training-loss curves with and without TECO-Reduction;
//  * Fig. 13 — accuracy/speed trade-off of the DBA activation step;
//  * Table V — final metric deltas.
//
// The harness mirrors TECO's dataflow exactly:
//   - the CPU holds the exact FP32 master copy, updated by Adam from the
//     gradients the accelerator produced;
//   - the accelerator copy is refreshed each step; once DBA activates, only
//     the low `dirty_bytes` of each parameter cross the link, so the
//     accelerator parameter becomes splice(old_accel, new_master, N) —
//     upper bytes go stale whenever the master's upper bytes move;
//   - forward/backward always run against the *accelerator* copy, so DBA's
//     approximation feeds back into the gradients, as on real hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "dl/adam.hpp"
#include "dl/attention.hpp"
#include "dl/byte_stats.hpp"
#include "dl/mlp.hpp"
#include "dl/synthetic_data.hpp"

namespace teco::dl {

using Task = std::variant<RegressionTask, ClassificationTask>;

struct TrainRunConfig {
  MlpConfig model;
  /// When set, train a TinyTransformer instead of the MLP (the
  /// transformer-shaped proxy; `model` is ignored).
  std::optional<TransformerConfig> transformer;
  AdamConfig adam;
  std::size_t steps = 2000;
  std::size_t batch_size = 16;

  bool dba_enabled = false;
  std::size_t act_aft_steps = 500;  ///< DBA activation step (Section V-A).
  std::uint8_t dirty_bytes = 2;

  /// Mixed-precision mode (Section V): the accelerator keeps the FP32 copy
  /// it received over CXL and converts to FP16 on-device for compute, so
  /// the transfer stays FP32 and DBA still applies.
  bool mixed_precision = false;

  std::size_t record_every = 10;  ///< Loss-curve / byte-stat sampling.
  std::size_t eval_batch = 512;
  std::uint64_t data_seed = 7;
  std::uint64_t eval_seed = 1234;
};

struct TrainResult {
  std::vector<std::size_t> recorded_steps;
  std::vector<float> loss_curve;              ///< Training loss at samples.
  std::vector<ByteChangeStats> param_changes; ///< Master params, per sample.
  std::vector<ByteChangeStats> grad_changes;
  ByteChangeStats aggregate_param_changes;
  ByteChangeStats aggregate_grad_changes;
  float final_train_loss = 0.0f;
  float final_eval_loss = 0.0f;
  /// Task metric: accuracy (classification) or exp(eval loss), a
  /// perplexity-style proxy (regression).
  float final_metric = 0.0f;
  std::size_t dba_active_steps = 0;
  std::size_t steps_run = 0;
};

/// Run one training session. Deterministic given the config.
TrainResult run_training(const Task& task, const TrainRunConfig& cfg);

/// Convenience: the default small tasks used across benches/tests.
Task make_regression_task(std::uint64_t seed = 11);
Task make_classification_task(std::uint64_t seed = 13);
MlpConfig default_model_for(const Task& task, std::uint64_t seed = 42);
/// Transformer proxy sized to the same tasks (input dim = seq * d_model).
TransformerConfig default_transformer_for(const Task& task,
                                          std::uint64_t seed = 42);

}  // namespace teco::dl
