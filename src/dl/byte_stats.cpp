#include "dl/byte_stats.hpp"

#include <cstring>
#include <stdexcept>

namespace teco::dl {

ByteChangeStats& ByteChangeStats::operator+=(const ByteChangeStats& o) {
  total += o.total;
  unchanged += o.unchanged;
  last_byte_only += o.last_byte_only;
  last_two_bytes += o.last_two_bytes;
  other += o.other;
  return *this;
}

ByteChangeCase classify_change(float prev, float curr) {
  std::uint32_t a, b;
  std::memcpy(&a, &prev, 4);
  std::memcpy(&b, &curr, 4);
  const std::uint32_t diff = a ^ b;
  if (diff == 0) return ByteChangeCase::kUnchanged;
  if ((diff & 0xFFFFFF00u) == 0) return ByteChangeCase::kLastByteOnly;
  if ((diff & 0xFFFF0000u) == 0) return ByteChangeCase::kLastTwoBytes;
  return ByteChangeCase::kOther;
}

ByteChangeStats compare_arrays(std::span<const float> prev,
                               std::span<const float> curr) {
  if (prev.size() != curr.size()) {
    throw std::invalid_argument("array sizes must match");
  }
  ByteChangeStats s;
  s.total = prev.size();
  for (std::size_t i = 0; i < prev.size(); ++i) {
    switch (classify_change(prev[i], curr[i])) {
      case ByteChangeCase::kUnchanged: ++s.unchanged; break;
      case ByteChangeCase::kLastByteOnly: ++s.last_byte_only; break;
      case ByteChangeCase::kLastTwoBytes: ++s.last_two_bytes; break;
      case ByteChangeCase::kOther: ++s.other; break;
    }
  }
  return s;
}

}  // namespace teco::dl
