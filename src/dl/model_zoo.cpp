#include "dl/model_zoo.hpp"

#include <stdexcept>

namespace teco::dl {

namespace {
constexpr std::uint64_t kMiB = 1024ull * 1024ull;
constexpr std::uint64_t M(double millions) {
  return static_cast<std::uint64_t>(millions * 1e6);
}
}  // namespace

std::uint64_t ModelConfig::giant_cache_requirement() const {
  // FP16 compute copy of the parameters plus the gradient-buffer region.
  // Table III's reported sizings average ~2.7 B/param across all five
  // models, i.e. a buffer of ~0.7 B/param on top of the FP16 copy.
  return n_params * 2 + n_params * 7 / 10;
}

double ModelConfig::activation_bytes_per_layer(std::uint32_t batch) const {
  const double tokens = static_cast<double>(batch) * seq_len;
  return tokens * hidden_size * 80.0;
}

double ModelConfig::activation_bytes(std::uint32_t batch,
                                     bool checkpointing) const {
  const double tokens = static_cast<double>(batch) * seq_len;
  const double units = tokens * hidden_size * n_layers;
  if (checkpointing) {
    // Layer inputs only, plus one layer's full activations of recompute
    // working space.
    return units * 2.0 + tokens * hidden_size * 80.0;
  }
  return units * 80.0;
}

std::uint64_t ModelConfig::gradient_buffer_bytes() const {
  // DeepSpeed's default reduce-bucket sizing is a few hundred MB; scale it
  // with the model but cap it, mirroring the configurable buffer the paper
  // mentions in Phase 3.
  const std::uint64_t pref = gradient_bytes() / 8;
  const std::uint64_t cap = 256ull * kMiB;
  return pref < cap ? pref : cap;
}

ModelConfig gpt2() {
  return ModelConfig{"GPT2", ModelKind::kTransformerDecoder, M(122),
                     12, 1024, 12, 256, 324 * kMiB, "Perplexity", false};
}

ModelConfig albert_xxlarge_v1() {
  return ModelConfig{"Albert-xxlarge-v1", ModelKind::kTransformerEncoder,
                     M(223), 12, 4096, 48, 384, 547 * kMiB, "F1/EM", false};
}

ModelConfig bert_large_cased() {
  return ModelConfig{"Bert-large-cased", ModelKind::kTransformerEncoder,
                     M(334), 24, 1024, 12, 512, 817 * kMiB, "Accuracy",
                     false};
}

ModelConfig t5_large() {
  return ModelConfig{"T5-large", ModelKind::kTransformerEncDec, M(737),
                     48, 1024, 12, 512, 2069 * kMiB, "Gen-length", false};
}

ModelConfig gcnii() {
  // seq_len holds the node count of the Wisconsin graph (full-graph steps).
  return ModelConfig{"GCNII", ModelKind::kGraphNeuralNetwork, M(156),
                     64, 1560, 0, 251, 400 * kMiB, "Accuracy", true};
}

ModelConfig gpt2_medium() {
  return ModelConfig{"GPT2-Medium", ModelKind::kTransformerDecoder, M(356),
                     24, 1024, 16, 512, 945 * kMiB, "Perplexity", false};
}

ModelConfig gpt2_large() {
  return ModelConfig{"GPT2-Large", ModelKind::kTransformerDecoder, M(778),
                     36, 1280, 20, 512, 2065 * kMiB, "Perplexity", false};
}

ModelConfig gpt2_11b() {
  return ModelConfig{"GPT2-11B", ModelKind::kTransformerDecoder, M(11000),
                     72, 3584, 28, 512, 29000 * kMiB, "Perplexity", false};
}

ModelConfig bert_base_uncased() {
  // GLUE-MNLI fine-tuning uses sequence length 128.
  return ModelConfig{"Bert-base-uncased", ModelKind::kTransformerEncoder,
                     M(110), 12, 768, 12, 128, 280 * kMiB, "Accuracy",
                     false};
}

std::vector<ModelConfig> table3_models() {
  return {gpt2(), albert_xxlarge_v1(), bert_large_cased(), t5_large(),
          gcnii()};
}

std::vector<ModelConfig> table6_models() {
  return {gpt2(), gpt2_medium(), gpt2_large(), gpt2_11b()};
}

ModelConfig model_by_name(const std::string& name) {
  for (const auto& m : table3_models()) {
    if (m.name == name) return m;
  }
  for (const auto& m : table6_models()) {
    if (m.name == name) return m;
  }
  if (name == "Bert-base-uncased") return bert_base_uncased();
  throw std::out_of_range("unknown model: " + name);
}

}  // namespace teco::dl
