#include "dl/tensor.hpp"

#include <cassert>

namespace teco::dl {

Tensor Tensor::randn(std::size_t rows, std::size_t cols, sim::Rng& rng,
                     float stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return t;
}

void linear_forward(const Tensor& x, std::span<const float> w,
                    std::span<const float> bias, Tensor& out) {
  const std::size_t b = x.rows(), m = x.cols(), n = bias.size();
  assert(w.size() == n * m);
  assert(out.rows() == b && out.cols() == n);
  for (std::size_t i = 0; i < b; ++i) {
    const float* xr = x.data() + i * m;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = bias[j];
      const float* wr = w.data() + j * m;
      for (std::size_t k = 0; k < m; ++k) acc += xr[k] * wr[k];
      out.at(i, j) = acc;
    }
  }
}

void linear_backward(const Tensor& x, std::span<const float> w,
                     const Tensor& dout, std::span<float> dw,
                     std::span<float> dbias, Tensor& dx) {
  const std::size_t b = x.rows(), m = x.cols(), n = dbias.size();
  assert(dout.rows() == b && dout.cols() == n);
  assert(w.size() == n * m && dw.size() == n * m);
  assert(dx.rows() == b && dx.cols() == m);
  for (std::size_t j = 0; j < n; ++j) {
    float db = 0.0f;
    for (std::size_t i = 0; i < b; ++i) db += dout.at(i, j);
    dbias[j] += db;
  }
  for (std::size_t j = 0; j < n; ++j) {
    float* dwr = dw.data() + j * m;
    for (std::size_t i = 0; i < b; ++i) {
      const float g = dout.at(i, j);
      const float* xr = x.data() + i * m;
      for (std::size_t k = 0; k < m; ++k) dwr[k] += g * xr[k];
    }
  }
  for (std::size_t i = 0; i < b; ++i) {
    float* dxr = dx.data() + i * m;
    for (std::size_t k = 0; k < m; ++k) dxr[k] = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float g = dout.at(i, j);
      const float* wr = w.data() + j * m;
      for (std::size_t k = 0; k < m; ++k) dxr[k] += g * wr[k];
    }
  }
}

}  // namespace teco::dl
