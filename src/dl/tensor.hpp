// Minimal dense FP32 tensor used by the numeric training path.
//
// TECO's numeric experiments (Fig. 2, Fig. 10, Fig. 13, Table V) need real
// parameter/gradient value dynamics, not a full framework; this tensor is a
// contiguous row-major buffer with the handful of ops the MLP needs. The
// contiguous layout is deliberate: byte-change statistics and DBA splicing
// walk the raw bytes exactly as the CXL modules would walk cache lines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace teco::dl {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Tensor randn(std::size_t rows, std::size_t cols, sim::Rng& rng,
                      float stddev);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v) { data_.assign(data_.size(), v); }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<float> data_;
};

/// out[B,N] = x[B,M] * w^T + bias[N], where w is row-major [N,M] in a flat
/// span (the MLP keeps all weights in one contiguous parameter buffer).
void linear_forward(const Tensor& x, std::span<const float> w,
                    std::span<const float> bias, Tensor& out);

/// Gradients of the linear layer given dL/dout.
/// dw[N,M] += dout^T * x ; dbias[N] += colsum(dout) ; dx[B,M] = dout * w.
void linear_backward(const Tensor& x, std::span<const float> w,
                     const Tensor& dout, std::span<float> dw,
                     std::span<float> dbias, Tensor& dx);

}  // namespace teco::dl
