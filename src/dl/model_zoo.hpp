// The evaluated DL model configurations (Table III + Section VIII-E).
//
// These are *analytic* descriptions feeding the performance model: parameter
// counts, transformer shape (layers, hidden, heads), the paper's reported
// giant-cache sizing, and the metric each model reports. The numeric
// experiments use the real (small) MLPs in mlp.hpp instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace teco::dl {

enum class ModelKind {
  kTransformerDecoder,
  kTransformerEncoder,
  kTransformerEncDec,
  kGraphNeuralNetwork,
};

struct ModelConfig {
  std::string name;
  ModelKind kind = ModelKind::kTransformerEncoder;
  std::uint64_t n_params = 0;       ///< Total trainable parameters.
  std::uint32_t n_layers = 0;
  std::uint32_t hidden_size = 0;
  std::uint32_t n_heads = 0;        ///< 0 for non-transformers.
  std::uint32_t seq_len = 512;      ///< Training sequence length.
  std::uint64_t giant_cache_bytes = 0;  ///< Paper's Table III sizing.
  std::string metric;               ///< "Perplexity", "Accuracy", ...
  bool full_graph_only = false;     ///< GCNII: batch size fixed.

  std::uint64_t param_bytes() const { return n_params * 4; }
  std::uint64_t gradient_bytes() const { return n_params * 4; }
  /// Saved-activation footprint of one transformer layer at this batch:
  /// ~80 B per (token, hidden unit) — attention scores, MLP intermediates,
  /// layer norms — matching the V100 OOM heuristic in offload::fits_on_gpu.
  double activation_bytes_per_layer(std::uint32_t batch) const;
  /// Whole-step saved-activation footprint. With activation checkpointing
  /// only layer inputs (~2 B/unit) persist, plus one layer of recompute
  /// working space.
  double activation_bytes(std::uint32_t batch,
                          bool checkpointing = false) const;
  /// ZeRO-Offload GPU-side gradient buffer (a configurable fraction of the
  /// gradient size; defaults mirror the DeepSpeed default bucket sizing).
  std::uint64_t gradient_buffer_bytes() const;
  /// Required giant-cache size: the FP16 parameter copy the GPU computes
  /// with plus the gradient buffer (Section IV-A1: "the size of parameters
  /// in the accelerator plus the size of the gradient buffer"). Tested to
  /// match Table III's reported sizings within tolerance.
  std::uint64_t giant_cache_requirement() const;
};

/// Table III models.
ModelConfig gpt2();                ///< 122M, decoder.
ModelConfig albert_xxlarge_v1();   ///< 223M, encoder, 48 heads.
ModelConfig bert_large_cased();    ///< 334M, encoder.
ModelConfig t5_large();            ///< 737M, enc-dec.
ModelConfig gcnii();               ///< 156M, GNN, full-graph only.

/// Section VIII-E GPT-2 scale sweep.
ModelConfig gpt2_medium();         ///< 356M.
ModelConfig gpt2_large();          ///< 778M.
ModelConfig gpt2_11b();            ///< 11B.

/// Table VII.
ModelConfig bert_base_uncased();   ///< 110M.

/// All Table III models in paper order.
std::vector<ModelConfig> table3_models();
/// The GPT-2 family for Table VI.
std::vector<ModelConfig> table6_models();

/// Lookup by name; throws std::out_of_range for unknown names.
ModelConfig model_by_name(const std::string& name);

}  // namespace teco::dl
