// Value-changed-byte instrumentation (Section III, Fig. 2).
//
// For each FP32 value, compare its 4 bytes against the previous training
// step and classify the change:
//   Case 1 — only the least significant byte changed,
//   Case 2 — only the least significant two bytes changed,
//   Other  — any other distribution of changed bytes,
//   Unchanged — bit-identical.
// The paper's Observation 2: ~80 % of changed parameters are Case 1/2 and
// 44.5 % of parameters are unchanged across some consecutive steps, while
// gradients show no stable pattern — which is why DBA applies to parameters
// only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace teco::dl {

struct ByteChangeStats {
  std::uint64_t total = 0;
  std::uint64_t unchanged = 0;
  std::uint64_t last_byte_only = 0;    ///< Case 1.
  std::uint64_t last_two_bytes = 0;    ///< Case 2 (exactly: changed bytes ⊆ low 2, not Case 1).
  std::uint64_t other = 0;

  std::uint64_t changed() const { return total - unchanged; }
  double frac_unchanged() const {
    return total ? static_cast<double>(unchanged) / total : 0.0;
  }
  /// Fractions among *changed* values, as Fig. 2 plots them.
  double frac_case1() const {
    return changed() ? static_cast<double>(last_byte_only) / changed() : 0.0;
  }
  double frac_case2() const {
    return changed() ? static_cast<double>(last_two_bytes) / changed() : 0.0;
  }
  double frac_other() const {
    return changed() ? static_cast<double>(other) / changed() : 0.0;
  }
  /// Fraction of changed values whose update DBA(dirty_bytes=2) transfers
  /// losslessly.
  double frac_low2_covered() const { return frac_case1() + frac_case2(); }

  ByteChangeStats& operator+=(const ByteChangeStats& o);
};

/// Classify one value pair.
enum class ByteChangeCase : std::uint8_t {
  kUnchanged,
  kLastByteOnly,
  kLastTwoBytes,
  kOther,
};
ByteChangeCase classify_change(float prev, float curr);

/// Compare two same-length FP32 arrays element-wise.
ByteChangeStats compare_arrays(std::span<const float> prev,
                               std::span<const float> curr);

}  // namespace teco::dl
