#include "dl/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace teco::dl {

Adam::Adam(std::size_t n_params, AdamConfig cfg)
    : cfg_(cfg), m_(n_params, 0.0f), v_(n_params, 0.0f) {}

float Adam::clip_gradients(std::span<float> grads) const {
  double sq = 0.0;
  for (const float g : grads) sq += static_cast<double>(g) * g;
  const auto norm = static_cast<float>(std::sqrt(sq));
  if (cfg_.grad_clip_norm > 0.0f && norm > cfg_.grad_clip_norm) {
    const float scale = cfg_.grad_clip_norm / norm;
    for (auto& g : grads) g *= scale;
  }
  return norm;
}

void Adam::step(std::span<float> params, std::span<const float> grads) {
  if (params.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument("Adam: array sizes must match n_params");
  }
  ++t_;
  const float b1 = cfg_.beta1, b2 = cfg_.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = cfg_.lr;
  // Single streaming loop; GCC vectorizes this the way the paper's
  // AVX512 CPU-Adam does, so whole cache lines of params update together.
  for (std::size_t i = 0; i < params.size(); ++i) {
    float g = grads[i];
    if (cfg_.weight_decay != 0.0f) g += cfg_.weight_decay * params[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    const float mhat = m_[i] / bc1;
    const float vhat = v_[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(vhat) + cfg_.eps);
  }
}

}  // namespace teco::dl
