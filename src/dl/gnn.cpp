#include "dl/gnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dl/adam.hpp"

namespace teco::dl {

namespace {

/// out[N,C] = a[N,R] * w^T where w is [C,R] row-major.
void matmul_wt(const Tensor& a, std::span<const float> w, std::size_t c,
               Tensor& out) {
  const std::size_t n = a.rows(), r = a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < r; ++k) {
        acc += a.at(i, k) * w[j * r + k];
      }
      out.at(i, j) = acc;
    }
  }
}

/// out[N,H] = adj[N,N] * x[N,H] (adj symmetric).
void spmm(const Tensor& adj, const Tensor& x, Tensor& out) {
  const std::size_t n = adj.rows(), h = x.cols();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < h; ++e) out.at(i, e) = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float a = adj.at(i, j);
      if (a == 0.0f) continue;
      for (std::size_t e = 0; e < h; ++e) {
        out.at(i, e) += a * x.at(j, e);
      }
    }
  }
}

}  // namespace

SyntheticGraph make_synthetic_graph(const GraphConfig& cfg) {
  sim::Rng rng(cfg.seed);
  SyntheticGraph g;
  g.n_nodes = cfg.n_nodes;
  g.n_features = cfg.n_features;
  g.n_classes = cfg.n_classes;
  g.labels.resize(cfg.n_nodes);
  g.train_mask.resize(cfg.n_nodes);
  g.features = Tensor(cfg.n_nodes, cfg.n_features);

  // Class-dependent feature centers + noise.
  std::vector<std::vector<float>> centers(cfg.n_classes,
                                          std::vector<float>(cfg.n_features));
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<float>(rng.next_gaussian());
  }
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    g.labels[i] = static_cast<std::uint32_t>(rng.next_below(cfg.n_classes));
    g.train_mask[i] = rng.next_bool(cfg.train_fraction);
    for (std::size_t d = 0; d < cfg.n_features; ++d) {
      g.features.at(i, d) =
          centers[g.labels[i]][d] +
          static_cast<float>(rng.next_gaussian() * cfg.feature_noise);
    }
  }

  // Adjacency with controlled homophily, plus self-loops; symmetrically
  // normalized: A_hat = D^-1/2 (A + I) D^-1/2.
  Tensor adj(cfg.n_nodes, cfg.n_nodes);
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) adj.at(i, i) = 1.0f;
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    for (std::size_t j = i + 1; j < cfg.n_nodes; ++j) {
      const bool same = g.labels[i] == g.labels[j];
      const double p = cfg.edge_prob *
                       (same ? cfg.homophily : 1.0 - cfg.homophily) * 2.0;
      if (rng.next_bool(p)) {
        adj.at(i, j) = 1.0f;
        adj.at(j, i) = 1.0f;
      }
    }
  }
  std::vector<float> inv_sqrt_deg(cfg.n_nodes);
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    float deg = 0.0f;
    for (std::size_t j = 0; j < cfg.n_nodes; ++j) deg += adj.at(i, j);
    inv_sqrt_deg[i] = 1.0f / std::sqrt(deg);
  }
  g.norm_adj = Tensor(cfg.n_nodes, cfg.n_nodes);
  for (std::size_t i = 0; i < cfg.n_nodes; ++i) {
    for (std::size_t j = 0; j < cfg.n_nodes; ++j) {
      g.norm_adj.at(i, j) = adj.at(i, j) * inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return g;
}

Gcnii::Gcnii(GcniiConfig cfg, std::size_t in_features, std::size_t n_classes)
    : cfg_(cfg), in_features_(in_features), n_classes_(n_classes) {
  if (cfg_.n_layers == 0 || cfg_.hidden == 0) {
    throw std::invalid_argument("GCNII dims must be nonzero");
  }
  const std::size_t h = cfg_.hidden;
  std::size_t off = 0;
  w_in_off_ = off;
  off += h * in_features_;
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    w_off_.push_back(off);
    off += h * h;
  }
  w_out_off_ = off;
  off += n_classes_ * h;
  params_.resize(off);
  grads_.resize(off, 0.0f);

  sim::Rng rng(cfg_.seed);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i] = static_cast<float>(rng.next_gaussian()) * cfg_.init_stddev /
                 std::sqrt(static_cast<float>(h));
  }
  pre_.resize(cfg_.n_layers);
  h_.resize(cfg_.n_layers);
  p_.resize(cfg_.n_layers);
}

float Gcnii::beta(std::size_t layer) const {
  return std::log(cfg_.lambda / static_cast<float>(layer + 1) + 1.0f);
}

const Tensor& Gcnii::forward(const SyntheticGraph& g) {
  const std::size_t n = g.n_nodes, h = cfg_.hidden;
  h0_ = Tensor(n, h);
  matmul_wt(g.features,
            std::span<const float>(params_).subspan(w_in_off_,
                                                    h * in_features_),
            h, h0_);
  for (auto& v : h0_.flat()) v = std::max(v, 0.0f);

  const Tensor* cur = &h0_;
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    const float a = cfg_.alpha, b = beta(l);
    p_[l] = Tensor(n, h);
    spmm(g.norm_adj, *cur, p_[l]);
    for (std::size_t i = 0; i < n * h; ++i) {
      p_[l].flat()[i] = (1.0f - a) * p_[l].flat()[i] + a * h0_.flat()[i];
    }
    // M = (1-b) I + b W : pre = (1-b) P + b (P W^T).
    pre_[l] = Tensor(n, h);
    matmul_wt(p_[l],
              std::span<const float>(params_).subspan(w_off_[l], h * h), h,
              pre_[l]);
    for (std::size_t i = 0; i < n * h; ++i) {
      pre_[l].flat()[i] = (1.0f - b) * p_[l].flat()[i] +
                          b * pre_[l].flat()[i];
    }
    h_[l] = pre_[l];
    for (auto& v : h_[l].flat()) v = std::max(v, 0.0f);
    cur = &h_[l];
  }

  logits_ = Tensor(n, n_classes_);
  matmul_wt(*cur,
            std::span<const float>(params_).subspan(w_out_off_,
                                                    n_classes_ * h),
            n_classes_, logits_);
  return logits_;
}

float Gcnii::backward(const SyntheticGraph& g) {
  std::fill(grads_.begin(), grads_.end(), 0.0f);
  const std::size_t n = g.n_nodes, h = cfg_.hidden, c = n_classes_;

  std::size_t n_train = 0;
  for (const bool m : g.train_mask) n_train += m ? 1 : 0;
  const double inv = n_train > 0 ? 1.0 / static_cast<double>(n_train) : 0.0;

  // Softmax CE over train nodes only.
  Tensor dlogits(n, c);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!g.train_mask[i]) continue;
    float mx = logits_.at(i, 0);
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, logits_.at(i, j));
    double z = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      z += std::exp(static_cast<double>(logits_.at(i, j) - mx));
    }
    for (std::size_t j = 0; j < c; ++j) {
      const double pr = std::exp(static_cast<double>(logits_.at(i, j) - mx)) / z;
      dlogits.at(i, j) =
          static_cast<float>((pr - (j == g.labels[i] ? 1.0 : 0.0)) * inv);
      if (j == g.labels[i]) loss -= std::log(std::max(pr, 1e-12)) * inv;
    }
  }

  // Readout: logits = H_L W_out^T.
  const Tensor& hl = cfg_.n_layers > 0 ? h_.back() : h0_;
  Tensor dh(n, h);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const float gj = dlogits.at(i, j);
      if (gj == 0.0f) continue;
      for (std::size_t e = 0; e < h; ++e) {
        grads_[w_out_off_ + j * h + e] += gj * hl.at(i, e);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < h; ++e) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < c; ++j) {
        acc += dlogits.at(i, j) * params_[w_out_off_ + j * h + e];
      }
      dh.at(i, e) = acc;
    }
  }

  // Layers in reverse. dH0 accumulates the initial-residual contributions.
  Tensor dh0(n, h);
  Tensor dp(n, h), dpre(n, h), tmp(n, h);
  for (std::size_t l = cfg_.n_layers; l-- > 0;) {
    const float a = cfg_.alpha, b = beta(l);
    // ReLU.
    for (std::size_t i = 0; i < n * h; ++i) {
      dpre.flat()[i] = pre_[l].flat()[i] > 0.0f ? dh.flat()[i] : 0.0f;
    }
    // pre = (1-b) P + b P W^T.
    // dW[j,e] += b * sum_i dpre[i,j] P[i,e].
    for (std::size_t j = 0; j < h; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const float gj = b * dpre.at(i, j);
        if (gj == 0.0f) continue;
        for (std::size_t e = 0; e < h; ++e) {
          grads_[w_off_[l] + j * h + e] += gj * p_[l].at(i, e);
        }
      }
    }
    // dP = (1-b) dpre + b dpre W.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = 0; e < h; ++e) {
        float acc = (1.0f - b) * dpre.at(i, e);
        for (std::size_t j = 0; j < h; ++j) {
          acc += b * dpre.at(i, j) * params_[w_off_[l] + j * h + e];
        }
        dp.at(i, e) = acc;
      }
    }
    // P = (1-a) A_hat H_prev + a H0 ; A_hat symmetric.
    spmm(g.norm_adj, dp, tmp);
    for (std::size_t i = 0; i < n * h; ++i) {
      dh.flat()[i] = (1.0f - a) * tmp.flat()[i];
      dh0.flat()[i] += a * dp.flat()[i];
    }
  }
  // dh now holds the gradient w.r.t. H0 via the layer chain; add the
  // accumulated initial-residual term.
  for (std::size_t i = 0; i < n * h; ++i) dh.flat()[i] += dh0.flat()[i];

  // H0 = relu(X W_in^T).
  for (std::size_t i = 0; i < n * h; ++i) {
    if (h0_.flat()[i] <= 0.0f) dh.flat()[i] = 0.0f;
  }
  for (std::size_t j = 0; j < h; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const float gj = dh.at(i, j);
      if (gj == 0.0f) continue;
      for (std::size_t e = 0; e < in_features_; ++e) {
        grads_[w_in_off_ + j * in_features_ + e] += gj * g.features.at(i, e);
      }
    }
  }
  return static_cast<float>(loss);
}

float Gcnii::accuracy(const SyntheticGraph& g, bool on_train_mask) const {
  std::size_t total = 0, correct = 0;
  for (std::size_t i = 0; i < g.n_nodes; ++i) {
    if (g.train_mask[i] != on_train_mask) continue;
    ++total;
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < n_classes_; ++j) {
      if (logits_.at(i, j) > logits_.at(i, argmax)) argmax = j;
    }
    if (argmax == g.labels[i]) ++correct;
  }
  return total == 0 ? 0.0f
                    : static_cast<float>(correct) / static_cast<float>(total);
}

float train_gcnii_accuracy(const GraphConfig& gcfg, const GcniiConfig& mcfg,
                           std::size_t steps, float lr) {
  const auto graph = make_synthetic_graph(gcfg);
  Gcnii net(mcfg, graph.n_features, graph.n_classes);
  AdamConfig acfg;
  acfg.lr = lr;
  Adam adam(net.n_params(), acfg);
  std::vector<float> clipped(net.n_params());
  for (std::size_t s = 0; s < steps; ++s) {
    net.forward(graph);
    net.backward(graph);
    clipped.assign(net.grads().begin(), net.grads().end());
    adam.clip_gradients(clipped);
    adam.step(net.params(), clipped);
  }
  net.forward(graph);
  return net.accuracy(graph, /*on_train_mask=*/false);
}

}  // namespace teco::dl
