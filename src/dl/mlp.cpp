#include "dl/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace teco::dl {

Mlp::Mlp(MlpConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.layer_sizes.size() < 2) {
    throw std::invalid_argument("MLP needs at least input and output sizes");
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < cfg_.layer_sizes.size(); ++l) {
    const std::size_t in = cfg_.layer_sizes[l];
    const std::size_t out = cfg_.layer_sizes[l + 1];
    layers_.push_back(LayerView{total, total + in * out, in, out});
    total += in * out + out;
  }
  params_.resize(total);
  grads_.resize(total, 0.0f);

  sim::Rng rng(cfg_.seed);
  for (const auto& l : layers_) {
    // Xavier-style scale keeps tanh activations in range at init.
    const float scale =
        cfg_.init_stddev / std::sqrt(static_cast<float>(l.in));
    for (std::size_t i = 0; i < l.in * l.out; ++i) {
      params_[l.w_off + i] = static_cast<float>(rng.next_gaussian()) * scale;
    }
    for (std::size_t i = 0; i < l.out; ++i) params_[l.b_off + i] = 0.0f;
  }
  pre_act_.resize(layers_.size());
  post_act_.resize(layers_.size());
}

const Tensor& Mlp::forward(const Tensor& x) {
  input_ = x;
  const Tensor* cur = &input_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& lv = layers_[l];
    pre_act_[l] = Tensor(cur->rows(), lv.out);
    linear_forward(*cur,
                   std::span<const float>(params_).subspan(lv.w_off,
                                                           lv.in * lv.out),
                   std::span<const float>(params_).subspan(lv.b_off, lv.out),
                   pre_act_[l]);
    post_act_[l] = pre_act_[l];
    if (l + 1 < layers_.size()) {
      for (auto& v : post_act_[l].flat()) v = std::tanh(v);
    }
    cur = &post_act_[l];
  }
  return post_act_.back();
}

float Mlp::backward(const Tensor& targets) {
  std::fill(grads_.begin(), grads_.end(), 0.0f);
  const Tensor& out = post_act_.back();
  const std::size_t b = out.rows(), n = out.cols();
  Tensor dout(b, n);
  double loss = 0.0;

  if (cfg_.output == OutputKind::kRegression) {
    assert(targets.rows() == b && targets.cols() == n);
    const double inv = 1.0 / static_cast<double>(b * n);
    for (std::size_t i = 0; i < b; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const float d = out.at(i, j) - targets.at(i, j);
        loss += static_cast<double>(d) * d * inv;
        dout.at(i, j) = static_cast<float>(2.0 * inv) * d;
      }
    }
  } else {
    assert(targets.rows() == b && targets.cols() == 1);
    const double invb = 1.0 / static_cast<double>(b);
    for (std::size_t i = 0; i < b; ++i) {
      // Numerically stable softmax.
      float mx = out.at(i, 0);
      for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, out.at(i, j));
      double z = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        z += std::exp(static_cast<double>(out.at(i, j) - mx));
      }
      const auto label = static_cast<std::size_t>(targets.at(i, 0));
      assert(label < n);
      for (std::size_t j = 0; j < n; ++j) {
        const double p =
            std::exp(static_cast<double>(out.at(i, j) - mx)) / z;
        dout.at(i, j) =
            static_cast<float>((p - (j == label ? 1.0 : 0.0)) * invb);
        if (j == label) loss -= std::log(std::max(p, 1e-12)) * invb;
      }
    }
  }

  // Backprop through the stack.
  Tensor grad = dout;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& lv = layers_[li];
    const Tensor& act_in = li == 0 ? input_ : post_act_[li - 1];
    Tensor dx(act_in.rows(), lv.in);
    linear_backward(act_in,
                    std::span<const float>(params_).subspan(lv.w_off,
                                                            lv.in * lv.out),
                    grad,
                    std::span<float>(grads_).subspan(lv.w_off, lv.in * lv.out),
                    std::span<float>(grads_).subspan(lv.b_off, lv.out), dx);
    if (li > 0) {
      // dtanh(z) = 1 - tanh(z)^2, and post_act_ caches tanh(z).
      const Tensor& a = post_act_[li - 1];
      for (std::size_t i = 0; i < dx.rows(); ++i) {
        for (std::size_t k = 0; k < dx.cols(); ++k) {
          const float t = a.at(i, k);
          dx.at(i, k) *= 1.0f - t * t;
        }
      }
    }
    grad = std::move(dx);
  }
  return static_cast<float>(loss);
}

float Mlp::accuracy(const Tensor& targets) const {
  const Tensor& out = post_act_.back();
  if (cfg_.output != OutputKind::kClassification || out.rows() == 0) {
    return 0.0f;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < out.cols(); ++j) {
      if (out.at(i, j) > out.at(i, argmax)) argmax = j;
    }
    if (argmax == static_cast<std::size_t>(targets.at(i, 0))) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(out.rows());
}

void Mlp::load_params(std::span<const float> p) {
  if (p.size() != params_.size()) {
    throw std::invalid_argument("parameter size mismatch");
  }
  std::copy(p.begin(), p.end(), params_.begin());
}

}  // namespace teco::dl
