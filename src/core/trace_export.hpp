// Chrome trace_event JSON export — the unified trace composer.
//
// Emits the JSON Array Format the Chrome tracing ecosystem consumes
// (chrome://tracing, https://ui.perfetto.dev). ChromeTraceComposer splices
// three kinds of content into ONE file per run:
//
//   * GanttChart lanes      — complete ("X") duration events per lane row,
//   * obs::TraceBuffer spans — the telemetry layer's step/fence/tier spans,
//   * counter tracks        — "C" events rendering as area charts.
//
// Each add_* call lands under a process row ("pid") so several charts can
// coexist in one viewer session. Times are exported in microseconds, the
// format's native unit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gantt.hpp"
#include "obs/causal.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"

namespace teco::core {

/// A named counter track (e.g. "HBM bytes" over the step).
struct CounterSeries {
  std::string name;
  std::vector<std::pair<sim::Time, std::uint64_t>> points;
};

class ChromeTraceComposer {
 public:
  /// Add every lane of `g` as threads of process `pid` (named
  /// `process_name`). Repeated pids reuse the existing process row.
  void add_gantt(const GanttChart& g, const std::string& process_name,
                 int pid = 1);

  /// Add the telemetry spans: one thread per distinct lane, events named
  /// by SpanEvent::name.
  void add_spans(const obs::TraceBuffer& buf,
                 const std::string& process_name, int pid = 2);

  /// Add one "C" counter track per series under process `pid`.
  void add_counters(const std::vector<CounterSeries>& counters, int pid = 1);

  /// Add an extracted critical path (obs::causal::critical_path): one "X"
  /// slice per path segment on a per-category lane, plus Perfetto flow
  /// arrows ("s"/"f" with bp:"e") splicing consecutive segments so the
  /// viewer draws the path hopping across category rows. Idle gap-fill
  /// segments render as slices but do not carry arrows.
  void add_critical_path(const obs::causal::Attribution& a,
                         const std::string& process_name, int pid = 3);

  std::size_t events() const { return events_.size(); }

  /// The composed trace_event JSON array.
  std::string json() const;

  /// Write json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  /// Thread id for (pid, lane), allocating metadata on first sight.
  std::size_t lane_tid(int pid, const std::string& lane);
  void name_process(int pid, const std::string& name);

  std::vector<std::string> events_;  ///< Pre-rendered JSON objects.
  std::vector<std::pair<int, std::string>> lanes_;  ///< (pid, lane) -> tid.
  std::vector<int> named_pids_;
  std::uint64_t next_flow_id_ = 1;  ///< Shared id per "s"/"f" arrow pair.
};

/// One-chart convenience used by the existing examples/benches: `g` (plus
/// optional counters) as a standalone trace. Kept as a thin wrapper over
/// ChromeTraceComposer.
std::string to_chrome_trace_json(const GanttChart& g,
                                 const std::string& process_name,
                                 const std::vector<CounterSeries>& counters =
                                     {},
                                 int pid = 1);

}  // namespace teco::core
