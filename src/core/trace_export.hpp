// Chrome trace_event JSON export of a GanttChart.
//
// Emits the JSON Array Format the Chrome tracing ecosystem consumes
// (chrome://tracing, https://ui.perfetto.dev): each Gantt lane becomes a
// named "thread" carrying complete ("X") duration events, and optional
// counter series — the per-tier occupancy curves — become "C" events that
// render as area charts. Times are exported in microseconds, the format's
// native unit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gantt.hpp"
#include "sim/time.hpp"

namespace teco::core {

/// A named counter track (e.g. "HBM bytes" over the step).
struct CounterSeries {
  std::string name;
  std::vector<std::pair<sim::Time, std::uint64_t>> points;
};

/// Serialize `g` (plus optional counters) as a Chrome trace_event JSON
/// array. `process_name` labels the process row in the viewer. Give each
/// chart its own `pid` when splicing several exports into one file.
std::string to_chrome_trace_json(const GanttChart& g,
                                 const std::string& process_name,
                                 const std::vector<CounterSeries>& counters =
                                     {},
                                 int pid = 1);

}  // namespace teco::core
