// Textual Gantt charts of a training step's timeline.
//
// Renders the overlap structure the paper's figures describe — GPU
// compute, CPU optimizer, and the two link directions — as fixed-width
// lanes, so `bert_finetune` can *show* why TECO hides what ZeRO-Offload
// exposes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dl/model_zoo.hpp"
#include "offload/activation_timeline.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"
#include "sim/time.hpp"

namespace teco::core {

class GanttChart {
 public:
  struct Span {
    std::string lane;
    char glyph;
    sim::Time start, end;
  };

  void add(std::string lane, char glyph, sim::Time start, sim::Time end);

  /// Add a per-tier occupancy lane from a byte step function: each segment
  /// renders as a digit 0-9, the occupancy as a fraction of `capacity` (a
  /// poor man's area chart; the trace exporter emits the raw counters).
  void add_occupancy(const std::string& lane,
                     const std::vector<std::pair<sim::Time, std::uint64_t>>&
                         points,
                     std::uint64_t capacity, sim::Time t_end);

  /// Render all lanes over [0, max_end] scaled to `width` columns.
  std::string render(std::size_t width = 72) const;

  sim::Time span_end() const { return max_end_; }
  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::vector<Span> spans_;
  std::vector<std::string> lane_order_;
  sim::Time max_end_ = 0.0;
};

/// Build the Gantt chart of one training step under `kind`, reconstructed
/// from the same phase schedule the timeline simulator uses.
GanttChart step_gantt(offload::RuntimeKind kind, const dl::ModelConfig& m,
                      std::uint32_t batch, const offload::Calibration& cal);

/// Gantt of one tiered-activation step: compute slots, fetch stalls,
/// migration traffic per link direction, and a per-tier occupancy lane.
GanttChart activation_gantt(const offload::ActivationStepReport& r,
                            std::uint64_t hbm_capacity,
                            std::uint64_t giant_cache_capacity);

}  // namespace teco::core
