// Textual Gantt charts of a training step's timeline.
//
// Renders the overlap structure the paper's figures describe — GPU
// compute, CPU optimizer, and the two link directions — as fixed-width
// lanes, so `bert_finetune` can *show* why TECO hides what ZeRO-Offload
// exposes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"
#include "sim/time.hpp"

namespace teco::core {

class GanttChart {
 public:
  void add(std::string lane, char glyph, sim::Time start, sim::Time end);

  /// Render all lanes over [0, max_end] scaled to `width` columns.
  std::string render(std::size_t width = 72) const;

  sim::Time span_end() const { return max_end_; }

 private:
  struct Span {
    std::string lane;
    char glyph;
    sim::Time start, end;
  };
  std::vector<Span> spans_;
  std::vector<std::string> lane_order_;
  sim::Time max_end_ = 0.0;
};

/// Build the Gantt chart of one training step under `kind`, reconstructed
/// from the same phase schedule the timeline simulator uses.
GanttChart step_gantt(offload::RuntimeKind kind, const dl::ModelConfig& m,
                      std::uint32_t batch, const offload::Calibration& cal);

}  // namespace teco::core
