#include "core/autotune.hpp"

#include <cmath>

#include "offload/experiments.hpp"

namespace teco::core {

AutotuneResult tune_act_aft_steps(const dl::Task& task,
                                  const AutotuneConfig& cfg) {
  // Reference run: exact training (no DBA) for the quality baseline, and
  // the ZeRO-Offload schedule for the speed baseline.
  auto exact_cfg = cfg.train;
  exact_cfg.dba_enabled = false;
  exact_cfg.record_every = 0;
  const auto exact = dl::run_training(task, exact_cfg);
  const auto& cal = offload::default_calibration();
  const double base_time = offload::schedule_training_time(
      offload::RuntimeKind::kZeroOffload, cfg.perf_model, cfg.batch,
      cfg.train.steps, 0, cal);

  AutotuneResult result;
  double best_speedup = 0.0, best_delta = 0.0;

  auto objective = [&](double act_d) {
    const auto act = static_cast<std::size_t>(std::llround(act_d));
    auto run_cfg = cfg.train;
    run_cfg.dba_enabled = true;
    run_cfg.act_aft_steps = act;
    run_cfg.record_every = 0;
    const auto run = dl::run_training(task, run_cfg);
    const double delta =
        std::abs(static_cast<double>(run.final_metric) - exact.final_metric);
    const double time = offload::schedule_training_time(
        offload::RuntimeKind::kTecoReduction, cfg.perf_model, cfg.batch,
        cfg.train.steps, act, cal);
    const double speedup = base_time / time;
    const double score =
        speedup -
        cfg.penalty_weight * std::max(0.0, delta - cfg.metric_tolerance);
    ++result.evaluations;
    if (score > result.best_score || result.evaluations == 1) {
      result.best_score = score;
      result.best_act_aft_steps = act;
      best_speedup = speedup;
      best_delta = delta;
    }
    return score;
  };

  sim::BayesOpt1D bo(0.0, static_cast<double>(cfg.train.steps), cfg.bo);
  bo.maximize(objective);
  result.speedup_at_best = best_speedup;
  result.metric_delta_at_best = best_delta;
  return result;
}

}  // namespace teco::core
