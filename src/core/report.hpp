// Fixed-width text tables, so benches print paper-style rows.
#pragma once

#include <string>
#include <vector>

#include "obs/snapshot.hpp"

namespace teco::core {

class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols);
  void add_row(std::vector<std::string> cols);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  static std::string ms(double seconds, int precision = 1);
  static std::string mib(double bytes, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The human step log: obs::snapshot_rows wrapped in a TextTable, titled
/// "step N [t_begin_us, t_end_us]". This is what obs_step_log=on prints.
std::string step_snapshot_table(const obs::StepSnapshot& snap);

}  // namespace teco::core
