#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace teco::core {

void TextTable::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::add_row(std::vector<std::string> cols) {
  rows_.push_back(std::move(cols));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << "| " << cell << std::string(widths[i] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (const auto w : widths) os << "|" << std::string(w + 2, '-');
    os << "|\n";
  };
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  return os.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::ms(double seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fms", precision, seconds * 1e3);
  return buf;
}

std::string TextTable::mib(double bytes, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fMiB", precision,
                bytes / (1024.0 * 1024.0));
  return buf;
}

std::string step_snapshot_table(const obs::StepSnapshot& snap) {
  char title[96];
  std::snprintf(title, sizeof title, "step %zu  [%.1f us, %.1f us]",
                snap.step, snap.t_begin * 1e6, snap.t_end * 1e6);
  TextTable t(title);
  t.set_header({"metric", "delta", "total"});
  for (auto& row : obs::snapshot_rows(snap)) {
    t.add_row({std::move(row[0]), std::move(row[1]), std::move(row[2])});
  }
  return t.to_string();
}

}  // namespace teco::core
