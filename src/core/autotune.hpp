// act_aft_steps autotuner (Section V-A: "act_aft_steps can be tuned using
// the Bayesian optimization").
//
// Objective: maximize end-to-end speedup subject to a bounded quality
// penalty. Each evaluation runs REAL training with the candidate
// activation step (the quality term) and the timeline model for the same
// schedule (the speed term), scalarized as
//     score(act) = speedup(act) - penalty_weight * max(0, |dMetric| - tol).
#pragma once

#include <cstdint>

#include "dl/dba_training.hpp"
#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "sim/bayesopt.hpp"

namespace teco::core {

struct AutotuneConfig {
  dl::TrainRunConfig train;            ///< Base run (dba fields overridden).
  dl::ModelConfig perf_model;          ///< Timeline model for the speed term.
  std::uint32_t batch = 4;
  double metric_tolerance = 0.02;      ///< Allowed |metric delta|.
  double penalty_weight = 50.0;
  sim::BayesOptConfig bo{};
};

struct AutotuneResult {
  std::size_t best_act_aft_steps = 0;
  double best_score = 0.0;
  double speedup_at_best = 0.0;
  double metric_delta_at_best = 0.0;
  std::size_t evaluations = 0;
};

/// Tune act_aft_steps in [0, train.steps] for the given task.
AutotuneResult tune_act_aft_steps(const dl::Task& task,
                                  const AutotuneConfig& cfg);

}  // namespace teco::core
