// Shard-affinity annotations: compile-time enforcement of the single-owner
// discipline the sharded engine will depend on.
//
// The ROADMAP's sharded-engine refactor partitions the address space across
// N home-agent shards, each with its own sim::EventQueue; correctness then
// rests on a structural rule: *mutable domain state belongs to exactly one
// shard and is only ever touched by code running on that shard*. Cross-shard
// effects must travel through event channels (messages scheduled on the
// owning shard's queue), never through direct field access.
//
// These macros map that rule onto Clang's thread-safety analysis
// (-Wthread-safety): every component that will become shard-local declares a
// ShardCapability member and marks its mutable state TECO_SHARD_AFFINE on
// it. Member functions establish the capability with shard_.assert_held()
// at entry (a no-op at runtime today — the tree is single-threaded — but an
// ASSERT_CAPABILITY fact for the analyzer), and private helpers carry
// TECO_REQUIRES so the analyzer verifies the whole call graph. Any future
// code path that reaches guarded state without routing through the owning
// component's API fails the TECO_THREAD_SAFETY=ON build.
//
// On non-Clang compilers every macro expands to nothing, so GCC builds are
// untouched. docs/STATIC_ANALYSIS.md is the annotation guide; the
// teco-lint tool (tools/lint/) is the dynamic-hazard companion.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TECO_TSA_(x) __attribute__((x))
#endif
#endif
#ifndef TECO_TSA_
#define TECO_TSA_(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable-like token).
#define TECO_CAPABILITY(name) TECO_TSA_(capability(name))

/// Field annotation: reads/writes require the given capability.
#define TECO_GUARDED_BY(cap) TECO_TSA_(guarded_by(cap))

/// Pointer/reference field annotation: the pointee is guarded.
#define TECO_PT_GUARDED_BY(cap) TECO_TSA_(pt_guarded_by(cap))

/// Function annotation: the caller must hold the capability.
#define TECO_REQUIRES(...) TECO_TSA_(requires_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define TECO_ACQUIRE(...) TECO_TSA_(acquire_capability(__VA_ARGS__))
#define TECO_RELEASE(...) TECO_TSA_(release_capability(__VA_ARGS__))

/// Function asserts (without blocking) that the capability is held.
#define TECO_ASSERT_CAPABILITY(...) TECO_TSA_(assert_capability(__VA_ARGS__))

/// Escape hatch for functions deliberately outside the analysis.
#define TECO_NO_THREAD_SAFETY_ANALYSIS TECO_TSA_(no_thread_safety_analysis)

/// Domain-state marker: this field is owned by one shard and may only be
/// touched while that shard's capability is held. Alias of TECO_GUARDED_BY
/// today; kept distinct so shard-owned state is greppable and so the
/// sharded-engine PR can tighten it (e.g. add an acquired_before ordering)
/// without re-annotating every field.
#define TECO_SHARD_AFFINE(cap) TECO_GUARDED_BY(cap)

/// Queue-context marker: this class owns (or drives the run loop of) a
/// sim::EventQueue, making it the root of one future shard's event domain.
/// Place it in the class body, naming the queue member it anchors:
///
///   class ServeScheduler {
///     ...
///     sim::EventQueue q_;
///     TECO_QUEUE_CONTEXT(q_);
///   };
///
/// Compile-time it is inert (a satisfied static_assert so the trailing
/// semicolon is well-formed at class scope); teco-lint's whole-src pass
/// reads it as a declaration: every queue lambda reachable from this class
/// belongs to this context, and the cross-shard rule proves that no
/// shard-affine class is reachable from two contexts except through
/// cxl::event_channel message passing (see docs/STATIC_ANALYSIS.md).
#define TECO_QUEUE_CONTEXT(queue_member) \
  static_assert(true, "teco-lint queue-context marker")

namespace teco::core {

/// The per-shard execution capability. One instance lives inside each
/// component that will become shard-local (HomeAgent, SnoopFilter, caches,
/// backing stores, DBA units, EventQueue). Today the engine is
/// single-threaded, so holding the capability is a static fiction that
/// assert_held() establishes for free; the sharded engine will make
/// enter()/exit() real (pinning the shard's worker thread) while every
/// annotation below stays as-is.
class TECO_CAPABILITY("shard") ShardCapability {
 public:
  /// Establish the capability for the analyzer. Runtime no-op; the sharded
  /// engine will turn this into an owning-thread check.
  void assert_held() const TECO_ASSERT_CAPABILITY() {}

  /// Explicit scope entry/exit, for the future shard worker loop.
  void enter() const TECO_ACQUIRE() {}
  void exit() const TECO_RELEASE() {}
};

}  // namespace teco::core
