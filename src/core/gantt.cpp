#include "core/gantt.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

#include "offload/step_model.hpp"

namespace teco::core {

void GanttChart::add(std::string lane, char glyph, sim::Time start,
                     sim::Time end) {
  if (end < start) std::swap(start, end);
  max_end_ = std::max(max_end_, end);
  if (std::find(lane_order_.begin(), lane_order_.end(), lane) ==
      lane_order_.end()) {
    lane_order_.push_back(lane);
  }
  spans_.push_back(Span{std::move(lane), glyph, start, end});
}

void GanttChart::add_occupancy(
    const std::string& lane,
    const std::vector<std::pair<sim::Time, std::uint64_t>>& points,
    std::uint64_t capacity, sim::Time t_end) {
  if (points.empty() || capacity == 0) return;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const sim::Time start = points[i].first;
    const sim::Time end =
        i + 1 < points.size() ? points[i + 1].first : t_end;
    if (end <= start) continue;
    const std::uint64_t level =
        std::min<std::uint64_t>(9, points[i].second * 10 / capacity);
    add(lane, static_cast<char>('0' + level), start, end);
  }
}

std::string GanttChart::render(std::size_t width) const {
  std::ostringstream os;
  if (max_end_ <= 0.0 || width == 0) return {};
  std::size_t name_width = 0;
  for (const auto& l : lane_order_) name_width = std::max(name_width, l.size());

  for (const auto& lane : lane_order_) {
    std::string row(width, '.');
    char glyph_for_legend = ' ';
    for (const auto& s : spans_) {
      if (s.lane != lane) continue;
      glyph_for_legend = s.glyph;
      auto col = [&](sim::Time t) {
        return std::min(
            width - 1,
            static_cast<std::size_t>(t / max_end_ *
                                     static_cast<double>(width)));
      };
      const std::size_t a = col(s.start);
      const std::size_t b = std::max(col(s.end), a);
      for (std::size_t c = a; c <= b; ++c) row[c] = s.glyph;
    }
    (void)glyph_for_legend;
    os << lane << std::string(name_width - lane.size(), ' ') << " |" << row
       << "|\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f ms", max_end_ * 1e3);
  os << std::string(name_width, ' ') << " 0" << std::string(width - 1, '-')
     << "> " << buf << "\n";
  return os.str();
}

GanttChart step_gantt(offload::RuntimeKind kind, const dl::ModelConfig& m,
                      std::uint32_t batch, const offload::Calibration& cal) {
  using offload::RuntimeKind;
  const auto in = offload::compute_step_inputs(m, batch, cal);
  const auto s = offload::simulate_step(kind, m, batch, cal);

  GanttChart g;
  const sim::Time fwd_end = in.forward;
  const sim::Time bwd_end = in.forward + in.backward;
  g.add("GPU fwd", 'F', 0.0, fwd_end);
  g.add("GPU bwd", 'B', fwd_end, bwd_end);

  // Gradient transfer occupies the up-link from early backward until its
  // exposure past bwd_end (TECO) or trails the buffer flushes (baseline).
  const sim::Time grads_done = bwd_end + s.grad_transfer_exposed;
  const bool teco = kind == RuntimeKind::kTecoCxl ||
                    kind == RuntimeKind::kTecoReduction;
  const sim::Time grad_xfer_start =
      kind == RuntimeKind::kCxlInvalidation
          ? bwd_end
          : (teco ? fwd_end
                  : fwd_end + in.backward *
                                  static_cast<double>(in.grad_buffer_bytes) /
                                  static_cast<double>(in.grad_bytes));
  g.add("link up", '^', grad_xfer_start, grads_done);

  const sim::Time clip_end = grads_done + in.grad_clip;
  const sim::Time adam_end = clip_end + in.adam;
  g.add("CPU clip", 'c', grads_done, clip_end);
  g.add("CPU adam", 'A', clip_end, adam_end);

  const sim::Time params_done = adam_end + s.param_transfer_exposed;
  const sim::Time param_xfer_start =
      teco ? clip_end
           : (kind == RuntimeKind::kCxlInvalidation ? adam_end : adam_end);
  g.add("link down", 'v', param_xfer_start, params_done);
  return g;
}

GanttChart activation_gantt(const offload::ActivationStepReport& r,
                            std::uint64_t hbm_capacity,
                            std::uint64_t giant_cache_capacity) {
  GanttChart g;
  g.add("GPU fwd", 'F', 0.0, r.sched.forward_end);
  g.add("GPU bwd", 'B', r.sched.forward_end, r.sched.backward_end);
  for (const auto& [s, e] : r.sched.stalls) g.add("stall", '!', s, e);

  // Migration traffic, split by path: the two CXL directions share the
  // wire with the gradient/parameter streams; giant-cache copies do not.
  for (const auto& t : r.sched.transfers) {
    const bool gc = t.from == tier::Tier::kGiantCache ||
                    t.to == tier::Tier::kGiantCache;
    if (gc) {
      g.add("giant$ cp", 'g', t.start, t.end);
    } else if (t.to == tier::Tier::kHbm) {
      g.add("mig down", 'p', t.start, t.end);
    } else {
      g.add("mig up", 'e', t.start, t.end);
    }
  }

  const sim::Time bwd_end = r.sched.backward_end;
  const sim::Time grads_done = bwd_end + r.grad_transfer_exposed;
  g.add("link up", '^', r.sched.forward_end, grads_done);
  const sim::Time clip_end = grads_done + r.grad_optimizer;
  const sim::Time adam_end = clip_end + r.param_optimizer;
  g.add("CPU clip", 'c', grads_done, clip_end);
  g.add("CPU adam", 'A', clip_end, adam_end);
  g.add("link down", 'v', clip_end, adam_end + r.param_transfer_exposed);

  const sim::Time t_end = adam_end + r.param_transfer_exposed;
  const std::array<std::uint64_t, tier::kTierCount> caps = {
      hbm_capacity, giant_cache_capacity,
      r.profile.peak_live_bytes()};  // CXL lane scaled to the working set.
  for (std::size_t i = 0; i < tier::kTierCount; ++i) {
    g.add_occupancy(std::string("occ ") +
                        std::string(tier::to_string(
                            static_cast<tier::Tier>(i))),
                    r.sched.occupancy[i].points, caps[i], t_end);
  }
  return g;
}

}  // namespace teco::core
