// The user-facing TECO session (Section VI, Listing 1).
//
// A Session owns one CXL coherent domain: the link, the giant cache, the
// CPU cache model, backing stores for both memories, and the home agent.
// Its hooks mirror the two-line integration of Listing 1:
//
//   teco::core::Session session(cfg);
//   auto params = session.allocate_parameters("model", bytes);
//   for (step = 0; step < N; ++step) {
//     session.device_write_gradients(grads, values);  // inside backward
//     session.backward_complete();                    // CXLFENCE()
//     session.check_activation(step);                 // the Listing-1 call
//     session.cpu_write_parameters(params, updated);  // optimizer.step()
//     session.optimizer_step_complete();              // CXLFENCE() + flush
//   }
//
// Real bytes move through the Aggregator/Disaggregator, so what
// device_read_parameters() returns includes DBA's low-byte splice — the
// same approximation the numeric experiments measure.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/giant_cache.hpp"
#include "coherence/home_agent.hpp"
#include "cxl/link.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "sim/trace.hpp"

namespace teco::core {

struct SessionConfig {
  coherence::Protocol protocol = coherence::Protocol::kUpdate;
  bool dba_enabled = true;
  std::size_t act_aft_steps = 500;  ///< Default per Section V-A.
  std::uint8_t dirty_bytes = 2;
  std::uint64_t giant_cache_capacity = 4ull << 30;
  cxl::PhyConfig phy{};
  bool enable_trace = false;
  /// Coherence invariant checking posture. Strict (throw on violation) by
  /// default: the simulated protocol is supposed to be violation-free, so
  /// any firing is a bug in the model, not the workload. Benchmarks that
  /// cannot afford the byte comparisons can drop to kCount or kOff.
  check::CheckLevel check = check::CheckLevel::kStrict;
};

class Session {
 public:
  explicit Session(SessionConfig cfg = {});

  /// Map a parameter tensor into the giant cache (DBA-eligible). The
  /// device starts with a copy (state E), as before training begins.
  mem::Addr allocate_parameters(const std::string& name, std::uint64_t bytes);
  /// Map a gradient tensor (never DBA-trimmed).
  mem::Addr allocate_gradients(const std::string& name, std::uint64_t bytes);

  // --- Training-step hooks (Listing 1) ---

  /// The accelerator produces gradient values during backward; each
  /// affected cache line rides the update protocol to CPU memory.
  void device_write_gradients(mem::Addr base, std::span<const float> values);

  /// CXLFENCE() at the end of loss.backward().
  sim::Time backward_complete();

  /// check_activation(i): turns DBA on once `step` reaches act_aft_steps.
  /// Returns true if DBA is active for the upcoming parameter transfer.
  bool check_activation(std::size_t step);

  /// The CPU optimizer writes updated parameters; each line is pushed to
  /// the giant cache (trimmed by the Aggregator when DBA is active).
  void cpu_write_parameters(mem::Addr base, std::span<const float> values);

  /// CXLFENCE() + once-per-iteration CPU cache flush at the end of
  /// optimizer.step().
  sim::Time optimizer_step_complete();

  // --- Data access (coherent loads) ---

  /// Accelerator load of parameters. Under the update protocol this hits
  /// the giant cache locally (post-merge contents); under invalidation it
  /// demand-fetches stale lines across the link, advancing now().
  std::vector<float> device_read_parameters(mem::Addr base,
                                            std::size_t count);
  /// CPU load of gradients; symmetric semantics.
  std::vector<float> cpu_read_gradients(mem::Addr base, std::size_t count);

  // --- Introspection ---
  sim::Time now() const { return now_; }
  bool dba_active() const { return dba_active_; }
  const coherence::HomeAgentStats& stats() const { return agent_->stats(); }
  const cxl::Link& link() const { return *link_; }
  const coherence::GiantCache& giant_cache() const { return *gc_; }
  const sim::Trace& trace() const { return trace_; }
  const SessionConfig& config() const { return cfg_; }
  /// The attached invariant checker, or nullptr when check == kOff.
  const check::ProtocolChecker* checker() const { return checker_.get(); }

 private:
  SessionConfig cfg_;
  sim::Trace trace_;
  std::unique_ptr<cxl::Link> link_;
  std::unique_ptr<coherence::GiantCache> gc_;
  std::unique_ptr<mem::Cache> cpu_cache_;
  mem::BackingStore cpu_mem_;
  mem::BackingStore device_mem_;
  std::unique_ptr<coherence::HomeAgent> agent_;
  /// Declared after agent_ so destruction detaches before the agent dies.
  std::unique_ptr<check::ProtocolChecker> checker_;
  mem::Addr next_alloc_ = 0x1000'0000;  ///< Bump allocator, line-aligned.
  sim::Time now_ = 0.0;
  bool dba_active_ = false;
};

}  // namespace teco::core
