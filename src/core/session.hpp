// The user-facing TECO session (Section VI, Listing 1).
//
// A Session owns one CXL coherent domain: the link, the giant cache, the
// CPU cache model, backing stores for both memories, and the home agent.
// Its hooks mirror the two-line integration of Listing 1:
//
//   teco::core::Session session(cfg);
//   auto params = session.allocate_parameters("model", bytes);
//   for (step = 0; step < N; ++step) {
//     session.device_write_gradients(grads, values);  // inside backward
//     session.backward_complete();                    // CXLFENCE()
//     session.check_activation(step);                 // the Listing-1 call
//     session.cpu_write_parameters(params, updated);  // optimizer.step()
//     session.optimizer_step_complete();              // CXLFENCE() + flush
//   }
//
// Real bytes move through the Aggregator/Disaggregator, so what
// device_read_parameters() returns includes DBA's low-byte splice — the
// same approximation the numeric experiments measure.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/giant_cache.hpp"
#include "fabric/fabric.hpp"
#include "coherence/home_agent.hpp"
#include "cxl/link.hpp"
#include "mc/hb_analyzer.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "serve/serve.hpp"
#include "sim/trace.hpp"
#include "tier/placement_planner.hpp"

namespace teco::core {

/// Fault-tolerance checkpointing mode. The machinery lives in teco::ft
/// (src/ft/); the core config carries the knobs so the AI-model config
/// parser can round-trip them (ft_mode / ft_checkpoint_interval / ft_seed).
enum class FtMode : std::uint8_t {
  kOff,          ///< No checkpointing; a crash loses the run.
  kFull,         ///< Synchronous full-state snapshots every interval.
  kIncremental,  ///< Dirty-line snapshots riding the update-protocol stream.
};

std::string_view to_string(FtMode m);

struct SessionConfig {
  coherence::Protocol protocol = coherence::Protocol::kUpdate;
  bool dba_enabled = true;
  std::size_t act_aft_steps = 500;  ///< Default per Section V-A.
  std::uint8_t dirty_bytes = 2;
  std::uint64_t giant_cache_capacity = 4ull << 30;
  cxl::PhyConfig phy{};
  bool enable_trace = false;
  /// Coherence invariant checking posture. Strict (throw on violation) by
  /// default: the simulated protocol is supposed to be violation-free, so
  /// any firing is a bug in the model, not the workload. Benchmarks that
  /// cannot afford the byte comparisons can drop to kCount or kOff.
  check::CheckLevel check = check::CheckLevel::kStrict;
  /// Record the coherence-event stream for post-run happens-before race
  /// analysis (config text `check = hb`; implies strict checking). The
  /// recorded trace is analyzed via Session::analyze_hb() and, at session
  /// teardown, any detected race is reported on stderr.
  bool check_hb = false;

  // --- Fault tolerance (teco::ft) ---
  FtMode ft_mode = FtMode::kOff;
  /// Steps between durable checkpoints when ft_mode != kOff.
  std::size_t ft_checkpoint_interval = 100;
  /// Seed for the fault schedule and the Monte-Carlo retry path.
  std::uint64_t ft_seed = 1;
  /// When > 0, replace the analytic retry derate with the executable
  /// Monte-Carlo path: flit CRC corruption is sampled in the channel at
  /// this bit-error rate and corrupted flits are actually retransmitted.
  double mc_bit_error_rate = 0.0;

  /// End of the bump allocator's address space: a 48-bit physical window
  /// by default, as a real host bridge would decode. Exhaustion throws
  /// instead of silently wrapping into already-mapped regions.
  std::uint64_t addr_space_bytes = 1ull << 48;

  // --- Tensor tiering (teco::tier) ---
  /// Placement policy for weights + activations across HBM / giant cache /
  /// CXL DRAM. kAllHbm preserves the pre-tiering behavior (no migrations).
  tier::Policy tier_policy = tier::Policy::kAllHbm;
  /// Accelerator HBM capacity the planner fits into.
  std::uint64_t tier_hbm_bytes = 32ull << 30;
  /// Compute slots of lookahead the migration scheduler may prefetch.
  std::size_t tier_prefetch_depth = 2;

  // --- Inference serving (teco::serve) ---
  /// Arrival-process shape for the serving runtime (poisson/bursty/trace).
  serve::ArrivalKind serve_arrival = serve::ArrivalKind::kPoisson;
  /// Offered load in requests per second.
  double serve_rate = 32.0;
  /// Time-to-first-token SLO in milliseconds (the per-token budget derives
  /// from it; see serve::ServeConfig::effective_slo_tpot).
  double serve_slo_ms = 250.0;
  /// Admission capacity: concurrent sessions beyond this are rejected.
  std::size_t serve_sessions = 1024;

  // --- Pooled fabric (teco::fabric) ---
  /// Data-parallel nodes sharing the pooled-memory switch.
  std::uint32_t fabric_nodes = 2;
  /// DCD-carveable pooled-memory capacity behind the switch.
  std::uint64_t fabric_pool_bytes = 8ull << 20;
  /// Shared pool-port bandwidth per direction, GB/s.
  double fabric_port_gbps = 16.0;
  /// In-pool all-reduce strategy (dba_merge / pool_staging / per_link).
  fabric::ReduceStrategy fabric_reduce = fabric::ReduceStrategy::kDbaMerge;

  // --- Telemetry (teco::obs) ---
  /// When non-empty, one JSONL line of registry deltas per training step.
  std::string obs_jsonl_path;
  /// When non-empty, the unified Chrome/Perfetto trace (step + fence spans
  /// and counter tracks) is written here at session teardown.
  std::string obs_trace_path;
  /// Print a per-step TextTable of registry deltas to stdout.
  bool obs_step_log = false;
  /// Record the causal event DAG and per-step critical-path attribution
  /// (`obs.critpath.*` counters, Session::step_attribution()). A no-op
  /// under TECO_OBS=OFF builds.
  bool obs_causal = false;
  /// Causal-DAG node bound; nodes past it are dropped (and counted in
  /// the graph's dropped()), truncating — not corrupting — the path.
  std::size_t obs_causal_max_nodes = obs::causal::CausalGraph::kDefaultMaxNodes;
  /// TraceBuffer span cap; overflow is counted in obs.trace.dropped_spans.
  std::size_t obs_trace_max_spans = obs::TraceBuffer::kDefaultMaxSpans;
};

/// The tier::PlannerConfig a session's knobs describe (the giant-cache
/// share reuses giant_cache_capacity).
tier::PlannerConfig tier_planner_config(const SessionConfig& cfg);

/// The serve::ServeConfig a session's knobs describe: the serve_* keys map
/// directly, and the KV tiering reuses the session's tier_policy /
/// tier_prefetch_depth so one config file drives both timelines.
serve::ServeConfig serve_config(const SessionConfig& cfg);

/// The fabric::FabricConfig a session's knobs describe: the fabric_* keys
/// map directly; the node links reuse the session's PHY, DBA posture, and
/// checking level so one config file drives single-node and pooled runs.
fabric::FabricConfig fabric_config(const SessionConfig& cfg);

class Session {
 public:
  explicit Session(SessionConfig cfg = {});
  /// Flushes telemetry: writes the unified Chrome trace when
  /// obs_trace_path is configured.
  ~Session();

  /// Map a parameter tensor into the giant cache (DBA-eligible). The
  /// device starts with a copy (state E), as before training begins.
  mem::Addr allocate_parameters(const std::string& name, std::uint64_t bytes);
  /// Map a gradient tensor (never DBA-trimmed).
  mem::Addr allocate_gradients(const std::string& name, std::uint64_t bytes);

  // --- Training-step hooks (Listing 1) ---

  /// The accelerator produces gradient values during backward; each
  /// affected cache line rides the update protocol to CPU memory.
  void device_write_gradients(mem::Addr base, std::span<const float> values);

  /// CXLFENCE() at the end of loss.backward().
  sim::Time backward_complete();

  /// check_activation(i): turns DBA on once `step` reaches act_aft_steps.
  /// Returns true if DBA is active for the upcoming parameter transfer.
  bool check_activation(std::size_t step);

  /// The CPU optimizer writes updated parameters; each line is pushed to
  /// the giant cache (trimmed by the Aggregator when DBA is active).
  void cpu_write_parameters(mem::Addr base, std::span<const float> values);

  /// CXLFENCE() + once-per-iteration CPU cache flush at the end of
  /// optimizer.step().
  sim::Time optimizer_step_complete();

  // --- Data access (coherent loads) ---

  /// Accelerator load of parameters. Under the update protocol this hits
  /// the giant cache locally (post-merge contents); under invalidation it
  /// demand-fetches stale lines across the link, advancing now().
  std::vector<float> device_read_parameters(mem::Addr base,
                                            std::size_t count);
  /// CPU load of gradients; symmetric semantics.
  std::vector<float> cpu_read_gradients(mem::Addr base, std::size_t count);

  // --- Fault tolerance / recovery hooks (teco::ft) ---

  /// Advance the session clock by `dt` of non-link work (GPU compute, CPU
  /// optimizer sweeps, checkpoint fences). The ft training harness uses it
  /// so lost-work and restore times land in the same timeline as the
  /// coherence traffic.
  sim::Time advance(sim::Time dt);

  /// Attach an additional observer to the coherent domain (fault injector,
  /// checkpoint dirty-line tracker). The strict ProtocolChecker, when
  /// enabled, stays attached alongside. Observers must outlive the session
  /// or be removed first.
  void add_observer(check::Observer* obs);
  void remove_observer(check::Observer* obs);

  /// Attach a link fault-injection hook (nullptr to detach).
  void set_link_fault_hook(cxl::LinkFaultHook* hook);

  /// Recovery primitives: seed backing-store contents of a mapped region
  /// without generating protocol traffic (restoring a checkpoint image is
  /// a local pmem read, not coherent communication). Alignment follows the
  /// write_f32 layout used by the training hooks.
  void seed_device_memory(mem::Addr base, std::span<const float> values);
  void seed_cpu_memory(mem::Addr base, std::span<const float> values);

  /// Repair a device-side line from the CPU master image with a full-line
  /// coherent push. DBA is bypassed for the scrub — a trimmed payload
  /// cannot fix corrupted high bytes — and restored afterwards, so the
  /// repair stays visible to the protocol checker. Returns the fence time.
  sim::Time scrub_device_line(mem::Addr line);

  /// Direct line read of device memory (poison scrubbing / verification).
  mem::BackingStore::Line read_device_line(mem::Addr line) const {
    return device_mem_.read_line(line);
  }
  /// Overwrite one device-memory line (fault injection: poisoned lines).
  void corrupt_device_line(mem::Addr line, const mem::BackingStore::Line& data) {
    device_mem_.write_line(line, data);
  }

  // --- Introspection ---
  sim::Time now() const { return now_; }
  bool dba_active() const { return dba_active_; }
  const coherence::HomeAgentStats& stats() const { return agent_->stats(); }
  const cxl::Link& link() const { return *link_; }
  const coherence::GiantCache& giant_cache() const { return *gc_; }
  const sim::Trace& trace() const { return trace_; }
  const SessionConfig& config() const { return cfg_; }
  /// The attached invariant checker, or nullptr when check == kOff.
  const check::ProtocolChecker* checker() const { return checker_.get(); }
  /// The happens-before event recorder, or nullptr when check_hb is off.
  const mc::HbRecorder* hb_recorder() const { return hb_recorder_.get(); }
  /// Run the vector-clock happens-before pass over the recorded event
  /// stream (check_hb must be enabled). See docs/MODEL_CHECKING.md.
  mc::HbReport analyze_hb() const;

  /// The session-owned telemetry registry. Every coherent-domain component
  /// records into it; non-const so harnesses (ft trainer, benches) can
  /// register their own instruments alongside.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Step/fence spans on the simulated clock, for the unified trace.
  obs::TraceBuffer& spans() { return spans_; }
  const obs::TraceBuffer& spans() const { return spans_; }
  /// End-of-step snapshot fan-out; attach extra sinks before training.
  obs::StepPublisher& step_publisher() { return publisher_; }
  /// Steps completed (optimizer_step_complete() calls).
  std::size_t steps_completed() const { return step_index_; }

  /// The causal event DAG (null unless obs_causal is configured). Non-const
  /// so harnesses can splice their own chains onto the session's.
  obs::causal::CausalGraph* causal() { return causal_.get(); }
  const obs::causal::CausalGraph* causal() const { return causal_.get(); }
  /// Tail node of the session's causal chain (sim::kNoCausalNode before
  /// any tracked time advancement).
  std::uint32_t causal_tail() const { return causal_last_; }
  /// Critical-path attribution of the most recently completed step (empty
  /// segments before the first optimizer_step_complete()).
  const obs::causal::Attribution& step_attribution() const {
    return step_attr_;
  }

 private:
  /// Shared bump-allocator body: validates the request, maps the region.
  mem::Addr allocate_region(const std::string& name, std::uint64_t bytes,
                            bool dba_eligible);
  void rewire_observers();
  void setup_telemetry();
  /// Fence wrapper shared by the two step hooks: advances the clock and
  /// charges step.fence_drain_us / a fence span for the drained window.
  sim::Time fence(const char* label);
  /// Extend the causal chain with a node covering [from, now()]; no-op
  /// when causal tracking is off or the clock did not move.
  void causal_note(obs::causal::Category cat, sim::Time from);

  SessionConfig cfg_;
  sim::Trace trace_;
  std::unique_ptr<cxl::Link> link_;
  std::unique_ptr<coherence::GiantCache> gc_;
  std::unique_ptr<mem::Cache> cpu_cache_;
  mem::BackingStore cpu_mem_;
  mem::BackingStore device_mem_;
  std::unique_ptr<coherence::HomeAgent> agent_;
  /// Declared after agent_ so destruction detaches before the agent dies.
  std::unique_ptr<check::ProtocolChecker> checker_;
  /// Records the HB-relevant event stream when cfg_.check_hb is set;
  /// declared before observers_ so the mux never outlives it.
  std::unique_ptr<mc::HbRecorder> hb_recorder_;
  /// Fan-out for the checker plus any ft observers; wired as the domain's
  /// observer whenever it is non-empty.
  check::ObserverMux observers_;
  mem::Addr next_alloc_ = 0x1000'0000;  ///< Bump allocator, line-aligned.
  sim::Time now_ = 0.0;
  bool dba_active_ = false;

  // --- Telemetry (teco::obs) ---
  obs::MetricsRegistry metrics_;
  obs::TraceBuffer spans_;
  obs::StepPublisher publisher_;
  /// Owned sinks wired from the obs_* config keys (plus any the caller
  /// attaches directly through step_publisher()).
  std::unique_ptr<std::ofstream> jsonl_stream_;
  std::unique_ptr<obs::JsonlWriter> jsonl_sink_;
  std::unique_ptr<obs::StepSink> step_log_sink_;
  obs::Counter* m_step_total_ = nullptr;
  obs::Counter* m_step_overlap_ = nullptr;
  obs::Counter* m_step_fence_ = nullptr;
  obs::Counter* m_dropped_spans_ = nullptr;
  std::uint64_t dropped_spans_base_ = 0;
  /// Causal DAG + chain tail (obs_causal only). Every clock advancement
  /// appends a node, so a step's critical path partitions the step window.
  std::unique_ptr<obs::causal::CausalGraph> causal_;
  std::uint32_t causal_last_ = sim::kNoCausalNode;
  obs::causal::Attribution step_attr_;
  obs::Counter* m_critpath_[obs::causal::kNumCategories] = {};
  std::size_t step_index_ = 0;
  sim::Time step_begin_ = 0.0;
  sim::Time step_busy_base_ = 0.0;   ///< Link busy_time at step start.
  sim::Time step_fence_us_ = 0.0;    ///< Fence drain charged this step.
};

}  // namespace teco::core
