#include "core/session.hpp"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "core/report.hpp"
#include "core/trace_export.hpp"

namespace teco::core {

namespace {

std::uint64_t round_up_lines(std::uint64_t bytes) {
  return (bytes + mem::kLineBytes - 1) / mem::kLineBytes * mem::kLineBytes;
}

/// The obs_step_log sink: one TextTable of per-step deltas on stdout.
class StepLogSink final : public obs::StepSink {
 public:
  void on_step(const obs::StepSnapshot& snap) override {
    std::cout << step_snapshot_table(snap) << "\n";
  }
};

}  // namespace

std::string_view to_string(FtMode m) {
  switch (m) {
    case FtMode::kOff: return "off";
    case FtMode::kFull: return "full";
    case FtMode::kIncremental: return "incremental";
  }
  __builtin_unreachable();
}

tier::PlannerConfig tier_planner_config(const SessionConfig& cfg) {
  tier::PlannerConfig p;
  p.policy = cfg.tier_policy;
  p.hbm_bytes = cfg.tier_hbm_bytes;
  p.giant_cache_bytes = cfg.giant_cache_capacity;
  p.prefetch_depth = cfg.tier_prefetch_depth;
  return p;
}

serve::ServeConfig serve_config(const SessionConfig& cfg) {
  serve::ServeConfig s;
  s.arrival = cfg.serve_arrival;
  s.rate_rps = cfg.serve_rate;
  s.slo_ttft = sim::ms(cfg.serve_slo_ms);
  s.max_sessions = cfg.serve_sessions;
  // The KV tier shares the session's tiering knobs: one config file
  // describes both the training and the serving timeline.
  s.policy = cfg.tier_policy;
  s.prefetch_depth = cfg.tier_prefetch_depth;
  s.hbm_kv_bytes = cfg.tier_hbm_bytes;
  return s;
}

fabric::FabricConfig fabric_config(const SessionConfig& cfg) {
  fabric::FabricConfig f;
  f.nodes = cfg.fabric_nodes;
  f.pool_bytes = cfg.fabric_pool_bytes;
  f.port_gbps = cfg.fabric_port_gbps;
  f.reduce = cfg.fabric_reduce;
  // Node links, DBA posture, and checking ride the session's knobs so one
  // config file describes the single-node and the pooled timeline.
  f.node_phy = cfg.phy;
  f.dba_enabled = cfg.dba_enabled;
  f.dirty_bytes = cfg.dirty_bytes;
  f.check = cfg.check != check::CheckLevel::kOff;
  return f;
}

Session::Session(SessionConfig cfg)
    : cfg_(cfg), trace_(cfg.enable_trace),
      link_(std::make_unique<cxl::Link>(cfg.phy)),
      gc_(std::make_unique<coherence::GiantCache>(cfg.giant_cache_capacity)),
      cpu_cache_(std::make_unique<mem::Cache>(mem::llc_config())) {
  if (cfg_.mc_bit_error_rate > 0.0) {
    cxl::RetryModel retry;
    retry.bit_error_rate = cfg_.mc_bit_error_rate;
    link_->enable_retry(retry, cfg_.ft_seed);
  }
  coherence::HomeAgent::Options opts;
  opts.protocol = cfg_.protocol;
  opts.dba = dba::DbaRegister(false, cfg_.dirty_bytes);
  opts.cpu_mem = &cpu_mem_;
  opts.device_mem = &device_mem_;
  opts.trace = cfg_.enable_trace ? &trace_ : nullptr;
  agent_ = std::make_unique<coherence::HomeAgent>(*link_, *gc_, *cpu_cache_,
                                                  opts);
  if (cfg_.check != check::CheckLevel::kOff) {
    check::ProtocolChecker::Options copts;
    copts.level = cfg_.check;
    copts.cpu_mem = &cpu_mem_;
    copts.device_mem = &device_mem_;
    checker_ = std::make_unique<check::ProtocolChecker>(*agent_, copts);
    observers_.add(checker_.get());
  }
  if (cfg_.check_hb) {
    hb_recorder_ = std::make_unique<mc::HbRecorder>();
    observers_.add(hb_recorder_.get());
  }
  rewire_observers();
  setup_telemetry();
}

Session::~Session() {
  if (hb_recorder_ != nullptr) {
    // Best-effort teardown lint: surface any recorded race on stderr so a
    // `check = hb` run cannot end silently racy. Must not throw here.
    try {
      const mc::HbReport report = analyze_hb();
      if (!report.clean()) {
        std::cerr << "[teco.hb] " << report.to_string() << "\n";
      }
    } catch (...) {
    }
  }
  if (cfg_.obs_trace_path.empty()) return;
  // Best-effort flush from a destructor: a failed write must not throw.
  ChromeTraceComposer c;
  c.add_spans(spans_, "teco.session", /*pid=*/1);
  if (causal_ != nullptr && !step_attr_.segments.empty()) {
    c.add_critical_path(step_attr_, "teco.critpath", /*pid=*/3);
  }
  c.write(cfg_.obs_trace_path);
}

mc::HbReport Session::analyze_hb() const {
  if (hb_recorder_ == nullptr) {
    throw std::logic_error(
        "Session::analyze_hb: enable check_hb (config `check = hb`) first");
  }
  return mc::analyze_hb(hb_recorder_->events());
}

void Session::setup_telemetry() {
  agent_->set_metrics(&metrics_);
  m_step_total_ = &metrics_.counter("step.total_us");
  m_step_overlap_ = &metrics_.counter("step.overlap_us");
  m_step_fence_ = &metrics_.counter("step.fence_drain_us");
  spans_.set_max_spans(cfg_.obs_trace_max_spans);
  m_dropped_spans_ = &metrics_.counter("obs.trace.dropped_spans");
#ifndef TECO_OBS_DISABLED
  if (cfg_.obs_causal) {
    causal_ =
        std::make_unique<obs::causal::CausalGraph>(cfg_.obs_causal_max_nodes);
    for (std::size_t i = 0; i < obs::causal::kNumCategories; ++i) {
      m_critpath_[i] = &metrics_.counter(
          std::string("obs.critpath.") +
          obs::causal::metric_suffix(static_cast<obs::causal::Category>(i)));
    }
  }
#endif
  if (!cfg_.obs_jsonl_path.empty()) {
    jsonl_stream_ = std::make_unique<std::ofstream>(cfg_.obs_jsonl_path);
    if (!*jsonl_stream_) {
      throw std::runtime_error("Session: cannot open obs_jsonl_path '" +
                               cfg_.obs_jsonl_path + "'");
    }
    jsonl_sink_ = std::make_unique<obs::JsonlWriter>(*jsonl_stream_);
    publisher_.add_sink(jsonl_sink_.get());
  }
  if (cfg_.obs_step_log) {
    step_log_sink_ = std::make_unique<StepLogSink>();
    publisher_.add_sink(step_log_sink_.get());
  }
}

void Session::causal_note(obs::causal::Category cat, sim::Time from) {
  if (causal_ == nullptr || now_ <= from) return;
  causal_last_ = causal_->add(cat, now_, causal_last_, from);
}

sim::Time Session::fence(const char* label) {
  const sim::Time t0 = now_;
  now_ = agent_->cxl_fence(now_);
  if (now_ > t0) {
    m_step_fence_->add((now_ - t0) * 1e6);
    step_fence_us_ += (now_ - t0) * 1e6;
    spans_.emit("fence", label, t0, now_);
    if (causal_ != nullptr) {
      // Attribute the drained window to the binding (later-draining)
      // channel's occupancy — the critical path through a CXLFENCE is the
      // slowest queued transfer, not "the fence" in the abstract; only the
      // residual (message-forwarder tail) stays fence_drain.
      const sim::Time up =
          link_->channel(cxl::Direction::kDeviceToCpu).drain_time();
      const sim::Time down =
          link_->channel(cxl::Direction::kCpuToDevice).drain_time();
      const sim::Time dom = std::clamp(std::max(up, down), t0, now_);
      if (dom > t0) {
        causal_last_ = causal_->add(up >= down
                                        ? obs::causal::Category::kCxlUp
                                        : obs::causal::Category::kCxlDown,
                                    dom, causal_last_, t0);
      }
      causal_note(obs::causal::Category::kFenceDrain, dom);
    }
  }
  return now_;
}

mem::Addr Session::allocate_region(const std::string& name,
                                   std::uint64_t bytes, bool dba_eligible) {
  if (bytes == 0) {
    throw std::invalid_argument("Session: zero-byte allocation for region '" +
                                name + "'");
  }
  if (bytes > cfg_.addr_space_bytes - mem::kLineBytes) {
    throw std::length_error("Session: allocation of region '" + name +
                            "' exceeds the address space");
  }
  const std::uint64_t sz = round_up_lines(bytes);
  if (!mem::line_aligned(next_alloc_)) {
    // The bump pointer only ever advances by whole lines; a misaligned
    // pointer means internal state corruption, not a bad request.
    throw std::logic_error("Session: bump allocator lost line alignment");
  }
  if (next_alloc_ >= cfg_.addr_space_bytes ||
      sz > cfg_.addr_space_bytes - next_alloc_) {
    throw std::runtime_error(
        "Session: address space exhausted allocating region '" + name + "' (" +
        std::to_string(sz) + " bytes requested)");
  }
  const mem::Addr base = next_alloc_;
  gc_->map_region(name, base, sz, coherence::MesiState::kExclusive,
                  dba_eligible);
  next_alloc_ += sz;
  return base;
}

mem::Addr Session::allocate_parameters(const std::string& name,
                                       std::uint64_t bytes) {
  return allocate_region(name, bytes, /*dba_eligible=*/true);
}

mem::Addr Session::allocate_gradients(const std::string& name,
                                      std::uint64_t bytes) {
  return allocate_region(name, bytes, /*dba_eligible=*/false);
}

void Session::device_write_gradients(mem::Addr base,
                                     std::span<const float> values) {
  // The device writes into its own (giant-cache) memory, then the protocol
  // pushes each touched line home.
  for (std::size_t i = 0; i < values.size(); ++i) {
    device_mem_.write_f32(base + i * 4, values[i]);
  }
  const std::size_t lines = (values.size() * 4 + mem::kLineBytes - 1) /
                            mem::kLineBytes;
  for (std::size_t l = 0; l < lines; ++l) {
    agent_->device_write_line(now_, base + l * mem::kLineBytes);
  }
}

sim::Time Session::backward_complete() { return fence("backward"); }

bool Session::check_activation(std::size_t step) {
  if (cfg_.dba_enabled && !dba_active_ && step >= cfg_.act_aft_steps) {
    agent_->set_dba(now_, dba::DbaRegister(true, cfg_.dirty_bytes));
    dba_active_ = true;
  }
  return dba_active_;
}

void Session::cpu_write_parameters(mem::Addr base,
                                   std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    cpu_mem_.write_f32(base + i * 4, values[i]);
  }
  const std::size_t lines = (values.size() * 4 + mem::kLineBytes - 1) /
                            mem::kLineBytes;
  for (std::size_t l = 0; l < lines; ++l) {
    agent_->cpu_write_line(now_, base + l * mem::kLineBytes);
  }
}

sim::Time Session::optimizer_step_complete() {
  fence("optimizer");
  agent_->cpu_flush_all(now_);

  if (causal_ != nullptr) {
    // Extract this step's critical path (hard conservation check inside)
    // and charge the category split to the obs.critpath.* counters.
    step_attr_ = obs::causal::critical_path(*causal_, step_begin_, now_,
                                            causal_last_);
    for (std::size_t i = 0; i < obs::causal::kNumCategories; ++i) {
      if (step_attr_.by_category[i] > 0.0) {
        m_critpath_[i]->add(step_attr_.by_category[i] * 1e6);
      }
    }
  }
  // Close the step: wall time, link busy time spent under compute (overlap)
  // versus behind a fence (already charged by fence()), one span, and a
  // snapshot for whoever is listening.
  const sim::Time busy =
      link_->channel(cxl::Direction::kCpuToDevice).stats().busy_time +
      link_->channel(cxl::Direction::kDeviceToCpu).stats().busy_time;
  const double busy_us = (busy - step_busy_base_) * 1e6;
  m_step_total_->add((now_ - step_begin_) * 1e6);
  m_step_overlap_->add(std::max(0.0, busy_us - step_fence_us_));
  spans_.emit("step", "step " + std::to_string(step_index_), step_begin_,
              now_);
  // After the step span: a drop of the span that closes the step must be
  // visible in this step's counter delta, not the next one's.
  m_dropped_spans_->add(
      static_cast<double>(spans_.dropped() - dropped_spans_base_));
  dropped_spans_base_ = spans_.dropped();
  if (publisher_.has_sinks()) {
    publisher_.publish(metrics_, step_index_, step_begin_, now_);
  }
  ++step_index_;
  step_begin_ = now_;
  step_busy_base_ = busy;
  step_fence_us_ = 0.0;
  return now_;
}

std::vector<float> Session::device_read_parameters(mem::Addr base,
                                                   std::size_t count) {
  const sim::Time t0 = now_;
  const std::size_t lines =
      (count * 4 + mem::kLineBytes - 1) / mem::kLineBytes;
  for (std::size_t l = 0; l < lines; ++l) {
    const auto a = agent_->device_read_line(now_, base + l * mem::kLineBytes);
    if (a.ready > now_) now_ = a.ready;
  }
  causal_note(obs::causal::Category::kDemandFetch, t0);
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = device_mem_.read_f32(base + i * 4);
  }
  return out;
}

sim::Time Session::advance(sim::Time dt) {
  const sim::Time t0 = now_;
  if (dt > 0.0) now_ += dt;
  causal_note(obs::causal::Category::kCompute, t0);
  return now_;
}

void Session::rewire_observers() {
  agent_->set_observer(observers_.empty() ? nullptr : &observers_);
}

void Session::add_observer(check::Observer* obs) {
  observers_.add(obs);
  rewire_observers();
}

void Session::remove_observer(check::Observer* obs) {
  observers_.remove(obs);
  rewire_observers();
}

void Session::set_link_fault_hook(cxl::LinkFaultHook* hook) {
  link_->set_fault_hook(hook);
}

sim::Time Session::scrub_device_line(mem::Addr line) {
  const bool dba_was = dba_active_;
  const sim::Time t0 = now_;
  if (dba_was) {
    agent_->set_dba(now_, dba::DbaRegister(false, cfg_.dirty_bytes));
  }
  agent_->cpu_write_line(now_, line);
  now_ = agent_->cxl_fence(now_);
  causal_note(obs::causal::Category::kFenceDrain, t0);
  if (dba_was) {
    agent_->set_dba(now_, dba::DbaRegister(true, cfg_.dirty_bytes));
  }
  return now_;
}

void Session::seed_device_memory(mem::Addr base,
                                 std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    device_mem_.write_f32(base + i * 4, values[i]);
  }
}

void Session::seed_cpu_memory(mem::Addr base, std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    cpu_mem_.write_f32(base + i * 4, values[i]);
  }
}

std::vector<float> Session::cpu_read_gradients(mem::Addr base,
                                               std::size_t count) {
  const sim::Time t0 = now_;
  const std::size_t lines =
      (count * 4 + mem::kLineBytes - 1) / mem::kLineBytes;
  for (std::size_t l = 0; l < lines; ++l) {
    const auto a = agent_->cpu_read_line(now_, base + l * mem::kLineBytes);
    if (a.ready > now_) now_ = a.ready;
  }
  causal_note(obs::causal::Category::kDemandFetch, t0);
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = cpu_mem_.read_f32(base + i * 4);
  }
  return out;
}

}  // namespace teco::core
