#include "core/config.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace teco::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view v, std::uint64_t* out) {
  const auto* end = v.data() + v.size();
  const auto res = std::from_chars(v.data(), end, *out);
  return res.ec == std::errc{} && res.ptr == end;
}

bool parse_f64(std::string_view v, double* out) {
  const auto* end = v.data() + v.size();
  const auto res = std::from_chars(v.data(), end, *out);
  return res.ec == std::errc{} && res.ptr == end;
}

bool parse_onoff(std::string_view v, bool* out) {
  if (v == "on" || v == "true" || v == "1") {
    *out = true;
    return true;
  }
  if (v == "off" || v == "false" || v == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

ParsedConfig parse_config(std::string_view text) {
  ParsedConfig out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& what) {
    out.errors.push_back("line " + std::to_string(line_no) + ": " + what);
  };

  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail("expected 'key = value'");
      continue;
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));

    if (key == "protocol") {
      if (value == "update") {
        out.session.protocol = coherence::Protocol::kUpdate;
      } else if (value == "invalidation") {
        out.session.protocol = coherence::Protocol::kInvalidation;
      } else {
        fail("protocol must be 'update' or 'invalidation'");
      }
    } else if (key == "dba") {
      if (!parse_onoff(value, &out.session.dba_enabled)) {
        fail("dba must be on/off");
      }
    } else if (key == "act_aft_steps") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v)) {
        out.session.act_aft_steps = static_cast<std::size_t>(v);
      } else {
        fail("act_aft_steps must be a non-negative integer");
      }
    } else if (key == "dirty_bytes") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v <= 4) {
        out.session.dirty_bytes = static_cast<std::uint8_t>(v);
      } else {
        fail("dirty_bytes must be in [0, 4]");
      }
    } else if (key == "giant_cache_mib") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.giant_cache_capacity = v << 20;
      } else {
        fail("giant_cache_mib must be a positive integer");
      }
    } else if (key == "trace") {
      if (!parse_onoff(value, &out.session.enable_trace)) {
        fail("trace must be on/off");
      }
    } else if (key == "check") {
      // `hb` layers happens-before trace recording on top of strict
      // checking; the other levels switch the recorder off (last wins).
      out.session.check_hb = false;
      if (value == "off") {
        out.session.check = check::CheckLevel::kOff;
      } else if (value == "count") {
        out.session.check = check::CheckLevel::kCount;
      } else if (value == "strict") {
        out.session.check = check::CheckLevel::kStrict;
      } else if (value == "hb") {
        out.session.check = check::CheckLevel::kStrict;
        out.session.check_hb = true;
      } else {
        fail("check must be off/count/strict/hb");
      }
    } else if (key == "ft_mode") {
      if (value == "off") {
        out.session.ft_mode = FtMode::kOff;
      } else if (value == "full") {
        out.session.ft_mode = FtMode::kFull;
      } else if (value == "incremental") {
        out.session.ft_mode = FtMode::kIncremental;
      } else {
        fail("ft_mode must be off/full/incremental");
      }
    } else if (key == "ft_checkpoint_interval") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.ft_checkpoint_interval = static_cast<std::size_t>(v);
      } else {
        fail("ft_checkpoint_interval must be a positive integer");
      }
    } else if (key == "ft_seed") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v)) {
        out.session.ft_seed = v;
      } else {
        fail("ft_seed must be a non-negative integer");
      }
    } else if (key == "tier_policy") {
      if (const auto p = tier::policy_from_string(value)) {
        out.session.tier_policy = *p;
      } else {
        fail("tier_policy must be all_hbm/naive_swap/min_stall/knapsack");
      }
    } else if (key == "tier_hbm_bytes") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.tier_hbm_bytes = v;
      } else {
        fail("tier_hbm_bytes must be a positive integer");
      }
    } else if (key == "tier_prefetch_depth") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v <= 64) {
        out.session.tier_prefetch_depth = static_cast<std::size_t>(v);
      } else {
        fail("tier_prefetch_depth must be in [0, 64]");
      }
    } else if (key == "serve_arrival") {
      if (const auto a = serve::arrival_from_string(value)) {
        out.session.serve_arrival = *a;
      } else {
        fail("serve_arrival must be poisson/bursty/trace");
      }
    } else if (key == "serve_rate") {
      double v = 0.0;
      if (parse_f64(value, &v) && v > 0.0) {
        out.session.serve_rate = v;
      } else {
        fail("serve_rate must be a positive number (requests/second)");
      }
    } else if (key == "serve_slo_ms") {
      double v = 0.0;
      if (parse_f64(value, &v) && v > 0.0) {
        out.session.serve_slo_ms = v;
      } else {
        fail("serve_slo_ms must be a positive number (milliseconds)");
      }
    } else if (key == "serve_sessions") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.serve_sessions = static_cast<std::size_t>(v);
      } else {
        fail("serve_sessions must be a positive integer");
      }
    } else if (key == "fabric_nodes") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v >= 1 && v <= 64) {
        out.session.fabric_nodes = static_cast<std::uint32_t>(v);
      } else {
        fail("fabric_nodes must be in [1, 64]");
      }
    } else if (key == "fabric_pool_bytes") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.fabric_pool_bytes = v;
      } else {
        fail("fabric_pool_bytes must be a positive integer");
      }
    } else if (key == "fabric_port_gbps") {
      double v = 0.0;
      if (parse_f64(value, &v) && v > 0.0) {
        out.session.fabric_port_gbps = v;
      } else {
        fail("fabric_port_gbps must be a positive number (GB/s)");
      }
    } else if (key == "fabric_reduce") {
      if (const auto s = fabric::reduce_from_string(value)) {
        out.session.fabric_reduce = *s;
      } else {
        fail("fabric_reduce must be dba_merge/pool_staging/per_link");
      }
    } else if (key == "obs_jsonl_path") {
      out.session.obs_jsonl_path = std::string(value);
    } else if (key == "obs_trace_path") {
      out.session.obs_trace_path = std::string(value);
    } else if (key == "obs_step_log") {
      if (!parse_onoff(value, &out.session.obs_step_log)) {
        fail("obs_step_log must be on/off");
      }
    } else if (key == "obs_causal") {
      if (!parse_onoff(value, &out.session.obs_causal)) {
        fail("obs_causal must be on/off");
      }
    } else if (key == "obs_causal_max_nodes") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v) && v > 0) {
        out.session.obs_causal_max_nodes = static_cast<std::size_t>(v);
      } else {
        fail("obs_causal_max_nodes must be a positive integer");
      }
    } else if (key == "obs_trace_max_spans") {
      std::uint64_t v = 0;
      if (parse_u64(value, &v)) {
        out.session.obs_trace_max_spans = static_cast<std::size_t>(v);
      } else {
        fail("obs_trace_max_spans must be a non-negative integer");
      }
    } else {
      out.unknown_keys.push_back(key);
    }
  }
  return out;
}

ParsedConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParsedConfig out;
    out.errors.push_back("cannot open config file: " + path);
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_config(buf.str());
}

std::string to_config_text(const SessionConfig& cfg) {
  std::ostringstream os;
  os << "protocol = "
     << (cfg.protocol == coherence::Protocol::kUpdate ? "update"
                                                      : "invalidation")
     << "\n";
  os << "dba = " << (cfg.dba_enabled ? "on" : "off") << "\n";
  os << "act_aft_steps = " << cfg.act_aft_steps << "\n";
  os << "dirty_bytes = " << static_cast<unsigned>(cfg.dirty_bytes) << "\n";
  os << "giant_cache_mib = " << (cfg.giant_cache_capacity >> 20) << "\n";
  os << "trace = " << (cfg.enable_trace ? "on" : "off") << "\n";
  os << "check = "
     << (cfg.check_hb ? "hb" : check::to_string(cfg.check)) << "\n";
  os << "ft_mode = " << to_string(cfg.ft_mode) << "\n";
  os << "ft_checkpoint_interval = " << cfg.ft_checkpoint_interval << "\n";
  os << "ft_seed = " << cfg.ft_seed << "\n";
  os << "tier_policy = " << tier::to_string(cfg.tier_policy) << "\n";
  os << "tier_hbm_bytes = " << cfg.tier_hbm_bytes << "\n";
  os << "tier_prefetch_depth = " << cfg.tier_prefetch_depth << "\n";
  os << "serve_arrival = " << serve::to_string(cfg.serve_arrival) << "\n";
  os << "serve_rate = " << cfg.serve_rate << "\n";
  os << "serve_slo_ms = " << cfg.serve_slo_ms << "\n";
  os << "serve_sessions = " << cfg.serve_sessions << "\n";
  os << "fabric_nodes = " << cfg.fabric_nodes << "\n";
  os << "fabric_pool_bytes = " << cfg.fabric_pool_bytes << "\n";
  os << "fabric_port_gbps = " << cfg.fabric_port_gbps << "\n";
  os << "fabric_reduce = " << fabric::to_string(cfg.fabric_reduce) << "\n";
  // Empty path values round-trip as absent lines: the parser treats a
  // missing key as the default, and "key =" would read back as "".
  if (!cfg.obs_jsonl_path.empty()) {
    os << "obs_jsonl_path = " << cfg.obs_jsonl_path << "\n";
  }
  if (!cfg.obs_trace_path.empty()) {
    os << "obs_trace_path = " << cfg.obs_trace_path << "\n";
  }
  os << "obs_step_log = " << (cfg.obs_step_log ? "on" : "off") << "\n";
  os << "obs_causal = " << (cfg.obs_causal ? "on" : "off") << "\n";
  os << "obs_causal_max_nodes = " << cfg.obs_causal_max_nodes << "\n";
  os << "obs_trace_max_spans = " << cfg.obs_trace_max_spans << "\n";
  return os.str();
}

}  // namespace teco::core
