// AI-model configuration file parsing (Section V-A).
//
// The paper: "TECO determines the activation of DBA after a specific
// number of training steps (specified with act_aft_steps by the user in an
// AI model configuration file)" — alongside dirty_bytes and the usual
// hyperparameters. This parser reads that file format: one `key = value`
// pair per line, `#` comments, case-sensitive keys, unknown keys collected
// for the caller to report.
//
//   # teco.cfg
//   protocol        = update        # update | invalidation
//   dba             = on            # on | off
//   act_aft_steps   = 500
//   dirty_bytes     = 2
//   giant_cache_mib = 4096
//   trace           = off
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/session.hpp"

namespace teco::core {

struct ParsedConfig {
  SessionConfig session;
  std::vector<std::string> unknown_keys;
  std::vector<std::string> errors;  ///< Empty when the file parsed clean.

  bool ok() const { return errors.empty(); }
};

/// Parse configuration text (the file's contents).
ParsedConfig parse_config(std::string_view text);

/// Load and parse a configuration file from disk. A missing file is
/// reported through `errors`.
ParsedConfig load_config_file(const std::string& path);

/// Serialize a SessionConfig back to the file format (round-trips through
/// parse_config).
std::string to_config_text(const SessionConfig& cfg);

}  // namespace teco::core
