#include "core/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace teco::core {

namespace {

std::string us(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", t * 1e6);
  return buf;
}

}  // namespace

void ChromeTraceComposer::name_process(int pid, const std::string& name) {
  if (std::find(named_pids_.begin(), named_pids_.end(), pid) !=
      named_pids_.end()) {
    return;
  }
  named_pids_.push_back(pid);
  std::ostringstream os;
  os << R"({"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"tid":0,"args":{"name":")" << obs::json_escape(name) << R"("}})";
  events_.push_back(os.str());
}

std::size_t ChromeTraceComposer::lane_tid(int pid, const std::string& lane) {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].first == pid && lanes_[i].second == lane) return i + 1;
  }
  lanes_.emplace_back(pid, lane);
  const std::size_t tid = lanes_.size();
  std::ostringstream os;
  os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
     << tid << R"(,"args":{"name":")" << obs::json_escape(lane) << R"("}})";
  events_.push_back(os.str());
  os.str({});
  os << R"({"name":"thread_sort_index","ph":"M","pid":)" << pid
     << R"(,"tid":)" << tid << R"(,"args":{"sort_index":)" << tid << "}}";
  events_.push_back(os.str());
  return tid;
}

void ChromeTraceComposer::add_gantt(const GanttChart& g,
                                    const std::string& process_name, int pid) {
  name_process(pid, process_name);
  for (const auto& s : g.spans()) {
    const std::size_t tid = lane_tid(pid, s.lane);
    std::ostringstream os;
    os << R"({"name":")" << obs::json_escape(std::string(1, s.glyph))
       << R"(","cat":")" << obs::json_escape(s.lane) << R"(","ph":"X","pid":)"
       << pid << R"(,"tid":)" << tid << R"(,"ts":)" << us(s.start)
       << R"(,"dur":)" << us(std::max(0.0, s.end - s.start)) << "}";
    events_.push_back(os.str());
  }
}

void ChromeTraceComposer::add_spans(const obs::TraceBuffer& buf,
                                    const std::string& process_name,
                                    int pid) {
  name_process(pid, process_name);
  for (const auto& s : buf.events()) {
    const std::size_t tid = lane_tid(pid, s.lane);
    std::ostringstream os;
    os << R"({"name":")" << obs::json_escape(s.name) << R"(","cat":")"
       << obs::json_escape(s.lane) << R"(","ph":"X","pid":)" << pid
       << R"(,"tid":)" << tid << R"(,"ts":)" << us(s.begin) << R"(,"dur":)"
       << us(std::max(0.0, s.end - s.begin)) << "}";
    events_.push_back(os.str());
  }
}

void ChromeTraceComposer::add_counters(
    const std::vector<CounterSeries>& counters, int pid) {
  for (const auto& c : counters) {
    for (const auto& [t, v] : c.points) {
      std::ostringstream os;
      os << R"({"name":")" << obs::json_escape(c.name)
         << R"(","ph":"C","pid":)" << pid << R"(,"ts":)" << us(t)
         << R"(,"args":{"bytes":)" << v << "}}";
      events_.push_back(os.str());
    }
  }
}

void ChromeTraceComposer::add_critical_path(
    const obs::causal::Attribution& a, const std::string& process_name,
    int pid) {
  using obs::causal::Category;
  using obs::causal::PathSegment;
  name_process(pid, process_name);
  const std::vector<PathSegment>& segs = a.segments;
  for (const PathSegment& s : segs) {
    const std::string lane =
        std::string("critpath.") + obs::causal::to_string(s.cat);
    const std::size_t tid = lane_tid(pid, lane);
    std::ostringstream os;
    os << R"({"name":")" << obs::causal::to_string(s.cat)
       << R"(","cat":"critpath","ph":"X","pid":)" << pid << R"(,"tid":)"
       << tid << R"(,"ts":)" << us(s.begin) << R"(,"dur":)"
       << us(std::max(0.0, s.end - s.begin)) << "}";
    events_.push_back(os.str());
  }
  // Flow arrows between consecutive non-idle hops: "s" binds inside the
  // source slice at its end, "f" (bp:"e") inside the destination at its
  // begin — adjacent segments share that instant, so the viewer draws the
  // arrow across the lane hop.
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    if (segs[i].cat == Category::kIdle || segs[i + 1].cat == Category::kIdle) {
      continue;
    }
    const std::uint64_t id = next_flow_id_++;
    const std::size_t src_tid = lane_tid(
        pid, std::string("critpath.") + obs::causal::to_string(segs[i].cat));
    const std::size_t dst_tid =
        lane_tid(pid, std::string("critpath.") +
                          obs::causal::to_string(segs[i + 1].cat));
    std::ostringstream os;
    os << R"({"name":"critpath","cat":"critpath","ph":"s","id":)" << id
       << R"(,"pid":)" << pid << R"(,"tid":)" << src_tid << R"(,"ts":)"
       << us(segs[i].end) << "}";
    events_.push_back(os.str());
    os.str({});
    os << R"({"name":"critpath","cat":"critpath","ph":"f","bp":"e","id":)"
       << id << R"(,"pid":)" << pid << R"(,"tid":)" << dst_tid << R"(,"ts":)"
       << us(segs[i + 1].begin) << "}";
    events_.push_back(os.str());
  }
}

std::string ChromeTraceComposer::json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i != 0) os << ",\n";
    os << events_[i];
  }
  os << "\n]\n";
  return os.str();
}

bool ChromeTraceComposer::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << json();
  return static_cast<bool>(f);
}

std::string to_chrome_trace_json(const GanttChart& g,
                                 const std::string& process_name,
                                 const std::vector<CounterSeries>& counters,
                                 int pid) {
  ChromeTraceComposer c;
  c.add_gantt(g, process_name, pid);
  c.add_counters(counters, pid);
  return c.json();
}

}  // namespace teco::core
