#include "core/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace teco::core {

namespace {

/// Minimal JSON string escaping (lane names are ASCII identifiers, but a
/// quote or backslash must not break the file).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string us(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", t * 1e6);
  return buf;
}

}  // namespace

std::string to_chrome_trace_json(const GanttChart& g,
                                 const std::string& process_name,
                                 const std::vector<CounterSeries>& counters,
                                 int pid) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"name":"process_name","ph":"M","pid":)" << pid << R"(,"tid":0,"args":{"name":")"
     << json_escape(process_name) << R"("}})";

  // One "thread" per lane, in first-appearance order, so the viewer stacks
  // the rows the way render() does.
  std::vector<std::string> lanes;
  for (const auto& s : g.spans()) {
    if (std::find(lanes.begin(), lanes.end(), s.lane) == lanes.end()) {
      lanes.push_back(s.lane);
    }
  }
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)" << (i + 1)
       << R"(,"args":{"name":")" << json_escape(lanes[i]) << R"("}})";
    sep();
    os << R"({"name":"thread_sort_index","ph":"M","pid":)" << pid << R"(,"tid":)" << (i + 1)
       << R"(,"args":{"sort_index":)" << (i + 1) << "}}";
  }

  for (const auto& s : g.spans()) {
    const auto lane_it = std::find(lanes.begin(), lanes.end(), s.lane);
    const std::size_t tid =
        static_cast<std::size_t>(lane_it - lanes.begin()) + 1;
    sep();
    os << R"({"name":")" << json_escape(std::string(1, s.glyph))
       << R"(","cat":")" << json_escape(s.lane) << R"(","ph":"X","pid":)" << pid << R"(,)"
       << R"("tid":)" << tid << R"(,"ts":)" << us(s.start) << R"(,"dur":)"
       << us(std::max(0.0, s.end - s.start)) << "}";
  }

  for (const auto& c : counters) {
    for (const auto& [t, v] : c.points) {
      sep();
      os << R"({"name":")" << json_escape(c.name)
         << R"(","ph":"C","pid":)" << pid << R"(,"ts":)" << us(t) << R"(,"args":{"bytes":)"
         << v << "}}";
    }
  }

  os << "\n]\n";
  return os.str();
}

}  // namespace teco::core
