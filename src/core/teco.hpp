// TECO — Tensor-CXL-Offload: umbrella public header.
//
// Reproduction of "Efficient Tensor Offloading for Large Deep-Learning
// Model Training based on Compute Express Link" (SC 2024). Include this to
// get the full public API; individual headers are also stable entry points.
#pragma once

#include "coherence/giant_cache.hpp"   // IWYU pragma: export
#include "coherence/home_agent.hpp"    // IWYU pragma: export
#include "coherence/mesi.hpp"          // IWYU pragma: export
#include "compress/lz4.hpp"            // IWYU pragma: export
#include "compress/quant_model.hpp"    // IWYU pragma: export
#include "core/autotune.hpp"           // IWYU pragma: export
#include "core/config.hpp"             // IWYU pragma: export
#include "core/gantt.hpp"              // IWYU pragma: export
#include "core/report.hpp"             // IWYU pragma: export
#include "core/session.hpp"            // IWYU pragma: export
#include "cxl/event_channel.hpp"       // IWYU pragma: export
#include "cxl/flit.hpp"                // IWYU pragma: export
#include "cxl/link.hpp"                // IWYU pragma: export
#include "cxl/reliability.hpp"         // IWYU pragma: export
#include "dba/aggregator.hpp"          // IWYU pragma: export
#include "dba/disaggregator.hpp"       // IWYU pragma: export
#include "dl/attention.hpp"            // IWYU pragma: export
#include "dl/dba_training.hpp"         // IWYU pragma: export
#include "dl/fp16.hpp"                 // IWYU pragma: export
#include "dl/gnn.hpp"                  // IWYU pragma: export
#include "dl/model_zoo.hpp"            // IWYU pragma: export
#include "md/lj_system.hpp"            // IWYU pragma: export
#include "md/offload_md.hpp"           // IWYU pragma: export
#include "mem/hierarchy.hpp"           // IWYU pragma: export
#include "offload/experiments.hpp"     // IWYU pragma: export
#include "offload/multi_device.hpp"    // IWYU pragma: export
#include "offload/runtime.hpp"         // IWYU pragma: export
#include "offload/trace_replay.hpp"    // IWYU pragma: export

namespace teco {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace teco
