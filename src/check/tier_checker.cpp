#include "check/tier_checker.hpp"

#include <cstdio>

namespace teco::check {

namespace {

std::string fmt_time(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f s", t);
  return buf;
}

}  // namespace

void TierInvariantChecker::fail(const std::string& what) {
  ++violations_;
  log_.push_back(what);
  if (level_ == CheckLevel::kStrict) throw TierViolation(what);
}

void TierInvariantChecker::on_tier_migration(sim::Time issued,
                                             std::uint32_t tensor,
                                             std::uint8_t from,
                                             std::uint8_t to,
                                             std::uint64_t bytes,
                                             sim::Time delivered,
                                             bool prefetch) {
  ++migrations_;
  if (from == to) {
    fail("T4: migration of tensor " + std::to_string(tensor) +
         " between identical tiers (" + std::to_string(from) + ")");
  }
  if (bytes == 0) {
    fail("T4: zero-byte migration of tensor " + std::to_string(tensor));
  }
  if (delivered < issued) {
    fail("T4: migration of tensor " + std::to_string(tensor) +
         " delivered at " + fmt_time(delivered) + " before issue at " +
         fmt_time(issued));
  }
  if (prefetch) pending_fetch_[tensor] = delivered;
}

void TierInvariantChecker::on_tier_access(sim::Time t, std::uint32_t tensor,
                                          std::uint8_t resident_tier,
                                          bool hbm_resident, sim::Time stall) {
  ++accesses_;
  const sim::Time served = t + stall;
  if (const auto it = pending_fetch_.find(tensor);
      it != pending_fetch_.end()) {
    // T2: the access may not proceed before the in-flight fetch lands.
    if (t < it->second && served + 1e-12 < it->second) {
      fail("T2: tensor " + std::to_string(tensor) + " accessed at " +
           fmt_time(served) + " before its prefetch delivery at " +
           fmt_time(it->second) + " without a covering stall");
    }
    pending_fetch_.erase(it);
  }
  if (!hbm_resident && stall <= 0.0) {
    fail("T1: tensor " + std::to_string(tensor) +
         " consumed while resident only in tier " +
         std::to_string(resident_tier) + " at " + fmt_time(t) +
         " with no stall charged");
  }
}

void TierInvariantChecker::on_tier_occupancy(sim::Time t, std::uint8_t tier,
                                             std::uint64_t bytes) {
  if (tier == 0 && hbm_capacity_ > 0 && bytes > hbm_capacity_) {
    fail("T3: HBM occupancy " + std::to_string(bytes) + " B exceeds budget " +
         std::to_string(hbm_capacity_) + " B at " + fmt_time(t));
  }
}

}  // namespace teco::check
