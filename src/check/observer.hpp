// Lightweight observation hooks for the coherence invariant checker.
//
// Every component of the simulated CXL coherent domain (the CPU cache, the
// giant cache, the snoop filter, the link, the DBA units and the home agent
// itself) carries an optional `check::Observer*`. When null — the default —
// the hooks cost one pointer test on paths that already do real work; when a
// ProtocolChecker is attached it sees every state transition, data movement
// and fence in the domain and can enforce the paper's invariants (SWMR,
// transition legality, DBA merge conservation, fence completeness).
//
// The interface lives below the coherence layer on purpose: teco_mem,
// teco_cxl and teco_dba include this header without linking anything new,
// while the checker implementation (src/check/protocol_checker.*) sits on
// top of teco_coherence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/address.hpp"
#include "sim/time.hpp"

namespace teco::check {

/// Which peer cache of the coherent domain an event concerns.
enum class Domain : std::uint8_t {
  kCpuCache,    ///< The CPU LLC model (mem::Cache).
  kGiantCache,  ///< The accelerator-side giant cache directory.
};

/// The semantic home-agent operation a notification happened under.
/// External state pokes (tests, tools mutating the directory directly)
/// carry no operation scope and are judged without context.
enum class Op : std::uint8_t {
  kNone,
  kCpuWrite,
  kCpuRead,
  kDeviceWrite,
  kDeviceRead,
  kFlushAll,
};

class Observer {
 public:
  virtual ~Observer() = default;

  // --- Home-agent operation scope -----------------------------------------
  /// A coherent access on `line` starts/ends. State changes reported in
  /// between belong to this operation; whole-line invariants (SWMR, snoop
  /// consistency, data values) are evaluated at on_op_end, once the
  /// operation's transition sequence has quiesced.
  virtual void on_op_begin(sim::Time /*now*/, Op /*op*/, mem::Addr /*line*/) {}
  virtual void on_op_end(sim::Time /*now*/, Op /*op*/, mem::Addr /*line*/) {}

  // --- Directory / cache state --------------------------------------------
  /// A giant-cache region was mapped into the coherent domain.
  virtual void on_region_mapped(mem::Addr /*base*/, std::uint64_t /*bytes*/,
                                std::uint8_t /*initial_state*/,
                                bool /*dba_eligible*/) {}

  /// MESI state change in either peer cache. States are the raw bytes the
  /// caches store (MesiState values on coherent lines).
  virtual void on_state_change(Domain /*dom*/, mem::Addr /*line*/,
                               std::uint8_t /*from*/, std::uint8_t /*to*/) {}

  /// A line left the CPU cache without a home-agent state call (LRU
  /// eviction or invalidate); `state` is the state byte it held.
  virtual void on_cache_drop(mem::Addr /*line*/, std::uint8_t /*state*/,
                             bool /*dirty*/) {}

  /// The snoop filter's sharer bitmask for `line` changed.
  virtual void on_sharer_change(mem::Addr /*line*/, std::uint8_t /*before*/,
                                std::uint8_t /*after*/) {}

  // --- Link traffic --------------------------------------------------------
  /// `count` packets of `msg_type` entered link direction `dir` at `now`;
  /// the closed-form channel model already knows the last one lands at
  /// `delivered`. `dir` and `msg_type` are the raw enum bytes of
  /// cxl::Direction / cxl::MessageType.
  virtual void on_packet(sim::Time /*now*/, std::uint8_t /*dir*/,
                         std::uint8_t /*msg_type*/, mem::Addr /*addr*/,
                         std::uint64_t /*count*/, sim::Time /*delivered*/) {}

  /// CXLFENCE observed on one direction: the link reports `drain` as the
  /// full-drain time at `now`.
  virtual void on_fence(std::uint8_t /*dir*/, sim::Time /*now*/,
                        sim::Time /*drain*/) {}

  // --- DBA data path --------------------------------------------------------
  /// The Aggregator packed a 64-byte source line into `payload` under the
  /// DBA register `reg_bits` (encoded form).
  virtual void on_dba_pack(const std::uint8_t* /*src*/,
                           const std::uint8_t* /*payload*/,
                           std::size_t /*payload_len*/,
                           std::uint8_t /*reg_bits*/) {}

  /// The Disaggregator merged `payload` into `old_line`, producing the
  /// 64-byte `merged` line.
  virtual void on_dba_merge(const std::uint8_t* /*old_line*/,
                            const std::uint8_t* /*payload*/,
                            std::size_t /*payload_len*/,
                            const std::uint8_t* /*merged*/,
                            std::uint8_t /*reg_bits*/) {}
};

/// Fan-out: forwards every hook to a list of observers, in attach order.
/// The domain components carry a single Observer*; the mux lets the strict
/// ProtocolChecker coexist with additional listeners (the ft fault injector
/// and the checkpoint engine's dirty-line tracker).
class ObserverMux final : public Observer {
 public:
  void add(Observer* obs) {
    if (obs != nullptr) observers_.push_back(obs);
  }
  void remove(Observer* obs) {
    std::erase(observers_, obs);
  }
  bool empty() const { return observers_.empty(); }

  void on_op_begin(sim::Time now, Op op, mem::Addr line) override {
    for (auto* o : observers_) o->on_op_begin(now, op, line);
  }
  void on_op_end(sim::Time now, Op op, mem::Addr line) override {
    for (auto* o : observers_) o->on_op_end(now, op, line);
  }
  void on_region_mapped(mem::Addr base, std::uint64_t bytes,
                        std::uint8_t initial_state,
                        bool dba_eligible) override {
    for (auto* o : observers_) {
      o->on_region_mapped(base, bytes, initial_state, dba_eligible);
    }
  }
  void on_state_change(Domain dom, mem::Addr line, std::uint8_t from,
                       std::uint8_t to) override {
    for (auto* o : observers_) o->on_state_change(dom, line, from, to);
  }
  void on_cache_drop(mem::Addr line, std::uint8_t state, bool dirty) override {
    for (auto* o : observers_) o->on_cache_drop(line, state, dirty);
  }
  void on_sharer_change(mem::Addr line, std::uint8_t before,
                        std::uint8_t after) override {
    for (auto* o : observers_) o->on_sharer_change(line, before, after);
  }
  void on_packet(sim::Time now, std::uint8_t dir, std::uint8_t msg_type,
                 mem::Addr addr, std::uint64_t count,
                 sim::Time delivered) override {
    for (auto* o : observers_) {
      o->on_packet(now, dir, msg_type, addr, count, delivered);
    }
  }
  void on_fence(std::uint8_t dir, sim::Time now, sim::Time drain) override {
    for (auto* o : observers_) o->on_fence(dir, now, drain);
  }
  void on_dba_pack(const std::uint8_t* src, const std::uint8_t* payload,
                   std::size_t payload_len, std::uint8_t reg_bits) override {
    for (auto* o : observers_) {
      o->on_dba_pack(src, payload, payload_len, reg_bits);
    }
  }
  void on_dba_merge(const std::uint8_t* old_line, const std::uint8_t* payload,
                    std::size_t payload_len, const std::uint8_t* merged,
                    std::uint8_t reg_bits) override {
    for (auto* o : observers_) {
      o->on_dba_merge(old_line, payload, payload_len, merged, reg_bits);
    }
  }

 private:
  std::vector<Observer*> observers_;
};

}  // namespace teco::check
