#include "check/protocol_checker.hpp"

#include <algorithm>
#include <sstream>

#include "dba/dba_register.hpp"

namespace teco::check {

namespace {

using coherence::MesiState;
using coherence::Protocol;

constexpr std::uint8_t kMaxMesiByte =
    static_cast<std::uint8_t>(MesiState::kModified);

bool valid_state_byte(std::uint8_t s) { return s <= kMaxMesiByte; }

bool is_owner(std::uint8_t s) {
  return s == static_cast<std::uint8_t>(MesiState::kModified) ||
         s == static_cast<std::uint8_t>(MesiState::kExclusive);
}

std::string state_name(std::uint8_t s) {
  if (valid_state_byte(s)) {
    return std::string(to_string(static_cast<MesiState>(s)));
  }
  return "corrupt(" + std::to_string(s) + ")";
}

std::string_view to_string(Domain dom) {
  switch (dom) {
    case Domain::kCpuCache: return "cpu";
    case Domain::kGiantCache: return "dev";
  }
  __builtin_unreachable();
}

std::string_view to_string(Op op) {
  switch (op) {
    case Op::kNone: return "external";
    case Op::kCpuWrite: return "cpu_write";
    case Op::kCpuRead: return "cpu_read";
    case Op::kDeviceWrite: return "device_write";
    case Op::kDeviceRead: return "device_read";
    case Op::kFlushAll: return "flush_all";
  }
  __builtin_unreachable();
}

std::string hex(mem::Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

}  // namespace

std::string_view to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff: return "off";
    case CheckLevel::kCount: return "count";
    case CheckLevel::kStrict: return "strict";
  }
  __builtin_unreachable();
}

std::string_view to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kSwmr: return "swmr";
    case ViolationKind::kIllegalTransition: return "illegal-transition";
    case ViolationKind::kSnoopFilter: return "snoop-filter";
    case ViolationKind::kDataValue: return "data-value";
    case ViolationKind::kDbaMerge: return "dba-merge";
    case ViolationKind::kFence: return "fence";
    case ViolationKind::kFlitConservation: return "flit-conservation";
  }
  __builtin_unreachable();
}

ProtocolChecker::ProtocolChecker(coherence::HomeAgent& agent, Options opts)
    : agent_(agent), opts_(opts) {
  for (const auto& r : agent_.giant_cache().regions()) {
    regions_.push_back(RegionInfo{r.region.base, r.region.bytes,
                                  r.dba_eligible,
                                  static_cast<std::uint8_t>(
                                      r.line_states.empty()
                                          ? MesiState::kInvalid
                                          : r.line_states.front())});
  }
  for (std::size_t d = 0; d < 2; ++d) {
    const auto& ch =
        agent_.link().channel(static_cast<cxl::Direction>(d)).stats();
    baseline_packets_[d] = ch.packets;
    last_delivery_[d] = ch.last_delivery;
  }
  agent_.set_observer(this);
}

ProtocolChecker::~ProtocolChecker() { agent_.set_observer(nullptr); }

const ProtocolChecker::RegionInfo* ProtocolChecker::region_of(
    mem::Addr line) const {
  for (const auto& r : regions_) {
    if (line >= r.base && line + mem::kLineBytes <= r.base + r.bytes) {
      return &r;
    }
  }
  return nullptr;
}

ProtocolChecker::LineInfo& ProtocolChecker::line_info(mem::Addr line) {
  const auto key = mem::line_index(line);
  auto it = lines_.find(key);
  if (it != lines_.end()) return it->second;

  // First sighting: seed the mirror from the domain's current truth, so a
  // checker attached mid-life (or after test setup) starts consistent.
  LineInfo li;
  const auto* meta = agent_.cpu_cache().peek(line);
  li.cpu = meta == nullptr ? static_cast<std::uint8_t>(MesiState::kInvalid)
                           : meta->state;
  li.dev = agent_.giant_cache().contains_line(line)
               ? static_cast<std::uint8_t>(agent_.giant_cache().state(line))
               : static_cast<std::uint8_t>(MesiState::kInvalid);
  const auto& sf = agent_.snoop_filter();
  if (sf.is_sharer(line, coherence::Sharer::kCpu)) {
    li.sharers |= static_cast<std::uint8_t>(coherence::Sharer::kCpu);
  }
  if (sf.is_sharer(line, coherence::Sharer::kDevice)) {
    li.sharers |= static_cast<std::uint8_t>(coherence::Sharer::kDevice);
  }
  ++stats_.lines_tracked;
  return lines_.emplace(key, li).first->second;
}

void ProtocolChecker::record(LineInfo& li, Domain dom, std::uint8_t from,
                             std::uint8_t to) {
  TransitionRecord rec{in_op_ ? op_now_ : last_time_, dom,
                       in_op_ ? op_ : Op::kNone, from, to};
  if (li.history_len < kHistoryDepth) {
    li.history[(li.history_head + li.history_len) % kHistoryDepth] = rec;
    ++li.history_len;
  } else {
    li.history[li.history_head] = rec;
    li.history_head = static_cast<std::uint8_t>(
        (li.history_head + 1) % kHistoryDepth);
  }
}

void ProtocolChecker::touch(mem::Addr line) {
  if (!in_op_) return;
  if (std::find(touched_.begin(), touched_.end(), line) == touched_.end()) {
    touched_.push_back(line);
  }
}

std::string ProtocolChecker::line_history(mem::Addr line) const {
  const auto it = lines_.find(mem::line_index(line));
  if (it == lines_.end()) return "(no history)";
  const LineInfo& li = it->second;
  std::ostringstream os;
  os << "history[" << static_cast<int>(li.history_len) << "]:";
  for (std::uint8_t i = 0; i < li.history_len; ++i) {
    const auto& r = li.history[(li.history_head + i) % kHistoryDepth];
    os << " {t=" << r.t << " " << to_string(r.dom) << " " << to_string(r.op)
       << " " << state_name(r.from) << "->" << state_name(r.to) << "}";
  }
  return os.str();
}

std::uint64_t& ProtocolChecker::counter_for(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kSwmr: return stats_.swmr_violations;
    case ViolationKind::kIllegalTransition: return stats_.illegal_transitions;
    case ViolationKind::kSnoopFilter: return stats_.snoop_violations;
    case ViolationKind::kDataValue: return stats_.data_value_violations;
    case ViolationKind::kDbaMerge: return stats_.dba_merge_violations;
    case ViolationKind::kFence: return stats_.fence_violations;
    case ViolationKind::kFlitConservation:
      return stats_.flit_conservation_violations;
  }
  __builtin_unreachable();
}

void ProtocolChecker::report(ViolationKind kind, const std::string& message) {
  ++counter_for(kind);
  const std::string full =
      "[" + std::string(to_string(kind)) + "] " + message;
  if (violations_.size() < 64) violations_.push_back(full);
  if (opts_.level == CheckLevel::kStrict) {
    throw ProtocolViolation(kind, full);
  }
}

// --- Invariant (b): transition legality -----------------------------------

void ProtocolChecker::check_transition(Domain dom, mem::Addr line,
                                       std::uint8_t from, std::uint8_t to) {
  ++stats_.transitions_checked;
  if (!valid_state_byte(from) || !valid_state_byte(to)) {
    report(ViolationKind::kIllegalTransition,
           "corrupt state byte on line " + hex(line) + ": " +
               state_name(from) + "->" + state_name(to) + "; " +
               line_history(line));
    return;
  }
  const Protocol proto = agent_.effective_protocol(line);
  const auto f = static_cast<MesiState>(from);
  const auto t = static_cast<MesiState>(to);
  bool ok;
  if (f == MesiState::kModified && t == MesiState::kShared &&
      proto == Protocol::kInvalidation) {
    // Stock MESI downgrades M->S only on a snoop read, where the dirty
    // line is written back as the kData response of a demand fetch. An
    // M->S *push* (FlushData outside a read) is the Fig. 4 extension and
    // is illegal under invalidation.
    ok = in_op_ && (op_ == Op::kCpuRead || op_ == Op::kDeviceRead);
  } else {
    ok = legal_transition(proto, f, t);
  }
  if (!ok) {
    report(ViolationKind::kIllegalTransition,
           std::string(to_string(dom)) + " line " + hex(line) +
               " illegal transition " + state_name(from) + "->" +
               state_name(to) + " under " +
               (proto == Protocol::kUpdate ? "update" : "invalidation") +
               " protocol (op=" +
               std::string(to_string(in_op_ ? op_ : Op::kNone)) + "); " +
               line_history(line));
  }
}

// --- Invariant (a): SWMR + snoop-filter consistency ------------------------

void ProtocolChecker::check_swmr(mem::Addr line, const LineInfo& li) {
  const int owners = (is_owner(li.cpu) ? 1 : 0) + (is_owner(li.dev) ? 1 : 0);
  if (owners > 1) {
    report(ViolationKind::kSwmr,
           "line " + hex(line) + " has two M/E holders (cpu=" +
               state_name(li.cpu) + ", dev=" + state_name(li.dev) + "); " +
               line_history(line));
  }
}

void ProtocolChecker::check_snoop(mem::Addr line, const LineInfo& li) {
  const Protocol proto = agent_.effective_protocol(line);
  if (proto == Protocol::kUpdate) {
    // Section IV-A2: the update protocol's producer/consumer discipline
    // needs no directory; an entry appearing here means the no-snoop-filter
    // argument was violated without a demotion.
    if (li.sharers != 0) {
      report(ViolationKind::kSnoopFilter,
             "line " + hex(line) +
                 " has snoop-filter sharers under the update protocol; " +
                 line_history(line));
    }
    return;
  }
  const auto cpu_bit = static_cast<std::uint8_t>(coherence::Sharer::kCpu);
  const auto dev_bit = static_cast<std::uint8_t>(coherence::Sharer::kDevice);
  if ((li.sharers & cpu_bit) != 0 &&
      li.cpu == static_cast<std::uint8_t>(MesiState::kInvalid)) {
    report(ViolationKind::kSnoopFilter,
           "snoop filter lists CPU as sharer of line " + hex(line) +
               " but the CPU copy is I; " + line_history(line));
  }
  if ((li.sharers & dev_bit) != 0 &&
      li.dev == static_cast<std::uint8_t>(MesiState::kInvalid)) {
    report(ViolationKind::kSnoopFilter,
           "snoop filter lists the device as sharer of line " + hex(line) +
               " but the device copy is I; " + line_history(line));
  }
}

// --- Invariant (c): data values / DBA merge conservation -------------------

void ProtocolChecker::check_data_after_op(Op op, mem::Addr line) {
  if (opts_.cpu_mem == nullptr || opts_.device_mem == nullptr) return;
  const RegionInfo* region = region_of(line);
  if (region == nullptr) return;
  const Protocol proto = agent_.effective_protocol(line);
  LineInfo& li = line_info(line);

  if (op == Op::kCpuWrite && proto == Protocol::kUpdate) {
    // The push landed: the device copy must be the source line, or its
    // DBA merge. `(old & hi_mask) | (new & lo_mask)` per FP32 word.
    const auto src = opts_.cpu_mem->read_line(line);
    const auto dev = opts_.device_mem->read_line(line);
    const dba::DbaRegister reg = agent_.dba();
    const bool trim = region->dba_eligible && reg.trims();
    if (trim) {
      const std::uint8_t n = reg.dirty_bytes();
      for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
        for (std::uint8_t b = 0; b < 4; ++b) {
          const std::size_t i = w * 4 + b;
          if (b < n) {
            if (dev[i] != src[i]) {
              report(ViolationKind::kDataValue,
                     "DBA push lost dirty byte " + std::to_string(i) +
                         " of line " + hex(line) + "; " + line_history(line));
              return;
            }
          } else if (li.has_expected_dev &&
                     dev[i] != li.expected_dev[i]) {
            report(ViolationKind::kDbaMerge,
                   "DBA merge did not conserve stale high byte " +
                       std::to_string(i) + " of line " + hex(line) + "; " +
                       line_history(line));
            return;
          }
        }
      }
    } else {
      if (dev != src) {
        report(ViolationKind::kDataValue,
               "device copy of line " + hex(line) +
                   " differs from the pushed source; " + line_history(line));
        return;
      }
    }
    if (region->dba_eligible) {
      // Parameter lines are consumer-read-only on the device: their bytes
      // may change only through protocol pushes, so the post-push value is
      // the expectation for every later device read.
      li.expected_dev = dev;
      li.has_expected_dev = true;
    }
    return;
  }

  if (op == Op::kDeviceWrite) {
    if (proto == Protocol::kUpdate) {
      // Gradient push: the CPU-side copy must equal the device source.
      if (opts_.cpu_mem->read_line(line) !=
          opts_.device_mem->read_line(line)) {
        report(ViolationKind::kDataValue,
               "CPU copy of line " + hex(line) +
                   " differs from the device push; " + line_history(line));
        return;
      }
    }
    if (region->dba_eligible) {
      // The device is now the last writer: its bytes supersede any earlier
      // push expectation, or a later device read of this line would be
      // judged against a stale mirror.
      li.expected_dev = opts_.device_mem->read_line(line);
      li.has_expected_dev = true;
    }
    return;
  }

  if (op == Op::kDeviceRead) {
    const auto dev = opts_.device_mem->read_line(line);
    if (op_sent_data_) {
      // Demand fetch completed: the device copy was legitimately replaced
      // by the CPU line, superseding any earlier expectation.
      if (dev != opts_.cpu_mem->read_line(line)) {
        report(ViolationKind::kDataValue,
               "demand fetch of line " + hex(line) +
                   " delivered bytes that differ from the CPU copy; " +
                   line_history(line));
        return;
      }
      if (region->dba_eligible) {
        li.expected_dev = dev;
        li.has_expected_dev = true;
      }
      return;
    }
    if (li.has_expected_dev && dev != li.expected_dev) {
      report(ViolationKind::kDataValue,
             "device reader of line " + hex(line) +
                 " does not observe the last writer's bytes; " +
                 line_history(line));
    }
    return;
  }

  if (op == Op::kCpuRead && op_sent_data_) {
    // Demand fetch of a device-dirty line: CPU now holds the device bytes.
    if (opts_.cpu_mem->read_line(line) != opts_.device_mem->read_line(line)) {
      report(ViolationKind::kDataValue,
             "demand fetch of line " + hex(line) +
                 " delivered bytes that differ from the device copy; " +
                 line_history(line));
    }
  }
}

// --- Observer implementation ----------------------------------------------

void ProtocolChecker::on_op_begin(sim::Time now, Op op, mem::Addr line) {
  in_op_ = true;
  op_ = op;
  op_now_ = now;
  op_line_ = line;
  op_sent_data_ = false;
  last_time_ = now;
  touched_.clear();
}

void ProtocolChecker::on_op_end(sim::Time now, Op op, mem::Addr line) {
  // Clear the scope before checking: a strict-mode throw below must not
  // leave the checker believing it is still inside the operation.
  std::vector<mem::Addr> touched = std::move(touched_);
  touched_.clear();
  in_op_ = false;
  last_time_ = now;
  ++stats_.ops_checked;
  for (const mem::Addr t : touched) {
    const LineInfo& li = line_info(t);
    check_swmr(t, li);
    check_snoop(t, li);
  }
  check_data_after_op(op, line);
}

void ProtocolChecker::on_region_mapped(mem::Addr base, std::uint64_t bytes,
                                       std::uint8_t initial_state,
                                       bool dba_eligible) {
  regions_.push_back(RegionInfo{base, bytes, dba_eligible, initial_state});
}

void ProtocolChecker::on_state_change(Domain dom, mem::Addr line,
                                      std::uint8_t from, std::uint8_t to) {
  if (region_of(line) == nullptr) return;  // Ordinary (non-coherent) memory.
  LineInfo& li = line_info(line);
  record(li, dom, from, to);
  check_transition(dom, line, from, to);
  if (dom == Domain::kCpuCache) {
    li.cpu = to;
  } else {
    li.dev = to;
  }
  if (in_op_) {
    touch(line);
  } else {
    // External poke (test/tool): no quiescent point follows, judge now.
    check_swmr(line, li);
  }
}

void ProtocolChecker::on_cache_drop(mem::Addr line, std::uint8_t state,
                                    bool /*dirty*/) {
  if (region_of(line) == nullptr) return;
  constexpr auto kI = static_cast<std::uint8_t>(MesiState::kInvalid);
  LineInfo& li = line_info(line);
  record(li, Domain::kCpuCache, state, kI);
  check_transition(Domain::kCpuCache, line, state, kI);
  li.cpu = kI;
  touch(line);
}

void ProtocolChecker::on_sharer_change(mem::Addr line, std::uint8_t before,
                                       std::uint8_t after) {
  if (before == after || region_of(line) == nullptr) return;
  line_info(line).sharers = after;
  touch(line);
}

void ProtocolChecker::on_packet(sim::Time now, std::uint8_t dir,
                                std::uint8_t /*msg_type*/, mem::Addr /*addr*/,
                                std::uint64_t count, sim::Time delivered) {
  const std::size_t d = dir == 0 ? 0 : 1;
  injected_[d] += count;
  if (delivered > last_delivery_[d]) last_delivery_[d] = delivered;
  if (now > last_time_) last_time_ = now;
  if (in_op_) op_sent_data_ = true;
}

void ProtocolChecker::on_fence(std::uint8_t dir, sim::Time now,
                               sim::Time drain) {
  const std::size_t d = dir == 0 ? 0 : 1;
  if (drain < last_delivery_[d]) {
    report(ViolationKind::kFence,
           "CXLFENCE at t=" + std::to_string(now) + " returned drain=" +
               std::to_string(drain) + " but a flit lands at t=" +
               std::to_string(last_delivery_[d]) +
               " (in-flight traffic survived the fence)");
    return;
  }
  const auto& ch =
      agent_.link().channel(static_cast<cxl::Direction>(d)).stats();
  const std::uint64_t accounted = ch.packets - baseline_packets_[d];
  if (accounted != injected_[d]) {
    report(ViolationKind::kFlitConservation,
           "flit conservation broken on direction " + std::to_string(d) +
               ": observer saw " + std::to_string(injected_[d]) +
               " injected flits but the channel accounted " +
               std::to_string(accounted) +
               " (injected != delivered + dropped-and-reported)");
  }
}

void ProtocolChecker::on_dba_pack(const std::uint8_t* src,
                                  const std::uint8_t* payload,
                                  std::size_t payload_len,
                                  std::uint8_t reg_bits) {
  const dba::DbaRegister reg = dba::DbaRegister::decode(reg_bits);
  if (!reg.trims()) {
    if (payload_len != mem::kLineBytes ||
        !std::equal(src, src + mem::kLineBytes, payload)) {
      report(ViolationKind::kDbaMerge,
             "aggregator bypass did not forward the full line unchanged");
    }
    return;
  }
  const std::uint8_t n = reg.dirty_bytes();
  if (payload_len != dba::payload_bytes(n)) {
    report(ViolationKind::kDbaMerge,
           "aggregator payload is " + std::to_string(payload_len) +
               " bytes; register dirty_bytes=" + std::to_string(n) +
               " implies " + std::to_string(dba::payload_bytes(n)));
    return;
  }
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    for (std::uint8_t b = 0; b < n; ++b) {
      if (payload[w * n + b] != src[w * 4 + b]) {
        report(ViolationKind::kDbaMerge,
               "aggregator concatenated the wrong dirty bytes (word " +
                   std::to_string(w) + ")");
        return;
      }
    }
  }
}

void ProtocolChecker::on_dba_merge(const std::uint8_t* old_line,
                                   const std::uint8_t* payload,
                                   std::size_t payload_len,
                                   const std::uint8_t* merged,
                                   std::uint8_t reg_bits) {
  const dba::DbaRegister reg = dba::DbaRegister::decode(reg_bits);
  if (!reg.trims()) {
    if (payload_len != mem::kLineBytes ||
        !std::equal(payload, payload + mem::kLineBytes, merged)) {
      report(ViolationKind::kDbaMerge,
             "disaggregator bypass did not install the full payload");
    }
    return;
  }
  const std::uint8_t n = reg.dirty_bytes();
  if (payload_len != dba::payload_bytes(n)) {
    report(ViolationKind::kDbaMerge,
           "disaggregator payload size does not match the DBA register");
    return;
  }
  // Merge conservation: new = (old & hi_mask) | (payload & lo_mask).
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    for (std::uint8_t b = 0; b < 4; ++b) {
      const std::size_t i = w * 4 + b;
      const std::uint8_t want = b < n ? payload[w * n + b] : old_line[i];
      if (merged[i] != want) {
        report(ViolationKind::kDbaMerge,
               "disaggregator merge corrupted byte " + std::to_string(i) +
                   " (dirty_bytes=" + std::to_string(n) + "): got " +
                   std::to_string(merged[i]) + ", want " +
                   std::to_string(want));
        return;
      }
    }
  }
}

void ProtocolChecker::verify_quiescent() {
  // Sweep in ascending line order: which violation fires (and, in strict
  // mode, throws) first must not depend on hash-table layout, or two runs
  // of the same scenario report different counterexamples.
  std::vector<std::uint64_t> keys;
  keys.reserve(lines_.size());
  // teco-lint: allow(unordered-iter)
  for (const auto& [key, li] : lines_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    const mem::Addr line = key * mem::kLineBytes;
    const LineInfo& li = lines_.find(key)->second;
    check_swmr(line, li);
    check_snoop(line, li);
  }
}

}  // namespace teco::check
