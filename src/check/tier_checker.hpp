// Migration-invariant checking for the teco::tier subsystem.
//
// Mirrors the observer.hpp design one level up the stack: the
// MigrationScheduler carries an optional TierObserver* and reports every
// migration, compute access and occupancy change; the TierInvariantChecker
// enforces the tiering contract the docs promise:
//
//  T1  Residency — a tensor is never consumed while resident only in a
//      lower tier: either it is HBM-resident at access time, or the
//      scheduler charged a stall that covers the in-flight fetch.
//  T2  Prefetch deadline — a prefetch completes before its first consumer
//      access, or that access is stalled until the delivery time. An
//      access that proceeds before the recorded delivery is a violation.
//  T3  Capacity — HBM occupancy never exceeds the configured budget
//      (checked only when a budget is supplied; transient produce-then-
//      evict spikes are a planner property benches may want to observe
//      rather than fail on).
//  T4  Conservation — migrations move between distinct tiers, carry
//      non-zero bytes, and never deliver before they are issued.
//
// The interface deliberately carries raw std::uint8_t tier values so
// teco_check stays below teco_tier in the link order, exactly as
// observer.hpp stays below teco_coherence.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/protocol_checker.hpp"
#include "sim/time.hpp"

namespace teco::check {

class TierObserver {
 public:
  virtual ~TierObserver() = default;

  /// A migration was issued at `issued` and lands at `delivered`.
  /// `prefetch` distinguishes fetch-toward-HBM from eviction.
  virtual void on_tier_migration(sim::Time /*issued*/, std::uint32_t /*tensor*/,
                                 std::uint8_t /*from*/, std::uint8_t /*to*/,
                                 std::uint64_t /*bytes*/,
                                 sim::Time /*delivered*/, bool /*prefetch*/) {}

  /// A compute phase requested `tensor` at `t`. `hbm_resident` is the
  /// residency at request time; `stall` is how long the scheduler pushed
  /// compute back to satisfy the access (0 when served immediately).
  virtual void on_tier_access(sim::Time /*t*/, std::uint32_t /*tensor*/,
                              std::uint8_t /*resident_tier*/,
                              bool /*hbm_resident*/, sim::Time /*stall*/) {}

  /// Tier `tier` now holds `bytes` (after a produce/free/migration).
  virtual void on_tier_occupancy(sim::Time /*t*/, std::uint8_t /*tier*/,
                                 std::uint64_t /*bytes*/) {}
};

class TierViolation : public std::runtime_error {
 public:
  explicit TierViolation(const std::string& what) : std::runtime_error(what) {}
};

class TierInvariantChecker final : public TierObserver {
 public:
  /// `hbm_capacity_bytes` == 0 disables the T3 capacity check.
  explicit TierInvariantChecker(CheckLevel level = CheckLevel::kStrict,
                                std::uint64_t hbm_capacity_bytes = 0)
      : level_(level), hbm_capacity_(hbm_capacity_bytes) {}

  void on_tier_migration(sim::Time issued, std::uint32_t tensor,
                         std::uint8_t from, std::uint8_t to,
                         std::uint64_t bytes, sim::Time delivered,
                         bool prefetch) override;
  void on_tier_access(sim::Time t, std::uint32_t tensor,
                      std::uint8_t resident_tier, bool hbm_resident,
                      sim::Time stall) override;
  void on_tier_occupancy(sim::Time t, std::uint8_t tier,
                         std::uint64_t bytes) override;

  std::uint64_t violations() const { return violations_; }
  std::uint64_t accesses_checked() const { return accesses_; }
  std::uint64_t migrations_checked() const { return migrations_; }
  const std::vector<std::string>& log() const { return log_; }

 private:
  void fail(const std::string& what);

  CheckLevel level_;
  std::uint64_t hbm_capacity_;
  /// Pending fetch delivery time per tensor (T2). Erased once checked.
  std::unordered_map<std::uint32_t, sim::Time> pending_fetch_;
  std::uint64_t violations_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t migrations_ = 0;
  std::vector<std::string> log_;
};

}  // namespace teco::check
