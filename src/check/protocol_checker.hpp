// ProtocolChecker: a race/coherence detector for the simulated CXL domain.
//
// TECO's correctness argument rests on one delicate change to CXL.cache
// MESI — the M->S FlushData push of Fig. 4/5 — plus a lossy DBA merge path.
// The checker attaches to a HomeAgent as a check::Observer and enforces,
// per cache line of the coherent domain:
//
//  (a) SWMR — at most one M/E holder across the CPU LLC and the giant
//      cache, and the snoop filter consistent with the actual holders
//      (empty under the update protocol, Section IV-A2).
//  (b) Transition legality — every observed state change satisfies
//      legal_transition(effective_protocol, from, to). The one contextual
//      exception is stock MESI's snoop-read downgrade: M->S is accepted
//      under kInvalidation only inside a demand-read operation (the data
//      crosses as a kData writeback); an M->S *push* outside a read is the
//      update-protocol extension and fires under kInvalidation.
//  (c) Data values — when backing stores carry real bytes, a reader
//      observes the last writer's bytes. On DBA-trimmed regions the check
//      is merge conservation instead of bitwise equality: per FP32 word,
//      new_dev = (old_dev & hi_mask) | (src & lo_mask).
//  (d) Fence completeness — a CXLFENCE() result covers every in-flight
//      flit (drain >= the delivery time of everything injected), and flits
//      are conserved: the packets the checker saw injected are exactly the
//      packets the channel accounted (delivered + dropped-and-reported;
//      the closed-form link never drops silently).
//
// Violations carry the line's recent transition history (a small ring
// buffer) and either throw ProtocolViolation (CheckLevel::kStrict, the
// test default) or only count in CheckerStats (kCount, the release/bench
// posture). kOff disables attachment entirely.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/observer.hpp"
#include "coherence/home_agent.hpp"
#include "coherence/mesi.hpp"
#include "mem/backing_store.hpp"

namespace teco::check {

enum class CheckLevel : std::uint8_t {
  kOff,     ///< No checker attached; zero overhead.
  kCount,   ///< Violations increment CheckerStats; execution continues.
  kStrict,  ///< Violations throw ProtocolViolation.
};

std::string_view to_string(CheckLevel level);

/// What a violation is about, for counting and filtering.
enum class ViolationKind : std::uint8_t {
  kSwmr,
  kIllegalTransition,
  kSnoopFilter,
  kDataValue,
  kDbaMerge,
  kFence,
  kFlitConservation,
};

std::string_view to_string(ViolationKind kind);

struct CheckerStats {
  std::uint64_t transitions_checked = 0;
  std::uint64_t ops_checked = 0;
  std::uint64_t lines_tracked = 0;
  std::uint64_t swmr_violations = 0;
  std::uint64_t illegal_transitions = 0;
  std::uint64_t snoop_violations = 0;
  std::uint64_t data_value_violations = 0;
  std::uint64_t dba_merge_violations = 0;
  std::uint64_t fence_violations = 0;
  std::uint64_t flit_conservation_violations = 0;

  std::uint64_t total_violations() const {
    return swmr_violations + illegal_transitions + snoop_violations +
           data_value_violations + dba_merge_violations + fence_violations +
           flit_conservation_violations;
  }
};

class ProtocolViolation : public std::runtime_error {
 public:
  ProtocolViolation(ViolationKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  ViolationKind kind() const { return kind_; }

 private:
  ViolationKind kind_;
};

class ProtocolChecker final : public Observer {
 public:
  struct Options {
    CheckLevel level = CheckLevel::kStrict;
    /// Backing stores, when the domain carries real bytes. Without them the
    /// data-value invariant (c) is skipped; (a), (b) and (d) still apply.
    mem::BackingStore* cpu_mem = nullptr;
    mem::BackingStore* device_mem = nullptr;
  };

  /// Attaches to `agent` (and through it to the giant cache, CPU cache,
  /// snoop filter, link and DBA units) and snapshots current domain state.
  ProtocolChecker(coherence::HomeAgent& agent, Options opts);
  ~ProtocolChecker() override;

  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  const CheckerStats& stats() const { return stats_; }
  CheckLevel level() const { return opts_.level; }

  /// Violation messages recorded so far (bounded; useful under kCount).
  const std::vector<std::string>& violations() const { return violations_; }

  /// Formatted recent-transition history for `line` (for diagnostics).
  std::string line_history(mem::Addr line) const;

  /// Packets the flit-conservation invariant has observed injected in
  /// direction `dir` (0 = CPU->device / m2s, 1 = device->CPU / s2m) since
  /// attach. The obs registry's coherence.{m2s,s2m}.msgs counters are
  /// recorded at the same link choke point and must agree exactly.
  std::uint64_t packets_injected(std::uint8_t dir) const {
    return injected_[dir];
  }

  /// Sweep every tracked line for SWMR + snoop-filter consistency at a
  /// quiescent point (e.g. after a fence). Ops do this incrementally for
  /// the lines they touch; this is the whole-domain variant.
  void verify_quiescent();

  // --- Observer interface --------------------------------------------------
  void on_op_begin(sim::Time now, Op op, mem::Addr line) override;
  void on_op_end(sim::Time now, Op op, mem::Addr line) override;
  void on_region_mapped(mem::Addr base, std::uint64_t bytes,
                        std::uint8_t initial_state, bool dba_eligible) override;
  void on_state_change(Domain dom, mem::Addr line, std::uint8_t from,
                       std::uint8_t to) override;
  void on_cache_drop(mem::Addr line, std::uint8_t state, bool dirty) override;
  void on_sharer_change(mem::Addr line, std::uint8_t before,
                        std::uint8_t after) override;
  void on_packet(sim::Time now, std::uint8_t dir, std::uint8_t msg_type,
                 mem::Addr addr, std::uint64_t count,
                 sim::Time delivered) override;
  void on_fence(std::uint8_t dir, sim::Time now, sim::Time drain) override;
  void on_dba_pack(const std::uint8_t* src, const std::uint8_t* payload,
                   std::size_t payload_len, std::uint8_t reg_bits) override;
  void on_dba_merge(const std::uint8_t* old_line, const std::uint8_t* payload,
                    std::size_t payload_len, const std::uint8_t* merged,
                    std::uint8_t reg_bits) override;

 private:
  struct RegionInfo {
    mem::Addr base = 0;
    std::uint64_t bytes = 0;
    bool dba_eligible = false;
    std::uint8_t initial_state = 0;
  };

  struct TransitionRecord {
    sim::Time t = 0.0;
    Domain dom = Domain::kCpuCache;
    Op op = Op::kNone;
    std::uint8_t from = 0;
    std::uint8_t to = 0;
  };

  static constexpr std::size_t kHistoryDepth = 8;

  struct LineInfo {
    std::uint8_t cpu = 0;  ///< MesiState byte; kInvalid when absent.
    std::uint8_t dev = 0;
    std::uint8_t sharers = 0;
    bool has_expected_dev = false;
    /// Device-visible bytes after the last protocol push/fetch; only
    /// maintained for lines whose consumer copy may move only via the
    /// protocol (DBA-eligible parameter regions, demand-fetched lines).
    std::array<std::uint8_t, mem::kLineBytes> expected_dev{};
    std::array<TransitionRecord, kHistoryDepth> history{};
    std::uint8_t history_len = 0;
    std::uint8_t history_head = 0;
  };

  const RegionInfo* region_of(mem::Addr line) const;
  LineInfo& line_info(mem::Addr line);
  void record(LineInfo& li, Domain dom, std::uint8_t from, std::uint8_t to);
  void touch(mem::Addr line);

  void check_transition(Domain dom, mem::Addr line, std::uint8_t from,
                        std::uint8_t to);
  void check_swmr(mem::Addr line, const LineInfo& li);
  void check_snoop(mem::Addr line, const LineInfo& li);
  void check_data_after_op(Op op, mem::Addr line);

  void report(ViolationKind kind, const std::string& message);
  std::uint64_t& counter_for(ViolationKind kind);

  coherence::HomeAgent& agent_;
  Options opts_;
  CheckerStats stats_;
  std::vector<RegionInfo> regions_;
  std::unordered_map<std::uint64_t, LineInfo> lines_;  ///< By line index.
  std::vector<std::string> violations_;

  // Current op scope (single-level: home-agent ops never nest).
  bool in_op_ = false;
  Op op_ = Op::kNone;
  sim::Time op_now_ = 0.0;
  mem::Addr op_line_ = 0;
  bool op_sent_data_ = false;  ///< A packet crossed the link this op.
  std::vector<mem::Addr> touched_;  ///< Lines changed during the op.

  // Link accounting for invariant (d).
  std::array<std::uint64_t, 2> injected_{};       ///< Packets per direction.
  std::array<sim::Time, 2> last_delivery_{};      ///< Max delivery seen.
  std::array<std::uint64_t, 2> baseline_packets_{};  ///< Channel count at attach.
  sim::Time last_time_ = 0.0;
};

}  // namespace teco::check
