#include "md/lj_system.hpp"

#include <cmath>
#include <stdexcept>

namespace teco::md {

LjSystem::LjSystem(LjConfig cfg) : cfg_(cfg) {
  if (cfg_.fcc_cells == 0) throw std::invalid_argument("fcc_cells > 0");
  const std::size_t n = 4ull * cfg_.fcc_cells * cfg_.fcc_cells *
                        cfg_.fcc_cells;
  box_ = std::cbrt(static_cast<double>(n) / cfg_.density);
  cutoff_sq_ = cfg_.cutoff * cfg_.cutoff;

  // FCC lattice.
  pos_.reserve(n);
  const double a = box_ / cfg_.fcc_cells;
  const double basis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  for (std::uint32_t i = 0; i < cfg_.fcc_cells; ++i) {
    for (std::uint32_t j = 0; j < cfg_.fcc_cells; ++j) {
      for (std::uint32_t k = 0; k < cfg_.fcc_cells; ++k) {
        for (const auto& b : basis) {
          pos_.push_back(Vec3{(i + b[0]) * a, (j + b[1]) * a, (k + b[2]) * a});
        }
      }
    }
  }

  // Maxwell-Boltzmann velocities at the target temperature, zero net
  // momentum, exact rescale to T*.
  sim::Rng rng(cfg_.seed);
  vel_.resize(n);
  Vec3 net{};
  for (auto& v : vel_) {
    v = Vec3{rng.next_gaussian(), rng.next_gaussian(), rng.next_gaussian()};
    net.x += v.x;
    net.y += v.y;
    net.z += v.z;
  }
  for (auto& v : vel_) {
    v.x -= net.x / n;
    v.y -= net.y / n;
    v.z -= net.z / n;
  }
  double ke = 0.0;
  for (const auto& v : vel_) ke += v.x * v.x + v.y * v.y + v.z * v.z;
  const double t_now = ke / (3.0 * static_cast<double>(n));
  const double scale = std::sqrt(cfg_.temperature / t_now);
  for (auto& v : vel_) {
    v.x *= scale;
    v.y *= scale;
    v.z *= scale;
  }

  force_.resize(n);
  cells_per_side_ = static_cast<std::uint32_t>(box_ / cfg_.cutoff);
  if (cells_per_side_ < 3) cells_per_side_ = 1;  // Fall back to O(N^2) grid.
  cell_len_ = box_ / cells_per_side_;
  compute_forces();
}

double LjSystem::minimum_image(double d) const {
  if (d > 0.5 * box_) return d - box_;
  if (d < -0.5 * box_) return d + box_;
  return d;
}

void LjSystem::build_cells() {
  const std::size_t n_cells =
      static_cast<std::size_t>(cells_per_side_) * cells_per_side_ *
      cells_per_side_;
  cell_head_.assign(n_cells, -1);
  cell_next_.assign(pos_.size(), -1);
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    auto cc = [&](double x) {
      auto c = static_cast<std::int64_t>(x / cell_len_);
      c %= cells_per_side_;
      if (c < 0) c += cells_per_side_;
      return static_cast<std::uint32_t>(c);
    };
    const std::uint32_t cx = cc(pos_[i].x), cy = cc(pos_[i].y),
                        cz = cc(pos_[i].z);
    const std::size_t cell =
        (static_cast<std::size_t>(cx) * cells_per_side_ + cy) *
            cells_per_side_ + cz;
    cell_next_[i] = cell_head_[cell];
    cell_head_[cell] = static_cast<std::int32_t>(i);
  }
}

void LjSystem::compute_forces() {
  for (auto& f : force_) f = Vec3{};
  potential_ = 0.0;

  auto pair = [&](std::size_t i, std::size_t j) {
    const double dx = minimum_image(pos_[i].x - pos_[j].x);
    const double dy = minimum_image(pos_[i].y - pos_[j].y);
    const double dz = minimum_image(pos_[i].z - pos_[j].z);
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff_sq_ || r2 == 0.0) return;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    // F/r = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 in reduced units.
    const double fr = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
    force_[i].x += fr * dx;
    force_[i].y += fr * dy;
    force_[i].z += fr * dz;
    force_[j].x -= fr * dx;
    force_[j].y -= fr * dy;
    force_[j].z -= fr * dz;
    potential_ += 4.0 * inv6 * (inv6 - 1.0);
  };

  if (cells_per_side_ < 3) {
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      for (std::size_t j = i + 1; j < pos_.size(); ++j) pair(i, j);
    }
    return;
  }

  build_cells();
  const std::int32_t c = cells_per_side_;
  auto cell_of = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    x = (x % c + c) % c;
    y = (y % c + c) % c;
    z = (z % c + c) % c;
    return (static_cast<std::size_t>(x) * c + y) * c + z;
  };
  for (std::int32_t cx = 0; cx < c; ++cx) {
    for (std::int32_t cy = 0; cy < c; ++cy) {
      for (std::int32_t cz = 0; cz < c; ++cz) {
        const std::size_t home = cell_of(cx, cy, cz);
        for (std::int32_t i = cell_head_[home]; i >= 0; i = cell_next_[i]) {
          // Within the home cell, pair i with everything after it in the
          // chain — each unordered pair is visited exactly once.
          for (std::int32_t j = cell_next_[i]; j >= 0; j = cell_next_[j]) {
            pair(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
          }
          // Half the neighbor shells to count each pair once.
          static constexpr std::int32_t kHalf[13][3] = {
              {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
              {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
              {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
          for (const auto& d : kHalf) {
            const std::size_t nb = cell_of(cx + d[0], cy + d[1], cz + d[2]);
            for (std::int32_t j = cell_head_[nb]; j >= 0; j = cell_next_[j]) {
              pair(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
            }
          }
        }
      }
    }
  }
}

void LjSystem::step() {
  const double dt = cfg_.dt;
  const double half = 0.5 * dt;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    vel_[i].x += half * force_[i].x;
    vel_[i].y += half * force_[i].y;
    vel_[i].z += half * force_[i].z;
    pos_[i].x += dt * vel_[i].x;
    pos_[i].y += dt * vel_[i].y;
    pos_[i].z += dt * vel_[i].z;
    // Wrap into the box.
    auto wrap = [&](double& x) {
      if (x >= box_) x -= box_;
      if (x < 0.0) x += box_;
    };
    wrap(pos_[i].x);
    wrap(pos_[i].y);
    wrap(pos_[i].z);
  }
  compute_forces();
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    vel_[i].x += half * force_[i].x;
    vel_[i].y += half * force_[i].y;
    vel_[i].z += half * force_[i].z;
  }
}

void LjSystem::run(std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) step();
}

double LjSystem::kinetic_energy() const {
  double ke = 0.0;
  for (const auto& v : vel_) ke += v.x * v.x + v.y * v.y + v.z * v.z;
  return 0.5 * ke;
}

double LjSystem::instantaneous_temperature() const {
  return 2.0 * kinetic_energy() / (3.0 * static_cast<double>(n()));
}

std::vector<float> LjSystem::positions_f32() const {
  std::vector<float> out;
  out.reserve(pos_.size() * 3);
  for (const auto& p : pos_) {
    out.push_back(static_cast<float>(p.x));
    out.push_back(static_cast<float>(p.y));
    out.push_back(static_cast<float>(p.z));
  }
  return out;
}

std::vector<double> LjSystem::radial_distribution(std::size_t bins,
                                                  double r_max) const {
  std::vector<double> hist(bins, 0.0);
  const double dr = r_max / static_cast<double>(bins);
  const std::size_t n_atoms = n();
  for (std::size_t i = 0; i < n_atoms; ++i) {
    for (std::size_t j = i + 1; j < n_atoms; ++j) {
      const double dx = minimum_image(pos_[i].x - pos_[j].x);
      const double dy = minimum_image(pos_[i].y - pos_[j].y);
      const double dz = minimum_image(pos_[i].z - pos_[j].z);
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (r < r_max) {
        hist[static_cast<std::size_t>(r / dr)] += 2.0;  // Pair counted once.
      }
    }
  }
  // Normalize by the ideal-gas shell expectation: 4 pi r^2 dr rho N.
  const double rho = static_cast<double>(n_atoms) / (box_ * box_ * box_);
  std::vector<double> g(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    const double r_lo = dr * static_cast<double>(b);
    const double r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = shell * rho * static_cast<double>(n_atoms);
    g[b] = ideal > 0.0 ? hist[b] / ideal : 0.0;
  }
  return g;
}

std::vector<float> LjSystem::forces_f32() const {
  std::vector<float> out;
  out.reserve(force_.size() * 3);
  for (const auto& f : force_) {
    out.push_back(static_cast<float>(f.x));
    out.push_back(static_cast<float>(f.y));
    out.push_back(static_cast<float>(f.z));
  }
  return out;
}

}  // namespace teco::md
