// Offload timeline for the MD generality study (Section VII).
//
// LAMMPS-style split: the accelerator computes forces, ships them to the
// CPU; the CPU integrates positions and ships them back. The same three
// interconnect regimes as DL training apply:
//   explicit DMA copies (baseline) / CXL update streaming (TECO-CXL) /
//   update streaming + DBA on the position stream (TECO-Reduction).
// Forces, like gradients, have no stable byte pattern and never use DBA;
// positions advance by v*dt per step, so their high bytes are stable —
// the paper reports 17 % communication-volume reduction from DBA and a
// 21.5 % end-to-end improvement (78 % of it from CXL, 22 % from DBA).
#pragma once

#include <cstdint>

#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::md {

struct MdWorkload {
  std::uint64_t n_atoms = 4'000'000;
  /// Accelerator force-kernel throughput (atom-steps/s, LJ melt class).
  double gpu_atoms_per_sec = 2.0e8;
  /// CPU integrator streaming cost per atom (pos+vel+force read/write).
  double cpu_bytes_per_atom = 72.0;
  /// DBA dirty bytes for the position stream. Positions advance by v*dt
  /// (~1e-3 relative) per step, so their changes sit in the low two bytes
  /// — measured directly on the real LJ system (bench_lammps_generality).
  std::uint8_t pos_dirty_bytes = 2;
};

enum class MdMode {
  kExplicitCopy,   ///< cudaMemcpy-style baseline.
  kTecoCxl,        ///< Update-protocol streaming.
  kTecoReduction,  ///< + DBA on positions.
};

struct MdStepBreakdown {
  sim::Time force_compute = 0.0;
  sim::Time force_xfer_exposed = 0.0;
  sim::Time integrate = 0.0;
  sim::Time pos_xfer_exposed = 0.0;
  std::uint64_t bytes_to_cpu = 0;
  std::uint64_t bytes_to_device = 0;

  sim::Time total() const {
    return force_compute + force_xfer_exposed + integrate + pos_xfer_exposed;
  }
  sim::Time comm_exposed() const {
    return force_xfer_exposed + pos_xfer_exposed;
  }
  double comm_fraction() const {
    return total() > 0.0 ? comm_exposed() / total() : 0.0;
  }
};

MdStepBreakdown simulate_md_step(MdMode mode, const MdWorkload& w,
                                 const offload::Calibration& cal);

/// Section VII headline numbers.
struct MdGeneralityReport {
  double improvement = 0.0;        ///< 1 - teco_red/baseline.
  double volume_reduction = 0.0;   ///< DBA wire-volume saving.
  double cxl_contribution = 0.0;   ///< Share of improvement from CXL alone.
  double dba_contribution = 0.0;
  MdStepBreakdown baseline, cxl, reduction;
};

MdGeneralityReport md_generality_report(const MdWorkload& w,
                                        const offload::Calibration& cal);

}  // namespace teco::md
