#include "md/offload_md.hpp"

#include <algorithm>

#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "mem/address.hpp"

namespace teco::md {

namespace {

using cxl::Channel;
using sim::Time;

Time stream_lines(Channel& ch, Time t_start, Time window, std::uint64_t bytes,
                  std::uint32_t line_payload, std::size_t chunks) {
  const std::uint64_t lines = (bytes + mem::kLineBytes - 1) / mem::kLineBytes;
  if (lines == 0) return t_start;
  const auto pkt =
      cxl::data_packet(cxl::MessageType::kFlushData, 0, line_payload);
  Time last = t_start;
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::uint64_t upto = lines * (i + 1) / chunks;
    if (upto == sent) continue;
    const Time ready = t_start + window * static_cast<double>(i + 1) /
                                     static_cast<double>(chunks);
    last = ch.submit_stream(ready, pkt, upto - sent).delivered;
    sent = upto;
  }
  return last;
}

}  // namespace

MdStepBreakdown simulate_md_step(MdMode mode, const MdWorkload& w,
                                 const offload::Calibration& cal) {
  MdStepBreakdown b;
  const double atoms = static_cast<double>(w.n_atoms);
  b.force_compute = atoms / w.gpu_atoms_per_sec;
  b.integrate = atoms * w.cpu_bytes_per_atom / cal.cpu_stream_bw;
  const std::uint64_t vec_bytes = w.n_atoms * 3 * 4;  // FP32 x,y,z.

  if (mode == MdMode::kExplicitCopy) {
    // Forces copied after the kernel; positions copied after integration;
    // both fully exposed (LAMMPS GPU-package style synchronous exchange).
    const auto& phy = cal.phy;
    b.force_xfer_exposed =
        phy.dma_setup_latency + vec_bytes / phy.dma_bandwidth();
    b.pos_xfer_exposed =
        phy.dma_setup_latency + vec_bytes / phy.dma_bandwidth();
    b.bytes_to_cpu = vec_bytes;
    b.bytes_to_device = vec_bytes;
    return b;
  }

  Channel up("cxl-up", cal.phy.cxl_bandwidth(), cal.phy.packet_latency,
             cal.cxl_queue_entries);
  Channel down("cxl-down", cal.phy.cxl_bandwidth(), cal.phy.packet_latency,
               cal.cxl_queue_entries);

  // Force lines stream up as the kernel writes them back.
  const Time forces_done =
      stream_lines(up, 0.0, b.force_compute, vec_bytes, mem::kLineBytes,
                   cal.pacing_chunks);
  b.force_xfer_exposed = std::max(0.0, forces_done - b.force_compute);

  // Integration starts when forces landed; position lines stream down.
  const Time int_start = std::max(b.force_compute, forces_done);
  const std::uint32_t pos_payload =
      mode == MdMode::kTecoReduction
          ? static_cast<std::uint32_t>(mem::kWordsPerLine) * w.pos_dirty_bytes
          : static_cast<std::uint32_t>(mem::kLineBytes);
  Time pos_done = stream_lines(down, int_start, b.integrate, vec_bytes,
                               pos_payload, cal.pacing_chunks);
  if (mode == MdMode::kTecoReduction) pos_done += cal.dba_latency;
  b.pos_xfer_exposed = std::max(0.0, pos_done - (int_start + b.integrate));

  b.bytes_to_cpu = up.stats().payload_bytes;
  b.bytes_to_device = down.stats().payload_bytes;
  return b;
}

MdGeneralityReport md_generality_report(const MdWorkload& w,
                                        const offload::Calibration& cal) {
  MdGeneralityReport r;
  r.baseline = simulate_md_step(MdMode::kExplicitCopy, w, cal);
  r.cxl = simulate_md_step(MdMode::kTecoCxl, w, cal);
  r.reduction = simulate_md_step(MdMode::kTecoReduction, w, cal);

  const double base = r.baseline.total();
  r.improvement = 1.0 - r.reduction.total() / base;
  const double total_base_vol =
      static_cast<double>(r.cxl.bytes_to_cpu + r.cxl.bytes_to_device);
  const double total_red_vol =
      static_cast<double>(r.reduction.bytes_to_cpu +
                          r.reduction.bytes_to_device);
  r.volume_reduction = 1.0 - total_red_vol / total_base_vol;

  const double gain_cxl = base - r.cxl.total();
  const double gain_total = base - r.reduction.total();
  if (gain_total > 0.0) {
    r.cxl_contribution = gain_cxl / gain_total;
    r.dba_contribution = 1.0 - r.cxl_contribution;
  }
  return r;
}

}  // namespace teco::md
