// 3-D Lennard-Jones molecular dynamics (the Section VII generality study).
//
// A real implementation of the LAMMPS `melt` benchmark setup: FCC lattice
// at reduced density 0.8442, Maxwell velocities at T* = 1.44, LJ 12-6
// potential truncated at 2.5 sigma, velocity-Verlet integration, periodic
// boundaries, linked-cell neighbor search. The physics is verifiable
// (energy conservation tests) and the position arrays feed the same
// byte-change instrumentation as DL parameters — the paper's argument for
// why DBA applies to iterative solvers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace teco::md {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct LjConfig {
  std::uint32_t fcc_cells = 5;   ///< 4 atoms per cell: N = 4 * cells^3.
  double density = 0.8442;       ///< Reduced units.
  double temperature = 1.44;
  double dt = 0.005;
  double cutoff = 2.5;
  std::uint64_t seed = 2024;
};

class LjSystem {
 public:
  explicit LjSystem(LjConfig cfg);

  /// One velocity-Verlet step (forces refreshed internally).
  void step();
  void run(std::size_t steps);

  double kinetic_energy() const;
  double potential_energy() const { return potential_; }
  double total_energy() const { return kinetic_energy() + potential_; }
  double instantaneous_temperature() const;

  std::size_t n() const { return pos_.size(); }
  double box_length() const { return box_; }
  std::span<const Vec3> positions() const { return pos_; }
  std::span<const Vec3> velocities() const { return vel_; }
  std::span<const Vec3> forces() const { return force_; }

  /// Positions flattened to FP32, the representation that would cross the
  /// CPU<->accelerator link (for byte-change statistics).
  std::vector<float> positions_f32() const;
  std::vector<float> forces_f32() const;

  /// Radial distribution function g(r) on [0, r_max), `bins` bins.
  /// A crystal shows sharp lattice peaks; the melted liquid shows the
  /// characteristic smooth first-shell peak near r = 1.1 sigma — the
  /// physical check that the "melt" benchmark actually melts.
  std::vector<double> radial_distribution(std::size_t bins,
                                          double r_max) const;

 private:
  void compute_forces();
  void build_cells();
  double minimum_image(double d) const;

  LjConfig cfg_;
  double box_ = 0.0;
  double cutoff_sq_ = 0.0;
  double potential_ = 0.0;
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<Vec3> force_;

  // Linked-cell grid.
  std::uint32_t cells_per_side_ = 0;
  double cell_len_ = 0.0;
  std::vector<std::int32_t> cell_head_;
  std::vector<std::int32_t> cell_next_;
};

}  // namespace teco::md
