#include "mc/state_vector.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

namespace teco::mc {

namespace {

struct LineRec {
  std::array<std::uint8_t, 5> meta{};  ///< cpu, gc, sharers, flags, conv.
  mem::BackingStore::Line cpu{};
  mem::BackingStore::Line dev{};

  bool operator<(const LineRec& o) const {
    return std::tie(meta, cpu, dev) < std::tie(o.meta, o.cpu, o.dev);
  }
};

/// Apply the value-role swap to one line, byte-positionally: at each
/// word offset k, bytes of value_bits[0] and value_bits[1] exchange.
/// This is exactly the content a run would hold had every write used the
/// other value — DBA merges, zero lines and poison junk map correctly
/// (merge(v0,v1) <-> merge(v1,v0); zeros/0xEF are fixed points) — which is
/// what makes quotienting by the swap sound.
mem::BackingStore::Line swap_values(const mem::BackingStore::Line& line,
                                    const std::array<std::uint32_t, 2>& v) {
  std::array<std::uint8_t, 4> b0{};
  std::array<std::uint8_t, 4> b1{};
  for (std::size_t k = 0; k < 4; ++k) {
    b0[k] = static_cast<std::uint8_t>(v[0] >> (8 * k));
    b1[k] = static_cast<std::uint8_t>(v[1] >> (8 * k));
  }
  mem::BackingStore::Line out = line;
  for (std::size_t j = 0; j < mem::kLineBytes; ++j) {
    const std::size_t k = j % 4;
    if (out[j] == b0[k]) {
      out[j] = b1[k];
    } else if (out[j] == b1[k]) {
      out[j] = b0[k];
    }
  }
  return out;
}

std::string serialize(const Driver& d, bool sort_lines, bool swapped) {
  std::string key;
  key.reserve(8 + d.num_lines() * (8 + 2 * mem::kLineBytes));
  key.push_back(d.mutation_fired() ? 'M' : '-');
  key.push_back(static_cast<char>('0' + d.agent().dba().encode()));

  const DriverConfig& cfg = d.config();
  const auto emit_region = [&](std::uint8_t first, std::uint8_t count) {
    if (count == 0) return;
    key.push_back(d.region_demoted(first) ? 'D' : '-');
    std::vector<LineRec> recs;
    recs.reserve(count);
    for (std::uint8_t i = first; i < first + count; ++i) {
      LineRec r;
      r.meta = {static_cast<std::uint8_t>(d.cpu_state(i)),
                static_cast<std::uint8_t>(d.gc_state(i)), d.sharer_mask(i),
                static_cast<std::uint8_t>((d.needs_scrub(i) ? 1 : 0) |
                                          (d.ever_pushed(i) ? 2 : 0)),
                d.conv_low_bytes(i)};
      r.cpu = d.cpu_line(i);
      r.dev = d.dev_line(i);
      if (swapped) {
        r.cpu = swap_values(r.cpu, cfg.value_bits);
        r.dev = swap_values(r.dev, cfg.value_bits);
      }
      recs.push_back(r);
    }
    if (sort_lines && recs.size() > 1) std::sort(recs.begin(), recs.end());
    for (const LineRec& r : recs) {
      for (std::uint8_t m : r.meta) {
        key.push_back(static_cast<char>('0' + m));
      }
      key.append(reinterpret_cast<const char*>(r.cpu.data()), r.cpu.size());
      key.append(reinterpret_cast<const char*>(r.dev.data()), r.dev.size());
    }
  };
  emit_region(0, cfg.param_lines);
  emit_region(cfg.param_lines, cfg.grad_lines);
  return key;
}

}  // namespace

std::string canonical_state(const Driver& d, bool symmetry) {
  if (!symmetry) return serialize(d, /*sort_lines=*/false, /*swapped=*/false);
  // Canonical representative: minimum over the symmetry group — line
  // permutations within a region (handled by sorting) x the value-role
  // swap (handled by serializing both and keeping the smaller).
  std::string id = serialize(d, /*sort_lines=*/true, /*swapped=*/false);
  std::string sw = serialize(d, /*sort_lines=*/true, /*swapped=*/true);
  return sw < id ? sw : id;
}

}  // namespace teco::mc
