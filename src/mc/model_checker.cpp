#include "mc/model_checker.hpp"

#include <chrono>
#include <deque>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "mc/mutation_hook.hpp"
#include "mc/state_vector.hpp"

namespace teco::mc {

namespace {

struct StateRec {
  std::vector<Action> path;  ///< Minimal trace from the initial state.
  std::vector<std::uint32_t> preds;  ///< Sources of in-edges (reachability).
  bool good = false;                 ///< all_serviceable() held here.
};

class Search {
 public:
  explicit Search(const McConfig& cfg) : cfg_(cfg) {}

  McResult run() {
    // Wall-clock is reported-only telemetry (wall_seconds in McResult);
    // nothing in the search or the state space depends on it.
    // teco-lint: allow(wallclock)
    const auto t0 = std::chrono::steady_clock::now();

    auto d0 = rebuild();
    alphabet_ = d0->alphabet();
    add_state(canonical_state(*d0, cfg_.symmetry), {},
              /*pred=*/std::nullopt);
    check_state(std::move(d0), recs_[0].path);

    while (!frontier_.empty() && !result_.truncated) {
      const std::uint32_t cur = frontier_.front();
      frontier_.pop_front();
      // One replay serves the enabled scan, the deadlock check and the
      // first explored edge; remaining edges replay their own driver.
      auto d = replay(recs_[cur].path);
      std::vector<Action> enabled;
      bool progress = false;
      for (const Action& a : alphabet_) {
        if (!d->enabled(a)) continue;
        enabled.push_back(a);
        progress = progress || is_progress(a.kind);
      }
      if (cfg_.check_liveness && !progress) {
        record(result_.deadlocks, result_.deadlocks_total,
               {recs_[cur].path,
                "deadlock: no data-progress action is enabled", std::nullopt});
      }
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        auto ed = d != nullptr ? std::move(d) : replay(recs_[cur].path);
        explore_edge(cur, enabled[i], std::move(ed));
        if (result_.truncated) break;
      }
    }

    if (cfg_.check_liveness && !result_.truncated) check_stuck();

    result_.wall_seconds =
        // teco-lint: allow(wallclock) — report-only elapsed time.
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return std::move(result_);
  }

 private:
  std::unique_ptr<Driver> rebuild() const {
    return std::make_unique<Driver>(cfg_.driver, cfg_.mutation);
  }

  /// Replaying a stored path never violates: every stored state was
  /// reached violation-free once, and the domain is deterministic.
  std::unique_ptr<Driver> replay(const std::vector<Action>& path) const {
    auto d = rebuild();
    for (const Action& a : path) d->apply(a);
    return d;
  }

  void record(std::vector<Counterexample>& out, std::size_t& total,
              Counterexample c) {
    ++total;
    if (out.size() < cfg_.max_counterexamples) out.push_back(std::move(c));
  }

  std::uint32_t add_state(std::string key, std::vector<Action> path,
                          std::optional<std::uint32_t> pred) {
    const auto id = static_cast<std::uint32_t>(recs_.size());
    ids_.emplace(std::move(key), id);
    recs_.push_back(StateRec{std::move(path), {}, false});
    if (pred.has_value()) recs_[id].preds.push_back(*pred);
    frontier_.push_back(id);
    ++result_.states;
    if (recs_[id].path.size() > result_.max_depth) {
      result_.max_depth = recs_[id].path.size();
    }
    if (result_.states >= cfg_.max_states) result_.truncated = true;
    return id;
  }

  void explore_edge(std::uint32_t from, const Action& a,
                    std::unique_ptr<Driver> d) {
    ++result_.edges;
    std::vector<Action> path = recs_[from].path;
    path.push_back(a);
    try {
      d->apply(a);
      // Sharer pokes and other recorded-only changes are judged by the
      // whole-domain sweep; everything else throws inside apply already.
      d->checker().verify_quiescent();
    } catch (const check::ProtocolViolation& v) {
      record(result_.violations, result_.violations_total,
             {std::move(path), v.what(), v.kind()});
      return;
    }
    std::string key = canonical_state(*d, cfg_.symmetry);
    const auto it = ids_.find(key);
    if (it != ids_.end()) {
      ++result_.deduped;
      recs_[it->second].preds.push_back(from);
      return;
    }
    const std::uint32_t id = add_state(std::move(key), path, from);
    recs_[id].good = d->all_serviceable();
    check_state(std::move(d), path);
  }

  /// Global per-state properties. Consumes the driver: the quiescence
  /// probe advances it past the state it represents.
  void check_state(std::unique_ptr<Driver> d,
                   const std::vector<Action>& path) {
    if (const auto div = d->check_value_convergence(); div.has_value()) {
      record(result_.divergences, result_.divergences_total,
             {path, *div, std::nullopt});
      return;
    }
    if (!cfg_.check_liveness) return;
    // Livelock / fence-termination probe: fence + cpu_flush_all must reach
    // a canonical fixpoint; a healthy domain needs at most two rounds (the
    // flush drops the CPU's shared lines once, then nothing moves).
    const Action fence{Action::Kind::kFence, 0, 0};
    const Action flush{Action::Kind::kFlushAll, 0, 0};
    std::string before = canonical_state(*d, cfg_.symmetry);
    bool quiesced = false;
    try {
      for (int i = 0; i < cfg_.quiesce_iters; ++i) {
        d->apply(fence);
        d->apply(flush);
        d->checker().verify_quiescent();
        std::string after = canonical_state(*d, cfg_.symmetry);
        if (after == before) {
          quiesced = true;
          break;
        }
        before = std::move(after);
      }
      if (!quiesced) {
        record(result_.livelocks, result_.livelocks_total,
               {path,
                "livelock: fence+flush reached no fixpoint in " +
                    std::to_string(cfg_.quiesce_iters) + " rounds",
                std::nullopt});
        return;
      }
      // Fence termination/idempotence at the fixpoint: another CXLFENCE
      // must neither advance time (all traffic drained) nor move state.
      const sim::Time t = d->now();
      d->apply(fence);
      if (d->now() != t || canonical_state(*d, cfg_.symmetry) != before) {
        record(result_.livelocks, result_.livelocks_total,
               {path, "fence is not idempotent at the quiescent fixpoint",
                std::nullopt});
        return;
      }
    } catch (const check::ProtocolViolation& v) {
      record(result_.violations, result_.violations_total,
             {path, std::string("during quiescence: ") + v.what(), v.kind()});
      return;
    }
    if (const auto div = d->check_quiesced_convergence(); div.has_value()) {
      record(result_.divergences, result_.divergences_total,
             {path, *div, std::nullopt});
    }
  }

  /// AG EF good: a state is live iff a good (fully serviceable) state is
  /// forward-reachable. Computed by backward propagation from the good
  /// states over the recorded in-edges.
  void check_stuck() {
    std::vector<char> live(recs_.size(), 0);
    std::deque<std::uint32_t> work;
    for (std::uint32_t id = 0; id < recs_.size(); ++id) {
      if (recs_[id].good) {
        live[id] = 1;
        work.push_back(id);
      }
    }
    while (!work.empty()) {
      const std::uint32_t v = work.front();
      work.pop_front();
      for (const std::uint32_t u : recs_[v].preds) {
        if (live[u] == 0) {
          live[u] = 1;
          work.push_back(u);
        }
      }
    }
    for (std::uint32_t id = 0; id < recs_.size(); ++id) {
      if (live[id] != 0) continue;
      record(result_.stuck, result_.stuck_total,
             {recs_[id].path,
              "stuck: no fully-serviceable state is reachable from here",
              std::nullopt});
    }
  }

  const McConfig& cfg_;
  std::vector<Action> alphabet_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<StateRec> recs_;
  std::deque<std::uint32_t> frontier_;
  McResult result_;
};

}  // namespace

std::string format_counterexample(const Counterexample& c,
                                  const McConfig& cfg) {
  std::ostringstream os;
  os << "counterexample (" << c.path.size() << " actions):\n";
  for (std::size_t i = 0; i < c.path.size(); ++i) {
    os << "  " << (i + 1) << ". " << to_string(c.path[i], cfg.driver) << "\n";
  }
  os << "  => " << c.what;
  if (c.kind.has_value()) {
    os << " [" << check::to_string(*c.kind) << "]";
  }
  return os.str();
}

bool McResult::found(check::ViolationKind k) const {
  for (const Counterexample& c : violations) {
    if (c.kind.has_value() && *c.kind == k) return true;
  }
  return false;
}

std::string McResult::summary() const {
  std::ostringstream os;
  os << "states=" << states << " edges=" << edges << " deduped=" << deduped
     << " max_depth=" << max_depth << " wall=" << wall_seconds << "s";
  if (truncated) os << " TRUNCATED";
  if (ok()) {
    os << " ok";
  } else {
    os << " violations=" << violations_total
       << " divergences=" << divergences_total
       << " deadlocks=" << deadlocks_total << " livelocks=" << livelocks_total
       << " stuck=" << stuck_total;
  }
  return os.str();
}

McResult ModelChecker::run() { return Search(cfg_).run(); }

}  // namespace teco::mc
