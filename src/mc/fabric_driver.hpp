// Exhaustive model checking of a pooled-fabric all-reduce slice (teco::mc).
//
// The checked system is the *real* teco::fabric code — CxlSwitch,
// PooledMemory, ReduceUnit, and two FabricNodes whose strict per-node
// ProtocolCheckers stay attached throughout — at model-checking scale: two
// nodes, a one-line gradient shard, a tiny pool-side cache. The driver
// exposes the collective's steps as a nondeterministic action alphabet
// (push per node, fold per node, commit, broadcast per node, fence) and
// fabric_model_check() enumerates every interleaving breadth-first,
// deduplicating states by a canonical vector of protocol flags and the
// actual pool/device bytes.
//
// Properties at every explored state:
//  * the strict per-node runtime checkers hold on every edge (apply()
//    throws check::ProtocolViolation otherwise);
//  * the ReduceUnit merge watchdog holds (no double-applied fold, the
//    accumulator matches its fold-order recompute);
//  * closed-form reduced-value oracle: staged pool windows hold exactly
//    the pushed node's value, the committed result is the fold of the
//    recorded contributions, and every broadcast copy equals the pool
//    master. Node values are exactly representable (1.5, 2.25) so FP32
//    fold order cannot perturb the oracle.
//
// Mutation re-injection seeds one defect as a nondeterministic action:
//  * kDroppedFlit  — a cross-port flit vanishes after a push: the staged
//                    pool line is wiped while the oracle still expects the
//                    pushed bytes (caught by value convergence);
//  * kDoubleFold   — the reduce unit applies a node's merge twice (caught
//                    by the fold-count watchdog).
// Because drivers are replayed breadth-first, the reported counterexample
// paths are minimal by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/allreduce.hpp"
#include "fabric/fabric.hpp"
#include "fabric/pool.hpp"
#include "fabric/switch.hpp"

namespace teco::mc {

enum class FabricMutation : std::uint8_t {
  kNone,
  kDroppedFlit,
  kDoubleFold,
};

std::string_view to_string(FabricMutation m);

struct FabricMcConfig {
  FabricMutation mutation = FabricMutation::kNone;
  /// Truncation bound; an exhaustive result requires staying under it.
  std::size_t max_states = 10000;
  /// At most this many counterexamples kept (totals count every failure).
  std::size_t max_counterexamples = 8;
};

struct FabricAction {
  enum class Kind : std::uint8_t {
    kPush,       ///< Node `node` update-pushes its shard into the pool.
    kFold,       ///< The reduce unit folds node `node`'s staged shard.
    kCommit,     ///< The reduce unit commits the accumulator.
    kBroadcast,  ///< Node `node` receives the reduced line.
    kFence,      ///< Drain every link and the shared ports (stutter step).
    kMutate,     ///< Fire the configured defect.
  };
  Kind kind = Kind::kFence;
  std::uint8_t node = 0;
};

std::string to_string(const FabricAction& a);

/// One rebuildable 2-node × 1-pool-line fabric domain. Not copyable — the
/// checker replays the BFS action prefix through a fresh driver per edge.
class FabricDriver {
 public:
  explicit FabricDriver(const FabricMcConfig& cfg);

  FabricDriver(const FabricDriver&) = delete;
  FabricDriver& operator=(const FabricDriver&) = delete;

  static constexpr std::uint32_t kNodes = 2;

  /// Fixed action order — BFS determinism and the golden state counts
  /// depend on it.
  std::vector<FabricAction> alphabet() const;
  bool enabled(const FabricAction& a) const;

  /// Execute one action against the real fabric. Throws
  /// check::ProtocolViolation if a strict per-node checker objects.
  void apply(const FabricAction& a);

  /// Canonical state: protocol flags plus the actual pool/device bytes.
  std::string canonical() const;

  /// The merge watchdog + the closed-form reduced-value oracle; first
  /// failure description, or nullopt when every invariant holds.
  std::optional<std::string> check_invariants() const;

  bool mutation_fired() const { return mutation_fired_; }
  sim::Time now() const { return now_; }

 private:
  float pushed_value(std::uint32_t n) const;
  float expected_reduced() const;

  FabricMcConfig cfg_;
  fabric::FabricConfig fcfg_;
  fabric::PooledMemory pool_;
  fabric::CxlSwitch switch_;
  std::vector<mem::Region> contributions_;
  mem::Region result_;
  std::unique_ptr<fabric::ReduceUnit> reduce_;
  std::vector<std::unique_ptr<fabric::FabricNode>> nodes_;
  bool pushed_[kNodes] = {false, false};
  bool folded_[kNodes] = {false, false};
  bool committed_ = false;
  bool bcast_[kNodes] = {false, false};
  bool mutation_fired_ = false;
  sim::Time now_ = 0.0;
};

/// A minimal action trace from the initial state to a property failure.
struct FabricCounterexample {
  std::vector<FabricAction> path;
  std::string what;
};

std::string format_counterexample(const FabricCounterexample& c);

struct FabricMcResult {
  std::size_t states = 0;
  std::size_t edges = 0;
  std::size_t deduped = 0;  ///< Edges that hit an already-visited state.
  std::size_t max_depth = 0;
  bool truncated = false;   ///< Hit max_states; counts are a lower bound.
  std::vector<FabricCounterexample> failures;
  std::size_t failures_total = 0;

  bool ok() const { return failures_total == 0; }
  std::string summary() const;
};

/// Breadth-first exhaustive sweep of the 2-node × 1-pool-line slice.
FabricMcResult fabric_model_check(const FabricMcConfig& cfg);

}  // namespace teco::mc
