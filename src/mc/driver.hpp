// Nondeterministic driver over the real coherent domain (teco::mc).
//
// The model checker does not re-specify the protocol: every transition it
// explores is executed by the same coherence::HomeAgent / GiantCache /
// SnoopFilter / dba::{Aggregator,Disaggregator} code the training runtime
// uses, with the strict check::ProtocolChecker attached throughout. A
// Driver is one rebuildable instance of that domain at model-checking
// scale: a couple of lines, two write values, a tiny CPU cache (so a
// rebuild costs microseconds, not the 16 MB LLC), plus an independent byte
// oracle. The oracle mirrors what each memory must hold after every action
// using dba::expected_merge — a closed-form restatement of Section V — so
// the checker's local invariants are complemented by end-to-end value
// convergence at every explored state.
//
// Drivers are deliberately cheap to construct and are *not* copyable: the
// domain is a web of references and observers, so the checker replays the
// action prefix through a fresh Driver for every edge it explores. Replay
// through the real code is the ground truth by definition; it also means
// any hidden dependence on wall time or iteration order would show up as
// nondeterministic state counts (tests pin them as goldens).
//
// FT mode adds poison / crash / scrub actions modeling the teco::ft failure
// surface: a fault discards the device copy (giant-cache line to I, junk
// bytes) and marks the line needing a scrub before data actions may touch
// it again — mirroring ft::RecoveryManager's poison-scrub path.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/giant_cache.hpp"
#include "coherence/home_agent.hpp"
#include "cxl/link.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "sim/time.hpp"

namespace teco::mc {

class MutationHook;

struct DriverConfig {
  coherence::Protocol protocol = coherence::Protocol::kUpdate;
  /// Lines in the DBA-eligible parameter region / the gradient region.
  std::uint8_t param_lines = 2;
  std::uint8_t grad_lines = 0;
  std::uint8_t dirty_bytes = 2;
  /// The two distinguishable write values. Bit patterns are chosen so a
  /// 2-byte DBA splice of one over the other yields a third pattern (value
  /// collapse would hide merge bugs from the byte oracle), and no byte is
  /// 0x00 or 0xEF or shared between the two at the same word offset — the
  /// value-role swap of the symmetry reduction must fix zero/poison bytes
  /// and stay a well-defined involution (see state_vector.cpp).
  std::array<std::uint32_t, 2> value_bits{0x3F801234u, 0x40215678u};
  /// FT mode: enable poison / crash / scrub actions.
  bool ft = false;
  /// Disable to model an unrecoverable deployment (deadlock/stuck tests).
  bool allow_scrub = true;
  /// Explicit region demotion to invalidation MESI as an action.
  bool allow_demote = true;
};

struct Action {
  enum class Kind : std::uint8_t {
    kCpuWrite,
    kCpuRead,
    kDeviceWrite,
    kDeviceRead,
    kFence,
    kFlushAll,
    kDbaOn,
    kDbaOff,
    kDemote,
    kPoison,
    kScrub,
    kCrash,
    kMutate,
  };
  Kind kind = Kind::kFence;
  std::uint8_t line = 0;   ///< Line index (reads/writes/poison/scrub/demote).
  std::uint8_t value = 0;  ///< Index into DriverConfig::value_bits (writes).
};

/// Data-progress actions, for the deadlock invariant: a state where none of
/// these is enabled can never service another access. Fences, flushes and
/// control toggles are stutter steps and do not count as progress.
bool is_progress(Action::Kind k);

std::string to_string(const Action& a, const DriverConfig& cfg);

class Driver {
 public:
  explicit Driver(const DriverConfig& cfg, MutationHook* hook = nullptr);

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Every action the model checker may try from any state (the enabled()
  /// predicate gates per-state applicability). Order is fixed — BFS
  /// determinism and therefore the golden state counts depend on it.
  std::vector<Action> alphabet() const;

  bool enabled(const Action& a) const;

  /// Execute one action against the real domain, updating the byte oracle.
  /// Throws check::ProtocolViolation if the strict checker objects.
  void apply(const Action& a);

  // --- State-vector extraction / mutation-hook access ----------------------
  std::uint8_t num_lines() const {
    return static_cast<std::uint8_t>(cfg_.param_lines + cfg_.grad_lines);
  }
  bool is_param(std::uint8_t i) const { return i < cfg_.param_lines; }
  mem::Addr line_addr(std::uint8_t i) const;
  coherence::MesiState gc_state(std::uint8_t i) const;
  coherence::MesiState cpu_state(std::uint8_t i) const;
  std::uint8_t sharer_mask(std::uint8_t i) const;
  bool region_demoted(std::uint8_t i) const;
  bool needs_scrub(std::uint8_t i) const { return needs_scrub_[i]; }
  bool ever_pushed(std::uint8_t i) const { return ever_pushed_[i]; }
  std::uint8_t conv_low_bytes(std::uint8_t i) const {
    return conv_low_bytes_[i];
  }
  bool mutation_fired() const { return mutation_fired_; }
  mem::BackingStore::Line cpu_line(std::uint8_t i) const;
  mem::BackingStore::Line dev_line(std::uint8_t i) const;

  coherence::HomeAgent& agent() { return *agent_; }
  const coherence::HomeAgent& agent() const { return *agent_; }
  /// Mutable directory for mutation hooks; pokes through it are observed
  /// (and judged) by the attached strict checker.
  coherence::GiantCache& giant_cache() { return gc_; }
  check::ProtocolChecker& checker() { return *checker_; }
  mem::BackingStore& cpu_mem() { return cpu_mem_; }
  mem::BackingStore& device_mem() { return device_mem_; }
  sim::Time now() const { return now_; }
  const DriverConfig& config() const { return cfg_; }

  // --- Global invariants the checker cannot express ------------------------

  /// Byte-exact convergence: both memories must equal the closed-form
  /// oracle at *every* state (the oracle tracks faults too, so this holds
  /// unconditionally). Returns a description of the first divergence.
  std::optional<std::string> check_value_convergence() const;

  /// The giant-cache consumer guarantee at a quiescent point: on update-
  /// protocol parameter lines that have seen a push and are serviceable,
  /// the device copy's dirty low bytes equal the CPU master copy's.
  std::optional<std::string> check_quiesced_convergence() const;

  /// No line awaits a scrub (the "good" predicate of the reachability
  /// liveness check: from every state, some good state must be reachable).
  bool all_serviceable() const;

  /// Flip one device byte in both the memory and the oracle. Only for
  /// DivergentFlushMutation: the perturbation is value-consistent (no
  /// convergence violation) yet changes the canonical state, so repeated
  /// flushes never reach a quiescent fixpoint — a modeled livelock.
  void perturb_device_byte(std::uint8_t i, std::size_t at);

 private:
  void fill_line(mem::BackingStore::Line& line, std::uint32_t bits) const;
  /// Fault body shared by poison and crash: the giant cache discards the
  /// line (state I, device sharer retired) and the device bytes become
  /// `fill` — 0xEF junk for poison, zeros for the post-crash wipe.
  void fault_line(std::uint8_t i, std::uint8_t fill);

  DriverConfig cfg_;
  MutationHook* hook_;
  cxl::Link link_;
  coherence::GiantCache gc_;
  mem::Cache cpu_cache_;
  mem::BackingStore cpu_mem_;
  mem::BackingStore device_mem_;
  std::unique_ptr<coherence::HomeAgent> agent_;
  std::unique_ptr<check::ProtocolChecker> checker_;
  /// Closed-form mirror of what each memory must hold.
  std::vector<mem::BackingStore::Line> oracle_cpu_;
  std::vector<mem::BackingStore::Line> oracle_dev_;
  std::vector<bool> needs_scrub_;
  /// A protocol transfer has populated the device copy (mirrors the
  /// checker's has_expected_dev path dependence; part of the state vector).
  std::vector<bool> ever_pushed_;
  /// Low bytes per word guaranteed converged by the *most recent* transfer:
  /// 4 after a full-line movement, the register's dirty_bytes after a
  /// trimmed push, 0 before any transfer or after a fault. The quiesced
  /// consumer guarantee is judged against this, not the current register —
  /// content pushed under an old trim setting is legitimately stale above
  /// it. Part of the state vector (it scopes the invariant).
  std::vector<std::uint8_t> conv_low_bytes_;
  bool mutation_fired_ = false;
  sim::Time now_ = 0.0;
};

}  // namespace teco::mc
