#include "mc/driver.hpp"

#include <cstring>
#include <sstream>

#include "dba/disaggregator.hpp"
#include "mc/mutation_hook.hpp"

namespace teco::mc {

namespace {

constexpr mem::Addr kParamBase = 0x10000;
constexpr mem::Addr kGradBase = 0x20000;

/// Tiny CPU cache: 16 sets x 4 ways holds every model-checking line with
/// room to spare and rebuilds in microseconds (the LLC preset would
/// allocate 16 MB of sets per explored edge).
mem::CacheConfig mc_cache_config() {
  mem::CacheConfig cfg;
  cfg.size_bytes = 4096;
  cfg.ways = 4;
  return cfg;
}

std::string hex_bytes(const mem::BackingStore::Line& line) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(mem::kLineBytes * 2);
  for (std::uint8_t b : line) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace

bool is_progress(Action::Kind k) {
  switch (k) {
    case Action::Kind::kCpuWrite:
    case Action::Kind::kCpuRead:
    case Action::Kind::kDeviceWrite:
    case Action::Kind::kDeviceRead:
    case Action::Kind::kScrub:
      return true;
    default:
      return false;
  }
}

std::string to_string(const Action& a, const DriverConfig& cfg) {
  const auto line_name = [&]() -> std::string {
    if (a.line < cfg.param_lines) {
      return "param" + std::to_string(a.line);
    }
    return "grad" + std::to_string(a.line - cfg.param_lines);
  };
  switch (a.kind) {
    case Action::Kind::kCpuWrite:
      return "cpu_write(" + line_name() + ", v" + std::to_string(a.value) +
             ")";
    case Action::Kind::kCpuRead:
      return "cpu_read(" + line_name() + ")";
    case Action::Kind::kDeviceWrite:
      return "device_write(" + line_name() + ", v" + std::to_string(a.value) +
             ")";
    case Action::Kind::kDeviceRead:
      return "device_read(" + line_name() + ")";
    case Action::Kind::kFence:
      return "cxl_fence";
    case Action::Kind::kFlushAll:
      return "cpu_flush_all";
    case Action::Kind::kDbaOn:
      return "dba_on";
    case Action::Kind::kDbaOff:
      return "dba_off";
    case Action::Kind::kDemote:
      return "demote(" + line_name() + ")";
    case Action::Kind::kPoison:
      return "poison(" + line_name() + ")";
    case Action::Kind::kScrub:
      return "scrub(" + line_name() + ")";
    case Action::Kind::kCrash:
      return "crash";
    case Action::Kind::kMutate:
      return "mutate";
  }
  __builtin_unreachable();
}

Driver::Driver(const DriverConfig& cfg, MutationHook* hook)
    : cfg_(cfg),
      hook_(hook),
      link_(),
      gc_(1ull << 20),
      cpu_cache_(mc_cache_config()) {
  if (cfg_.param_lines > 0) {
    gc_.map_region("params", kParamBase,
                   static_cast<std::uint64_t>(cfg_.param_lines) *
                       mem::kLineBytes,
                   coherence::MesiState::kExclusive, /*dba_eligible=*/true);
  }
  if (cfg_.grad_lines > 0) {
    gc_.map_region("grads", kGradBase,
                   static_cast<std::uint64_t>(cfg_.grad_lines) *
                       mem::kLineBytes,
                   coherence::MesiState::kExclusive, /*dba_eligible=*/false);
  }
  coherence::HomeAgent::Options opts;
  opts.protocol = cfg_.protocol;
  opts.dba = dba::DbaRegister(false, cfg_.dirty_bytes);
  opts.cpu_mem = &cpu_mem_;
  opts.device_mem = &device_mem_;
  agent_ = std::make_unique<coherence::HomeAgent>(link_, gc_, cpu_cache_,
                                                  opts);
  check::ProtocolChecker::Options copts;
  copts.level = check::CheckLevel::kStrict;
  copts.cpu_mem = &cpu_mem_;
  copts.device_mem = &device_mem_;
  checker_ = std::make_unique<check::ProtocolChecker>(*agent_, copts);
  oracle_cpu_.resize(num_lines());
  oracle_dev_.resize(num_lines());
  needs_scrub_.resize(num_lines(), false);
  ever_pushed_.resize(num_lines(), false);
  conv_low_bytes_.resize(num_lines(), 0);
}

mem::Addr Driver::line_addr(std::uint8_t i) const {
  if (is_param(i)) return kParamBase + i * mem::kLineBytes;
  return kGradBase +
         static_cast<mem::Addr>(i - cfg_.param_lines) * mem::kLineBytes;
}

coherence::MesiState Driver::gc_state(std::uint8_t i) const {
  return gc_.state(line_addr(i));
}

coherence::MesiState Driver::cpu_state(std::uint8_t i) const {
  const auto* meta = cpu_cache_.peek(line_addr(i));
  return meta == nullptr ? coherence::MesiState::kInvalid
                         : static_cast<coherence::MesiState>(meta->state);
}

std::uint8_t Driver::sharer_mask(std::uint8_t i) const {
  return agent_->snoop_filter().sharer_mask(line_addr(i));
}

bool Driver::region_demoted(std::uint8_t i) const {
  const auto* region = gc_.find(line_addr(i));
  return region != nullptr && region->forced_invalidation;
}

mem::BackingStore::Line Driver::cpu_line(std::uint8_t i) const {
  return cpu_mem_.read_line(line_addr(i));
}

mem::BackingStore::Line Driver::dev_line(std::uint8_t i) const {
  return device_mem_.read_line(line_addr(i));
}

void Driver::fill_line(mem::BackingStore::Line& line,
                       std::uint32_t bits) const {
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    std::memcpy(line.data() + w * 4, &bits, 4);
  }
}

std::vector<Action> Driver::alphabet() const {
  std::vector<Action> out;
  for (std::uint8_t l = 0; l < num_lines(); ++l) {
    for (std::uint8_t v = 0;
         v < static_cast<std::uint8_t>(cfg_.value_bits.size()); ++v) {
      out.push_back({Action::Kind::kCpuWrite, l, v});
      out.push_back({Action::Kind::kDeviceWrite, l, v});
    }
    out.push_back({Action::Kind::kCpuRead, l, 0});
    out.push_back({Action::Kind::kDeviceRead, l, 0});
    if (cfg_.ft) {
      out.push_back({Action::Kind::kPoison, l, 0});
      out.push_back({Action::Kind::kScrub, l, 0});
    }
  }
  out.push_back({Action::Kind::kFence, 0, 0});
  out.push_back({Action::Kind::kFlushAll, 0, 0});
  out.push_back({Action::Kind::kDbaOn, 0, 0});
  out.push_back({Action::Kind::kDbaOff, 0, 0});
  if (cfg_.allow_demote) {
    // One demotion per region, keyed by its first line.
    if (cfg_.param_lines > 0) out.push_back({Action::Kind::kDemote, 0, 0});
    if (cfg_.grad_lines > 0) {
      out.push_back({Action::Kind::kDemote, cfg_.param_lines, 0});
    }
  }
  if (cfg_.ft) out.push_back({Action::Kind::kCrash, 0, 0});
  if (hook_ != nullptr) out.push_back({Action::Kind::kMutate, 0, 0});
  return out;
}

bool Driver::enabled(const Action& a) const {
  switch (a.kind) {
    case Action::Kind::kCpuWrite:
    case Action::Kind::kCpuRead:
    case Action::Kind::kDeviceWrite:
    case Action::Kind::kDeviceRead:
      return !needs_scrub_[a.line];
    case Action::Kind::kFence:
    case Action::Kind::kFlushAll:
      return true;
    case Action::Kind::kDbaOn:
      return !agent_->dba().active();
    case Action::Kind::kDbaOff:
      return agent_->dba().active();
    case Action::Kind::kDemote:
      // Demotion is the update protocol's fallback; under invalidation the
      // flag would be dead state-vector weight.
      return cfg_.allow_demote &&
             agent_->protocol() == coherence::Protocol::kUpdate &&
             !region_demoted(a.line);
    case Action::Kind::kPoison:
      return cfg_.ft && !needs_scrub_[a.line];
    case Action::Kind::kScrub:
      return cfg_.ft && cfg_.allow_scrub && needs_scrub_[a.line];
    case Action::Kind::kCrash: {
      if (!cfg_.ft) return false;
      for (std::uint8_t i = 0; i < num_lines(); ++i) {
        if (!needs_scrub_[i]) return true;
      }
      return false;
    }
    case Action::Kind::kMutate:
      return hook_ != nullptr && !mutation_fired_ && hook_->applicable(*this);
  }
  __builtin_unreachable();
}

void Driver::fault_line(std::uint8_t i, std::uint8_t fill) {
  const mem::Addr addr = line_addr(i);
  // The giant cache discards the faulted line; a tracked device sharer is
  // retired with it. Both pokes are observed (and judged) by the checker.
  gc_.set_state(addr, coherence::MesiState::kInvalid);
  agent_->snoop_filter().remove_sharer(addr, coherence::Sharer::kDevice);
  mem::BackingStore::Line junk;
  junk.fill(fill);
  device_mem_.write_line(addr, junk);
  oracle_dev_[i] = junk;
  needs_scrub_[i] = true;
  ever_pushed_[i] = false;
  conv_low_bytes_[i] = 0;
}

void Driver::apply(const Action& a) {
  switch (a.kind) {
    case Action::Kind::kCpuWrite: {
      const mem::Addr addr = line_addr(a.line);
      mem::BackingStore::Line src;
      fill_line(src, cfg_.value_bits[a.value]);
      cpu_mem_.write_line(addr, src);
      oracle_cpu_[a.line] = src;
      const auto d = agent_->cpu_write_line(now_, addr);
      if (d.has_value()) {
        // An update push crossed the link. Eligible regions go through the
        // DBA units; everything else ships the full line.
        if (is_param(a.line)) {
          oracle_dev_[a.line] = dba::expected_merge(
              agent_->dba(), oracle_dev_[a.line], oracle_cpu_[a.line]);
          ever_pushed_[a.line] = true;
          conv_low_bytes_[a.line] =
              agent_->dba().trims() ? agent_->dba().dirty_bytes() : 4;
        } else {
          oracle_dev_[a.line] = oracle_cpu_[a.line];
          conv_low_bytes_[a.line] = 4;
        }
      }
      break;
    }
    case Action::Kind::kCpuRead: {
      const auto acc = agent_->cpu_read_line(now_, line_addr(a.line));
      if (acc.crossed_link) oracle_cpu_[a.line] = oracle_dev_[a.line];
      break;
    }
    case Action::Kind::kDeviceWrite: {
      const mem::Addr addr = line_addr(a.line);
      mem::BackingStore::Line src;
      fill_line(src, cfg_.value_bits[a.value]);
      device_mem_.write_line(addr, src);
      oracle_dev_[a.line] = src;
      const auto d = agent_->device_write_line(now_, addr);
      if (d.has_value()) {
        // Device pushes are never trimmed (gradients have no stable
        // dirty-byte pattern — Section V).
        oracle_cpu_[a.line] = oracle_dev_[a.line];
        conv_low_bytes_[a.line] = 4;
      }
      if (is_param(a.line)) ever_pushed_[a.line] = true;
      break;
    }
    case Action::Kind::kDeviceRead: {
      const auto acc = agent_->device_read_line(now_, line_addr(a.line));
      if (acc.crossed_link) {
        oracle_dev_[a.line] = oracle_cpu_[a.line];
        conv_low_bytes_[a.line] = 4;
        if (is_param(a.line)) ever_pushed_[a.line] = true;
      }
      break;
    }
    case Action::Kind::kFence:
      now_ = agent_->cxl_fence(now_);
      break;
    case Action::Kind::kFlushAll:
      agent_->cpu_flush_all(now_);
      if (hook_ != nullptr && mutation_fired_) hook_->after_flush(*this);
      break;
    case Action::Kind::kDbaOn:
      agent_->set_dba(now_, dba::DbaRegister(true, cfg_.dirty_bytes));
      break;
    case Action::Kind::kDbaOff:
      agent_->set_dba(now_, dba::DbaRegister(false, cfg_.dirty_bytes));
      break;
    case Action::Kind::kDemote:
      agent_->demote_region(now_, line_addr(a.line));
      break;
    case Action::Kind::kPoison:
      fault_line(a.line, 0xEF);
      break;
    case Action::Kind::kCrash:
      // Device crash: every line's giant-cache copy is lost at once.
      for (std::uint8_t i = 0; i < num_lines(); ++i) {
        fault_line(i, 0x00);
      }
      break;
    case Action::Kind::kScrub: {
      // Mirror Session::scrub_device_line: repair from the CPU master copy
      // with DBA bypassed (a trimmed payload cannot fix high bytes), then
      // fence and restore the register.
      const dba::DbaRegister saved = agent_->dba();
      if (saved.active()) {
        agent_->set_dba(now_, dba::DbaRegister(false, saved.dirty_bytes()));
      }
      const mem::Addr addr = line_addr(a.line);
      const auto d = agent_->cpu_write_line(now_, addr);
      if (d.has_value()) {
        oracle_dev_[a.line] = oracle_cpu_[a.line];
        conv_low_bytes_[a.line] = 4;
        if (is_param(a.line)) ever_pushed_[a.line] = true;
      }
      now_ = agent_->cxl_fence(now_);
      if (saved.active()) agent_->set_dba(now_, saved);
      // Under invalidation MESI the scrub write does not move data; the
      // giant-cache line stays I and the repair lands on the device's next
      // demand fetch. Either way the line is serviceable again.
      needs_scrub_[a.line] = false;
      break;
    }
    case Action::Kind::kMutate:
      mutation_fired_ = true;
      hook_->apply(*this);
      break;
  }
}

std::optional<std::string> Driver::check_value_convergence() const {
  for (std::uint8_t i = 0; i < num_lines(); ++i) {
    const mem::Addr addr = line_addr(i);
    if (cpu_mem_.read_line(addr) != oracle_cpu_[i]) {
      std::ostringstream os;
      os << "CPU memory diverged from the oracle on "
         << to_string(Action{Action::Kind::kCpuRead, i, 0}, cfg_)
         << ": have " << hex_bytes(cpu_mem_.read_line(addr)) << " want "
         << hex_bytes(oracle_cpu_[i]);
      return os.str();
    }
    if (device_mem_.read_line(addr) != oracle_dev_[i]) {
      std::ostringstream os;
      os << "device memory diverged from the oracle on "
         << to_string(Action{Action::Kind::kDeviceRead, i, 0}, cfg_)
         << ": have " << hex_bytes(device_mem_.read_line(addr)) << " want "
         << hex_bytes(oracle_dev_[i]);
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> Driver::check_quiesced_convergence() const {
  for (std::uint8_t i = 0; i < num_lines(); ++i) {
    if (!is_param(i) || !ever_pushed_[i] || needs_scrub_[i]) continue;
    if (region_demoted(i) ||
        agent_->protocol() != coherence::Protocol::kUpdate) {
      continue;  // Invalidation MESI converges on demand, not at the fence.
    }
    if (gc_state(i) == coherence::MesiState::kInvalid) continue;
    // The consumer guarantee (Section V): after quiescence the device sees
    // every dirty low byte the producer wrote. Coverage is scoped by the
    // register in force at the *last* transfer (conv_low_bytes_): bytes
    // above an old trim setting are legitimately stale even if the
    // register has since widened.
    const auto cpu = oracle_cpu_[i];
    const auto dev = device_mem_.read_line(line_addr(i));
    const std::uint8_t n = conv_low_bytes_[i];
    for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
      for (std::uint8_t b = 0; b < n; ++b) {
        const std::size_t at = w * 4 + b;
        if (dev[at] != cpu[at]) {
          std::ostringstream os;
          os << "giant cache did not converge after quiescence: param"
             << static_cast<int>(i) << " byte " << at << " is 0x" << std::hex
             << static_cast<int>(dev[at]) << " want 0x"
             << static_cast<int>(cpu[at]);
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

void Driver::perturb_device_byte(std::uint8_t i, std::size_t at) {
  auto line = device_mem_.read_line(line_addr(i));
  line[at] ^= 0x01;
  device_mem_.write_line(line_addr(i), line);
  oracle_dev_[i][at] ^= 0x01;
}

bool Driver::all_serviceable() const {
  for (std::uint8_t i = 0; i < num_lines(); ++i) {
    if (needs_scrub_[i]) return false;
  }
  return true;
}

}  // namespace teco::mc
