#include "mc/mutation_hook.hpp"

#include "coherence/snoop_filter.hpp"
#include "mem/backing_store.hpp"

namespace teco::mc {

namespace {

constexpr coherence::MesiState kAllStates[] = {
    coherence::MesiState::kInvalid,
    coherence::MesiState::kShared,
    coherence::MesiState::kExclusive,
    coherence::MesiState::kModified,
};

}  // namespace

std::optional<std::pair<std::uint8_t, coherence::MesiState>>
IllegalTransitionMutation::find_target(const Driver& d) {
  for (std::uint8_t i = 0; i < d.num_lines(); ++i) {
    const auto from = d.gc_state(i);
    const auto proto = d.agent().effective_protocol(d.line_addr(i));
    for (const auto to : kAllStates) {
      if (to == from) continue;
      if (!coherence::legal_transition(proto, from, to)) {
        return std::make_pair(i, to);
      }
    }
  }
  return std::nullopt;
}

bool IllegalTransitionMutation::applicable(const Driver& d) const {
  return find_target(d).has_value();
}

void IllegalTransitionMutation::apply(Driver& d) {
  const auto target = find_target(d);
  // The poke is observed by the giant cache's attached checker, which
  // throws check::ProtocolViolation(kIllegalTransition) right here.
  d.giant_cache().set_state(d.line_addr(target->first), target->second);
}

std::optional<std::uint8_t> DroppedFlushDataMutation::find_target(
    const Driver& d) {
  for (std::uint8_t i = 0; i < d.num_lines(); ++i) {
    if (d.is_param(i) && d.ever_pushed(i) && !d.needs_scrub(i)) return i;
  }
  return std::nullopt;
}

bool DroppedFlushDataMutation::applicable(const Driver& d) const {
  return find_target(d).has_value();
}

void DroppedFlushDataMutation::apply(Driver& d) {
  const auto target = find_target(d);
  // Revert the device copy as if the FlushData payload never landed. The
  // write bypasses the protocol and the oracle on purpose: the checker
  // must notice via value invariants, not because we told it.
  mem::BackingStore::Line zeros{};
  d.device_mem().write_line(d.line_addr(*target), zeros);
}

std::optional<std::uint8_t> StaleSnoopSharerMutation::find_target(
    const Driver& d) {
  for (std::uint8_t i = 0; i < d.num_lines(); ++i) {
    const auto proto = d.agent().effective_protocol(d.line_addr(i));
    if (proto == coherence::Protocol::kUpdate) {
      // The update protocol keeps the directory empty (Section IV-A2);
      // any tracked CPU sharer here is stale by definition.
      return i;
    }
    if (d.cpu_state(i) == coherence::MesiState::kInvalid &&
        (d.sharer_mask(i) &
         static_cast<std::uint8_t>(coherence::Sharer::kCpu)) == 0) {
      // Invalidation mode: claim a CPU sharer for a line the CPU does not
      // actually hold.
      return i;
    }
  }
  return std::nullopt;
}

bool StaleSnoopSharerMutation::applicable(const Driver& d) const {
  return find_target(d).has_value();
}

void StaleSnoopSharerMutation::apply(Driver& d) {
  const auto target = find_target(d);
  // add_sharer notifies the checker, but sharer changes are only recorded;
  // the violation surfaces at the model checker's per-action
  // verify_quiescent() sweep as kSnoopFilter.
  d.agent().snoop_filter().add_sharer(d.line_addr(*target),
                                      coherence::Sharer::kCpu);
}

bool DivergentFlushMutation::applicable(const Driver& d) const {
  return d.config().param_lines > 0;
}

void DivergentFlushMutation::after_flush(Driver& d) {
  // Toggle the last byte of param0 on every flush: value-consistent (the
  // oracle moves with it) but the canonical state alternates forever, so
  // the fence+flush quiescence loop never finds a fixpoint.
  d.perturb_device_byte(0, mem::kLineBytes - 1);
}

}  // namespace teco::mc
