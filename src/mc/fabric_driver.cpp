#include "mc/fabric_driver.hpp"

#include <cstring>
#include <deque>
#include <set>
#include <sstream>
#include <utility>

#include "check/protocol_checker.hpp"
#include "mem/cache.hpp"

namespace teco::mc {

namespace {

fabric::FabricConfig slice_config() {
  fabric::FabricConfig f;
  f.nodes = FabricDriver::kNodes;
  f.shard_bytes = mem::kLineBytes;  // one pool line per shard
  f.pool_bytes = 4096;
  // Full-precision broadcasts: the oracle is exact, so the DBA trim knob
  // is exercised by tests/benches, not the state sweep.
  f.dba_enabled = false;
  f.check = true;
  // A rebuild per explored edge: the 16 MB LLC would dominate, the 8 KB
  // L1 geometry will not.
  f.pool_cache = mem::l1_config();
  return f;
}

void append_f32(std::string& s, float v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  s.append(b, sizeof v);
}

}  // namespace

std::string_view to_string(FabricMutation m) {
  switch (m) {
    case FabricMutation::kNone: return "none";
    case FabricMutation::kDroppedFlit: return "dropped_flit";
    case FabricMutation::kDoubleFold: return "double_fold";
  }
  __builtin_unreachable();
}

std::string to_string(const FabricAction& a) {
  switch (a.kind) {
    case FabricAction::Kind::kPush:
      return "push(" + std::to_string(a.node) + ")";
    case FabricAction::Kind::kFold:
      return "fold(" + std::to_string(a.node) + ")";
    case FabricAction::Kind::kCommit: return "commit";
    case FabricAction::Kind::kBroadcast:
      return "broadcast(" + std::to_string(a.node) + ")";
    case FabricAction::Kind::kFence: return "fence";
    case FabricAction::Kind::kMutate: return "mutate";
  }
  __builtin_unreachable();
}

FabricDriver::FabricDriver(const FabricMcConfig& cfg)
    : cfg_(cfg),
      fcfg_(slice_config()),
      pool_(fcfg_.pool_bytes, fcfg_.pool_base),
      switch_(fcfg_) {
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    contributions_.push_back(
        *pool_.try_carve("grad#" + std::to_string(n), n, fcfg_.shard_bytes));
  }
  result_ = *pool_.try_carve("reduced", fabric::kSharedOwner,
                             fcfg_.shard_bytes);
  reduce_ =
      std::make_unique<fabric::ReduceUnit>(pool_, contributions_, result_);
  reduce_->begin_step();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    nodes_.push_back(std::make_unique<fabric::FabricNode>(
        n, fcfg_, switch_, pool_, contributions_[n], result_,
        std::span<const mem::Region>(), nullptr));
    const std::vector<float> shard(mem::kWordsPerLine, pushed_value(n));
    nodes_[n]->set_gradients(shard);
  }
}

float FabricDriver::pushed_value(std::uint32_t n) const {
  // Exactly representable in FP32 (and their sum is too), so any fold
  // order reproduces the arithmetic sum bitwise.
  return n == 0 ? 1.5f : 2.25f;
}

float FabricDriver::expected_reduced() const {
  float sum = 0.0f;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    if (folded_[n]) sum += pushed_value(n);
  }
  return sum;
}

std::vector<FabricAction> FabricDriver::alphabet() const {
  using K = FabricAction::Kind;
  std::vector<FabricAction> out;
  for (std::uint8_t n = 0; n < kNodes; ++n) out.push_back({K::kPush, n});
  for (std::uint8_t n = 0; n < kNodes; ++n) out.push_back({K::kFold, n});
  out.push_back({K::kCommit, 0});
  for (std::uint8_t n = 0; n < kNodes; ++n) out.push_back({K::kBroadcast, n});
  out.push_back({K::kFence, 0});
  out.push_back({K::kMutate, 0});
  return out;
}

bool FabricDriver::enabled(const FabricAction& a) const {
  switch (a.kind) {
    case FabricAction::Kind::kPush:
      return !pushed_[a.node];
    case FabricAction::Kind::kFold:
      return pushed_[a.node] && !folded_[a.node] && !committed_;
    case FabricAction::Kind::kCommit:
      return folded_[0] && folded_[1] && !committed_;
    case FabricAction::Kind::kBroadcast:
      return committed_ && !bcast_[a.node];
    case FabricAction::Kind::kFence:
      return true;
    case FabricAction::Kind::kMutate:
      if (mutation_fired_ || cfg_.mutation == FabricMutation::kNone) {
        return false;
      }
      if (cfg_.mutation == FabricMutation::kDroppedFlit) {
        return pushed_[0] || pushed_[1];
      }
      return folded_[0] || folded_[1];
  }
  __builtin_unreachable();
}

void FabricDriver::apply(const FabricAction& a) {
  switch (a.kind) {
    case FabricAction::Kind::kPush:
      nodes_[a.node]->push_contribution(now_, 0);
      now_ = nodes_[a.node]->fence(now_);
      pushed_[a.node] = true;
      return;
    case FabricAction::Kind::kFold:
      now_ = reduce_->fold(now_, a.node, 0);
      folded_[a.node] = true;
      return;
    case FabricAction::Kind::kCommit:
      now_ = reduce_->commit(now_, 0);
      committed_ = true;
      return;
    case FabricAction::Kind::kBroadcast:
      nodes_[a.node]->broadcast_result(now_, 0);
      now_ = nodes_[a.node]->fence(now_);
      bcast_[a.node] = true;
      return;
    case FabricAction::Kind::kFence:
      for (auto& n : nodes_) {
        const sim::Time f = n->fence(now_);
        if (f > now_) now_ = f;
      }
      return;
    case FabricAction::Kind::kMutate:
      mutation_fired_ = true;
      if (cfg_.mutation == FabricMutation::kDroppedFlit) {
        // A cross-port flit vanishes: the staged window loses the pushed
        // bytes while the oracle still expects them.
        for (std::uint32_t n = 0; n < kNodes; ++n) {
          if (pushed_[n]) {
            pool_.store().write_line(contributions_[n].base,
                                     mem::BackingStore::Line{});
            return;
          }
        }
      } else {
        // The reduce unit applies a node's merge a second time.
        for (std::uint32_t n = 0; n < kNodes; ++n) {
          if (folded_[n]) {
            now_ = reduce_->fold(now_, n, 0);
            return;
          }
        }
      }
      return;
  }
  __builtin_unreachable();
}

std::string FabricDriver::canonical() const {
  std::string s;
  s.reserve(64);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    s.push_back(pushed_[n] ? 'P' : 'p');
    s.push_back(folded_[n] ? 'F' : 'f');
    s.push_back(bcast_[n] ? 'B' : 'b');
  }
  s.push_back(committed_ ? 'C' : 'c');
  s.push_back(mutation_fired_ ? 'M' : 'm');
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    append_f32(s, pool_.store().read_f32(contributions_[n].base));
    append_f32(s, nodes_[n]->device_f32(result_.base));
  }
  append_f32(s, reduce_->accumulator(0)[0]);
  append_f32(s, pool_.store().read_f32(result_.base));
  return s;
}

std::optional<std::string> FabricDriver::check_invariants() const {
  if (const auto v = reduce_->check_invariants()) return v;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const float want_staged = pushed_[n] ? pushed_value(n) : 0.0f;
    for (std::uint64_t w = 0; w < mem::kWordsPerLine; ++w) {
      const float got = pool_.store().read_f32(contributions_[n].base + w * 4);
      if (got != want_staged) {
        return "staged pool word " + std::to_string(w) + " of node " +
               std::to_string(n) + " holds " + std::to_string(got) +
               ", oracle expects " + std::to_string(want_staged);
      }
    }
  }
  const float acc = reduce_->accumulator(0)[0];
  if (acc != expected_reduced()) {
    return "accumulator holds " + std::to_string(acc) +
           ", oracle expects " + std::to_string(expected_reduced());
  }
  const float want_result = committed_ ? expected_reduced() : 0.0f;
  if (pool_.store().read_f32(result_.base) != want_result) {
    return "pool result word holds " +
           std::to_string(pool_.store().read_f32(result_.base)) +
           ", oracle expects " + std::to_string(want_result);
  }
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const float want = bcast_[n] ? want_result : 0.0f;
    if (nodes_[n]->device_f32(result_.base) != want) {
      return "node " + std::to_string(n) + " result copy holds " +
             std::to_string(nodes_[n]->device_f32(result_.base)) +
             ", oracle expects " + std::to_string(want);
    }
  }
  return std::nullopt;
}

std::string format_counterexample(const FabricCounterexample& c) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < c.path.size(); ++i) {
    if (i != 0) os << ", ";
    os << to_string(c.path[i]);
  }
  os << "] -> " << c.what;
  return os.str();
}

std::string FabricMcResult::summary() const {
  std::ostringstream os;
  os << "states=" << states << " edges=" << edges << " deduped=" << deduped
     << " max_depth=" << max_depth
     << (truncated ? " TRUNCATED" : " exhaustive")
     << " failures=" << failures_total;
  return os.str();
}

FabricMcResult fabric_model_check(const FabricMcConfig& cfg) {
  FabricMcResult res;
  std::set<std::string> visited;
  std::deque<std::vector<FabricAction>> queue;
  std::vector<FabricAction> alphabet;
  {
    FabricDriver d0(cfg);
    alphabet = d0.alphabet();
    visited.insert(d0.canonical());
    res.states = 1;
  }
  queue.push_back({});

  while (!queue.empty()) {
    const std::vector<FabricAction> path = std::move(queue.front());
    queue.pop_front();
    for (const FabricAction& a : alphabet) {
      // Drivers are not copyable: replay the BFS prefix through a fresh
      // domain, so every explored edge runs the real fabric code.
      FabricDriver d(cfg);
      for (const FabricAction& p : path) d.apply(p);
      if (!d.enabled(a)) continue;
      ++res.edges;
      const auto fail = [&](const std::string& what) {
        ++res.failures_total;
        if (res.failures.size() < cfg.max_counterexamples) {
          FabricCounterexample cx;
          cx.path = path;
          cx.path.push_back(a);
          cx.what = what;
          res.failures.push_back(std::move(cx));
        }
      };
      try {
        d.apply(a);
      } catch (const check::ProtocolViolation& v) {
        fail(v.what());
        continue;
      }
      if (const auto inv = d.check_invariants()) {
        fail(*inv);
        continue;
      }
      const std::string c = d.canonical();
      if (visited.count(c) != 0) {
        ++res.deduped;
        continue;
      }
      if (res.states >= cfg.max_states) {
        res.truncated = true;
        continue;
      }
      visited.insert(c);
      ++res.states;
      std::vector<FabricAction> next = path;
      next.push_back(a);
      if (next.size() > res.max_depth) res.max_depth = next.size();
      queue.push_back(std::move(next));
    }
  }
  return res;
}

}  // namespace teco::mc
