// Canonical state-vector extraction for the explicit-state model checker.
//
// A state is everything that determines future behavior of the driven
// domain: per line the CPU and giant-cache MESI states, the snoop-filter
// sharer mask, the scrub/push flags, and the *contents* of both memory
// copies; globally the DBA register, per-region demotion flags and the
// one-shot mutation flag. Simulated time is deliberately excluded — the
// protocol's state behavior is time-independent (the closed-form link
// resolves timing at fences), and including it would make every state
// unique. Timing races are the HB analyzer's domain instead.
//
// Two symmetry reductions keep the space small, both sound because the
// protocol treats lines within a region and data bytes opaquely:
//  * Line symmetry — lines are sorted within their region by their full
//    record, so permuting identically-configured lines collapses.
//  * Value symmetry — the key is the lexicographic minimum of the state
//    serialized under the identity and under the explicit value-role swap
//    (bytes of value_bits[0] and value_bits[1] exchanged positionally), so
//    runs differing only in which write value played which role collapse.
//    First-occurrence renaming would be unsound here: DBA merges derive
//    third patterns from the two values, and renaming merges states no
//    global value permutation relates.
#pragma once

#include <string>

#include "mc/driver.hpp"

namespace teco::mc {

/// Serialize the driver's current state to a canonical key. `symmetry`
/// disables both reductions when false (for measuring their effect).
std::string canonical_state(const Driver& d, bool symmetry);

}  // namespace teco::mc
