// Vector-clock happens-before analysis over coherence-event traces.
//
// The model checker (model_checker.hpp) proves protocol *state* safety by
// exhaustive enumeration; this pass proves a recorded *timing* schedule
// race-free. TECO's link is closed-form — a push issued at `now` lands at
// `delivered` — so an access can observe a line before the message that
// orders it has landed. The analyzer replays a trace of accesses, link
// messages and fences with one vector clock per agent (CPU, device) and
// flags every pair of same-line accesses by different agents that no
// coherence message or fence orders.
//
// Ordering edges:
//  * Program order per agent.
//  * Coherence messages (FlushData, Invalidate, InvAck, DemandRead, Data):
//    the sender's clock is snapshotted at injection and joined into the
//    receiver when the receiver next touches that line at or after the
//    delivery time. kDbaConfig carries a register encoding, not a line
//    address, and ReadOwn/GO/GO_Flush are on-package — none create
//    cross-agent edges.
//  * CXLFENCE: TECO only ever issues whole-link fences (fence_all at step
//    boundaries, Fig. 5), so a fence is a two-agent barrier — both clocks
//    join and everything previously in flight is subsumed. Without this
//    the device's forward reads of step N+1 would falsely race with the
//    CPU's optimizer writes of step N.
//
// HbRecorder is the check::Observer that captures the trace; attach it via
// core::Session (`check = hb`) or directly to a HomeAgent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "check/observer.hpp"
#include "mem/address.hpp"
#include "sim/time.hpp"

namespace teco::mc {

/// The two agents of the coherent domain, used as vector-clock indices.
enum class HbAgent : std::uint8_t {
  kCpu = 0,
  kDevice = 1,
};

std::string_view to_string(HbAgent a);

struct HbEvent {
  enum class Kind : std::uint8_t {
    kAccess,   ///< A home-agent read/write op by `agent` on `line`.
    kMessage,  ///< A coherence packet from `agent` (the sender) on `line`.
    kFence,    ///< A CXLFENCE drain (global barrier, see header comment).
  };
  Kind kind = Kind::kFence;
  sim::Time t = 0.0;          ///< Issue time.
  sim::Time delivered = 0.0;  ///< Messages: link delivery time.
  HbAgent agent = HbAgent::kCpu;
  bool is_write = false;      ///< Accesses only.
  mem::Addr line = 0;
  std::uint8_t msg_type = 0;  ///< Raw cxl::MessageType byte (messages).
};

/// Observer that records the HB-relevant event stream of a coherent domain.
/// Cheap enough to leave attached for a whole training run; analysis is a
/// separate post-run pass (analyze_hb).
class HbRecorder final : public check::Observer {
 public:
  const std::vector<HbEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  void on_op_begin(sim::Time now, check::Op op, mem::Addr line) override;
  void on_packet(sim::Time now, std::uint8_t dir, std::uint8_t msg_type,
                 mem::Addr addr, std::uint64_t count,
                 sim::Time delivered) override;
  void on_fence(std::uint8_t dir, sim::Time now, sim::Time drain) override;

 private:
  std::vector<HbEvent> events_;
};

/// One side of an unordered pair: which access, by whom, when.
struct HbAccessRef {
  sim::Time t = 0.0;
  HbAgent agent = HbAgent::kCpu;
  bool is_write = false;
  std::size_t event_index = 0;  ///< Index into the analyzed event stream.
};

struct HbRace {
  mem::Addr line = 0;
  HbAccessRef prior;    ///< The earlier-recorded access of the pair.
  HbAccessRef current;  ///< The access at which the race was detected.

  std::string describe() const;
};

struct HbReport {
  /// Detected races, in detection order (bounded at kMaxRaces; races_total
  /// keeps the full count).
  std::vector<HbRace> races;
  std::uint64_t races_total = 0;
  std::uint64_t accesses = 0;
  std::uint64_t messages = 0;
  std::uint64_t fences = 0;
  std::uint64_t joins = 0;  ///< Message-delivery clock joins applied.

  bool clean() const { return races_total == 0; }
  std::string to_string() const;

  static constexpr std::size_t kMaxRaces = 64;
};

/// Run the vector-clock pass over `events` (in recorded order).
HbReport analyze_hb(std::span<const HbEvent> events);

}  // namespace teco::mc
