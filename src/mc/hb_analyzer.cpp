#include "mc/hb_analyzer.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_map>

#include "cxl/packet.hpp"

namespace teco::mc {

namespace {

constexpr std::size_t kAgents = 2;
using Clock = std::array<std::uint64_t, kAgents>;

std::size_t idx(HbAgent a) { return static_cast<std::size_t>(a); }
HbAgent other(HbAgent a) {
  return a == HbAgent::kCpu ? HbAgent::kDevice : HbAgent::kCpu;
}

void join(Clock& dst, const Clock& src) {
  for (std::size_t i = 0; i < kAgents; ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

/// Message types that order cross-agent accesses. kDbaConfig's addr field
/// is a register encoding and ReadOwn/GO/GO_Flush never cross the link as
/// ordering traffic between the two caches.
bool orders(std::uint8_t msg_type) {
  switch (static_cast<cxl::MessageType>(msg_type)) {
    case cxl::MessageType::kFlushData:
    case cxl::MessageType::kInvalidate:
    case cxl::MessageType::kInvAck:
    case cxl::MessageType::kDemandRead:
    case cxl::MessageType::kData:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view to_string(HbAgent a) {
  return a == HbAgent::kCpu ? "cpu" : "device";
}

void HbRecorder::on_op_begin(sim::Time now, check::Op op, mem::Addr line) {
  HbEvent e;
  e.kind = HbEvent::Kind::kAccess;
  e.t = now;
  e.line = line;
  switch (op) {
    case check::Op::kCpuWrite:
      e.agent = HbAgent::kCpu;
      e.is_write = true;
      break;
    case check::Op::kCpuRead:
      e.agent = HbAgent::kCpu;
      break;
    case check::Op::kDeviceWrite:
      e.agent = HbAgent::kDevice;
      e.is_write = true;
      break;
    case check::Op::kDeviceRead:
      e.agent = HbAgent::kDevice;
      break;
    case check::Op::kNone:
    case check::Op::kFlushAll:
      // Not a per-line access (flush-all ordering comes from the fence that
      // precedes it in the step protocol).
      return;
  }
  events_.push_back(e);
}

void HbRecorder::on_packet(sim::Time now, std::uint8_t dir,
                           std::uint8_t msg_type, mem::Addr addr,
                           std::uint64_t /*count*/, sim::Time delivered) {
  if (!orders(msg_type)) return;
  HbEvent e;
  e.kind = HbEvent::Kind::kMessage;
  e.t = now;
  e.delivered = delivered;
  // dir 0 is CPU->device (m2s), so the sender is the CPU.
  e.agent = dir == 0 ? HbAgent::kCpu : HbAgent::kDevice;
  e.line = addr;
  e.msg_type = msg_type;
  events_.push_back(e);
}

void HbRecorder::on_fence(std::uint8_t /*dir*/, sim::Time /*now*/,
                          sim::Time drain) {
  HbEvent e;
  e.kind = HbEvent::Kind::kFence;
  e.t = drain;
  events_.push_back(e);
}

std::string HbRace::describe() const {
  std::ostringstream os;
  os << "line 0x" << std::hex << line << std::dec << ": "
     << to_string(current.agent) << (current.is_write ? " write" : " read")
     << " @t=" << current.t << " (event #" << current.event_index
     << ") unordered with " << to_string(prior.agent)
     << (prior.is_write ? " write" : " read") << " @t=" << prior.t
     << " (event #" << prior.event_index << ")";
  return os.str();
}

std::string HbReport::to_string() const {
  std::ostringstream os;
  os << "hb: " << accesses << " accesses, " << messages << " messages, "
     << fences << " fences, " << joins << " joins -> " << races_total
     << " race(s)\n";
  for (const HbRace& r : races) {
    os << "  RACE " << r.describe() << "\n";
  }
  if (races_total > races.size()) {
    os << "  ... " << races_total - races.size() << " more\n";
  }
  return os.str();
}

HbReport analyze_hb(std::span<const HbEvent> events) {
  HbReport report;

  std::array<Clock, kAgents> vc{};  // vc[agent] = that agent's vector clock.

  struct PendingMsg {
    Clock snap{};  ///< Sender clock at injection.
    sim::Time delivered = 0.0;
    HbAgent dst = HbAgent::kCpu;
  };
  std::unordered_map<std::uint64_t, std::vector<PendingMsg>> pending;

  struct LastAccess {
    std::uint64_t clock = 0;  ///< Accessor's own component at the access.
    bool valid = false;
    HbAccessRef ref;
  };
  struct LineState {
    std::array<LastAccess, kAgents> last_write;
    std::array<LastAccess, kAgents> last_read;
  };
  std::unordered_map<std::uint64_t, LineState> lines;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const HbEvent& e = events[i];
    const std::uint64_t key = mem::line_index(e.line);
    switch (e.kind) {
      case HbEvent::Kind::kMessage: {
        ++report.messages;
        pending[key].push_back(
            PendingMsg{vc[idx(e.agent)], e.delivered, other(e.agent)});
        break;
      }
      case HbEvent::Kind::kFence: {
        ++report.fences;
        // Whole-link barrier: both clocks agree afterwards, and every
        // in-flight snapshot is dominated by the joined clock.
        Clock joined = vc[0];
        join(joined, vc[1]);
        vc[0] = vc[1] = joined;
        ++vc[0][0];
        ++vc[1][1];
        pending.clear();
        break;
      }
      case HbEvent::Kind::kAccess: {
        ++report.accesses;
        const std::size_t a = idx(e.agent);
        // Deliver message edges this access can have observed.
        if (auto it = pending.find(key); it != pending.end()) {
          auto& q = it->second;
          for (std::size_t m = 0; m < q.size();) {
            if (q[m].dst == e.agent && q[m].delivered <= e.t) {
              join(vc[a], q[m].snap);
              ++report.joins;
              q[m] = q.back();
              q.pop_back();
            } else {
              ++m;
            }
          }
        }
        LineState& ls = lines[key];
        const std::size_t b = idx(other(e.agent));
        auto flag = [&](const LastAccess& prior) {
          ++report.races_total;
          if (report.races.size() < HbReport::kMaxRaces) {
            HbRace race;
            race.line = mem::line_base(e.line);
            race.prior = prior.ref;
            race.current = HbAccessRef{e.t, e.agent, e.is_write, i};
            report.races.push_back(race);
          }
        };
        // Write-write / read-write in either direction: the other agent's
        // conflicting access must be below our clock's view of it.
        if (ls.last_write[b].valid && ls.last_write[b].clock > vc[a][b]) {
          flag(ls.last_write[b]);
        }
        if (e.is_write && ls.last_read[b].valid &&
            ls.last_read[b].clock > vc[a][b]) {
          flag(ls.last_read[b]);
        }
        ++vc[a][a];
        LastAccess& slot = e.is_write ? ls.last_write[a] : ls.last_read[a];
        slot.clock = vc[a][a];
        slot.valid = true;
        slot.ref = HbAccessRef{e.t, e.agent, e.is_write, i};
        break;
      }
    }
  }
  return report;
}

}  // namespace teco::mc
