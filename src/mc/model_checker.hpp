// Explicit-state model checker for the TECO coherent domain (teco::mc).
//
// Murphi-style breadth-first enumeration: starting from a freshly built
// Driver, explore every interleaving of the driver's action alphabet,
// deduplicating states by their canonical vector (state_vector.hpp). The
// checked system is the *real* HomeAgent / GiantCache / SnoopFilter / DBA
// code with the strict runtime checker attached — the model checker adds
// the global properties a per-transition checker cannot see:
//
//  * safety     — the strict checker's invariants hold on every edge, plus
//                 a whole-domain verify_quiescent() sweep after each action;
//  * convergence— both memories match the closed-form byte oracle at every
//                 state, and quiesced parameter lines satisfy the Section V
//                 dirty-byte consumer guarantee;
//  * deadlock   — every reachable state has at least one enabled
//                 data-progress action;
//  * livelock   — from every reachable state, fence + cpu_flush_all reaches
//                 a canonical fixpoint within a bounded number of rounds,
//                 and one more fence at the fixpoint is a no-op (every
//                 CXLFENCE terminates);
//  * stuck      — from every reachable state some fully-serviceable state
//                 is reachable (AG EF good, via reverse reachability over
//                 the explored edge set).
//
// Because Drivers are not copyable, edges are explored by replaying the
// BFS path through a fresh Driver; BFS order plus the fixed alphabet order
// make state/edge counts deterministic (tests pin them as goldens), and
// counterexamples are minimal-length action traces by construction.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/protocol_checker.hpp"
#include "mc/driver.hpp"

namespace teco::mc {

class MutationHook;

struct McConfig {
  DriverConfig driver;
  /// Optional seeded defect, explored as a nondeterministic action.
  MutationHook* mutation = nullptr;
  /// Quotient the space by line and value symmetry (state_vector.hpp).
  bool symmetry = true;
  /// Deadlock / livelock / stuck checks (safety and convergence always run).
  bool check_liveness = true;
  /// Fence+flush rounds allowed before a missing fixpoint is a livelock.
  /// A healthy domain quiesces in at most two.
  int quiesce_iters = 4;
  /// Truncation bound; an exhaustive result requires staying under it.
  std::size_t max_states = 200000;
  /// At most this many counterexamples kept per category (totals still
  /// count every occurrence).
  std::size_t max_counterexamples = 8;
};

/// A minimal action trace from the initial state to a property failure.
struct Counterexample {
  std::vector<Action> path;
  std::string what;
  /// Set when the failure came from the runtime checker.
  std::optional<check::ViolationKind> kind;
};

std::string format_counterexample(const Counterexample& c,
                                  const McConfig& cfg);

struct McResult {
  std::size_t states = 0;
  std::size_t edges = 0;
  std::size_t deduped = 0;   ///< Edges that hit an already-visited state.
  std::size_t max_depth = 0;
  double wall_seconds = 0.0;
  bool truncated = false;    ///< Hit max_states; counts are a lower bound.

  std::vector<Counterexample> violations;   ///< Runtime-checker failures.
  std::vector<Counterexample> divergences;  ///< Oracle / convergence.
  std::vector<Counterexample> deadlocks;
  std::vector<Counterexample> livelocks;
  std::vector<Counterexample> stuck;
  std::size_t violations_total = 0;
  std::size_t divergences_total = 0;
  std::size_t deadlocks_total = 0;
  std::size_t livelocks_total = 0;
  std::size_t stuck_total = 0;

  /// No property failed. An exhaustiveness claim additionally needs
  /// !truncated.
  bool ok() const {
    return violations_total == 0 && divergences_total == 0 &&
           deadlocks_total == 0 && livelocks_total == 0 && stuck_total == 0;
  }
  bool found(check::ViolationKind k) const;
  std::string summary() const;
};

class ModelChecker {
 public:
  explicit ModelChecker(McConfig cfg) : cfg_(std::move(cfg)) {}

  McResult run();

 private:
  McConfig cfg_;
};

}  // namespace teco::mc
