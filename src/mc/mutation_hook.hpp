// Protocol-mutation hooks: seeded defects the model checker must catch.
//
// tests/check_test.cpp (PR 1) injects illegal transitions, dropped
// FlushData payloads and stale snoop-filter sharers at hand-picked points
// and asserts the runtime checker fires. These hooks re-inject the same
// three defect families as a *nondeterministic action* (Action::kMutate):
// the model checker explores firing the mutation at every reachable state
// where it applies, proving the detection is exhaustive rather than
// coincidental — and, because the search is breadth-first, the reported
// counterexample is a minimal action trace to the defect.
//
// Hooks must be stateless with respect to a particular Driver instance:
// the checker rebuilds and replays drivers constantly, so every decision
// has to be derived from the driver passed in, never cached.
#pragma once

#include <optional>
#include <string_view>
#include <utility>

#include "coherence/mesi.hpp"
#include "mc/driver.hpp"

namespace teco::mc {

class MutationHook {
 public:
  virtual ~MutationHook() = default;
  virtual std::string_view name() const = 0;
  /// Whether the defect can be injected in the driver's current state.
  virtual bool applicable(const Driver& d) const = 0;
  /// Inject the defect (runs as the kMutate action, at most once per path).
  virtual void apply(Driver& d) = 0;
  /// Called after every cpu_flush_all once the mutation has fired; lets a
  /// hook model a component that keeps perturbing state (livelock tests).
  virtual void after_flush(Driver& d) { (void)d; }
};

/// Directly pokes a giant-cache line into a state the effective protocol
/// forbids (e.g. I->M, or M->S under invalidation MESI). The strict
/// checker judges external pokes immediately, so the checker's BFS finds
/// the shortest path to a state where any illegal target exists.
class IllegalTransitionMutation final : public MutationHook {
 public:
  std::string_view name() const override { return "illegal-transition"; }
  bool applicable(const Driver& d) const override;
  void apply(Driver& d) override;

 private:
  static std::optional<std::pair<std::uint8_t, coherence::MesiState>>
  find_target(const Driver& d);
};

/// Models a lost FlushData payload: after a push has populated a device
/// line, its bytes silently revert to the pre-push contents while the
/// protocol state claims the push landed. Caught as a data-value violation
/// on the consumer's next read and as oracle divergence at the state.
class DroppedFlushDataMutation final : public MutationHook {
 public:
  std::string_view name() const override { return "dropped-flushdata"; }
  bool applicable(const Driver& d) const override;
  void apply(Driver& d) override;

 private:
  static std::optional<std::uint8_t> find_target(const Driver& d);
};

/// Plants a stale CPU sharer in the snoop filter on a line whose directory
/// must not track one (the update protocol keeps the filter empty —
/// Section IV-A2). Caught by the whole-domain quiescent sweep.
class StaleSnoopSharerMutation final : public MutationHook {
 public:
  std::string_view name() const override { return "stale-snoop-sharer"; }
  bool applicable(const Driver& d) const override;
  void apply(Driver& d) override;

 private:
  static std::optional<std::uint8_t> find_target(const Driver& d);
};

/// Livelock modeling (negative liveness test): once fired, every flush
/// perturbs a device line's last byte, so fence+flush_all never reaches a
/// canonical fixpoint.
class DivergentFlushMutation final : public MutationHook {
 public:
  std::string_view name() const override { return "divergent-flush"; }
  bool applicable(const Driver& d) const override;
  void apply(Driver&) override {}  // Arming only; the damage is per flush.
  void after_flush(Driver& d) override;
};

}  // namespace teco::mc
