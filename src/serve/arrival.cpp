#include "serve/arrival.hpp"

#include <algorithm>
#include <cmath>

namespace teco::serve {

std::string_view to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kTrace: return "trace";
  }
  __builtin_unreachable();
}

std::optional<ArrivalKind> arrival_from_string(std::string_view s) {
  if (s == "poisson") return ArrivalKind::kPoisson;
  if (s == "bursty") return ArrivalKind::kBursty;
  if (s == "trace") return ArrivalKind::kTrace;
  return std::nullopt;
}

std::uint64_t kv_bytes_per_token(const dl::ModelConfig& m) {
  // K and V vectors, every layer, FP16.
  return 2ull * m.n_layers * m.hidden_size * 2ull;
}

ArrivalProcess::ArrivalProcess(const ServeConfig& cfg)
    : cfg_(cfg),
      gap_rng_(cfg.seed * 2 + 1),
      len_rng_(cfg.seed * 2 + 2) {}

std::uint32_t ArrivalProcess::sample_tokens(std::uint32_t median) {
  const double raw =
      len_rng_.next_lognormal(static_cast<double>(median), cfg_.token_sigma);
  const double hi = 8.0 * static_cast<double>(median);
  return static_cast<std::uint32_t>(std::clamp(raw, 16.0, hi));
}

sim::Time ArrivalProcess::next_gap() {
  if (cfg_.arrival == ArrivalKind::kPoisson) {
    return gap_rng_.next_interarrival(cfg_.rate_rps);
  }
  // MMPP: the burst state runs at burst_factor * rate for windows of mean
  // length mean_burst_len covering burst_fraction of time; the calm rate is
  // scaled so the time-averaged rate is still rate_rps:
  //   f * burst_factor * r_calm_scale ... solve
  //   rate = f * (burst_factor * calm) + (1 - f) * calm
  const double f = std::clamp(cfg_.burst_fraction, 0.0, 1.0);
  const double calm_rate =
      cfg_.rate_rps / (f * cfg_.burst_factor + (1.0 - f));
  const double burst_rate = cfg_.burst_factor * calm_rate;
  sim::Time gap = 0.0;
  for (;;) {
    if (dwell_left_ <= 0.0) {
      // Enter the next dwell window. Mean dwell lengths preserve the
      // burst_fraction duty cycle.
      in_burst_ = !in_burst_;
      const sim::Time mean_dwell =
          in_burst_ ? cfg_.mean_burst_len
                    : cfg_.mean_burst_len * (1.0 - f) / std::max(f, 1e-9);
      dwell_left_ = gap_rng_.next_exponential(mean_dwell);
    }
    const double rate = in_burst_ ? burst_rate : calm_rate;
    const sim::Time draw = gap_rng_.next_interarrival(rate);
    if (draw <= dwell_left_) {
      dwell_left_ -= draw;
      return gap + draw;
    }
    // No arrival inside the remaining dwell; spend it and redraw in the
    // next state (memorylessness makes the truncation exact).
    gap += dwell_left_;
    dwell_left_ = 0.0;
  }
}

std::optional<Request> ArrivalProcess::next() {
  shard_.assert_held();
  if (cfg_.arrival == ArrivalKind::kTrace) {
    if (emitted_ >= cfg_.trace.size()) return std::nullopt;
    const TraceRequest& t = cfg_.trace[emitted_];
    return Request{emitted_++, t.arrival, t.prompt_tokens, t.decode_tokens};
  }
  if (emitted_ >= cfg_.n_requests) return std::nullopt;
  now_ += next_gap();
  return Request{emitted_++, now_,
                 sample_tokens(cfg_.median_prompt_tokens),
                 sample_tokens(cfg_.median_decode_tokens)};
}

}  // namespace teco::serve
