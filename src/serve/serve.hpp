// teco::serve — multi-tenant LLM inference serving over the CXL domain.
//
// Every other timeline in the repository is a training step; this subsystem
// models the ROADMAP's "millions of users" workload: an open-loop arrival
// process admits concurrent sessions, each with a per-token KV-cache that
// grows through decode and pages between accelerator HBM and CXL DRAM on
// the SAME cxl::Link channels the coherence/update streams ride — paging
// and protocol traffic contend for wire bandwidth instead of being costed
// independently, and every asynchronous landing is ordered by one shared
// sim::EventQueue.
//
// The pipeline (arrival.hpp -> scheduler.hpp + kv_cache.hpp):
//
//   ArrivalProcess   seeded Poisson / bursty-MMPP / trace-driven request
//                    stream (sim::Rng only — bit-identical replay).
//   ServeScheduler   continuous batching with prefill/decode asymmetry:
//                    batched compute-bound prefill iterations vs
//                    latency-bound one-token-per-session decode iterations,
//                    capacity admission at serve_sessions.
//   KvCacheManager   session-granular KV residency across HBM / CXL DRAM,
//                    executing page-ins, evictions and the update-push
//                    write-through stream under a tier::Policy.
//
// SLO accounting follows the serving literature: time-to-first-token
// (arrival -> end of the request's prefill iteration) and inter-token
// latency are obs histograms (p50/p99/p999); a request attains its SLO when
// it was admitted, its TTFT met serve_slo_ms and its mean inter-token
// latency met the derived per-token budget. docs/SERVING.md is the guide.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "dl/model_zoo.hpp"
#include "sim/time.hpp"
#include "tier/placement_planner.hpp"

namespace teco::serve {

/// Arrival process shape (config key `serve_arrival`).
enum class ArrivalKind : std::uint8_t {
  kPoisson,  ///< Exponential interarrivals at the offered rate.
  kBursty,   ///< Two-state MMPP: calm/burst dwell, same long-run rate.
  kTrace,    ///< Replay explicit (time, prompt, decode) tuples.
};

std::string_view to_string(ArrivalKind k);
/// Parse the config-file spelling (poisson | bursty | trace); nullopt
/// for anything else.
std::optional<ArrivalKind> arrival_from_string(std::string_view s);

/// One inference request as the arrival process emits it.
struct Request {
  std::uint64_t id = 0;
  sim::Time arrival = 0.0;
  std::uint32_t prompt_tokens = 0;  ///< Prefill length.
  std::uint32_t decode_tokens = 0;  ///< Tokens to generate after prefill.
};

/// Explicit trace entry for ArrivalKind::kTrace.
struct TraceRequest {
  sim::Time arrival = 0.0;
  std::uint32_t prompt_tokens = 0;
  std::uint32_t decode_tokens = 0;
};

/// Serving cost model. Prefill is compute-bound (FLOPs against an
/// effective tensor-core rate), decode is memory-bound (the whole FP16
/// weight set plus every scheduled session's resident KV bytes stream
/// through HBM once per iteration). Constants follow the V100 calibration
/// in offload::Calibration.
struct CostModel {
  double gpu_eff_flops = 50e12;     ///< Achieved prefill FLOP rate.
  double hbm_read_bw = 900e9;       ///< V100-class HBM2 streaming read.
  sim::Time iter_floor = sim::us(200);  ///< Launch + sync floor per iter.

  /// Compute-bound batched prefill of `tokens` prompt tokens.
  sim::Time prefill_time(const dl::ModelConfig& m,
                         std::uint64_t tokens) const {
    const double flops =
        2.0 * static_cast<double>(m.n_params) * static_cast<double>(tokens);
    return iter_floor + flops / gpu_eff_flops;
  }
  /// Memory-bound decode iteration: one token for every batched session.
  sim::Time decode_time(const dl::ModelConfig& m,
                        std::uint64_t batch_kv_bytes) const {
    const double bytes =
        static_cast<double>(m.n_params) * 2.0 +  // FP16 weight sweep.
        static_cast<double>(batch_kv_bytes);
    return iter_floor + bytes / hbm_read_bw;
  }
};

/// Bytes of KV-cache (K and V, FP16, all layers) one token occupies.
std::uint64_t kv_bytes_per_token(const dl::ModelConfig& m);

struct ServeConfig {
  // --- Arrival process (all sampling via sim::Rng from `seed`) ---
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_rps = 32.0;        ///< Offered load, requests per second.
  std::size_t n_requests = 500;  ///< Open-loop request count.
  std::uint64_t seed = 1;
  /// Bursty (MMPP) shape: the burst state multiplies the rate by
  /// `burst_factor` for exponentially-dwelled windows covering
  /// `burst_fraction` of time; the calm rate is scaled so the long-run
  /// offered load still equals rate_rps.
  double burst_factor = 8.0;
  double burst_fraction = 0.1;
  sim::Time mean_burst_len = sim::ms(250);
  /// Trace replay (ArrivalKind::kTrace); must be sorted by arrival.
  std::vector<TraceRequest> trace;

  /// Request geometry: lognormal token counts around these medians
  /// (sigma in log-space), clamped to [16, 8 * median].
  std::uint32_t median_prompt_tokens = 512;
  std::uint32_t median_decode_tokens = 128;
  double token_sigma = 0.5;

  // --- Capacity & scheduling ---
  std::size_t max_sessions = 1024;  ///< Admission capacity (serve_sessions).
  std::size_t max_batch = 64;       ///< Decode batch width.
  std::uint32_t max_prefill_tokens = 2048;  ///< Per prefill iteration.

  // --- KV tiering ---
  std::uint64_t hbm_kv_bytes = 8ull << 30;  ///< HBM budget for KV pages.
  tier::Policy policy = tier::Policy::kMinStall;
  /// Decode iterations of lookahead for paging in sessions about to rotate
  /// into the batch (ignored under kNaiveSwap).
  std::size_t prefetch_depth = 2;
  /// Update-push write-through: newly appended KV lines stream to the CXL
  /// home as they are produced (the paper's update protocol applied to the
  /// KV working set), which makes evictions clean-copy drops. Off models an
  /// invalidation-style domain where every eviction pays a full transfer.
  bool kv_writethrough = true;

  // --- SLO ---
  sim::Time slo_ttft = sim::ms(250);  ///< serve_slo_ms.
  /// Mean inter-token budget; <= 0 derives slo_ttft / 10.
  sim::Time slo_tpot = 0.0;

  dl::ModelConfig model = dl::gpt2();
  CostModel cost{};

  sim::Time effective_slo_tpot() const {
    return slo_tpot > 0.0 ? slo_tpot : slo_ttft / 10.0;
  }
};

/// Quantile triple of one latency distribution, in seconds.
struct LatencyQuantiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// The run's outcome. Counts also land in the serve.* registry namespace;
/// the report carries the headline numbers benches print.
struct ServeReport {
  std::size_t offered = 0;    ///< Requests the arrival process emitted.
  std::size_t admitted = 0;
  std::size_t rejected = 0;   ///< Capacity-admission refusals.
  std::size_t completed = 0;
  std::size_t slo_attained = 0;
  std::uint64_t tokens_generated = 0;
  sim::Time makespan = 0.0;   ///< Last completion (or last arrival).

  LatencyQuantiles ttft;      ///< Time-to-first-token.
  LatencyQuantiles tpot;      ///< Inter-token latency.

  std::uint64_t kv_pagein_bytes = 0;
  std::uint64_t kv_evict_bytes = 0;   ///< Wire evictions (writethrough off).
  std::uint64_t kv_clean_drops = 0;   ///< Free evictions (clean CXL copy).
  std::uint64_t kv_demand_fetches = 0;
  std::uint64_t kv_prefetches = 0;
  sim::Time kv_stall = 0.0;           ///< Exposed paging stall.
  std::uint64_t hbm_peak_bytes = 0;

  double slo_attainment() const {
    return offered == 0
               ? 1.0
               : static_cast<double>(slo_attained) /
                     static_cast<double>(offered);
  }
  double goodput_rps() const {
    return makespan > 0.0
               ? static_cast<double>(completed) / makespan
               : 0.0;
  }
};

}  // namespace teco::serve
