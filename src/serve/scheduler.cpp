#include "serve/scheduler.hpp"

#include <algorithm>

namespace teco::serve {

namespace {
constexpr double kSecToUs = 1e6;
}  // namespace

ServeScheduler::ServeScheduler(const ServeConfig& cfg,
                               obs::MetricsRegistry* reg)
    : cfg_(cfg),
      kvpt_(kv_bytes_per_token(cfg_.model)),
      reg_(reg != nullptr ? reg : &local_reg_),
      kv_(cfg_, q_, link_, *reg_),
      arrivals_(cfg_),
      // TTFT up to 60 s at 10 ms resolution, inter-token up to 2 s at
      // 0.5 ms: wide enough that overload sweeps keep honest p999s.
      ttft_hist_(reg_->histogram("serve.ttft_us", 0.0, 60e6, 6000)),
      tpot_hist_(reg_->histogram("serve.tpot_us", 0.0, 2e6, 4000)),
      c_arrivals_(reg_->counter("serve.arrivals")),
      c_admitted_(reg_->counter("serve.admitted")),
      c_rejected_(reg_->counter("serve.rejected")),
      c_completed_(reg_->counter("serve.completed")),
      c_slo_(reg_->counter("serve.slo_attained")),
      c_tokens_(reg_->counter("serve.tokens")),
      c_prefill_iters_(reg_->counter("serve.iterations.prefill")),
      c_decode_iters_(reg_->counter("serve.iterations.decode")),
      c_prefill_tokens_(reg_->counter("serve.prefill_tokens")),
      c_stall_us_(reg_->counter("serve.kv.stall_us")) {
  link_.set_metrics(reg_);
}

ServeScheduler::~ServeScheduler() {
  // Fold the link's deferred cxl.* deltas into the registry, then detach
  // its flusher so an external registry may outlive this scheduler.
  (void)reg_->value("cxl.down.bytes");
  link_.set_metrics(nullptr);
}

bool ServeScheduler::attains_slo(const ServeConfig& cfg, sim::Time ttft,
                                 sim::Time mean_tpot) {
  return ttft <= cfg.slo_ttft && mean_tpot <= cfg.effective_slo_tpot();
}

void ServeScheduler::causal_note(obs::causal::Category cat, sim::Time from,
                                 sim::Time to) {
  if (causal_ == nullptr || to <= from) return;
  causal_last_ = causal_->add(cat, to, causal_last_, from);
}

void ServeScheduler::drain_arrivals() {
  while (pending_.has_value() && pending_->arrival <= q_.now()) {
    const Request r = *pending_;
    c_arrivals_.add();
    if (sessions_.size() >= cfg_.max_sessions) {
      ++report_.rejected;
      c_rejected_.add();
    } else {
      ++report_.admitted;
      c_admitted_.add();
      sessions_.emplace(r.id, Session{r, 0.0, 0.0, 0.0, 0});
      waiting_.push_back(r.id);
      kv_.add_session(r.id);
    }
    pending_ = arrivals_.next();
  }
}

void ServeScheduler::prefill_iteration() {
  const sim::Time t = q_.now();
  std::vector<std::uint64_t> group;
  std::uint64_t tokens = 0;
  std::uint64_t kv_need = 0;
  while (!waiting_.empty()) {
    const std::uint64_t id = waiting_.front();
    const std::uint32_t prompt = sessions_.at(id).req.prompt_tokens;
    if (!group.empty() && tokens + prompt > cfg_.max_prefill_tokens) break;
    group.push_back(id);
    tokens += prompt;
    kv_need += static_cast<std::uint64_t>(prompt) * kvpt_;
    waiting_.pop_front();
  }
  const sim::Time avail = kv_.ensure_capacity(kv_need, t);
  if (avail > t) {
    report_.kv_stall += avail - t;
    c_stall_us_.add((avail - t) * kSecToUs);
    causal_note(obs::causal::Category::kEvictStall, t, avail);
  }
  const sim::Time end = avail + cfg_.cost.prefill_time(cfg_.model, tokens);
  causal_note(obs::causal::Category::kCompute, avail, end);
  for (const std::uint64_t id : group) {
    Session& s = sessions_.at(id);
    s.prefill_end = end;
    s.last_token = end;
    s.generated = 1;  // Prefill emits the request's first token.
    s.ttft = end - s.req.arrival;
    ttft_hist_.observe(s.ttft * kSecToUs);
    if (causal_ != nullptr) {
      ttft_records_.push_back({id, s.req.arrival, end, causal_last_});
    }
    ++report_.tokens_generated;
    c_tokens_.add();
    kv_.append(id, static_cast<std::uint64_t>(s.req.prompt_tokens) * kvpt_,
               end);
    if (s.generated >= s.req.decode_tokens) {
      complete(id, end);
    } else {
      running_.push_back(id);
    }
  }
  c_prefill_iters_.add();
  c_prefill_tokens_.add(static_cast<double>(tokens));
  if (end > report_.makespan) report_.makespan = end;
  q_.run_until(end);
}

void ServeScheduler::decode_iteration() {
  const sim::Time t = q_.now();
  const std::size_t width = std::min(cfg_.max_batch, running_.size());
  std::vector<std::uint64_t> batch(running_.begin(),
                                   running_.begin() +
                                       static_cast<std::ptrdiff_t>(width));
  for (const std::uint64_t id : batch) kv_.set_pinned(id, true);
  // Residency barrier: every batch member's KV must be back in HBM before
  // the kernel launches. Prefetched sessions land (partially) hidden;
  // under kNaiveSwap everything is a fully exposed demand fetch.
  sim::Time ready = t;
  for (const std::uint64_t id : batch) {
    ready = std::max(ready, kv_.ensure_resident(id, t, /*demand=*/true));
  }
  const sim::Time avail =
      kv_.ensure_capacity(static_cast<std::uint64_t>(width) * kvpt_, t);
  const sim::Time start = std::max(ready, avail);
  if (start > t) {
    report_.kv_stall += start - t;
    c_stall_us_.add((start - t) * kSecToUs);
    causal_note(ready >= avail ? obs::causal::Category::kDemandFetch
                               : obs::causal::Category::kEvictStall,
                t, start);
  }
  // Lookahead paging, issued BEFORE this iteration's compute so the wire
  // works while the kernel runs: the sessions at positions [width,
  // width + horizon) are the next rotations' batches. The current batch is
  // still pinned, so prefetch evictions can only take colder sessions; a
  // prefetch that would overcommit the budget is skipped entirely (see
  // KvCacheManager::ensure_resident).
  if (cfg_.policy != tier::Policy::kNaiveSwap &&
      cfg_.policy != tier::Policy::kAllHbm && cfg_.prefetch_depth > 0) {
    const std::size_t horizon = std::min(
        running_.size() - width, cfg_.max_batch * cfg_.prefetch_depth);
    for (std::size_t i = 0; i < horizon; ++i) {
      kv_.prefetch(running_[width + i], start);
    }
  }
  std::uint64_t batch_kv = 0;
  for (const std::uint64_t id : batch) {
    batch_kv += kv_.session_bytes(id) + kvpt_;
  }
  const sim::Time end = start + cfg_.cost.decode_time(cfg_.model, batch_kv);
  causal_note(obs::causal::Category::kCompute, start, end);
  for (const std::uint64_t id : batch) {
    Session& s = sessions_.at(id);
    kv_.append(id, kvpt_, end);
    ++s.generated;
    ++report_.tokens_generated;
    c_tokens_.add();
    tpot_hist_.observe((end - s.last_token) * kSecToUs);
    s.last_token = end;
  }
  for (const std::uint64_t id : batch) kv_.set_pinned(id, false);
  // Rotate: finished sessions leave, the rest requeue at the back, so
  // batch membership cycles through all active sessions.
  running_.erase(running_.begin(),
                 running_.begin() + static_cast<std::ptrdiff_t>(width));
  for (const std::uint64_t id : batch) {
    if (sessions_.at(id).generated >= sessions_.at(id).req.decode_tokens) {
      complete(id, end);
    } else {
      running_.push_back(id);
    }
  }
  // Victim-ordering hints for the next iteration's evictions: a session's
  // next turn is its queue position in whole rotations.
  const sim::Time iter_est = end - start;
  std::size_t pos = 0;
  for (const std::uint64_t id : running_) {
    kv_.set_next_use_hint(
        id, static_cast<double>(pos / cfg_.max_batch) * iter_est);
    ++pos;
  }
  c_decode_iters_.add();
  if (end > report_.makespan) report_.makespan = end;
  q_.run_until(end);
}

void ServeScheduler::complete(std::uint64_t id, sim::Time t) {
  Session& s = sessions_.at(id);
  const sim::Time mean_tpot =
      s.generated > 1
          ? (t - s.prefill_end) / static_cast<double>(s.generated - 1)
          : 0.0;
  ++report_.completed;
  c_completed_.add();
  if (attains_slo(cfg_, s.ttft, mean_tpot)) {
    ++report_.slo_attained;
    c_slo_.add();
  }
  kv_.release(id);
  sessions_.erase(id);
}

void ServeScheduler::finalize() {
  report_.offered = arrivals_.emitted();
  report_.ttft = LatencyQuantiles{ttft_hist_.quantile(0.5) / kSecToUs,
                                  ttft_hist_.quantile(0.99) / kSecToUs,
                                  ttft_hist_.quantile(0.999) / kSecToUs};
  report_.tpot = LatencyQuantiles{tpot_hist_.quantile(0.5) / kSecToUs,
                                  tpot_hist_.quantile(0.99) / kSecToUs,
                                  tpot_hist_.quantile(0.999) / kSecToUs};
  const KvCacheManager::Stats& ks = kv_.stats();
  report_.kv_pagein_bytes = ks.pagein_bytes;
  report_.kv_evict_bytes = ks.evict_bytes;
  report_.kv_clean_drops = ks.clean_drops;
  report_.kv_demand_fetches = ks.demand_fetches;
  report_.kv_prefetches = ks.prefetches;
  report_.hbm_peak_bytes = ks.hbm_peak;
}

ServeReport ServeScheduler::run() {
  shard_.assert_held();
  pending_ = arrivals_.next();
  for (;;) {
    drain_arrivals();
    if (waiting_.empty() && running_.empty()) {
      if (!pending_.has_value()) break;
      causal_note(obs::causal::Category::kIdle, q_.now(), pending_->arrival);
      q_.run_until(pending_->arrival);  // Idle until the next arrival.
      continue;
    }
    if (!waiting_.empty() && running_.size() < cfg_.max_batch) {
      prefill_iteration();
    } else {
      decode_iteration();
    }
  }
  finalize();
  return report_;
}

}  // namespace teco::serve
