// ArrivalProcess — seeded open-loop request generation.
//
// Three shapes behind one pull interface: Poisson (exponential
// interarrivals at the offered rate), bursty (a two-state Markov-modulated
// Poisson process whose long-run rate still equals the configured offered
// load, so SLO-vs-load sweeps stay comparable across shapes), and
// trace-driven replay of explicit tuples. All randomness flows through
// sim::Rng streams derived from ServeConfig::seed — two processes built
// from the same config emit bit-identical request sequences, which is what
// the serving determinism test and the teco_lint wallclock rule demand.
#pragma once

#include <cstdint>
#include <optional>

#include "core/annotations.hpp"
#include "serve/serve.hpp"
#include "sim/rng.hpp"

namespace teco::serve {

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ServeConfig& cfg);

  /// The next request, or nullopt once n_requests (or the trace) is
  /// exhausted. Arrival times are nondecreasing.
  std::optional<Request> next();

  /// Requests emitted so far.
  std::uint64_t emitted() const {
    shard_.assert_held();
    return emitted_;
  }

 private:
  sim::Time next_gap() TECO_REQUIRES(shard_);
  std::uint32_t sample_tokens(std::uint32_t median) TECO_REQUIRES(shard_);

  const ServeConfig& cfg_;
  core::ShardCapability shard_;
  /// Decorrelated streams: interarrival draws never perturb length draws,
  /// so changing the offered rate does not reshuffle request geometry.
  sim::Rng gap_rng_ TECO_SHARD_AFFINE(shard_);
  sim::Rng len_rng_ TECO_SHARD_AFFINE(shard_);
  sim::Time now_ TECO_SHARD_AFFINE(shard_) = 0.0;
  std::uint64_t emitted_ TECO_SHARD_AFFINE(shard_) = 0;
  // Bursty (MMPP) state: time left in the current dwell window.
  bool in_burst_ TECO_SHARD_AFFINE(shard_) = false;
  sim::Time dwell_left_ TECO_SHARD_AFFINE(shard_) = 0.0;
};

}  // namespace teco::serve
