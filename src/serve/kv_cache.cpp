#include "serve/kv_cache.hpp"

#include <algorithm>

#include "mem/address.hpp"
#include "obs/causal.hpp"

namespace teco::serve {

namespace {

/// 64-B cache lines a KV blob occupies on the wire.
std::uint64_t lines_for(std::uint64_t bytes) {
  return (bytes + mem::kLineBytes - 1) / mem::kLineBytes;
}

/// Synthetic line address for a session's KV region; only used so the
/// protocol observer and message counters see distinct per-session streams.
mem::Addr kv_addr(std::uint64_t id) { return (id + 1) << 28; }

}  // namespace

KvCacheManager::KvCacheManager(const ServeConfig& cfg, sim::EventQueue& q,
                               cxl::Link& link, obs::MetricsRegistry& reg)
    : cfg_(cfg),
      q_(q),
      link_(link),
      c_pagein_bytes_(reg.counter("serve.kv.pagein_bytes")),
      c_evict_bytes_(reg.counter("serve.kv.evict_bytes")),
      c_clean_drops_(reg.counter("serve.kv.clean_drops")),
      c_demand_(reg.counter("serve.kv.demand_fetches")),
      c_prefetch_(reg.counter("serve.kv.prefetches")),
      c_writethrough_bytes_(reg.counter("serve.kv.writethrough_bytes")),
      c_overcommit_(reg.counter("serve.kv.overcommits")),
      g_hbm_used_(reg.gauge("serve.kv.hbm_used_bytes")),
      g_hbm_peak_(reg.gauge("serve.kv.hbm_peak_bytes")) {}

void KvCacheManager::add_session(std::uint64_t id) {
  shard_.assert_held();
  entries_[id] = Entry{};
}

void KvCacheManager::charge_hbm(std::uint64_t bytes) {
  hbm_used_ += bytes;
  if (hbm_used_ > stats_.hbm_peak) {
    stats_.hbm_peak = hbm_used_;
    g_hbm_peak_.set(static_cast<double>(hbm_used_));
  }
  g_hbm_used_.set(static_cast<double>(hbm_used_));
}

void KvCacheManager::append(std::uint64_t id, std::uint64_t bytes,
                            sim::Time t) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  e.bytes += bytes;
  e.in_hbm = true;  // Fresh KV is produced in HBM by the running kernel.
  e.last_used = t;
  charge_hbm(bytes);
  if (cfg_.kv_writethrough) {
    // Update-push: the new lines stream to the CXL home as they are
    // produced, keeping the far copy current (evictions become drops).
    link_.send_stream(
        cxl::Direction::kDeviceToCpu, t,
        cxl::data_packet(cxl::MessageType::kFlushData, kv_addr(id),
                         mem::kLineBytes),
        lines_for(bytes));
    stats_.writethrough_bytes += bytes;
    c_writethrough_bytes_.add(static_cast<double>(bytes));
    // A clean copy stays clean; a first append establishes one.
    e.cxl_clean = true;
  } else {
    e.cxl_clean = false;
  }
}

sim::Time KvCacheManager::evict(std::uint64_t id, Entry& e, sim::Time t) {
  e.in_hbm = false;
  hbm_used_ -= e.bytes;
  g_hbm_used_.set(static_cast<double>(hbm_used_));
  if (e.cxl_clean) {
    // The CXL home already holds every line (write-through): dropping the
    // HBM copy costs nothing on the wire.
    ++stats_.clean_drops;
    c_clean_drops_.add();
    return t;
  }
  const cxl::Delivery d = link_.send_stream(
      cxl::Direction::kDeviceToCpu, t,
      cxl::data_packet(cxl::MessageType::kFlushData, kv_addr(id),
                       mem::kLineBytes),
      lines_for(e.bytes));
  e.cxl_clean = true;
  stats_.evict_bytes += e.bytes;
  c_evict_bytes_.add(static_cast<double>(e.bytes));
  return d.delivered;
}

sim::Time KvCacheManager::ensure_capacity(std::uint64_t extra, sim::Time t) {
  shard_.assert_held();
  sim::Time avail = t;
  if (hbm_used_ + extra <= cfg_.hbm_kv_bytes) return avail;
  if (cfg_.policy == tier::Policy::kAllHbm) {
    // Reference policy: unbounded HBM, never evict.
    ++stats_.overcommits;
    c_overcommit_.add();
    return avail;
  }
  std::vector<tier::VictimCandidate> cands;
  for (const auto& [id, e] : entries_) {
    if (!e.in_hbm || e.pinned || e.inflight_tag != 0 || e.bytes == 0) {
      continue;
    }
    cands.push_back(tier::VictimCandidate{id, e.bytes, t - e.last_used,
                                          e.next_use_gap});
  }
  tier::order_victims(cfg_.policy, cands);
  for (const auto& c : cands) {
    if (hbm_used_ + extra <= cfg_.hbm_kv_bytes) break;
    const sim::Time done = evict(c.id, entries_.at(c.id), t);
    if (cfg_.policy == tier::Policy::kNaiveSwap) {
      // The strawman swaps synchronously: the producer blocks until the
      // eviction drains off the link.
      avail = std::max(avail, done);
    }
  }
  if (hbm_used_ + extra > cfg_.hbm_kv_bytes) {
    ++stats_.overcommits;
    c_overcommit_.add();
  }
  return avail;
}

sim::Time KvCacheManager::ensure_resident(std::uint64_t id, sim::Time t,
                                          bool demand) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it == entries_.end()) return t;
  Entry& e = it->second;
  e.last_used = t;
  if (e.in_hbm) return t;
  if (e.inflight_tag != 0) return std::max(t, e.ready);
  if (e.bytes == 0) {
    e.in_hbm = true;
    return t;
  }
  // Prefetch is opportunistic: it only ever consumes true headroom. If it
  // could evict, the lookahead would ping-pong with the eviction policy —
  // demand growth evicts the farthest-next-use sessions, the prefetch
  // horizon covers exactly those sessions and refetches them, and the
  // wasted wire time delays the demand fetches it was meant to hide.
  if (!demand && hbm_used_ + e.bytes > cfg_.hbm_kv_bytes) return t;
  // Demand page-in: free budget first (victim evictions may themselves
  // occupy the up-link while the fetch rides the down-link — full duplex),
  // then stream the KV lines down and flip residency when the tail lands.
  const sim::Time issue = demand ? ensure_capacity(e.bytes, t) : t;
  charge_hbm(e.bytes);  // Reserve: the landing buffer is committed now.
  const cxl::Delivery d = link_.send_stream(
      cxl::Direction::kCpuToDevice, issue,
      cxl::data_packet(cxl::MessageType::kData, kv_addr(id), mem::kLineBytes),
      lines_for(e.bytes));
  const std::uint64_t tag = ++next_tag_;
  e.inflight_tag = tag;
  e.ready = d.delivered;
  stats_.pagein_bytes += e.bytes;
  c_pagein_bytes_.add(static_cast<double>(e.bytes));
  if (demand) {
    ++stats_.demand_fetches;
    c_demand_.add();
  } else {
    ++stats_.prefetches;
    c_prefetch_.add();
  }
  // The residency flip is the page-in landing off the down link — tag it
  // so a causal sink on the queue records why it ran.
  sim::TagScope cat_scope(q_,
                          obs::causal::tag(obs::causal::Category::kCxlDown));
  q_.schedule_at(d.delivered, [this, id, tag] {
    shard_.assert_held();
    auto fit = entries_.find(id);
    if (fit == entries_.end() || fit->second.inflight_tag != tag) {
      return;  // Session released (or superseded) while on the wire.
    }
    fit->second.inflight_tag = 0;
    fit->second.in_hbm = true;
  });
  return d.delivered;
}

void KvCacheManager::prefetch(std::uint64_t id, sim::Time t) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const Entry& e = it->second;
  if (e.in_hbm || e.inflight_tag != 0 || e.bytes == 0) return;
  ensure_resident(id, t, /*demand=*/false);
}

void KvCacheManager::set_pinned(std::uint64_t id, bool pinned) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.pinned = pinned;
}

void KvCacheManager::touch(std::uint64_t id, sim::Time t) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.last_used = t;
}

void KvCacheManager::set_next_use_hint(std::uint64_t id, sim::Time gap) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.next_use_gap = gap;
}

void KvCacheManager::release(std::uint64_t id) {
  shard_.assert_held();
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  // In-flight page-ins keep their HBM reservation until release; both the
  // resident and the reserved case charge hbm_used_, so one refund covers
  // them. The pending flip callback no-ops once the entry is gone.
  if (it->second.in_hbm || it->second.inflight_tag != 0) {
    hbm_used_ -= it->second.bytes;
    g_hbm_used_.set(static_cast<double>(hbm_used_));
  }
  entries_.erase(it);
}

bool KvCacheManager::resident(std::uint64_t id) const {
  shard_.assert_held();
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.in_hbm;
}

std::uint64_t KvCacheManager::session_bytes(std::uint64_t id) const {
  shard_.assert_held();
  auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.bytes;
}

}  // namespace teco::serve
