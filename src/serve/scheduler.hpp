// ServeScheduler — continuous batching with prefill/decode asymmetry.
//
// The executor alternates two iteration shapes over one simulated device:
//
//   prefill  — compute-bound: FCFS waiting sessions are packed into a batch
//              capped by max_prefill_tokens; the iteration emits each
//              session's first token (TTFT = arrival -> iteration end) and
//              commits its prompt KV into HBM.
//   decode   — memory-bound: the first max_batch running sessions each
//              generate one token; iteration time scales with the weight
//              sweep plus the batch's resident KV bytes. Afterwards the
//              batch rotates to the back of the running queue, so when
//              active sessions exceed the batch width, membership cycles —
//              which is precisely what creates hot/cold KV paging pressure.
//
// Prefill takes priority while the decode batch has room (standard
// continuous batching: fill the batch, then stream tokens). Admission is
// capacity-based: arrivals beyond max_sessions concurrent sessions are
// rejected and count against SLO attainment.
//
// All asynchronous effects — KV page-in landings, link deliveries — are
// events on the scheduler's sim::EventQueue, and all KV movement rides the
// scheduler's cxl::Link (metrics attached), so serve.* and cxl.*/coherence.*
// counters describe one shared wire. Every random draw comes from the
// seeded ArrivalProcess: two runs from the same ServeConfig are
// bit-identical, registry snapshots included.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/annotations.hpp"
#include "cxl/link.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "serve/arrival.hpp"
#include "serve/kv_cache.hpp"
#include "serve/serve.hpp"
#include "sim/event_queue.hpp"

namespace teco::serve {

class ServeScheduler {
 public:
  /// `reg` may be null, in which case the scheduler uses a private
  /// registry; pass one to share a namespace with other components or to
  /// snapshot serve.* alongside cxl.*. An external registry must outlive
  /// the scheduler.
  explicit ServeScheduler(const ServeConfig& cfg,
                          obs::MetricsRegistry* reg = nullptr);
  ~ServeScheduler();
  ServeScheduler(const ServeScheduler&) = delete;
  ServeScheduler& operator=(const ServeScheduler&) = delete;

  /// Run the whole arrival process to completion and return the report.
  ServeReport run();

  /// The SLO predicate (admission implied by having latencies at all): a
  /// request attains its SLO when TTFT met slo_ttft and the mean
  /// inter-token latency met the (possibly derived) per-token budget.
  /// Exposed for the accounting-math unit test.
  static bool attains_slo(const ServeConfig& cfg, sim::Time ttft,
                          sim::Time mean_tpot);

  obs::MetricsRegistry& registry() { return *reg_; }
  sim::EventQueue& queue() { return q_; }
  cxl::Link& link() { return link_; }
  const KvCacheManager& kv() const { return kv_; }
  const ServeReport& report() const {
    shard_.assert_held();
    return report_;
  }

  /// Wire the causal DAG (must outlive the scheduler; nullptr = off): the
  /// graph becomes the queue's provenance sink, KV landings are tagged,
  /// and every iteration appends stall/compute/idle nodes to an explicit
  /// chain. Each prefill also records the request's TTFT terminal so
  /// request latency can be attributed end-to-end.
  void set_causal(obs::causal::CausalGraph* g) {
    shard_.assert_held();
    causal_ = g;
    q_.set_causal_sink(g);
  }

  /// One record per prefilled request (causal wiring only): the TTFT
  /// window [arrival, first token] and the chain node it ended on —
  /// obs::causal::critical_path over it attributes the wait to earlier
  /// iterations' compute, KV stalls, and idle gaps.
  struct TtftRecord {
    std::uint64_t id = 0;
    sim::Time arrival = 0.0;
    sim::Time first_token = 0.0;
    std::uint32_t terminal = sim::kNoCausalNode;
  };
  const std::vector<TtftRecord>& ttft_records() const {
    shard_.assert_held();
    return ttft_records_;
  }

 private:
  struct Session {
    Request req;
    sim::Time prefill_end = 0.0;
    sim::Time last_token = 0.0;
    sim::Time ttft = 0.0;
    std::uint32_t generated = 0;
  };

  void drain_arrivals() TECO_REQUIRES(shard_);
  void prefill_iteration() TECO_REQUIRES(shard_);
  void decode_iteration() TECO_REQUIRES(shard_);
  void complete(std::uint64_t id, sim::Time t) TECO_REQUIRES(shard_);
  void finalize() TECO_REQUIRES(shard_);
  /// Append a [from, to] node to the iteration chain (no-op unwired).
  void causal_note(obs::causal::Category cat, sim::Time from, sim::Time to)
      TECO_REQUIRES(shard_);

  ServeConfig cfg_;
  std::uint64_t kvpt_;  ///< kv_bytes_per_token(cfg_.model).
  obs::MetricsRegistry local_reg_;
  obs::MetricsRegistry* reg_;
  core::ShardCapability shard_;

  sim::EventQueue q_;
  /// The serve engine owns its queue outright: every arrival, decode step,
  /// and KV migration event runs on this shard.
  TECO_QUEUE_CONTEXT(q_);
  cxl::Link link_;
  KvCacheManager kv_;
  ArrivalProcess arrivals_;

  std::map<std::uint64_t, Session> sessions_ TECO_SHARD_AFFINE(shard_);
  std::deque<std::uint64_t> waiting_ TECO_SHARD_AFFINE(shard_);
  std::deque<std::uint64_t> running_ TECO_SHARD_AFFINE(shard_);
  std::optional<Request> pending_ TECO_SHARD_AFFINE(shard_);
  ServeReport report_ TECO_SHARD_AFFINE(shard_);
  obs::causal::CausalGraph* causal_ TECO_SHARD_AFFINE(shard_) = nullptr;
  std::uint32_t causal_last_ TECO_SHARD_AFFINE(shard_) = sim::kNoCausalNode;
  std::vector<TtftRecord> ttft_records_ TECO_SHARD_AFFINE(shard_);

  obs::Hist& ttft_hist_;
  obs::Hist& tpot_hist_;
  obs::Counter& c_arrivals_;
  obs::Counter& c_admitted_;
  obs::Counter& c_rejected_;
  obs::Counter& c_completed_;
  obs::Counter& c_slo_;
  obs::Counter& c_tokens_;
  obs::Counter& c_prefill_iters_;
  obs::Counter& c_decode_iters_;
  obs::Counter& c_prefill_tokens_;
  obs::Counter& c_stall_us_;
};

}  // namespace teco::serve
