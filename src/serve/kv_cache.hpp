// KvCacheManager — session-granular KV residency across HBM and CXL DRAM.
//
// Each admitted session owns a KV-cache that grows by kv_bytes_per_token on
// every generated token. The manager enforces the hbm_kv_bytes budget:
// whenever fresh allocation (prefill commit, decode append, page-in) would
// exceed it, tier::order_victims picks HBM-resident sessions to evict under
// the configured tier::Policy, and the evicted/refetched lines move as
// cxl::Packet streams over the SAME cxl::Link the coherence traffic rides —
// paging contends for wire bandwidth with everything else, and every
// asynchronous landing is a callback on the shared sim::EventQueue.
//
// Write-through (ServeConfig::kv_writethrough) applies the paper's update
// protocol to the KV working set: appended lines stream to the CXL home as
// kFlushData the moment they are produced, so the CXL copy is always
// current and evictions are free clean-copy drops. With it off, evictions
// pay a full up-link transfer (invalidation-style domain).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/annotations.hpp"
#include "cxl/link.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "sim/event_queue.hpp"

namespace teco::serve {

class KvCacheManager {
 public:
  /// Aggregate movement accounting, mirrored into serve.kv.* counters.
  struct Stats {
    std::uint64_t pagein_bytes = 0;
    std::uint64_t evict_bytes = 0;  ///< Wire evictions only.
    std::uint64_t clean_drops = 0;
    std::uint64_t demand_fetches = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t writethrough_bytes = 0;
    std::uint64_t overcommits = 0;  ///< Budget exceeded, nothing evictable.
    std::uint64_t hbm_peak = 0;
  };

  /// The queue, link and registry must outlive the manager; the link must
  /// already have its metrics registry attached (the manager only adds the
  /// serve.kv.* namespace on top of the link's cxl.*/coherence.* wiring).
  KvCacheManager(const ServeConfig& cfg, sim::EventQueue& q, cxl::Link& link,
                 obs::MetricsRegistry& reg);

  /// Register a newly admitted session (no KV yet).
  void add_session(std::uint64_t id);

  /// Account `bytes` of freshly produced KV in HBM at `t` (prefill commit
  /// or decode append). Capacity must have been ensured beforehand. Under
  /// write-through the new lines stream up-link immediately.
  void append(std::uint64_t id, std::uint64_t bytes, sim::Time t);

  /// Make `id`'s KV HBM-resident. Returns the time it is usable: `t` when
  /// already resident, the landing time of the in-flight page-in when one
  /// was issued earlier (a prefetch partially or fully hides the fetch), or
  /// the landing time of a freshly issued demand fetch.
  sim::Time ensure_resident(std::uint64_t id, sim::Time t, bool demand);

  /// Issue a page-in ahead of need (no-op when resident or in flight).
  void prefetch(std::uint64_t id, sim::Time t);

  /// Evict policy-ordered victims until `extra` more bytes fit the budget.
  /// Returns the time the capacity is actually available: under kNaiveSwap
  /// evictions are synchronous (the strawman blocks on the link), so the
  /// caller stalls until the last victim drains; other policies free the
  /// HBM the instant the buffer is handed to the link. When nothing is
  /// evictable (all pinned/in-flight) the budget is overcommitted and the
  /// run continues — the overcommits counter records it.
  sim::Time ensure_capacity(std::uint64_t extra, sim::Time t);

  /// Pin/unpin a session against eviction (current-batch membership).
  void set_pinned(std::uint64_t id, bool pinned);
  /// Recency bump for victim selection.
  void touch(std::uint64_t id, sim::Time t);
  /// Scheduler's estimate of when the session next runs (victim ordering).
  void set_next_use_hint(std::uint64_t id, sim::Time gap);

  /// Drop every copy and forget the session (request completed).
  void release(std::uint64_t id);

  bool resident(std::uint64_t id) const;
  std::uint64_t session_bytes(std::uint64_t id) const;
  std::uint64_t hbm_used() const {
    shard_.assert_held();
    return hbm_used_;
  }
  const Stats& stats() const {
    shard_.assert_held();
    return stats_;
  }

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    bool in_hbm = false;
    bool cxl_clean = false;  ///< CXL copy is current (free eviction).
    bool pinned = false;
    std::uint64_t inflight_tag = 0;  ///< Nonzero: page-in on the wire.
    sim::Time ready = 0.0;           ///< Page-in landing time.
    sim::Time last_used = 0.0;
    sim::Time next_use_gap = 0.0;
  };

  /// Evict one victim at `t`; returns when the HBM bytes are reusable.
  sim::Time evict(std::uint64_t id, Entry& e, sim::Time t)
      TECO_REQUIRES(shard_);
  void charge_hbm(std::uint64_t bytes) TECO_REQUIRES(shard_);

  const ServeConfig& cfg_;
  sim::EventQueue& q_;
  cxl::Link& link_;
  core::ShardCapability shard_;

  std::map<std::uint64_t, Entry> entries_ TECO_SHARD_AFFINE(shard_);
  std::uint64_t hbm_used_ TECO_SHARD_AFFINE(shard_) = 0;
  std::uint64_t next_tag_ TECO_SHARD_AFFINE(shard_) = 0;
  Stats stats_ TECO_SHARD_AFFINE(shard_);

  // serve.kv.* instruments, resolved once at construction.
  obs::Counter& c_pagein_bytes_;
  obs::Counter& c_evict_bytes_;
  obs::Counter& c_clean_drops_;
  obs::Counter& c_demand_;
  obs::Counter& c_prefetch_;
  obs::Counter& c_writethrough_bytes_;
  obs::Counter& c_overcommit_;
  obs::Gauge& g_hbm_used_;
  obs::Gauge& g_hbm_peak_;
};

}  // namespace teco::serve
