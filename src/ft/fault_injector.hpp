// Seeded, deterministic fault injection for the coherent training domain.
//
// A FaultPlan describes everything that will go wrong in a run; the
// injector turns it into concrete events through the two hook surfaces the
// domain exposes:
//
//   cxl::LinkFaultHook   link-down / retrain windows stall packet
//                        submission until the link is back up. (Flit CRC
//                        corruption is the third link fault class; it is
//                        injected below this hook, inside the channel's
//                        Monte-Carlo retry path — see
//                        SessionConfig::mc_bit_error_rate.)
//   check::Observer      passive accounting of the traffic the faults
//                        perturbed (packets delayed, fences observed).
//
// Device crashes and poisoned lines are polled by the training harness at
// step boundaries: crash_due()/take_poison() consume scheduled events. MTBF
// sampling draws exponential inter-failure times from the plan seed at
// construction, so the schedule is reproducible and independent of how
// often the harness polls.
#pragma once

#include <cstdint>
#include <vector>

#include "check/observer.hpp"
#include "cxl/link.hpp"
#include "cxl/packet.hpp"
#include "mem/address.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace teco::ft {

/// A link retrain window: the link transmits nothing in [start, start+dur).
struct DownWindow {
  sim::Time start = 0.0;
  sim::Time duration = 0.0;
};

/// Poison cache line `line_offset` (line index relative to the parameter
/// region) right after step `step` completes.
struct PoisonEvent {
  std::size_t step = 0;
  std::size_t line_offset = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Flit bit-error rate for the Monte-Carlo retry path. The harness copies
  /// this into SessionConfig::mc_bit_error_rate; it lives in the plan so one
  /// object describes the whole fault load.
  double bit_error_rate = 0.0;
  std::vector<DownWindow> link_down;
  std::vector<PoisonEvent> poison;
  /// Device crashes right after these steps complete (before checkpointing).
  std::vector<std::size_t> crash_steps;
  /// When > 0, additionally sample crash times from an exponential
  /// distribution with this mean over [0, mtbf_horizon).
  sim::Time mtbf = 0.0;
  sim::Time mtbf_horizon = 0.0;
};

struct FaultStats {
  std::uint64_t packets_observed = 0;
  std::uint64_t packets_delayed = 0;
  sim::Time delay_injected = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t poisoned_lines = 0;
};

class FaultInjector final : public check::Observer, public cxl::LinkFaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  // --- cxl::LinkFaultHook ---
  /// Delay a submission past any covering down window (retrain stall).
  sim::Time transmit_delay(cxl::Direction dir, sim::Time t_ready,
                           const cxl::Packet& pkt,
                           std::uint64_t count) override;

  // --- check::Observer ---
  void on_packet(sim::Time now, std::uint8_t dir, std::uint8_t msg_type,
                 mem::Addr addr, std::uint64_t count,
                 sim::Time delivered) override;

  // --- Step-boundary events (consumed by the harness) ---
  /// True when a crash is scheduled at `step` (explicit) or has a sampled
  /// crash time <= `now` (MTBF). Consumes the event.
  bool crash_due(std::size_t step, sim::Time now);
  /// Poison events scheduled for `step`; consumes them.
  std::vector<PoisonEvent> take_poison(std::size_t step);

  /// True when the link is degraded around `t`: inside or approaching a
  /// down window, or carrying a non-trivial bit-error rate. Recovery uses
  /// this to pick a degraded mode after a crash.
  bool link_flaky_at(sim::Time t) const;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  const std::vector<sim::Time>& sampled_crash_times() const {
    return sampled_crashes_;
  }

 private:
  FaultPlan plan_;
  std::vector<sim::Time> sampled_crashes_;  ///< Ascending; consumed front-first.
  std::size_t next_sampled_ = 0;
  std::vector<bool> crash_step_used_;
  FaultStats stats_;
};

}  // namespace teco::ft
