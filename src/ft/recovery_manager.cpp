#include "ft/recovery_manager.hpp"

#include <cstddef>

namespace teco::ft {

std::string_view to_string(DegradedMode m) {
  switch (m) {
    case DegradedMode::kNone: return "none";
    case DegradedMode::kDbaOff: return "dba-off";
    case DegradedMode::kInvalidation: return "invalidation";
  }
  __builtin_unreachable();
}

RecoveryManager::RestorePlan RecoveryManager::plan_recovery(
    sim::Time crash_time, const FaultInjector& inj, std::uint64_t state_bytes,
    std::uint64_t device_image_bytes, double link_bw,
    bool allow_degraded) const {
  RestorePlan plan;
  const std::size_t durable = engine_.last_durable_step();
  plan.from_checkpoint = durable != CheckpointEngine::kNoStep;
  plan.resume_step = plan.from_checkpoint ? durable + 1 : 0;

  // Re-pushing the device's parameter image crosses the link either way; the
  // pmem read only happens when there is a committed image to read.
  plan.restore_time =
      static_cast<double>(device_image_bytes) / link_bw;
  if (plan.from_checkpoint) {
    plan.restore_time += store_.timing().read_time(state_bytes);
  }

  if (allow_degraded && inj.link_flaky_at(crash_time)) {
    plan.degraded = inj.plan().bit_error_rate >= 1e-7
                        ? DegradedMode::kDbaOff
                        : DegradedMode::kInvalidation;
  }
  return plan;
}

void RecoveryManager::record_recovery(const RestorePlan& plan,
                                      sim::Time lost_work,
                                      std::size_t steps_replayed) {
  ++stats_.recoveries;
  if (!plan.from_checkpoint) ++stats_.restarts_from_scratch;
  stats_.steps_replayed += steps_replayed;
  stats_.lost_work += lost_work;
  stats_.restore_time += plan.restore_time;
  stats_.last_degraded = plan.degraded;
}

void RecoveryManager::scrub_poisoned_line(core::Session& session,
                                          mem::Addr line_addr) {
  session.scrub_device_line(line_addr);
  ++stats_.scrubbed_lines;
}

}  // namespace teco::ft
