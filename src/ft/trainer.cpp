#include "ft/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/gantt.hpp"
#include "mem/address.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace teco::ft {

namespace {

/// Step-keyed workload seed: replaying step s after a restore draws the
/// identical touched-line set and gradient noise as the original execution.
std::uint64_t step_seed(std::uint64_t data_seed, std::size_t step) {
  return data_seed ^
         (static_cast<std::uint64_t>(step) + 1) * 0x9e3779b97f4a7c15ULL;
}

core::SessionConfig apply_degraded(core::SessionConfig base, DegradedMode m) {
  switch (m) {
    case DegradedMode::kNone:
      break;
    case DegradedMode::kDbaOff:
      base.dba_enabled = false;
      break;
    case DegradedMode::kInvalidation:
      base.protocol = coherence::Protocol::kInvalidation;
      break;
  }
  return base;
}

}  // namespace

FtTrainResult run_ft_training(const FtTrainConfig& cfg) {
  const std::size_t n = cfg.n_params;
  const std::uint64_t bytes = n * sizeof(float);
  const std::size_t lines =
      (bytes + mem::kLineBytes - 1) / mem::kLineBytes;

  // Deterministic initial state; the accelerator starts with a copy of the
  // master parameters, as allocate_parameters' state-E mapping implies.
  std::vector<float> master(n);
  sim::Rng init_rng(cfg.data_seed);
  for (auto& p : master) {
    p = static_cast<float>(init_rng.uniform(-0.1, 0.1));
  }
  std::vector<float> accel = master;
  std::vector<float> adam_m(n, 0.0f);
  std::vector<float> adam_v(n, 0.0f);
  std::vector<float> grads(n, 0.0f);

  PersistentStore store(cfg.pmem);
  CheckpointEngine engine(store, cfg.session.ft_mode);
  RecoveryManager recovery(engine, store);
  FaultInjector injector(cfg.faults);

  core::SessionConfig scfg = cfg.session;
  if (cfg.faults.bit_error_rate > 0.0) {
    scfg.mc_bit_error_rate = cfg.faults.bit_error_rate;
  }

  core::GanttChart gantt;
  DegradedMode degraded = DegradedMode::kNone;
  std::unique_ptr<core::Session> session;
  mem::Addr pbase = 0;
  mem::Addr gbase = 0;

  // (Re)build the coherent domain. A device crash loses the device-side
  // state, so recovery constructs a fresh session, re-maps the regions (the
  // bump allocator is deterministic: same bases), seeds both memories from
  // the restored images and fast-forwards the clock to the recovery point.
  auto build_session = [&](sim::Time resume_at) {
    // ft.* totals must survive a device crash even though the coherent
    // domain (and with it the telemetry registry) is rebuilt: carry the
    // old session's values into the new one.
    double ckpt_bytes = 0.0;
    double dirty_lines = 0.0;
    double recovery_us = 0.0;
    if (session != nullptr) {
      ckpt_bytes = session->metrics().value("ft.checkpoint_bytes");
      dirty_lines = session->metrics().value("ft.dirty_lines");
      recovery_us = session->metrics().value("ft.recovery_us");
    }
    session = std::make_unique<core::Session>(apply_degraded(scfg, degraded));
    pbase = session->allocate_parameters("ft_params", bytes);
    gbase = session->allocate_gradients("ft_grads", bytes);
    session->seed_cpu_memory(pbase, master);
    session->seed_device_memory(pbase, accel);
    session->add_observer(&engine);
    session->add_observer(&injector);
    session->set_link_fault_hook(&injector);
    session->advance(resume_at);
    obs::MetricsRegistry& reg = session->metrics();
    reg.counter("ft.checkpoint_bytes").add(ckpt_bytes);
    reg.counter("ft.dirty_lines").add(dirty_lines);
    reg.counter("ft.recovery_us").add(recovery_us);
  };
  build_session(0.0);

  engine.register_state("master", master, pbase);
  engine.register_state("accel", accel, pbase);
  engine.register_state("adam_m", adam_m);
  engine.register_state("adam_v", adam_v);

  FtTrainResult res;
  res.mode = scfg.ft_mode;
  const std::size_t interval = scfg.ft_checkpoint_interval;
  sim::Time last_durable_time = 0.0;
  std::size_t recoveries = 0;
  std::size_t furthest = 0;  ///< First never-executed step (replay marker).

  const float b1 = cfg.adam.beta1;
  const float b2 = cfg.adam.beta2;

  std::size_t step = 0;
  while (step < cfg.steps) {
    const sim::Time t0 = session->now();
    const bool replaying = step < furthest;
    sim::Rng rng(step_seed(cfg.data_seed, step));

    std::vector<std::size_t> touched;
    for (std::size_t l = 0; l < lines; ++l) {
      if (rng.next_bool(cfg.update_fraction)) touched.push_back(l);
    }
    if (touched.empty()) touched.push_back(step % lines);

    // Backward: the device produces gradients for the touched lines; each
    // one rides the update protocol home during the compute window.
    for (const std::size_t l : touched) {
      const std::size_t first = l * mem::kWordsPerLine;
      const std::size_t count = std::min<std::size_t>(mem::kWordsPerLine,
                                                      n - first);
      for (std::size_t i = 0; i < count; ++i) {
        grads[first + i] =
            0.05f * accel[first + i] +
            0.01f * static_cast<float>(rng.next_gaussian());
      }
      session->device_write_gradients(
          gbase + l * mem::kLineBytes,
          std::span<const float>(grads).subspan(first, count));
    }
    session->advance(cfg.step_compute);
    session->backward_complete();
    session->check_activation(step);

    // CPU optimizer: lazy Adam over the touched indices, global step count
    // as bias-correction time (exactly reproducible on replay).
    const float t_adam = static_cast<float>(step + 1);
    const float bc1 = 1.0f - std::pow(b1, t_adam);
    const float bc2 = 1.0f - std::pow(b2, t_adam);
    for (const std::size_t l : touched) {
      const std::size_t first = l * mem::kWordsPerLine;
      const std::size_t count = std::min<std::size_t>(mem::kWordsPerLine,
                                                      n - first);
      const auto g =
          session->cpu_read_gradients(gbase + l * mem::kLineBytes, count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = first + i;
        adam_m[idx] = b1 * adam_m[idx] + (1.0f - b1) * g[i];
        adam_v[idx] = b2 * adam_v[idx] + (1.0f - b2) * g[i] * g[i];
        const float mhat = adam_m[idx] / bc1;
        const float vhat = adam_v[idx] / bc2;
        master[idx] -= cfg.adam.lr * mhat / (std::sqrt(vhat) + cfg.adam.eps);
      }
    }
    session->advance(cfg.cpu_opt_time);
    for (const std::size_t l : touched) {
      const std::size_t first = l * mem::kWordsPerLine;
      const std::size_t count = std::min<std::size_t>(mem::kWordsPerLine,
                                                      n - first);
      session->cpu_write_parameters(
          pbase + l * mem::kLineBytes,
          std::span<const float>(master).subspan(first, count));
    }
    session->optimizer_step_complete();

    // Accelerator parameter image after the (possibly DBA-trimmed) push.
    for (const std::size_t l : touched) {
      const std::size_t first = l * mem::kWordsPerLine;
      const std::size_t count = std::min<std::size_t>(mem::kWordsPerLine,
                                                      n - first);
      const auto vals =
          session->device_read_parameters(pbase + l * mem::kLineBytes, count);
      std::copy(vals.begin(), vals.end(),
                accel.begin() + static_cast<std::ptrdiff_t>(first));
      engine.mark_floats("adam_m", first, count);
      engine.mark_floats("adam_v", first, count);
    }
    ++res.steps_executed;
    gantt.add("train", replaying ? 'r' : '=', t0, session->now());
    furthest = std::max(furthest, step + 1);

    // Poisoned lines land after the step and are scrubbed from the CPU-side
    // master copy (a full-line push, so the device adopts master's bytes).
    for (const auto& p : injector.take_poison(step)) {
      const std::size_t l = p.line_offset % lines;
      const mem::Addr la = pbase + l * mem::kLineBytes;
      mem::BackingStore::Line junk;
      junk.fill(0xDB);
      session->corrupt_device_line(la, junk);
      recovery.scrub_poisoned_line(*session, la);
      const std::size_t first = l * mem::kWordsPerLine;
      const std::size_t count = std::min<std::size_t>(mem::kWordsPerLine,
                                                      n - first);
      std::copy_n(master.begin() + static_cast<std::ptrdiff_t>(first), count,
                  accel.begin() + static_cast<std::ptrdiff_t>(first));
      engine.mark_floats("accel", first, count);
    }

    if (scfg.ft_mode != core::FtMode::kOff && (step + 1) % interval == 0) {
      const sim::Time c0 = session->now();
      const auto r = engine.checkpoint(c0, step, cfg.step_compute);
      session->advance(r.exposed_time);
      last_durable_time = session->now();
      gantt.add("pmem", 'C', c0, c0 + r.media_time);
      obs::MetricsRegistry& reg = session->metrics();
      reg.counter("ft.checkpoint_bytes").add(static_cast<double>(r.bytes));
      reg.counter("ft.dirty_lines").add(static_cast<double>(r.lines));
    }

    if (recoveries < cfg.max_recoveries &&
        injector.crash_due(step, session->now())) {
      ++recoveries;
      const sim::Time crash_time = session->now();
      store.crash();
      const auto plan = recovery.plan_recovery(
          crash_time, injector, /*state_bytes=*/4 * bytes,
          /*device_image_bytes=*/bytes, session->link().phy().cxl_bandwidth(),
          cfg.allow_degraded);
      recovery.record_recovery(plan, crash_time - last_durable_time,
                               step + 1 - plan.resume_step);
      gantt.add("fault", 'X', crash_time, crash_time + cfg.step_compute / 4);
      gantt.add("restore", 'R', crash_time, crash_time + plan.restore_time);

      if (plan.from_checkpoint) {
        engine.restore_into("master", master);
        engine.restore_into("accel", accel);
        engine.restore_into("adam_m", adam_m);
        engine.restore_into("adam_v", adam_v);
      } else {
        // No durable image: rebuild the deterministic initial state. The
        // registered spans alias these vectors, so overwrite in place.
        sim::Rng r2(cfg.data_seed);
        for (auto& p : master) {
          p = static_cast<float>(r2.uniform(-0.1, 0.1));
        }
        std::copy(master.begin(), master.end(), accel.begin());
        std::fill(adam_m.begin(), adam_m.end(), 0.0f);
        std::fill(adam_v.begin(), adam_v.end(), 0.0f);
      }
      if (plan.degraded != DegradedMode::kNone) degraded = plan.degraded;
      res.final_degraded = degraded;
      engine.mark_all_dirty();
      build_session(crash_time + plan.restore_time);
      session->metrics().counter("ft.recovery_us")
          .add(plan.restore_time * 1e6);
      step = plan.resume_step;
      continue;
    }

    ++step;
  }

  res.steps_completed = cfg.steps;
  res.wall_time = session->now();
  res.checkpoint = engine.stats();
  res.faults = injector.stats();
  res.recovery = recovery.stats();
  res.pmem = store.stats();
  res.gantt = gantt.render();
  res.master = std::move(master);
  res.accel = std::move(accel);
  res.adam_m = std::move(adam_m);
  res.adam_v = std::move(adam_v);
  return res;
}

}  // namespace teco::ft
