// Crash recovery policy and accounting.
//
// When the fault injector crashes the device, the harness asks the
// RecoveryManager for a RestorePlan: which step to resume from (the last
// durable checkpoint, or a from-scratch restart when none exists), how long
// the restore takes (pmem read of the committed image plus re-pushing the
// accelerator's parameter image over the CXL link), and whether to come
// back up in a degraded mode while the link is flaky:
//
//   kDbaOff        the link carries a real bit-error rate: trimmed DBA
//                  payloads widen the blast radius of an undetected flit
//                  corruption, so recovery re-enables full-line pushes
//                  (retry protects whole lines).
//   kInvalidation  the link has retrain windows: demand-driven invalidation
//                  traffic avoids wasting pushed updates that would stall
//                  behind a down window and be re-pushed anyway.
//
// The manager also scrubs poisoned device lines by re-seeding them from the
// CPU-side master copy (a CXL.mem read of one line) and keeps the
// aggregate RecoveryStats the report prints.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "core/session.hpp"
#include "ft/checkpoint_engine.hpp"
#include "ft/fault_injector.hpp"
#include "ft/persistent_store.hpp"
#include "mem/address.hpp"
#include "sim/time.hpp"

namespace teco::ft {

enum class DegradedMode : std::uint8_t {
  kNone,          ///< Recover with the original configuration.
  kDbaOff,        ///< Disable dirty-byte aggregation while the link is flaky.
  kInvalidation,  ///< Fall back to the invalidation protocol.
};

std::string_view to_string(DegradedMode m);

struct RecoveryStats {
  std::uint64_t recoveries = 0;
  std::uint64_t restarts_from_scratch = 0;  ///< Crashes with no checkpoint.
  std::uint64_t steps_replayed = 0;
  sim::Time lost_work = 0.0;     ///< Wall time whose results were discarded.
  sim::Time restore_time = 0.0;  ///< Pmem reads + device image re-push.
  std::uint64_t scrubbed_lines = 0;
  DegradedMode last_degraded = DegradedMode::kNone;
};

class RecoveryManager {
 public:
  struct RestorePlan {
    std::size_t resume_step = 0;  ///< First step to (re-)execute.
    bool from_checkpoint = false;
    DegradedMode degraded = DegradedMode::kNone;
    sim::Time restore_time = 0.0;
  };

  RecoveryManager(CheckpointEngine& engine, PersistentStore& store)
      : engine_(engine), store_(store) {}

  /// Decide how to come back from a crash at `crash_time`. `state_bytes` is
  /// the full checkpoint image (pmem read), `device_image_bytes` the
  /// parameter image that must travel back over the link at `link_bw`.
  RestorePlan plan_recovery(sim::Time crash_time, const FaultInjector& inj,
                            std::uint64_t state_bytes,
                            std::uint64_t device_image_bytes, double link_bw,
                            bool allow_degraded) const;

  /// Account a completed recovery: the plan that was executed, the wall
  /// time discarded, and how many steps the replay will redo.
  void record_recovery(const RestorePlan& plan, sim::Time lost_work,
                       std::size_t steps_replayed);

  /// Repair one poisoned device line from the CPU-side master image via a
  /// full-line coherent push (Session::scrub_device_line), so the repair
  /// flows through the protocol and stays checker-visible.
  void scrub_poisoned_line(core::Session& session, mem::Addr line_addr);

  const RecoveryStats& stats() const { return stats_; }

 private:
  CheckpointEngine& engine_;
  PersistentStore& store_;
  RecoveryStats stats_;
};

}  // namespace teco::ft
