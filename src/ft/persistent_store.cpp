#include "ft/persistent_store.hpp"

#include <algorithm>

namespace teco::ft {

void PersistentStore::stage_bytes(mem::Addr addr,
                                  std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const mem::Addr a = addr + done;
    const mem::Addr base = mem::line_base(a);
    const std::size_t off = static_cast<std::size_t>(a - base);
    const std::size_t n =
        std::min(bytes.size() - done, mem::kLineBytes - off);
    // Read-modify-write: start from the staged image if this line is
    // already buffered, otherwise from the committed media.
    Line line = staged_lines_.contains(mem::line_index(base))
                    ? staged_.read_line(base)
                    : durable_.read_line(base);
    std::copy_n(bytes.data() + done, n, line.begin() + off);
    stage_line(base, line);
    done += n;
  }
}

sim::Time PersistentStore::commit(sim::Time now) {
  const std::uint64_t bytes = staged_lines_.size() * mem::kLineBytes;
  staged_.for_each_line([this](mem::Addr base, const Line& line) {
    durable_.write_line(base, line);
  });
  staged_.clear();
  staged_lines_.clear();
  ++stats_.commits;
  stats_.committed_bytes += bytes;
  if (bytes == 0) return now;  // Nothing buffered: the fence is free.
  return now + timing_.write_time(bytes) + timing_.flush_latency;
}

void PersistentStore::crash() {
  ++stats_.crashes;
  stats_.lost_staged_lines += staged_lines_.size();
  staged_.clear();
  staged_lines_.clear();
}

}  // namespace teco::ft
