#include "ft/fault_injector.hpp"

#include <algorithm>

namespace teco::ft {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  crash_step_used_.assign(plan_.crash_steps.size(), false);
  if (plan_.mtbf > 0.0 && plan_.mtbf_horizon > 0.0) {
    sim::Rng rng(plan_.seed ^ 0xc7a5'7a11'5eedull);
    sim::Time t = 0.0;
    while (true) {
      t += rng.next_exponential(plan_.mtbf);
      if (t >= plan_.mtbf_horizon) break;
      sampled_crashes_.push_back(t);
    }
  }
}

sim::Time FaultInjector::transmit_delay(cxl::Direction /*dir*/,
                                        sim::Time t_ready,
                                        const cxl::Packet& /*pkt*/,
                                        std::uint64_t /*count*/) {
  // Stall submission to the end of every down window covering the ready
  // time; windows may abut, so re-check after each shift.
  sim::Time t = t_ready;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : plan_.link_down) {
      if (t >= w.start && t < w.start + w.duration) {
        t = w.start + w.duration;
        moved = true;
      }
    }
  }
  if (t > t_ready) {
    ++stats_.packets_delayed;
    stats_.delay_injected += t - t_ready;
  }
  return t - t_ready;
}

void FaultInjector::on_packet(sim::Time /*now*/, std::uint8_t /*dir*/,
                              std::uint8_t /*msg_type*/, mem::Addr /*addr*/,
                              std::uint64_t count, sim::Time /*delivered*/) {
  stats_.packets_observed += count;
}

bool FaultInjector::crash_due(std::size_t step, sim::Time now) {
  for (std::size_t i = 0; i < plan_.crash_steps.size(); ++i) {
    if (!crash_step_used_[i] && plan_.crash_steps[i] == step) {
      crash_step_used_[i] = true;
      ++stats_.crashes;
      return true;
    }
  }
  if (next_sampled_ < sampled_crashes_.size() &&
      sampled_crashes_[next_sampled_] <= now) {
    ++next_sampled_;
    ++stats_.crashes;
    return true;
  }
  return false;
}

std::vector<PoisonEvent> FaultInjector::take_poison(std::size_t step) {
  std::vector<PoisonEvent> out;
  for (const auto& p : plan_.poison) {
    if (p.step == step) out.push_back(p);
  }
  std::erase_if(plan_.poison,
                [step](const PoisonEvent& p) { return p.step == step; });
  stats_.poisoned_lines += out.size();
  return out;
}

bool FaultInjector::link_flaky_at(sim::Time t) const {
  if (plan_.bit_error_rate >= 1e-7) return true;
  for (const auto& w : plan_.link_down) {
    // A window counts as "around t" from shortly before it opens until it
    // closes: recovery decisions made just ahead of a retrain should treat
    // the link as unreliable.
    if (t >= w.start - 1.0 && t < w.start + w.duration) return true;
  }
  return false;
}

}  // namespace teco::ft
