// Deterministic fault-tolerant training harness.
//
// Drives a synthetic sparse-update training loop through a core::Session
// with the full ft stack attached: checkpoints at the configured interval,
// faults injected from a FaultPlan, crash recovery through the
// RecoveryManager. The workload recurrence is keyed so that replay is
// exact: step s draws its touched lines and gradient noise from an RNG
// seeded by (data_seed, s), and the optimizer is a lazy per-index Adam over
// the touched indices with the global step count as bias-correction time.
// Restoring a checkpoint of (master, accel image, m, v) at step k therefore
// reproduces steps k+1..n bit-for-bit — the property the crash-recovery
// test asserts against an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dl/adam.hpp"
#include "ft/checkpoint_engine.hpp"
#include "ft/fault_injector.hpp"
#include "ft/persistent_store.hpp"
#include "ft/recovery_manager.hpp"
#include "sim/time.hpp"

namespace teco::ft {

struct FtTrainConfig {
  core::SessionConfig session;  ///< ft_mode / interval / seed live here.
  std::size_t steps = 48;
  std::size_t n_params = 4096;
  /// Fraction of parameter lines each step touches (sparse lazy updates).
  double update_fraction = 0.35;
  dl::AdamConfig adam;
  std::uint64_t data_seed = 7;
  sim::Time step_compute = sim::ms(2.0);  ///< Forward+backward window.
  sim::Time cpu_opt_time = sim::us(200);  ///< Clip + Adam sweep window.
  PmemTiming pmem;
  FaultPlan faults;
  bool allow_degraded = true;
  /// Safety valve: stop consuming crash events past this many recoveries.
  std::size_t max_recoveries = 32;
};

struct FtTrainResult {
  // Final training state (bit-comparable across runs).
  std::vector<float> master;
  std::vector<float> accel;
  std::vector<float> adam_m;
  std::vector<float> adam_v;

  std::size_t steps_completed = 0;  ///< Distinct steps (excludes replays).
  std::size_t steps_executed = 0;   ///< Including replayed steps.
  sim::Time wall_time = 0.0;

  core::FtMode mode = core::FtMode::kOff;
  DegradedMode final_degraded = DegradedMode::kNone;
  CheckpointStats checkpoint;
  FaultStats faults;
  RecoveryStats recovery;
  PersistentStoreStats pmem;

  std::string gantt;  ///< Rendered timeline (train/pmem/restore/fault lanes).
};

FtTrainResult run_ft_training(const FtTrainConfig& cfg);

}  // namespace teco::ft
