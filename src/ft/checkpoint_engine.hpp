// Checkpointing of training state into the persistent CXL device.
//
// The engine snapshots registered state regions (FP32 master parameters,
// the accelerator's parameter image, Adam m/v) into a PersistentStore. Two
// modes, selected by core::FtMode:
//
//   kFull         every checkpoint stages every line and commits — a
//                 synchronous stop-the-world snapshot.
//   kIncremental  only lines dirtied since the last durable checkpoint are
//                 staged. Parameter dirt is discovered for free: the update
//                 protocol already pushes every modified line over the link
//                 as FlushData (cpu->device), and the engine listens on the
//                 check::Observer packet hook. Host-only state (Adam m/v)
//                 is marked explicitly by the trainer. Because the staged
//                 lines ride the same stream the pmem device snoops, their
//                 media writes overlap compute; only the excess beyond the
//                 overlap window plus the durability fence is exposed.
//
// Restores read the committed image only (stage-then-crash loses exactly
// the staged lines), which is what makes the crash-recovery test able to
// demand bit-identical replay.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "check/observer.hpp"
#include "core/session.hpp"
#include "cxl/link.hpp"
#include "cxl/packet.hpp"
#include "ft/persistent_store.hpp"
#include "mem/address.hpp"
#include "sim/time.hpp"

namespace teco::ft {

struct CheckpointStats {
  std::uint64_t checkpoints = 0;
  std::uint64_t lines_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lines_skipped_clean = 0;  ///< Incremental mode savings.
  sim::Time media_time = 0.0;    ///< Total pmem write + fence time.
  sim::Time exposed_time = 0.0;  ///< Portion on the training critical path.
};

class CheckpointEngine final : public check::Observer {
 public:
  /// Sentinel for "no durable checkpoint yet".
  static constexpr std::size_t kNoStep = static_cast<std::size_t>(-1);

  CheckpointEngine(PersistentStore& store, core::FtMode mode)
      : store_(store), mode_(mode) {}

  /// Register a state region backed by the live buffer `data` (the engine
  /// reads it at checkpoint time; it must stay valid and fixed-size).
  /// `track_base` is the session address the region occupies in the
  /// coherent domain — FlushData packets to [track_base, track_base+bytes)
  /// mark its lines dirty automatically. Pass kUntracked for host-only
  /// state that the trainer marks by hand (Adam moments).
  static constexpr mem::Addr kUntracked = static_cast<mem::Addr>(-1);
  void register_state(const std::string& name, std::span<const float> data,
                      mem::Addr track_base = kUntracked);

  /// Explicit dirty marks for host-only regions: floats [first, first+count)
  /// of region `name` changed since the last checkpoint.
  void mark_floats(const std::string& name, std::size_t first,
                   std::size_t count);
  /// Forget all tracking and treat every region as fully dirty (used after
  /// a crash restore, when in-memory tracking can no longer be trusted).
  void mark_all_dirty();

  struct Result {
    std::uint64_t lines = 0;
    std::uint64_t bytes = 0;
    sim::Time media_time = 0.0;    ///< Pmem write + durability fence.
    sim::Time exposed_time = 0.0;  ///< Critical-path share of media_time.
  };

  /// Snapshot all registered regions as of `step` and commit. In
  /// incremental mode, up to `overlap_window` of the media write hides
  /// behind compute (the staged lines rode the update stream during the
  /// step); full checkpoints are synchronous.
  Result checkpoint(sim::Time now, std::size_t step,
                    sim::Time overlap_window = 0.0);

  /// Last step with a durable (committed) checkpoint, or kNoStep. Read from
  /// the committed header line, so a crash after stage-before-commit
  /// correctly reports the previous checkpoint.
  std::size_t last_durable_step() const;

  /// Copy the committed image of region `name` into `out` (sized exactly
  /// as registered). Returns false if the name is unknown.
  bool restore_into(const std::string& name, std::span<float> out) const;

  core::FtMode mode() const { return mode_; }
  const CheckpointStats& stats() const { return stats_; }

  // check::Observer — dirty discovery from update-protocol pushes.
  void on_packet(sim::Time now, std::uint8_t dir, std::uint8_t msg_type,
                 mem::Addr addr, std::uint64_t count,
                 sim::Time delivered) override;

 private:
  struct StateRegion {
    std::string name;
    std::span<const float> data;
    mem::Addr track_base = kUntracked;
    mem::Addr pmem_base = 0;  ///< Where the image lives in the store.
    std::vector<bool> dirty;  ///< Per line; sized to the region.
    bool ever_checkpointed = false;

    std::uint64_t bytes() const { return data.size() * sizeof(float); }
    std::uint64_t lines() const {
      return (bytes() + mem::kLineBytes - 1) / mem::kLineBytes;
    }
  };

  StateRegion* find(const std::string& name);
  const StateRegion* find(const std::string& name) const;

  PersistentStore& store_;
  core::FtMode mode_;
  std::vector<StateRegion> regions_;
  /// Pmem layout: header line at 0, regions bump-allocated behind it at
  /// 4 KiB granularity.
  mem::Addr pmem_next_ = 0x1000;
  CheckpointStats stats_;
};

}  // namespace teco::ft
