// Simulated persistent CXL memory device (the checkpoint target).
//
// TrainingCXL ("Failure Tolerant Training with Persistent Memory
// Disaggregation over CXL") attaches persistent memory behind a CXL.mem
// port and checkpoints training state into it. This store models the
// durability contract of such a device: writes land in a volatile device
// write buffer first (staged) and only become crash-safe after an explicit
// commit — the ADR-style drain a checkpoint fence issues. A device crash
// between commits discards the staged bytes and leaves the last committed
// image intact.
//
// Timing is carried by PmemTiming, whose constants come from
// offload::Calibration (pmem_* fields) so benches and the recovery model
// account checkpoint traffic consistently.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>

#include "mem/address.hpp"
#include "mem/backing_store.hpp"
#include "offload/calibration.hpp"
#include "sim/time.hpp"

namespace teco::ft {

/// Bandwidth/latency constants of the persistent device.
struct PmemTiming {
  double write_bw = 8e9;
  double read_bw = 20e9;
  sim::Time access_latency = sim::ns(400);
  sim::Time flush_latency = sim::us(2.0);

  static PmemTiming from_calibration(const offload::Calibration& cal) {
    return PmemTiming{cal.pmem_write_bw, cal.pmem_read_bw,
                      cal.pmem_access_latency, cal.pmem_flush_latency};
  }

  /// Media time for a sequential write pass (no durability fence).
  sim::Time write_time(std::uint64_t bytes) const {
    return access_latency + static_cast<double>(bytes) / write_bw;
  }
  sim::Time read_time(std::uint64_t bytes) const {
    return access_latency + static_cast<double>(bytes) / read_bw;
  }
};

struct PersistentStoreStats {
  std::uint64_t commits = 0;
  std::uint64_t committed_bytes = 0;
  std::uint64_t crashes = 0;
  std::uint64_t lost_staged_lines = 0;  ///< Staged lines discarded by crashes.
};

class PersistentStore {
 public:
  using Line = mem::BackingStore::Line;

  explicit PersistentStore(PmemTiming timing = {}) : timing_(timing) {}

  /// Stage a whole line into the device write buffer (not yet durable).
  void stage_line(mem::Addr addr, const Line& data) {
    staged_.write_line(addr, data);
    staged_lines_.insert(mem::line_index(addr));
  }

  /// Stage an arbitrary byte range; partially covered lines read-modify-
  /// write against the current (staged-over-durable) contents.
  void stage_bytes(mem::Addr addr, std::span<const std::uint8_t> bytes);

  /// Durability fence: drain the write buffer into persistent media.
  /// Returns the completion time (media write of the staged bytes plus the
  /// flush latency, starting at `now`).
  sim::Time commit(sim::Time now);

  /// Device crash: the write buffer is lost, committed media survives.
  void crash();

  /// Read committed (durable) contents; staged bytes are invisible until
  /// commit, exactly like a crash-consistent reader.
  void read(mem::Addr addr, std::span<std::uint8_t> out) const {
    durable_.read(addr, out);
  }
  Line read_line(mem::Addr addr) const { return durable_.read_line(addr); }

  std::uint64_t staged_lines() const { return staged_lines_.size(); }
  std::uint64_t durable_lines() const { return durable_.resident_lines(); }
  const PmemTiming& timing() const { return timing_; }
  const PersistentStoreStats& stats() const { return stats_; }

 private:
  PmemTiming timing_;
  mem::BackingStore staged_;
  mem::BackingStore durable_;
  std::unordered_set<std::uint64_t> staged_lines_;
  PersistentStoreStats stats_;
};

}  // namespace teco::ft
