#include "ft/checkpoint_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace teco::ft {

namespace {

/// Committed header line: identifies the image and the step it captures.
constexpr std::uint64_t kHeaderMagic = 0x7465636f'66743031ull;  // "tecoft01"
constexpr mem::Addr kHeaderAddr = 0;

struct Header {
  std::uint64_t magic = 0;
  std::uint64_t step = 0;
};

}  // namespace

void CheckpointEngine::register_state(const std::string& name,
                                      std::span<const float> data,
                                      mem::Addr track_base) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("CheckpointEngine: duplicate region '" +
                                name + "'");
  }
  StateRegion r;
  r.name = name;
  r.data = data;
  r.track_base = track_base;
  r.pmem_base = pmem_next_;
  r.dirty.assign(r.lines(), true);  // Everything is dirty before snapshot 0.
  constexpr mem::Addr kPmemAlign = 0x1000;
  pmem_next_ += (r.bytes() + kPmemAlign - 1) / kPmemAlign * kPmemAlign;
  regions_.push_back(std::move(r));
}

CheckpointEngine::StateRegion* CheckpointEngine::find(const std::string& n) {
  for (auto& r : regions_) {
    if (r.name == n) return &r;
  }
  return nullptr;
}

const CheckpointEngine::StateRegion* CheckpointEngine::find(
    const std::string& n) const {
  return const_cast<CheckpointEngine*>(this)->find(n);
}

void CheckpointEngine::mark_floats(const std::string& name, std::size_t first,
                                   std::size_t count) {
  StateRegion* r = find(name);
  if (r == nullptr || count == 0) return;
  const std::size_t lo = first * sizeof(float) / mem::kLineBytes;
  const std::size_t hi =
      ((first + count) * sizeof(float) - 1) / mem::kLineBytes;
  for (std::size_t l = lo; l <= hi && l < r->dirty.size(); ++l) {
    r->dirty[l] = true;
  }
}

void CheckpointEngine::mark_all_dirty() {
  for (auto& r : regions_) {
    std::fill(r.dirty.begin(), r.dirty.end(), true);
  }
}

void CheckpointEngine::on_packet(sim::Time /*now*/, std::uint8_t dir,
                                 std::uint8_t msg_type, mem::Addr addr,
                                 std::uint64_t count,
                                 sim::Time /*delivered*/) {
  if (msg_type != static_cast<std::uint8_t>(cxl::MessageType::kFlushData) ||
      dir != static_cast<std::uint8_t>(cxl::Direction::kCpuToDevice)) {
    return;
  }
  for (auto& r : regions_) {
    if (r.track_base == kUntracked) continue;
    for (std::uint64_t i = 0; i < count; ++i) {
      const mem::Addr a = addr + i * mem::kLineBytes;
      if (a < r.track_base || a >= r.track_base + r.bytes()) continue;
      r.dirty[(a - r.track_base) / mem::kLineBytes] = true;
    }
  }
}

CheckpointEngine::Result CheckpointEngine::checkpoint(sim::Time now,
                                                      std::size_t step,
                                                      sim::Time overlap) {
  Result res;
  for (auto& r : regions_) {
    const bool full_pass = mode_ == core::FtMode::kFull ||
                           !r.ever_checkpointed;
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(r.data.data());
    for (std::uint64_t l = 0; l < r.lines(); ++l) {
      if (!full_pass && !r.dirty[l]) {
        ++stats_.lines_skipped_clean;
        continue;
      }
      const std::uint64_t off = l * mem::kLineBytes;
      const std::uint64_t n = std::min(mem::kLineBytes, r.bytes() - off);
      store_.stage_bytes(r.pmem_base + off, {bytes + off, n});
      ++res.lines;
    }
    std::fill(r.dirty.begin(), r.dirty.end(), false);
    r.ever_checkpointed = true;
  }
  Header h{kHeaderMagic, step};
  std::uint8_t hbytes[sizeof(Header)];
  std::memcpy(hbytes, &h, sizeof(Header));
  store_.stage_bytes(kHeaderAddr, hbytes);

  res.bytes = res.lines * mem::kLineBytes;
  res.media_time = store_.commit(now) - now;
  if (mode_ == core::FtMode::kIncremental) {
    // The staged lines rode the coherence stream the pmem device snoops, so
    // their media writes hide behind up to `overlap` of step compute; the
    // durability fence is always exposed.
    res.exposed_time =
        std::max(res.media_time - overlap, store_.timing().flush_latency);
  } else {
    res.exposed_time = res.media_time;
  }

  ++stats_.checkpoints;
  stats_.lines_written += res.lines;
  stats_.bytes_written += res.bytes;
  stats_.media_time += res.media_time;
  stats_.exposed_time += res.exposed_time;
  return res;
}

std::size_t CheckpointEngine::last_durable_step() const {
  std::uint8_t hbytes[sizeof(Header)];
  store_.read(kHeaderAddr, hbytes);
  Header h;
  std::memcpy(&h, hbytes, sizeof(Header));
  if (h.magic != kHeaderMagic) return kNoStep;
  return static_cast<std::size_t>(h.step);
}

bool CheckpointEngine::restore_into(const std::string& name,
                                    std::span<float> out) const {
  const StateRegion* r = find(name);
  if (r == nullptr || out.size() != r->data.size()) return false;
  store_.read(r->pmem_base,
              {reinterpret_cast<std::uint8_t*>(out.data()),
               out.size() * sizeof(float)});
  return true;
}

}  // namespace teco::ft
