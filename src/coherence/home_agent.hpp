// The CXL home agent: the coherence engine of TECO (Sections IV-A2, IV-B).
//
// The home agent lives CPU-side and mediates between two peer caches in one
// coherent domain: the CPU cache hierarchy (modeled by its LLC) and the
// accelerator's giant cache. It implements both protocols:
//
//  * kInvalidation — stock CXL.cache MESI: a write invalidates the remote
//    copy (control flit + ack across the link); the data crosses the link
//    later, on the consumer's demand read, exposing the PCIe transfer on the
//    consumer's critical path.
//  * kUpdate — the TECO extension: on every producer write to a line in the
//    giant-cache domain the home agent grants GO_Flush and the updated line
//    is pushed (FlushData) to the peer immediately, at cache-line grain,
//    overlapping with the producer's ongoing computation. Consumers then hit
//    locally. CPU<->home-agent requests (ReadOwn/GO) are on-package and
//    free; only HA<->device messages ride the CXL link.
//
// When DBA is active, parameter pushes (CPU->device, dba-eligible regions)
// are trimmed by the Aggregator and reconstructed by the Disaggregator.
// If backing stores are provided, real bytes move along with the protocol,
// making DBA merge correctness testable end to end.
#pragma once

#include <cstdint>
#include <optional>

#include "check/observer.hpp"
#include "coherence/giant_cache.hpp"
#include "core/annotations.hpp"
#include "coherence/mesi.hpp"
#include "coherence/snoop_filter.hpp"
#include "cxl/link.hpp"
#include "dba/aggregator.hpp"
#include "dba/disaggregator.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "sim/trace.hpp"

namespace teco::coherence {

struct HomeAgentStats {
  std::uint64_t update_pushes = 0;    ///< FlushData transfers (both dirs).
  std::uint64_t dba_trimmed_lines = 0;
  std::uint64_t invalidations = 0;    ///< Invalidate+InvAck round trips.
  std::uint64_t demand_fetches = 0;   ///< On-demand Data transfers.
  std::uint64_t local_device_reads = 0;
  std::uint64_t local_cpu_reads = 0;
  std::uint64_t cpu_flushes = 0;      ///< Lines dropped by cpu_flush_all.
  /// Regions demoted to invalidation MESI after a detected concurrent
  /// update (no clear producer/consumer — Section IV-A2).
  std::uint64_t protocol_fallbacks = 0;
};

class HomeAgent {
 public:
  struct Options {
    Protocol protocol = Protocol::kUpdate;
    dba::DbaRegister dba{};                   ///< Initial DBA register.
    mem::BackingStore* cpu_mem = nullptr;     ///< Optional real CPU memory.
    mem::BackingStore* device_mem = nullptr;  ///< Optional giant-cache bytes.
    sim::Trace* trace = nullptr;
  };

  /// Result of a consumer-side load.
  struct Access {
    sim::Time ready = 0.0;    ///< When the data is usable.
    bool crossed_link = false;  ///< True for demand fetches.
  };

  HomeAgent(cxl::Link& link, GiantCache& giant_cache, mem::Cache& cpu_cache,
            Options opts);

  // --- CPU side (produces parameters, consumes gradients) ---

  /// CPU stores a full line (a vectorized optimizer update). In update mode
  /// this triggers the GO_Flush push; returns its link delivery, or nullopt
  /// if no data crossed the link (invalidation mode, or unmapped line).
  std::optional<cxl::Delivery> cpu_write_line(sim::Time now, mem::Addr line);

  Access cpu_read_line(sim::Time now, mem::Addr line);

  /// Once-per-iteration CPU cache flush (Fig. 5): every giant-domain line in
  /// S drops to I on the CPU and the device copy returns to E. Returns the
  /// number of lines transitioned.
  std::uint64_t cpu_flush_all(sim::Time now);

  // --- Device side (produces gradients, consumes parameters) ---

  Access device_read_line(sim::Time now, mem::Addr line);

  std::optional<cxl::Delivery> device_write_line(sim::Time now,
                                                 mem::Addr line);

  // --- Control ---

  /// Demote the region containing `addr` to invalidation MESI. Called
  /// automatically when both peers update the same line (no clear
  /// producer/consumer); may also be invoked explicitly. The region stays
  /// demoted and its lines are tracked in the snoop filter from then on.
  void demote_region(sim::Time now, mem::Addr addr);

  /// The protocol governing `addr` right now: the agent's protocol, unless
  /// the region was demoted.
  Protocol effective_protocol(mem::Addr addr) const;

  /// Program the DBA register; mirrors it to the device CXL module with a
  /// kDbaConfig message (Section V-C).
  void set_dba(sim::Time now, dba::DbaRegister reg);
  dba::DbaRegister dba() const {
    shard_.assert_held();
    return aggregator_.reg();
  }

  /// CXLFENCE(): drain all in-flight coherence traffic.
  sim::Time cxl_fence(sim::Time now) const { return link_.fence_all(now); }

  const HomeAgentStats& stats() const {
    shard_.assert_held();
    return stats_;
  }
  const SnoopFilter& snoop_filter() const {
    shard_.assert_held();
    return snoop_;
  }
  /// Mutable directory access for fault injection and the model checker's
  /// mutation hooks. Pokes through this still notify any attached observer,
  /// so the strict checker judges them like any other transition.
  SnoopFilter& snoop_filter() {
    shard_.assert_held();
    return snoop_;
  }
  const dba::Aggregator& aggregator() const {
    shard_.assert_held();
    return aggregator_;
  }
  const dba::Disaggregator& disaggregator() const {
    shard_.assert_held();
    return disaggregator_;
  }
  const GiantCache& giant_cache() const { return gc_; }
  const mem::Cache& cpu_cache() const { return cpu_cache_; }
  const cxl::Link& link() const { return link_; }
  Protocol protocol() const { return protocol_; }

  /// Attach/detach the coherence invariant checker. Wires the observer into
  /// every component of the domain (giant cache, CPU cache, snoop filter,
  /// link, DBA units) in one call; nullptr detaches everywhere.
  void set_observer(check::Observer* obs);

  /// Attach/detach a telemetry registry. Wires the link's cxl.*/coherence.*
  /// counters and resolves the agent's own dba.* handles (the trim decision
  /// is only visible here); nullptr detaches everywhere.
  void set_metrics(obs::MetricsRegistry* reg);

 private:
  /// CPU-line state as the coherence layer sees it (I if not resident).
  MesiState cpu_state(mem::Addr line) const;
  void set_cpu_state(mem::Addr line, MesiState s, bool dirty);

  // Operation bodies; the public entry points wrap them in the observer's
  // op scope so whole-line invariants are judged once the transition
  // sequence has quiesced.
  std::optional<cxl::Delivery> cpu_write_line_impl(sim::Time now,
                                                   mem::Addr line,
                                                   GiantCacheRegion& region)
      TECO_REQUIRES(shard_);
  Access cpu_read_line_impl(sim::Time now, mem::Addr line)
      TECO_REQUIRES(shard_);
  Access device_read_line_impl(sim::Time now, mem::Addr line)
      TECO_REQUIRES(shard_);
  std::optional<cxl::Delivery> device_write_line_impl(sim::Time now,
                                                      mem::Addr line,
                                                      GiantCacheRegion& region)
      TECO_REQUIRES(shard_);
  std::uint64_t cpu_flush_all_impl(sim::Time now) TECO_REQUIRES(shard_);

  cxl::Delivery push_line_to_device(sim::Time now, mem::Addr line,
                                    const GiantCacheRegion& region)
      TECO_REQUIRES(shard_);
  cxl::Delivery push_line_to_cpu(sim::Time now, mem::Addr line)
      TECO_REQUIRES(shard_);

  void trace(sim::Time now, std::string_view event, mem::Addr line,
             std::string detail = {});

  cxl::Link& link_;
  GiantCache& gc_;
  mem::Cache& cpu_cache_;
  Protocol protocol_;
  mem::BackingStore* cpu_mem_;
  mem::BackingStore* device_mem_;
  sim::Trace* trace_;
  check::Observer* observer_ = nullptr;
  // The home agent is the unit of sharding (ROADMAP: N home-agent shards
  // partitioned by address). Its directory, DBA units and counters are
  // TECO_SHARD_AFFINE: the sharded engine may only reach them via events
  // delivered to this shard's queue. docs/STATIC_ANALYSIS.md has the guide.
  core::ShardCapability shard_;
  SnoopFilter snoop_ TECO_SHARD_AFFINE(shard_);
  dba::Aggregator aggregator_ TECO_SHARD_AFFINE(shard_);
  dba::Disaggregator disaggregator_ TECO_SHARD_AFFINE(shard_);
  HomeAgentStats stats_ TECO_SHARD_AFFINE(shard_);
  obs::Counter* m_dba_lines_ = nullptr;      ///< dba.lines_aggregated
  obs::Counter* m_dba_saved_ = nullptr;      ///< dba.bytes_saved
  obs::Counter* m_dba_fallback_ = nullptr;   ///< dba.fallback_full_lines
};

}  // namespace teco::coherence
