// SnoopFilter is header-only; this TU anchors the header's compilation.
#include "coherence/snoop_filter.hpp"
