// MESI states and the paper's update-protocol extension (Fig. 4).
//
// The only change TECO makes to CXL's MESI is the red arrow of Fig. 4: a
// line in Modified may transition directly to Shared by pushing FlushData
// at update time (home-agent approval), instead of staying M until an
// invalidation-triggered writeback. All other transitions are stock MESI.
#pragma once

#include <cstdint>
#include <string_view>

namespace teco::coherence {

enum class MesiState : std::uint8_t {
  kInvalid = 0,
  kShared = 1,
  kExclusive = 2,
  kModified = 3,
};

inline constexpr std::string_view to_string(MesiState s) {
  switch (s) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
  }
  // The switch covers every enumerator; a value outside the enum is UB at
  // the cast site, not here.
  __builtin_unreachable();
}

enum class Protocol : std::uint8_t {
  kInvalidation,  ///< Stock CXL.cache MESI.
  kUpdate,        ///< TECO extension: push FlushData on update (M -> S).
};

/// Whether `from -> to` is a legal transition under `proto`. Used by the
/// protocol tests to sweep the full matrix.
constexpr bool legal_transition(Protocol proto, MesiState from, MesiState to) {
  using S = MesiState;
  switch (from) {
    case S::kInvalid:
      return to == S::kExclusive || to == S::kShared || to == S::kInvalid;
    case S::kShared:
      return to == S::kInvalid || to == S::kShared || to == S::kModified ||
             to == S::kExclusive;
    case S::kExclusive:
      return to == S::kModified || to == S::kShared || to == S::kInvalid ||
             to == S::kExclusive;
    case S::kModified:
      // M->S with a data push is the update-protocol extension; under
      // invalidation MESI, M only leaves via writeback to I (or stays M).
      if (to == S::kShared) return proto == Protocol::kUpdate;
      return to == S::kInvalid || to == S::kModified;
  }
  return false;
}

}  // namespace teco::coherence
