#include "coherence/giant_cache.hpp"

namespace teco::coherence {

GiantCacheRegion& GiantCache::map_region(std::string name, mem::Addr base,
                                         std::uint64_t bytes,
                                         MesiState initial_state,
                                         bool dba_eligible) {
  shard_.assert_held();
  if (!mem::line_aligned(base) || bytes % mem::kLineBytes != 0) {
    throw std::invalid_argument("giant-cache regions must be line-aligned");
  }
  if (bytes == 0) throw std::invalid_argument("empty giant-cache region");
  if (mapped_ + bytes > capacity_) {
    throw std::length_error("giant cache capacity exceeded: configure a "
                            "larger BAR window before training");
  }
  const mem::Region r{base, bytes};
  for (const auto& existing : regions_) {
    if (existing.region.overlaps(r)) {
      throw std::invalid_argument("giant-cache regions must not overlap");
    }
  }
  mapped_ += bytes;
  regions_.push_back(GiantCacheRegion{
      std::move(name), r, dba_eligible,
      std::vector<MesiState>(r.lines(), initial_state)});
  if (observer_ != nullptr) {
    observer_->on_region_mapped(base, bytes,
                                static_cast<std::uint8_t>(initial_state),
                                dba_eligible);
  }
  return regions_.back();
}

const GiantCacheRegion* GiantCache::find(mem::Addr addr) const {
  shard_.assert_held();
  for (const auto& r : regions_) {
    if (r.region.contains_line(addr)) return &r;
  }
  return nullptr;
}

GiantCacheRegion* GiantCache::find(mem::Addr addr) {
  shard_.assert_held();
  for (auto& r : regions_) {
    if (r.region.contains_line(addr)) return &r;
  }
  return nullptr;
}

MesiState GiantCache::state(mem::Addr addr) const {
  const auto* r = find(addr);
  if (r == nullptr) {
    throw std::out_of_range("address not mapped to the giant cache");
  }
  return r->line_states[line_slot(*r, addr)];
}

void GiantCache::set_state(mem::Addr addr, MesiState s) {
  auto* r = find(addr);
  if (r == nullptr) {
    throw std::out_of_range("address not mapped to the giant cache");
  }
  MesiState& slot = r->line_states[line_slot(*r, addr)];
  const MesiState old = slot;
  slot = s;
  if (observer_ != nullptr) {
    observer_->on_state_change(check::Domain::kGiantCache,
                               mem::line_base(addr),
                               static_cast<std::uint8_t>(old),
                               static_cast<std::uint8_t>(s));
  }
}

std::uint64_t GiantCache::count_state(MesiState s) const {
  shard_.assert_held();
  std::uint64_t n = 0;
  for (const auto& r : regions_) {
    for (const auto st : r.line_states) {
      if (st == s) ++n;
    }
  }
  return n;
}

}  // namespace teco::coherence
