// The accelerator-side giant cache (Section IV-A1).
//
// A user-configured slice of accelerator memory mapped into the CXL coherent
// domain via resizable-BAR-style address registers: two registers (base,
// size) per cached region, set at tensor allocation time. The giant cache is
// sized to hold every offload-managed tensor, so there are no capacity or
// conflict misses — the directory is a flat per-region state array, not a
// set-associative structure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/observer.hpp"
#include "core/annotations.hpp"
#include "coherence/mesi.hpp"
#include "mem/address.hpp"

namespace teco::coherence {

struct GiantCacheRegion {
  std::string name;
  mem::Region region;
  bool dba_eligible = false;  ///< Parameters yes, gradients no (Section V).
  std::vector<MesiState> line_states;
  /// Set when the home agent demotes the region to invalidation MESI
  /// (Section IV-A2: applications without a clear producer/consumer fall
  /// back to the stock protocol + snoop filter).
  bool forced_invalidation = false;
};

class GiantCache {
 public:
  /// `capacity_bytes` is the BAR-mapped slice of accelerator memory.
  explicit GiantCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Map a tensor region into the coherent domain. Throws if the region is
  /// unaligned, overlaps an existing region, or exceeds capacity.
  GiantCacheRegion& map_region(std::string name, mem::Addr base,
                               std::uint64_t bytes, MesiState initial_state,
                               bool dba_eligible);

  /// Region containing `addr`, or nullptr if the address is not mapped
  /// (i.e. lives in ordinary non-coherent accelerator memory).
  const GiantCacheRegion* find(mem::Addr addr) const;
  GiantCacheRegion* find(mem::Addr addr);

  bool contains_line(mem::Addr addr) const { return find(addr) != nullptr; }

  MesiState state(mem::Addr addr) const;
  void set_state(mem::Addr addr, MesiState s);

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t mapped_bytes() const {
    shard_.assert_held();
    return mapped_;
  }
  std::uint64_t mapped_lines() const {
    shard_.assert_held();
    return mapped_ / mem::kLineBytes;
  }
  const std::vector<GiantCacheRegion>& regions() const {
    shard_.assert_held();
    return regions_;
  }

  /// Count of lines currently in `s` across all regions (test helper).
  std::uint64_t count_state(MesiState s) const;

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  void set_observer(check::Observer* obs) { observer_ = obs; }

 private:
  std::uint64_t line_slot(const GiantCacheRegion& r, mem::Addr addr) const {
    return (mem::line_base(addr) - r.region.base) / mem::kLineBytes;
  }

  std::uint64_t capacity_;
  // Region directory (MESI line states) is home-agent-shard state: the
  // sharded engine partitions regions across shards by address.
  core::ShardCapability shard_;
  std::uint64_t mapped_ TECO_SHARD_AFFINE(shard_) = 0;
  std::vector<GiantCacheRegion> regions_ TECO_SHARD_AFFINE(shard_);
  check::Observer* observer_ = nullptr;
};

}  // namespace teco::coherence
