#include "coherence/home_agent.hpp"

#include <string>
#include <utility>

namespace teco::coherence {

namespace {
constexpr std::uint8_t to_byte(MesiState s) {
  return static_cast<std::uint8_t>(s);
}
constexpr MesiState from_byte(std::uint8_t b) {
  return static_cast<MesiState>(b);
}
}  // namespace

HomeAgent::HomeAgent(cxl::Link& link, GiantCache& giant_cache,
                     mem::Cache& cpu_cache, Options opts)
    : link_(link), gc_(giant_cache), cpu_cache_(cpu_cache),
      protocol_(opts.protocol), cpu_mem_(opts.cpu_mem),
      device_mem_(opts.device_mem), trace_(opts.trace),
      aggregator_(opts.dba), disaggregator_(opts.dba) {}

void HomeAgent::trace(sim::Time now, std::string_view event, mem::Addr line,
                      std::string detail) {
  if (trace_ != nullptr) {
    trace_->emit(now, "home_agent",
                 std::string(event) + "@" + std::to_string(line),
                 std::move(detail));
  }
}

MesiState HomeAgent::cpu_state(mem::Addr line) const {
  const auto* meta = cpu_cache_.peek(line);
  return meta == nullptr ? MesiState::kInvalid : from_byte(meta->state);
}

void HomeAgent::set_cpu_state(mem::Addr line, MesiState s, bool dirty) {
  auto* meta = cpu_cache_.lookup(line);
  const MesiState old =
      meta == nullptr ? MesiState::kInvalid : from_byte(meta->state);
  if (meta == nullptr) {
    cpu_cache_.insert(line, to_byte(s), dirty);
  } else {
    meta->state = to_byte(s);
    meta->dirty = dirty;
  }
  if (observer_ != nullptr) {
    observer_->on_state_change(check::Domain::kCpuCache, mem::line_base(line),
                               to_byte(old), to_byte(s));
  }
}

void HomeAgent::set_observer(check::Observer* obs) {
  shard_.assert_held();
  observer_ = obs;
  gc_.set_observer(obs);
  cpu_cache_.set_observer(obs);
  link_.set_observer(obs);
  snoop_.set_observer(obs);
  aggregator_.set_observer(obs);
  disaggregator_.set_observer(obs);
}

void HomeAgent::set_metrics(obs::MetricsRegistry* reg) {
  shard_.assert_held();
  link_.set_metrics(reg);
  if (reg == nullptr) {
    m_dba_lines_ = m_dba_saved_ = m_dba_fallback_ = nullptr;
    return;
  }
  m_dba_lines_ = &reg->counter("dba.lines_aggregated");
  m_dba_saved_ = &reg->counter("dba.bytes_saved");
  m_dba_fallback_ = &reg->counter("dba.fallback_full_lines");
}

cxl::Delivery HomeAgent::push_line_to_device(sim::Time now, mem::Addr line,
                                             const GiantCacheRegion& region) {
  const bool trim = region.dba_eligible && aggregator_.reg().trims();
  const std::uint32_t payload =
      trim ? dba::payload_bytes(aggregator_.reg().dirty_bytes())
           : static_cast<std::uint32_t>(mem::kLineBytes);
  if (trim) {
    ++stats_.dba_trimmed_lines;
    if (m_dba_lines_ != nullptr) {
      m_dba_lines_->add();
      m_dba_saved_->add(static_cast<double>(mem::kLineBytes) - payload);
    }
  } else if (aggregator_.reg().trims() && m_dba_fallback_ != nullptr) {
    // DBA is programmed but this region has no stable dirty-byte pattern:
    // the line goes out full.
    m_dba_fallback_->add();
  }

  if (cpu_mem_ != nullptr && device_mem_ != nullptr) {
    const auto src = cpu_mem_->read_line(line);
    if (region.dba_eligible) {
      const auto packed = aggregator_.pack(src);
      const auto merged = disaggregator_.merge(device_mem_->read_line(line),
                                               packed);
      device_mem_->write_line(line, merged);
    } else {
      // Ineligible regions (gradients, demoted fallbacks) bypass the DBA
      // units entirely: while the register is programmed, pack/merge would
      // splice the line even though the packet above declares a full
      // payload, leaving stale high bytes under a full-line push.
      device_mem_->write_line(line, src);
    }
  }
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData,
                                    mem::line_base(line), payload, trim);
  return link_.send(cxl::Direction::kCpuToDevice, now, pkt);
}

cxl::Delivery HomeAgent::push_line_to_cpu(sim::Time now, mem::Addr line) {
  // Gradients never use DBA (Section V: no stable byte-update pattern).
  if (cpu_mem_ != nullptr && device_mem_ != nullptr) {
    cpu_mem_->write_line(line, device_mem_->read_line(line));
  }
  const auto pkt = cxl::data_packet(cxl::MessageType::kFlushData,
                                    mem::line_base(line), mem::kLineBytes);
  return link_.send(cxl::Direction::kDeviceToCpu, now, pkt);
}

void HomeAgent::demote_region(sim::Time now, mem::Addr addr) {
  shard_.assert_held();
  auto* region = gc_.find(mem::line_base(addr));
  if (region == nullptr || region->forced_invalidation) return;
  region->forced_invalidation = true;
  ++stats_.protocol_fallbacks;
  trace(now, "ProtocolFallback", mem::line_base(addr),
        "region '" + region->name + "' -> invalidation MESI");
}

Protocol HomeAgent::effective_protocol(mem::Addr addr) const {
  const auto* region = gc_.find(mem::line_base(addr));
  if (region != nullptr && region->forced_invalidation) {
    return Protocol::kInvalidation;
  }
  return protocol_;
}

std::optional<cxl::Delivery> HomeAgent::cpu_write_line(sim::Time now,
                                                       mem::Addr addr) {
  shard_.assert_held();
  const mem::Addr line = mem::line_base(addr);
  auto* region = gc_.find(line);
  if (region == nullptr) return std::nullopt;  // Ordinary memory.
  if (observer_ != nullptr) {
    observer_->on_op_begin(now, check::Op::kCpuWrite, line);
  }
  auto result = cpu_write_line_impl(now, line, *region);
  if (observer_ != nullptr) {
    observer_->on_op_end(now, check::Op::kCpuWrite, line);
  }
  return result;
}

std::optional<cxl::Delivery> HomeAgent::cpu_write_line_impl(
    sim::Time now, mem::Addr line, GiantCacheRegion& region) {
  // Producer/consumer violation: the device holds this line dirty while
  // the CPU writes it. The update protocol's no-snoop-filter argument no
  // longer holds for this region — fall back (Section IV-A2).
  if (protocol_ == Protocol::kUpdate && !region.forced_invalidation &&
      gc_.state(line) == MesiState::kModified) {
    demote_region(now, line);
  }

  const MesiState cs = cpu_state(line);
  if (cs == MesiState::kInvalid) {
    // ReadOwn/GO between CPU cache and home agent are on-package: no link
    // traffic, only the state transition of Fig. 5 step (1).
    trace(now, "ReadOwn", line, "Cs:I->E");
    set_cpu_state(line, MesiState::kExclusive, false);
  }

  if (effective_protocol(line) == Protocol::kUpdate) {
    // Fig. 5 step (2): Cs E->M on the store; the home agent answers with
    // GO_Flush, the line is pushed, and Cs lands in S (clean), Gs in S.
    trace(now, "GO_Flush", line, "Cs:M->S Gs:S");
    set_cpu_state(line, MesiState::kShared, false);
    ++stats_.update_pushes;
    auto delivery = push_line_to_device(now, line, region);
    gc_.set_state(line, MesiState::kShared);
    return delivery;
  }

  // Invalidation MESI: snoop out the device copy, keep the dirty line local.
  if (gc_.state(line) != MesiState::kInvalid) {
    link_.send(cxl::Direction::kCpuToDevice, now,
               cxl::control_packet(cxl::MessageType::kInvalidate, line));
    link_.send(cxl::Direction::kDeviceToCpu, now,
               cxl::control_packet(cxl::MessageType::kInvAck, line));
    gc_.set_state(line, MesiState::kInvalid);
    snoop_.remove_sharer(line, Sharer::kDevice);
    ++stats_.invalidations;
    trace(now, "Invalidate", line, "Gs->I");
  }
  set_cpu_state(line, MesiState::kModified, true);
  snoop_.add_sharer(line, Sharer::kCpu);
  return std::nullopt;
}

HomeAgent::Access HomeAgent::cpu_read_line(sim::Time now, mem::Addr addr) {
  shard_.assert_held();
  const mem::Addr line = mem::line_base(addr);
  if (!gc_.contains_line(line)) return Access{now, false};
  if (observer_ != nullptr) {
    observer_->on_op_begin(now, check::Op::kCpuRead, line);
  }
  const Access result = cpu_read_line_impl(now, line);
  if (observer_ != nullptr) {
    observer_->on_op_end(now, check::Op::kCpuRead, line);
  }
  return result;
}

HomeAgent::Access HomeAgent::cpu_read_line_impl(sim::Time now,
                                                mem::Addr line) {
  if (effective_protocol(line) == Protocol::kUpdate ||
      gc_.state(line) != MesiState::kModified) {
    // Data is home (update pushes landed, or device copy not dirty).
    ++stats_.local_cpu_reads;
    return Access{now, false};
  }

  // Invalidation mode with a device-dirty line: demand fetch.
  link_.send(cxl::Direction::kCpuToDevice, now,
             cxl::control_packet(cxl::MessageType::kDemandRead, line));
  if (cpu_mem_ != nullptr && device_mem_ != nullptr) {
    cpu_mem_->write_line(line, device_mem_->read_line(line));
  }
  const auto d = link_.send(
      cxl::Direction::kDeviceToCpu, now,
      cxl::data_packet(cxl::MessageType::kData, line, mem::kLineBytes));
  gc_.set_state(line, MesiState::kShared);
  set_cpu_state(line, MesiState::kShared, false);
  snoop_.add_sharer(line, Sharer::kCpu);
  ++stats_.demand_fetches;
  trace(now, "DemandRead", line, "cpu<-dev");
  return Access{d.delivered, true};
}

std::uint64_t HomeAgent::cpu_flush_all(sim::Time now) {
  shard_.assert_held();
  if (observer_ != nullptr) {
    observer_->on_op_begin(now, check::Op::kFlushAll, 0);
  }
  const std::uint64_t n = cpu_flush_all_impl(now);
  if (observer_ != nullptr) {
    observer_->on_op_end(now, check::Op::kFlushAll, 0);
  }
  return n;
}

std::uint64_t HomeAgent::cpu_flush_all_impl(sim::Time now) {
  std::uint64_t n = 0;
  // Collect giant-domain lines resident in the CPU cache, then transition.
  std::vector<mem::Addr> to_drop;
  cpu_cache_.for_each([&](const mem::CacheLineMeta& meta) {
    if (gc_.contains_line(meta.base) &&
        from_byte(meta.state) == MesiState::kShared) {
      to_drop.push_back(meta.base);
    }
  });
  for (const mem::Addr line : to_drop) {
    cpu_cache_.invalidate(line, /*writeback_on_invalidate=*/false);
    // A demoted region tracks its S-lines in the snoop filter; dropping the
    // CPU copy must retire the directory entry too, or a later consistency
    // sweep sees a phantom sharer.
    snoop_.remove_sharer(line, Sharer::kCpu);
    if (gc_.state(line) == MesiState::kShared) {
      gc_.set_state(line, MesiState::kExclusive);
    }
    ++n;
  }
  stats_.cpu_flushes += n;
  trace(now, "FlushAll", 0, std::to_string(n) + " lines");
  return n;
}

HomeAgent::Access HomeAgent::device_read_line(sim::Time now, mem::Addr addr) {
  shard_.assert_held();
  const mem::Addr line = mem::line_base(addr);
  if (!gc_.contains_line(line)) return Access{now, false};
  if (observer_ != nullptr) {
    observer_->on_op_begin(now, check::Op::kDeviceRead, line);
  }
  const Access result = device_read_line_impl(now, line);
  if (observer_ != nullptr) {
    observer_->on_op_end(now, check::Op::kDeviceRead, line);
  }
  return result;
}

HomeAgent::Access HomeAgent::device_read_line_impl(sim::Time now,
                                                   mem::Addr line) {
  if (gc_.state(line) != MesiState::kInvalid) {
    ++stats_.local_device_reads;
    return Access{now, false};
  }

  // Invalidation mode left the device copy invalid: fetch on demand. This
  // is the on-demand transfer the paper measures at +56.6% training time.
  link_.send(cxl::Direction::kDeviceToCpu, now,
             cxl::control_packet(cxl::MessageType::kDemandRead, line));
  if (cpu_mem_ != nullptr && device_mem_ != nullptr) {
    device_mem_->write_line(line, cpu_mem_->read_line(line));
  }
  const auto d = link_.send(
      cxl::Direction::kCpuToDevice, now,
      cxl::data_packet(cxl::MessageType::kData, line, mem::kLineBytes));
  gc_.set_state(line, MesiState::kShared);
  if (cpu_state(line) == MesiState::kModified) {
    set_cpu_state(line, MesiState::kShared, true);
  }
  snoop_.add_sharer(line, Sharer::kDevice);
  ++stats_.demand_fetches;
  trace(now, "DemandRead", line, "dev<-cpu");
  return Access{d.delivered, true};
}

std::optional<cxl::Delivery> HomeAgent::device_write_line(sim::Time now,
                                                          mem::Addr addr) {
  shard_.assert_held();
  const mem::Addr line = mem::line_base(addr);
  auto* region = gc_.find(line);
  if (region == nullptr) return std::nullopt;
  if (observer_ != nullptr) {
    observer_->on_op_begin(now, check::Op::kDeviceWrite, line);
  }
  auto result = device_write_line_impl(now, line, *region);
  if (observer_ != nullptr) {
    observer_->on_op_end(now, check::Op::kDeviceWrite, line);
  }
  return result;
}

std::optional<cxl::Delivery> HomeAgent::device_write_line_impl(
    sim::Time now, mem::Addr line, GiantCacheRegion& region) {
  // Symmetric producer/consumer violation: the CPU holds this line dirty
  // while the device writes it.
  if (protocol_ == Protocol::kUpdate && !region.forced_invalidation &&
      cpu_state(line) == MesiState::kModified) {
    demote_region(now, line);
  }

  if (effective_protocol(line) == Protocol::kUpdate) {
    // Symmetric update push: the device-produced line (a gradient) streams
    // to CPU memory at writeback time. A CPU cache copy, if resident, is
    // refreshed; non-resident lines simply land in CPU memory.
    gc_.set_state(line, MesiState::kShared);
    ++stats_.update_pushes;
    auto delivery = push_line_to_cpu(now, line);
    if (cpu_cache_.peek(line) != nullptr) {
      set_cpu_state(line, MesiState::kShared, false);
    }
    return delivery;
  }

  // Invalidation MESI: snoop out the CPU copy, keep the dirty line remote.
  if (cpu_state(line) != MesiState::kInvalid) {
    link_.send(cxl::Direction::kDeviceToCpu, now,
               cxl::control_packet(cxl::MessageType::kInvalidate, line));
    link_.send(cxl::Direction::kCpuToDevice, now,
               cxl::control_packet(cxl::MessageType::kInvAck, line));
    cpu_cache_.invalidate(line, /*writeback_on_invalidate=*/false);
    snoop_.remove_sharer(line, Sharer::kCpu);
    ++stats_.invalidations;
    trace(now, "Invalidate", line, "Cs->I");
  }
  if (gc_.state(line) == MesiState::kInvalid) {
    // Write-allocate miss: ownership is granted (ItoM) before the store
    // dirties the line — the same two-step the CPU-side write path takes,
    // so the directory never sees a raw I->M transition.
    gc_.set_state(line, MesiState::kExclusive);
  }
  gc_.set_state(line, MesiState::kModified);
  snoop_.add_sharer(line, Sharer::kDevice);
  return std::nullopt;
}

void HomeAgent::set_dba(sim::Time now, dba::DbaRegister reg) {
  shard_.assert_held();
  aggregator_.set_register(reg);
  link_.send(cxl::Direction::kCpuToDevice, now,
             cxl::control_packet(cxl::MessageType::kDbaConfig, reg.encode()));
  disaggregator_.set_register(reg);
  trace(now, "DbaConfig", reg.encode());
}

}  // namespace teco::coherence
