// Snoop filter (coherence directory) for the invalidation protocol.
//
// The paper's point (Section IV-A2): a giant cache would normally need a
// huge snoop filter tracking sharers per line, but TECO's producer/consumer
// discipline makes it unnecessary under the update protocol — the directory
// is only consulted in invalidation mode or when an application has unclear
// sharing. We implement it to (a) serve invalidation mode and (b) let tests
// assert it stays empty during update-protocol training.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "check/observer.hpp"
#include "core/annotations.hpp"
#include "mem/address.hpp"

namespace teco::coherence {

enum class Sharer : std::uint8_t {
  kCpu = 1u << 0,
  kDevice = 1u << 1,
};

class SnoopFilter {
 public:
  void add_sharer(mem::Addr line, Sharer who) {
    shard_.assert_held();
    std::uint8_t& mask = entries_[mem::line_index(line)];
    const std::uint8_t before = mask;
    mask |= static_cast<std::uint8_t>(who);
    peak_entries_ = entries_.size() > peak_entries_ ? entries_.size()
                                                    : peak_entries_;
    if (observer_ != nullptr) {
      observer_->on_sharer_change(mem::line_base(line), before, mask);
    }
  }

  void remove_sharer(mem::Addr line, Sharer who) {
    shard_.assert_held();
    const auto it = entries_.find(mem::line_index(line));
    if (it == entries_.end()) return;
    const std::uint8_t before = it->second;
    it->second &= static_cast<std::uint8_t>(~static_cast<std::uint8_t>(who));
    const std::uint8_t after = it->second;
    if (it->second == 0) entries_.erase(it);
    if (observer_ != nullptr) {
      observer_->on_sharer_change(mem::line_base(line), before, after);
    }
  }

  bool is_sharer(mem::Addr line, Sharer who) const {
    shard_.assert_held();
    const auto it = entries_.find(mem::line_index(line));
    return it != entries_.end() &&
           (it->second & static_cast<std::uint8_t>(who)) != 0;
  }

  /// Raw sharer bitmask for `line` (0 when untracked). The model checker
  /// folds this into its canonical state vector.
  std::uint8_t sharer_mask(mem::Addr line) const {
    shard_.assert_held();
    const auto it = entries_.find(mem::line_index(line));
    return it == entries_.end() ? 0 : it->second;
  }

  std::size_t entries() const {
    shard_.assert_held();
    return entries_.size();
  }
  std::size_t peak_entries() const {
    shard_.assert_held();
    return peak_entries_;
  }

  /// Directory SRAM cost at ~2 B/entry, the figure the paper's "saves
  /// memory space" claim compares against.
  std::uint64_t approx_bytes() const {
    shard_.assert_held();
    return peak_entries_ * 2;
  }

  void clear() {
    shard_.assert_held();
    entries_.clear();
  }

  /// Attach/detach the coherence invariant checker (nullptr to detach).
  void set_observer(check::Observer* obs) { observer_ = obs; }

 private:
  // Directory state is owned by the home-agent shard that owns this line
  // range; under the sharded engine no other shard may read or mutate it
  // directly (docs/STATIC_ANALYSIS.md, annotation guide).
  core::ShardCapability shard_;
  std::unordered_map<std::uint64_t, std::uint8_t> entries_
      TECO_SHARD_AFFINE(shard_);
  std::size_t peak_entries_ TECO_SHARD_AFFINE(shard_) = 0;
  check::Observer* observer_ = nullptr;
};

}  // namespace teco::coherence
