#!/usr/bin/env python3
"""Compare two canonical bench results (BENCH_<name>.json, schema teco-bench-v1).

Usage: scripts/bench_diff.py BASELINE.json CANDIDATE.json [--threshold-pct P]

Prints a table of headline scalars (always) and registry metrics (when both
files carry them) with absolute and relative deltas. Exits 1 when any
headline value moved by more than --threshold-pct (default: report-only, 0
disables gating). Intended for PR descriptions: regenerate the candidate
with TECO_BENCH_DIR pointing somewhere writable, then paste the output.
"""

import argparse
import json
import sys

SCHEMA = "teco-bench-v1"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    return doc


def fmt(v):
    if isinstance(v, float) and v != int(v):
        return f"{v:.4g}"
    return str(v)


def diff_section(title, base, cand, threshold_pct):
    keys = sorted(set(base) | set(cand))
    if not keys:
        return [], 0, [], []
    width = max(len(k) for k in keys)
    lines = [f"{title}:"]
    regressions = 0
    added, removed = [], []
    for k in keys:
        b, c = base.get(k), cand.get(k)
        if b is None:
            added.append(k)
            lines.append(
                f"  {k:<{width}}  (absent) -> {fmt(c)}  ADDED in candidate"
            )
            continue
        if c is None:
            removed.append(k)
            lines.append(
                f"  {k:<{width}}  {fmt(b)} -> (absent)  REMOVED from candidate"
            )
            continue
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            mark = "" if b == c else "  *"
            lines.append(f"  {k:<{width}}  {fmt(b)} -> {fmt(c)}{mark}")
            continue
        delta = c - b
        rel = (delta / b * 100.0) if b else (0.0 if not delta else float("inf"))
        flag = ""
        if threshold_pct and abs(rel) > threshold_pct:
            flag = "  <-- beyond threshold"
            regressions += 1
        lines.append(
            f"  {k:<{width}}  {fmt(b)} -> {fmt(c)}"
            f"  ({delta:+.4g}, {rel:+.2f}%){flag}"
        )
    return lines, regressions, added, removed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold-pct",
        type=float,
        default=0.0,
        help="fail when a headline moves more than this (0 = report only)",
    )
    args = ap.parse_args()

    base, cand = load(args.baseline), load(args.candidate)
    if base["name"] != cand["name"]:
        sys.exit(
            f"error: comparing different benches: "
            f"{base['name']!r} vs {cand['name']!r}"
        )

    print(f"bench: {base['name']}")
    if base.get("smoke") or cand.get("smoke"):
        print("note: at least one side ran with TECO_SMOKE=1 (shrunk work)")

    total = 0
    added, removed = [], []
    lines, bad, add, rem = diff_section(
        "headline", base.get("headline", {}), cand.get("headline", {}),
        args.threshold_pct,
    )
    print("\n".join(lines))
    total += bad
    added += add
    removed += rem

    # Diff metrics whenever EITHER side carries them: a registry that
    # vanished (or appeared) wholesale is exactly the key churn this report
    # must surface, not silently skip.
    metrics_b, metrics_c = base.get("metrics", {}), cand.get("metrics", {})
    if metrics_b or metrics_c:
        lines, _, add, rem = diff_section("metrics", metrics_b, metrics_c, 0.0)
        print("\n".join(lines))
        added += add
        removed += rem

    if added:
        print(f"{len(added)} key(s) added in candidate: {', '.join(added)}")
    if removed:
        print(f"{len(removed)} key(s) removed from candidate: "
              f"{', '.join(removed)}")
    if total:
        print(f"{total} headline value(s) beyond ±{args.threshold_pct}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
