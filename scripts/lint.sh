#!/usr/bin/env bash
# Run clang-tidy over the TECO sources using the repo's .clang-tidy.
#
# Usage:
#   scripts/lint.sh                 # lint every .cpp under src/
#   scripts/lint.sh file.cpp ...    # lint the given files (CI: changed files)
#
# Requires a compile database; one is generated into build/ if missing.
# Degrades gracefully (exit 0 with a notice) when clang-tidy is not
# installed, so the script is safe to call from hooks on minimal machines.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found; skipping lint (install LLVM to enable)"
  exit 0
fi

build_dir="${TECO_BUILD_DIR:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: generating compile database in ${build_dir}/"
  cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=()
  for f in "$@"; do
    [[ "${f}" == *.cpp ]] && files+=("${f}")
  done
else
  mapfile -t files < <(find src -name '*.cpp' | sort)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint.sh: no .cpp files to lint"
  exit 0
fi

echo "lint.sh: linting ${#files[@]} file(s)"
clang-tidy -p "${build_dir}" --quiet "${files[@]}"
