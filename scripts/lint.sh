#!/usr/bin/env bash
# Run clang-tidy over the TECO sources using the repo's .clang-tidy.
#
# Usage:
#   scripts/lint.sh                 # lint every .cpp under src/
#   scripts/lint.sh file.cpp ...    # lint the given files (CI: changed files)
#
# Requires a compile database; one is generated into build/ if missing.
# Degrades gracefully (exit 0 with a notice) when clang-tidy is not
# installed, so the script is safe to call from hooks on minimal machines.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

# --- Happens-before trace lint (teco::mc) -----------------------------------
# When the hb_lint example is built, replay the reference training loop
# under `check = hb` and fail on any unordered cross-agent access — plus
# the planted-race mode, which must still be caught (analyzer sensitivity).
# Skipped quietly when the binary is not built; static lint continues.
hb_lint_bin="${TECO_BUILD_DIR:-build}/examples/hb_lint"
if [[ -x "${hb_lint_bin}" ]]; then
  echo "lint.sh: happens-before trace lint"
  "${hb_lint_bin}"
  "${hb_lint_bin}" --planted 2>/dev/null >/dev/null ||
    { echo "lint.sh: hb_lint --planted missed the planted race" >&2; exit 1; }
else
  echo "lint.sh: ${hb_lint_bin} not built; skipping the HB trace lint"
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found; skipping lint (install LLVM to enable)"
  exit 0
fi

build_dir="${TECO_BUILD_DIR:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: generating compile database in ${build_dir}/"
  cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=()
  for f in "$@"; do
    [[ "${f}" == *.cpp ]] && files+=("${f}")
  done
else
  mapfile -t files < <(find src -name '*.cpp' | sort)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint.sh: no .cpp files to lint"
  exit 0
fi

echo "lint.sh: linting ${#files[@]} file(s)"
clang-tidy -p "${build_dir}" --quiet "${files[@]}"
