#!/usr/bin/env bash
# Run clang-tidy over the TECO sources using the repo's .clang-tidy.
#
# Usage:
#   scripts/lint.sh                 # lint every .cpp under src/, tools/, bench/
#   scripts/lint.sh file.cpp ...    # lint the given files (CI: changed files)
#
# Requires a compile database; one is generated into build/ if missing.
# Degrades gracefully (exit 0 with a notice) when clang-tidy is not
# installed, so the script is safe to call from hooks on minimal machines.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

# --- Happens-before trace lint (teco::mc) -----------------------------------
# When the hb_lint example is built, replay the reference training loop
# under `check = hb` and fail on any unordered cross-agent access — plus
# the planted-race mode, which must still be caught (analyzer sensitivity).
# Skipped quietly when the binary is not built; static lint continues.
hb_lint_bin="${TECO_BUILD_DIR:-build}/examples/hb_lint"
if [[ -x "${hb_lint_bin}" ]]; then
  echo "lint.sh: happens-before trace lint"
  "${hb_lint_bin}"
  "${hb_lint_bin}" --planted 2>/dev/null >/dev/null ||
    { echo "lint.sh: hb_lint --planted missed the planted race" >&2; exit 1; }
else
  echo "lint.sh: ${hb_lint_bin} not built; skipping the HB trace lint"
fi

# --- teco-lint: determinism & shard-safety static analysis ------------------
# Token-level linter (tools/lint/teco_lint.cpp) over src/: unordered-iter,
# wallclock, ptr-order, fp-reduce, queue-capture, shard-coverage and
# cross-shard. The committed tree must carry zero
# unsuppressed findings, and the allow() suppression count is budgeted —
# raising TECO_LINT_MAX_SUPPRESSIONS is a deliberate, reviewed act.
# Before trusting the clean run, the linter proves its own sensitivity on
# the committed fixtures: the clean fixture must stay silent and every
# planted fixture must trip its rule, else we fail loudly (a linter that
# stopped seeing hazards would otherwise pass everything forever).
teco_lint_bin="${TECO_BUILD_DIR:-build}/tools/lint/teco_lint"
if [[ ! -x "${teco_lint_bin}" ]]; then
  echo "lint.sh: building teco_lint"
  cmake -B "${TECO_BUILD_DIR:-build}" -S . >/dev/null &&
    cmake --build "${TECO_BUILD_DIR:-build}" --target teco_lint >/dev/null ||
    { echo "lint.sh: failed to build teco_lint" >&2; exit 1; }
fi

echo "lint.sh: teco-lint fixture self-test"
for clean in clean clean_sharded; do
  "${teco_lint_bin}" --no-summary "tests/lint_fixtures/${clean}.cpp" ||
    { echo "lint.sh: teco-lint flagged the ${clean} fixture" >&2; exit 1; }
done
for rule in unordered_iter wallclock ptr_order fp_reduce \
            queue_capture shard_coverage cross_shard; do
  fixture="tests/lint_fixtures/planted_${rule}.cpp"
  if "${teco_lint_bin}" --no-summary "${fixture}" >/dev/null 2>&1; then
    echo "lint.sh: teco-lint MISSED the planted ${rule} fixture" >&2
    exit 1
  fi
done

echo "lint.sh: teco-lint over src/"
"${teco_lint_bin}" --max-suppressions="${TECO_LINT_MAX_SUPPRESSIONS:-7}" src ||
  { echo "lint.sh: teco-lint found hazards (or the suppression budget grew)" >&2
    exit 1; }

# Emit the cross-shard ownership map as a build artifact (CI uploads it;
# docs/SHARDING.md embeds the committed snapshot). Advisory output only —
# violations are already enforced by the src/ scan above.
map_prefix="${TECO_BUILD_DIR:-build}/teco_ownership"
"${teco_lint_bin}" --no-summary --ownership-map="${map_prefix}" src >/dev/null ||
  { echo "lint.sh: ownership-map emission failed" >&2; exit 1; }
echo "lint.sh: ownership map at ${map_prefix}.{dot,json}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found; skipping lint (install LLVM to enable)"
  exit 0
fi

build_dir="${TECO_BUILD_DIR:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: generating compile database in ${build_dir}/"
  cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [[ $# -gt 0 ]]; then
  files=()
  for f in "$@"; do
    [[ "${f}" == *.cpp ]] && files+=("${f}")
  done
else
  mapfile -t files < <(find src tools bench -name '*.cpp' 2>/dev/null | sort)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint.sh: no .cpp files to lint"
  exit 0
fi

echo "lint.sh: linting ${#files[@]} file(s)"
clang-tidy -p "${build_dir}" --quiet "${files[@]}"
