#!/usr/bin/env bash
# Smoke-run every bench binary: each must exit 0 and produce output.
#
# TECO_SMOKE=1 asks the heavier benches (loss curves, accuracy tables,
# activation/tier sweeps, trace replay, multi-device scaling, the LJ melt,
# the ablation sweeps, bench_ft_recovery, the bench_serve_slo serving
# sweep, the bench_fabric_allreduce pooled-fabric sweep, the
# bench_critical_path attribution comparison) to shrink their work; the
# google-benchmark binary is capped with --benchmark_min_time instead.
# bench_tier_activation additionally smoke-tests the Chrome trace exporter
# (--json into a temp file that must be non-empty).
#
# Canonical results: TECO_BENCH_DIR is pointed at ${build_dir}/bench-results
# so every bench that emits a BENCH_<name>.json (teco-bench-v1) writes
# there; after the run each file is schema-validated with python3 and the
# script fails on a missing/empty headline section. Compare two result
# directories with scripts/bench_diff.py.
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
bench_dir="${build_dir}/bench"

if [ ! -d "${bench_dir}" ]; then
  echo "error: ${bench_dir} not found (build the project first)" >&2
  exit 1
fi

export TECO_SMOKE=1
export TECO_BENCH_DIR="${build_dir}/bench-results"
mkdir -p "${TECO_BENCH_DIR}"
rm -f "${TECO_BENCH_DIR}"/BENCH_*.json
failures=0
ran=0

for b in "${bench_dir}"/bench_*; do
  [ -x "${b}" ] || continue
  name="$(basename "${b}")"
  args=()
  trace_json=""
  if [ "${name}" = "bench_micro_link" ]; then
    args=(--benchmark_min_time=0.01)
  elif [ "${name}" = "bench_tier_activation" ]; then
    trace_json="$(mktemp)"
    args=(--json "${trace_json}")
  fi
  start=$(date +%s%N)
  if out="$("${b}" "${args[@]}" 2>&1)"; then
    if [ -z "${out}" ]; then
      echo "FAIL ${name}: produced no output"
      failures=$((failures + 1))
    elif [ -n "${trace_json}" ] && [ ! -s "${trace_json}" ]; then
      echo "FAIL ${name}: --json produced an empty trace"
      failures=$((failures + 1))
    else
      end=$(date +%s%N)
      printf 'ok   %-34s %6d ms\n' "${name}" $(((end - start) / 1000000))
    fi
    [ -n "${trace_json}" ] && rm -f "${trace_json}"
  else
    echo "FAIL ${name}: exit $?"
    printf '%s\n' "${out}" | tail -20
    failures=$((failures + 1))
  fi
  ran=$((ran + 1))
done

if [ "${ran}" -eq 0 ]; then
  echo "error: no bench binaries found in ${bench_dir}" >&2
  exit 1
fi

# Validate every canonical result file: schema tag, bench name, and a
# non-empty headline section with numeric values.
reports=0
for f in "${TECO_BENCH_DIR}"/BENCH_*.json; do
  [ -e "${f}" ] || continue
  if python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
schema = doc.get("schema")
assert schema == "teco-bench-v1", "bad schema: %r" % schema
assert doc.get("name"), "missing bench name"
headline = doc.get("headline")
assert isinstance(headline, dict) and headline, "missing headline keys"
bad = [k for k, v in headline.items() if not isinstance(v, (int, float))]
assert not bad, "non-numeric headline values: %r" % bad
' "${f}"; then
    printf 'ok   %-34s schema valid\n' "$(basename "${f}")"
  else
    echo "FAIL $(basename "${f}"): schema validation"
    failures=$((failures + 1))
  fi
  reports=$((reports + 1))
done
if [ "${reports}" -lt 2 ]; then
  echo "error: expected at least 2 BENCH_*.json reports, got ${reports}" >&2
  failures=$((failures + 1))
fi

echo "${ran} benches, ${reports} reports, ${failures} failures"
exit "${failures}"
