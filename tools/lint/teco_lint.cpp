// teco-lint: determinism & shard-safety static analysis for the TECO tree.
//
// The sharded-engine refactor (ROADMAP) requires that a sharded run replay
// bit-identically against the single-queue engine — the sim::EventQueue
// (time,seq) FIFO contract. That promise dies quietly whenever event order,
// trace output, or checker state is derived from something nondeterministic:
// unordered-container iteration order, wall-clock time, unseeded randomness,
// pointer values used as keys, or order-sensitive floating-point reduction.
// TSan and teco::mc catch the *consequences* at runtime; this tool rejects
// the *sources* at lint time.
//
// Like examples/hb_lint.cpp, this is a deliberately token/decl-level
// analyzer, not a libclang plugin: it tokenizes the sources (comments and
// string literals stripped), tracks container/float declarations per file
// plus its directly #include'd project headers, and pattern-matches the
// hazards below. That buys zero build-time dependencies and keeps every
// rule ~a screen of code, at the cost of being name-based: a container
// member declared in one header and iterated in an unrelated file that does
// not include it is invisible. The rules are tuned so the committed tree is
// clean (see docs/STATIC_ANALYSIS.md for the catalogue and the rationale
// behind every suppression).
//
// Rules
//   unordered-iter  range-for over an unordered_{map,set} whose body lets
//                   the iteration order escape (any non-commutative call,
//                   stream output, container append). Pure commutative
//                   integer accumulation (size/count/min/max/+= on an
//                   integral) is allowed.
//   wallclock       std::chrono::{system,steady,high_resolution}_clock,
//                   rand/srand/random_device/time(nullptr) outside the
//                   seeded sim::Rng.
//   ptr-order       pointer values used as ordering or hash keys:
//                   {map,set,unordered_*}<T*,...>, std::hash<T*>,
//                   reinterpret_cast<uintptr_t>.
//   fp-reduce       float/double accumulation whose order is not pinned:
//                   += on a floating accumulator inside unordered-container
//                   iteration, or inside a loop tagged `// teco-lint: reduce`.
//
// Suppressions: `// teco-lint: allow(rule[,rule...])` on the finding's line
// or the line above. Suppressions are counted and reported; CI pins the
// total via --max-suppressions so new ones are reviewed, not accumulated.
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 suppression budget
// exceeded or usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule catalogue.

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* hint;
};

constexpr RuleInfo kRules[] = {
    {"unordered-iter",
     "iteration order of an unordered container escapes into event "
     "scheduling, trace output, or checker state",
     "iterate sorted keys (collect + std::sort) or switch to std::map/vector"},
    {"wallclock",
     "wall-clock time or unseeded randomness on a simulation-visible path",
     "thread sim::Time through, or draw from the seeded sim::Rng"},
    {"ptr-order",
     "pointer value used as an ordering or hash key (address-dependent, "
     "varies run to run under ASLR)",
     "key on a stable id (index, address, name) instead of the pointer"},
    {"fp-reduce",
     "floating-point accumulation whose summation order is not pinned",
     "fix the iteration order (sorted keys) or use a pairwise/Kahan "
     "reduction with a documented order contract"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return true;
  return false;
}

const RuleInfo& rule_info(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return r;
  std::cerr << "teco-lint: internal error: unknown rule " << id << "\n";
  std::exit(2);
}

// ---------------------------------------------------------------------------
// Source model: raw text -> stripped code + lint directives.

struct Token {
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> rules allowed on that line (from `teco-lint: allow(...)`).
  std::map<int, std::set<std::string>> allows;
  std::set<int> reduce_tags;         // lines carrying `teco-lint: reduce`
  std::vector<std::string> includes;  // project-relative #include "..." paths
  // Names declared in THIS file.
  std::set<std::string> unordered_vars;
  std::set<std::string> ordered_vars;  // same name declared as ordered
  std::set<std::string> float_vars;
  std::set<std::string> unordered_types;  // aliases of unordered containers
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string detail;  // appended to the rule summary
  bool suppressed = false;
};

// Parse a `teco-lint:` directive out of one comment's text.
void parse_directive(const std::string& comment, int line, SourceFile& sf) {
  const std::size_t at = comment.find("teco-lint:");
  if (at == std::string::npos) return;
  std::string rest = comment.substr(at + 10);
  if (rest.find("reduce") != std::string::npos &&
      rest.find("allow") == std::string::npos) {
    sf.reduce_tags.insert(line);
    return;
  }
  const std::size_t open = rest.find("allow(");
  if (open == std::string::npos) return;
  const std::size_t close = rest.find(')', open);
  if (close == std::string::npos) return;
  std::string list = rest.substr(open + 6, close - open - 6);
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id.erase(std::remove_if(id.begin(), id.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             id.end());
    if (id.empty()) continue;
    if (!known_rule(id) && id != "all") {
      std::cerr << sf.path << ":" << line
                << ": teco-lint: unknown rule in allow(): " << id << "\n";
      std::exit(2);
    }
    sf.allows[line].insert(id);
  }
}

// Strip comments and string/char literals, recording directives. Keeps the
// newline structure so token line numbers match the original file.
std::string strip(const std::string& raw, SourceFile& sf) {
  std::string out;
  out.reserve(raw.size());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  while (i < n) {
    const char c = raw[i];
    if (c == '\n') {
      out += '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      std::string comment;
      while (i < n && raw[i] != '\n') comment += raw[i++];
      parse_directive(comment, line, sf);
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      std::string comment;
      const int start = line;
      i += 2;
      while (i + 1 < n && !(raw[i] == '*' && raw[i + 1] == '/')) {
        if (raw[i] == '\n') {
          out += '\n';
          ++line;
        }
        comment += raw[i++];
      }
      i = i + 1 < n ? i + 2 : n;
      parse_directive(comment, start, sf);
    } else if (c == '"') {
      // String literal (raw strings handled crudely: R"( ... )").
      const bool is_raw = i > 0 && raw[i - 1] == 'R';
      out += '"';
      ++i;
      if (is_raw) {
        std::size_t delim_end = raw.find('(', i);
        if (delim_end == std::string::npos) break;
        const std::string close_mark =
            ")" + raw.substr(i, delim_end - i) + "\"";
        const std::size_t end = raw.find(close_mark, delim_end);
        for (std::size_t j = i; j < std::min(end, n); ++j)
          if (raw[j] == '\n') {
            out += '\n';
            ++line;
          }
        i = end == std::string::npos ? n : end + close_mark.size();
      } else {
        while (i < n && raw[i] != '"') {
          if (raw[i] == '\\') ++i;
          if (i < n && raw[i] == '\n') ++line;
          ++i;
        }
        ++i;
      }
      out += '"';
    } else if (c == '\'') {
      out += '\'';
      ++i;
      while (i < n && raw[i] != '\'') {
        if (raw[i] == '\\') ++i;
        ++i;
      }
      ++i;
      out += '\'';
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void tokenize(const std::string& code, SourceFile& sf) {
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {
      // Preprocessor line: capture #include "..." targets, skip the rest.
      std::size_t end = code.find('\n', i);
      if (end == std::string::npos) end = n;
      const std::string dir = code.substr(i, end - i);
      const std::size_t inc = dir.find("include");
      if (inc != std::string::npos) {
        const std::size_t q1 = dir.find('"', inc);
        const std::size_t q2 =
            q1 == std::string::npos ? q1 : dir.find('"', q1 + 1);
        if (q2 != std::string::npos)
          sf.includes.push_back(dir.substr(q1 + 1, q2 - q1 - 1));
      }
      i = end;
    } else if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t j = i;
      while (j < n && ident_char(code[j])) ++j;
      sf.tokens.push_back({code.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(code[j]) || code[j] == '.')) ++j;
      sf.tokens.push_back({code.substr(i, j - i), line});
      i = j;
    } else {
      // Multi-char operators the rules care about; everything else 1 char.
      static const char* two[] = {"+=", "<<", ">>", "::", "->", "==", "!="};
      std::string tok(1, c);
      for (const char* op : two) {
        if (i + 1 < n && code[i] == op[0] && code[i + 1] == op[1]) {
          tok = op;
          break;
        }
      }
      sf.tokens.push_back({tok, line});
      i += tok.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Declaration tracking.

const std::set<std::string>& builtin_unordered() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& builtin_ordered() {
  static const std::set<std::string> kSet = {"map", "set", "vector", "array",
                                             "deque", "multimap", "multiset"};
  return kSet;
}

// Given tokens[i] == "<", return the index just past the matching ">".
std::size_t skip_template(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    else if (t[i].text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t[i].text == ";" || t[i].text == "{") {
      return i;  // not a template after all (less-than expression)
    }
  }
  return i;
}

void collect_decls(SourceFile& sf) {
  const auto& t = sf.tokens;
  // `using Alias = ... unordered_map<...> ...;`
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
        if (builtin_unordered().count(t[j].text) != 0 ||
            sf.unordered_types.count(t[j].text) != 0) {
          sf.unordered_types.insert(t[i + 1].text);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    const bool is_unordered = builtin_unordered().count(tx) != 0 ||
                              sf.unordered_types.count(tx) != 0;
    const bool is_ordered = builtin_ordered().count(tx) != 0;
    if ((is_unordered || is_ordered) && i + 1 < t.size()) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") j = skip_template(t, j);
      // Accept `Type [cv-ref] name ;|=|{|,|)` declarations — members,
      // locals, and (const-reference) function parameters alike.
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const"))
        ++j;
      if (j < t.size() && ident_char(t[j].text[0]) &&
          std::isdigit(static_cast<unsigned char>(t[j].text[0])) == 0 &&
          j + 1 < t.size() &&
          (t[j + 1].text == ";" || t[j + 1].text == "=" ||
           t[j + 1].text == "{" || t[j + 1].text == "," ||
           t[j + 1].text == ")")) {
        (is_unordered ? sf.unordered_vars : sf.ordered_vars)
            .insert(t[j].text);
      }
    }
    if ((tx == "float" || tx == "double") && i + 1 < t.size()) {
      const std::string& name = t[i + 1].text;
      if (ident_char(name[0]) &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0 &&
          i + 2 < t.size() &&
          (t[i + 2].text == ";" || t[i + 2].text == "=" ||
           t[i + 2].text == "{" || t[i + 2].text == ",")) {
        sf.float_vars.insert(name);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule engines.

struct Visibility {
  // Names visible to a file: its own decls plus its direct project includes.
  std::set<std::string> unordered_vars;
  std::set<std::string> ordered_vars;
  std::set<std::string> float_vars;
  std::set<std::string> unordered_types;
};

bool is_keyword_call(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",     "for",        "while",  "switch",      "return",
      "sizeof", "catch",      "assert", "static_cast", "const_cast",
      "defined"};
  return kKw.count(s) != 0;
}

bool is_commutative_call(const std::string& s) {
  static const std::set<std::string> kOk = {"size",     "empty", "count",
                                            "contains", "max",   "min",
                                            "abs",      "fabs",  "llabs"};
  return kOk.count(s) != 0;
}

void scan_loops(const SourceFile& sf, const Visibility& vis,
                std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "for" && t[i].text != "while") continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    const int for_line = t[i].line;
    const bool tagged_reduce = sf.reduce_tags.count(for_line) != 0 ||
                               sf.reduce_tags.count(for_line - 1) != 0;
    // Find the matching ')' and a range-for ':' at depth 1.
    int depth = 0;
    std::size_t close = i + 1;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (t[j].text == ":" && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (close <= i + 1) continue;
    // Is the range expression an unordered container?
    std::string container;
    if (t[i].text == "for" && colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (vis.unordered_vars.count(t[j].text) != 0 &&
            vis.ordered_vars.count(t[j].text) == 0) {
          container = t[j].text;
          break;
        }
        if (builtin_unordered().count(t[j].text) != 0 ||
            vis.unordered_types.count(t[j].text) != 0) {
          container = t[j].text;  // e.g. iterating a temporary
          break;
        }
      }
    }
    if (container.empty() && !tagged_reduce) continue;
    // Extract the loop body: `{...}` balanced, or one statement up to ';'.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (body_begin < t.size() && t[body_begin].text == "{") {
      int bd = 0;
      for (std::size_t j = body_begin; j < t.size(); ++j) {
        if (t[j].text == "{") ++bd;
        else if (t[j].text == "}" && --bd == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }
    // Analyze the body.
    std::string escape;  // first order-escaping construct
    std::string fp_acc;  // first floating accumulator hit by `+=`
    for (std::size_t j = body_begin; j < body_end; ++j) {
      const std::string& b = t[j].text;
      if (b == "<<" && escape.empty()) escape = "stream output";
      if (j + 1 < body_end && t[j + 1].text == "(" &&
          ident_char(b[0]) &&
          std::isdigit(static_cast<unsigned char>(b[0])) == 0 &&
          !is_keyword_call(b) && !is_commutative_call(b) && escape.empty()) {
        escape = "call to '" + b + "'";
      }
      if (j + 1 < body_end && t[j + 1].text == "+=" &&
          vis.float_vars.count(b) != 0 && fp_acc.empty()) {
        fp_acc = b;
      }
    }
    if (!container.empty() && !escape.empty()) {
      out.push_back({sf.path, for_line, "unordered-iter",
                     "'" + container + "' iterated with order-sensitive "
                     "body (" + escape + ")",
                     false});
    }
    if (!fp_acc.empty() && (!container.empty() || tagged_reduce)) {
      out.push_back({sf.path, for_line, "fp-reduce",
                     "'" + fp_acc + "' accumulated in " +
                         (container.empty()
                              ? std::string("a tagged reduce loop")
                              : "iteration over '" + container + "'"),
                     false});
    }
  }
}

void scan_wallclock(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    if (tx == "system_clock" || tx == "steady_clock" ||
        tx == "high_resolution_clock" || tx == "random_device") {
      out.push_back({sf.path, t[i].line, "wallclock", "'" + tx + "'", false});
    } else if ((tx == "rand" || tx == "srand") && i + 1 < t.size() &&
               t[i + 1].text == "(") {
      out.push_back(
          {sf.path, t[i].line, "wallclock", "'" + tx + "()'", false});
    } else if (tx == "time" && i + 2 < t.size() && t[i + 1].text == "(" &&
               (t[i + 2].text == "nullptr" || t[i + 2].text == "NULL" ||
                t[i + 2].text == "0")) {
      out.push_back(
          {sf.path, t[i].line, "wallclock", "'time(nullptr)'", false});
    }
  }
}

void scan_ptr_order(const SourceFile& sf, const Visibility& vis,
                    std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& tx = t[i].text;
    const bool assoc = builtin_unordered().count(tx) != 0 ||
                       vis.unordered_types.count(tx) != 0 || tx == "map" ||
                       tx == "set" || tx == "multimap" || tx == "multiset" ||
                       tx == "hash";
    if (assoc && t[i + 1].text == "<") {
      // First template argument: tokens until a top-level ',' or '>'.
      int depth = 0;
      std::string last;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& b = t[j].text;
        if (b == "<") ++depth;
        else if (b == ">" || b == ">>") {
          if (b == ">" && --depth > 0) continue;
          break;
        } else if (b == "," && depth == 1) {
          break;
        } else if (b == ";" || b == "{") {
          last.clear();  // not a template
          break;
        } else {
          last = b;
        }
      }
      if (last == "*") {
        out.push_back({sf.path, t[i].line, "ptr-order",
                       "'" + tx + "' keyed on a pointer type", false});
      }
    }
    if (tx == "reinterpret_cast" && t[i + 1].text == "<") {
      for (std::size_t j = i + 2; j < t.size() && t[j].text != ">"; ++j) {
        if (t[j].text == "uintptr_t" || t[j].text == "intptr_t") {
          out.push_back({sf.path, t[i].line, "ptr-order",
                         "pointer reinterpreted as an integer id", false});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

struct Summary {
  std::map<std::string, int> findings;
  std::map<std::string, int> suppressed;
};

void apply_suppressions(const SourceFile& sf, std::vector<Finding>& fs) {
  for (Finding& f : fs) {
    for (int l : {f.line, f.line - 1}) {
      const auto it = sf.allows.find(l);
      if (it != sf.allows.end() &&
          (it->second.count(f.rule) != 0 || it->second.count("all") != 0)) {
        f.suppressed = true;
        break;
      }
    }
  }
}

std::vector<std::string> expand_paths(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& a : args) {
    if (fs::is_directory(a)) {
      for (const auto& e : fs::recursive_directory_iterator(a)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h")
          files.push_back(e.path().string());
      }
    } else if (fs::is_regular_file(a)) {
      files.push_back(a);
    } else {
      std::cerr << "teco-lint: no such file or directory: " << a << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

void print_rules() {
  std::cout << "teco-lint rules:\n";
  for (const RuleInfo& r : kRules) {
    std::cout << "  " << r.id << "\n    " << r.summary << "\n    fix: "
              << r.hint << "\n";
  }
  std::cout << "suppression: // teco-lint: allow(<rule>[,<rule>...]) on the "
               "finding's line or the line above\n"
               "reduce tag:  // teco-lint: reduce on the line of (or above) "
               "a loop marks it a reduce path for fp-reduce\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  long max_suppressions = -1;
  bool summary = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") {
      print_rules();
      return 0;
    } else if (a == "--no-summary") {
      summary = false;
    } else if (a.rfind("--max-suppressions=", 0) == 0) {
      max_suppressions = std::stol(a.substr(19));
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: teco_lint [--list-rules] [--no-summary]\n"
                   "                 [--max-suppressions=N] <file|dir>...\n";
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "teco-lint: unknown flag " << a << "\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: teco_lint [flags] <file|dir>...\n";
    return 2;
  }

  std::vector<SourceFile> sources;
  for (const std::string& p : expand_paths(paths)) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "teco-lint: cannot read " << p << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    SourceFile sf;
    sf.path = p;
    const std::string code = strip(buf.str(), sf);
    tokenize(code, sf);
    collect_decls(sf);
    sources.push_back(std::move(sf));
  }

  // Resolve include visibility: a file sees its own declarations plus those
  // of any scanned file whose path ends with one of its #include "..." paths.
  std::vector<Finding> all;
  Summary sum;
  for (const RuleInfo& r : kRules) {
    sum.findings[r.id] = 0;
    sum.suppressed[r.id] = 0;
  }
  for (SourceFile& sf : sources) {
    Visibility vis;
    auto merge = [&vis](const SourceFile& s) {
      vis.unordered_vars.insert(s.unordered_vars.begin(),
                                s.unordered_vars.end());
      vis.ordered_vars.insert(s.ordered_vars.begin(), s.ordered_vars.end());
      vis.float_vars.insert(s.float_vars.begin(), s.float_vars.end());
      vis.unordered_types.insert(s.unordered_types.begin(),
                                 s.unordered_types.end());
    };
    merge(sf);
    for (const std::string& inc : sf.includes) {
      for (const SourceFile& other : sources) {
        const std::string& op = other.path;
        if (op.size() >= inc.size() &&
            op.compare(op.size() - inc.size(), inc.size(), inc) == 0) {
          merge(other);
        }
      }
    }
    std::vector<Finding> fs;
    scan_loops(sf, vis, fs);
    scan_wallclock(sf, fs);
    scan_ptr_order(sf, vis, fs);
    apply_suppressions(sf, fs);
    all.insert(all.end(), fs.begin(), fs.end());
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });

  int open = 0, suppressed_total = 0;
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++sum.suppressed[f.rule];
      ++suppressed_total;
      continue;
    }
    ++sum.findings[f.rule];
    ++open;
    const RuleInfo& r = rule_info(f.rule);
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.detail << " — " << r.summary << "\n    fix: " << r.hint
              << "\n";
  }

  if (summary) {
    std::cout << "teco-lint summary (" << sources.size() << " file"
              << (sources.size() == 1 ? "" : "s") << ")\n";
    std::cout << "  rule              findings  suppressed\n";
    for (const RuleInfo& r : kRules) {
      std::printf("  %-18s %8d  %10d\n", r.id, sum.findings[r.id],
                  sum.suppressed[r.id]);
    }
    std::printf("  %-18s %8d  %10d\n", "total", open, suppressed_total);
  }

  if (max_suppressions >= 0 && suppressed_total > max_suppressions) {
    std::cerr << "teco-lint: suppression count " << suppressed_total
              << " exceeds budget " << max_suppressions
              << " (new allow() comments need review; raise the budget in "
                 "scripts/lint.sh deliberately)\n";
    return 2;
  }
  return open == 0 ? 0 : 1;
}
